//! AdaptiveTC — a reproduction of *"An Adaptive Task Creation Strategy for
//! Work-Stealing Scheduling"* (Wang, Cui, Duan, Lu, Feng, Yew — CGO 2010).
//!
//! This facade crate re-exports the whole suite:
//!
//! * [`core`] — the [`Problem`](core::Problem) model (backtracking-search
//!   task bodies with a cloneable *taskprivate* workspace), configuration,
//!   statistics and the serial baseline;
//! * [`deque`] — the THE-protocol work-stealing deque with special-task
//!   operations;
//! * [`runtime`] — seven threaded schedulers: Serial, Cilk, Cilk-SYNCHED,
//!   Tascell, two cut-off baselines, and AdaptiveTC itself;
//! * [`sim`] — a deterministic discrete-event simulator running the same
//!   policies over virtual workers (used for the multi-core figures on
//!   machines without eight cores);
//! * [`trace`] — lock-free per-worker event tracing shared by the runtime
//!   and the simulator, with Chrome-trace export, steal-provenance trees
//!   and a trace↔stats differential validator;
//! * [`workloads`] — the paper's Table 1 benchmarks and the synthetic
//!   unbalanced trees of Table 3.
//!
//! # Quick start
//!
//! ```
//! use adaptivetc_suite::core::Config;
//! use adaptivetc_suite::runtime::Scheduler;
//! use adaptivetc_suite::workloads::nqueens::NqueensArray;
//!
//! # fn main() -> Result<(), adaptivetc_suite::core::SchedulerError> {
//! let queens = NqueensArray::new(8);
//! let (solutions, report) = Scheduler::AdaptiveTc.run(&queens, &Config::new(2))?;
//! assert_eq!(solutions, 92);
//! println!(
//!     "tasks={} fake_tasks={} copies={}",
//!     report.stats.tasks_created, report.stats.fake_tasks, report.stats.copies
//! );
//! # Ok(())
//! # }
//! ```

pub use adaptivetc_core as core;
pub use adaptivetc_deque as deque;
pub use adaptivetc_runtime as runtime;
pub use adaptivetc_sim as sim;
#[cfg(feature = "trace")]
pub use adaptivetc_trace as trace;
pub use adaptivetc_workloads as workloads;
