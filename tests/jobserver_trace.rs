//! End-to-end trace regression for interleaved run-epochs: two jobs
//! overlapping in time on one traced `JobServer`, split back per job and
//! validated against each job's own `RunReport`.
//!
//! The overlap is forced, not hoped for: job A parks its first leaf on a
//! gate, job B starts and finishes while A is parked, then A is released.
//! Both jobs' events therefore share the server's single collector and
//! the pool-wide trace carries genuinely interleaved epochs.
#![cfg(feature = "trace")]

use adaptivetc_suite::core::{Config, CutoffPolicy, Expansion, Problem};
use adaptivetc_suite::runtime::{run_traced, JobOutcome, JobServer, Mode, Priority, ServerConfig};
use adaptivetc_suite::trace::{validate_concurrent, TraceCounts, TraceDiff};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Ternary tree of the given height; leaves hash the root path.
#[derive(Debug, Clone)]
struct Tern {
    height: u32,
}

impl Problem for Tern {
    type State = Vec<u8>;
    type Choice = u8;
    type Out = u64;
    fn root(&self) -> Vec<u8> {
        Vec::new()
    }
    fn expand(&self, path: &Vec<u8>, depth: u32) -> Expansion<u8, u64> {
        if depth == self.height {
            Expansion::Leaf(
                path.iter()
                    .fold(1u64, |a, &c| a.wrapping_mul(31).wrapping_add(u64::from(c)))
                    % 97,
            )
        } else {
            Expansion::Children(vec![0, 1, 2])
        }
    }
    fn apply(&self, path: &mut Vec<u8>, c: u8) {
        path.push(c);
    }
    fn undo(&self, path: &mut Vec<u8>, _c: u8) {
        path.pop();
    }
}

/// As [`Tern`], but the first leaf reached flips `started` and then parks
/// until `gate` is raised — pinning the job mid-flight.
#[derive(Debug, Clone)]
struct GatedTern {
    height: u32,
    started: Arc<AtomicBool>,
    gate: Arc<AtomicBool>,
}

impl Problem for GatedTern {
    type State = Vec<u8>;
    type Choice = u8;
    type Out = u64;
    fn root(&self) -> Vec<u8> {
        Vec::new()
    }
    fn expand(&self, path: &Vec<u8>, depth: u32) -> Expansion<u8, u64> {
        if depth == self.height {
            if !self.started.swap(true, Ordering::AcqRel) {
                while !self.gate.load(Ordering::Acquire) {
                    std::thread::yield_now();
                }
            }
            Expansion::Leaf(
                path.iter()
                    .fold(1u64, |a, &c| a.wrapping_mul(31).wrapping_add(u64::from(c)))
                    % 97,
            )
        } else {
            Expansion::Children(vec![0, 1, 2])
        }
    }
    fn apply(&self, path: &mut Vec<u8>, c: u8) {
        path.push(c);
    }
    fn undo(&self, path: &mut Vec<u8>, _c: u8) {
        path.pop();
    }
}

fn wait_started(flag: &AtomicBool) {
    while !flag.load(Ordering::Acquire) {
        std::thread::yield_now();
    }
}

#[test]
fn overlapping_jobs_split_and_validate_per_epoch() {
    let started = Arc::new(AtomicBool::new(false));
    let gate = Arc::new(AtomicBool::new(false));
    // Exhaustive recording: the epoch-vs-solo comparison below is
    // event-for-event, which independent 1-in-N countdowns would break.
    let server = JobServer::new(ServerConfig::new(2).trace(true).trace_sample(1));

    // Job A: parks on the gate at its first leaf.
    let a = server
        .submit(
            GatedTern {
                height: 3,
                started: Arc::clone(&started),
                gate: Arc::clone(&gate),
            },
            Config::new(1).cutoff(CutoffPolicy::Auto).seed(1),
            Mode::Adaptive,
            Priority::Normal,
        )
        .expect("submit job A");
    wait_started(&started);

    // Job B: runs to completion entirely inside job A's epoch.
    let cfg_b = Config::new(1).cutoff(CutoffPolicy::Auto).seed(2);
    let b = server
        .submit(
            Tern { height: 4 },
            cfg_b.clone(),
            Mode::Adaptive,
            Priority::Normal,
        )
        .expect("submit job B");
    let (id_a, id_b) = (a.id() as u32, b.id() as u32);
    let outcome_b = b.wait();
    gate.store(true, Ordering::Release);
    let outcome_a = a.wait();

    let (out_a, report_a) = match outcome_a {
        JobOutcome::Completed { out, report } => (out, report),
        other => panic!("job A did not complete: {other:?}"),
    };
    let (out_b, report_b) = match outcome_b {
        JobOutcome::Completed { out, report } => (out, report),
        other => panic!("job B did not complete: {other:?}"),
    };

    let report = server.shutdown();
    let trace = report.trace.expect("tracing was enabled");

    // The pool-wide trace splits into exactly the two jobs ...
    let split = trace.split_jobs();
    assert_eq!(
        split.keys().copied().collect::<Vec<_>>(),
        {
            let mut ids = vec![id_a, id_b];
            ids.sort_unstable();
            ids
        },
        "trace does not decompose into the two submitted jobs"
    );

    // ... and each sub-trace validates against its own job's report.
    let mismatches = validate_concurrent(&trace, &[(id_a, &report_a), (id_b, &report_b)]);
    assert!(
        mismatches.is_empty(),
        "interleaved epochs failed per-job validation: {mismatches:?}"
    );

    // Job B is single-slot and seeded, so its sub-trace must be
    // event-for-event identical (counts, not timestamps) to a solo traced
    // run of the same problem and config.
    let (solo_out, solo_report, solo_trace) = run_traced(
        &Tern { height: 4 },
        &cfg_b.trace(true).trace_sample(1),
        Mode::Adaptive,
    )
    .expect("solo run");
    let solo_trace = solo_trace.expect("solo tracing enabled");
    assert_eq!(out_b, solo_out);
    assert_eq!(report_b.stats, solo_report.stats);
    assert_eq!(
        TraceCounts::from_trace(&split[&id_b]),
        TraceCounts::from_trace(&solo_trace),
        "job B's epoch diverged from its solo trace"
    );
    let diff = TraceDiff::compare(&split[&id_b], &solo_trace);
    assert!(
        diff.is_exact(),
        "single-slot job trace must align exactly with the solo run: {diff:?}"
    );

    // Sanity: job A really was mid-flight while B ran (its value checks
    // out and both completed).
    assert_eq!(
        out_a,
        adaptivetc_suite::core::serial::run(&Tern { height: 3 }).0
    );
}
