//! Property-based round-trips for the lint's machine-written data files.
//!
//! `ORDERINGS.toml`, `ORDERING_VERDICTS.toml`, `MINIMIZE.toml` and
//! `LINT_ALLOW.toml` all flow through the minimal TOML subset in
//! `adaptivetc_lint::toml`. Three properties keep the bless/audit loop
//! trustworthy for arbitrary (printable) justification text:
//!
//! 1. **Parse inverts render** — rendering a site map / verdict list /
//!    keep list and parsing it back yields the same entries, findings-free,
//!    even when strings contain quotes, backslashes and `#`.
//! 2. **Bless is idempotent** — rendering again with the parsed entries as
//!    the "old" justification source reproduces the file byte-for-byte, so
//!    a second `--bless` (or `--orderings-verify --bless`) is a no-op.
//! 3. **The allowlist parser accepts what the documented format says** —
//!    any entry with a known rule and a non-empty justification parses
//!    without findings.

use adaptivetc_lint::allowlist::Allowlist;
use adaptivetc_lint::manifest::{self, ManifestEntry, SiteKey};
use adaptivetc_lint::toml::quote;
use adaptivetc_lint::verdicts::{self, MinimizeEntry, VerdictEntry, VERDICT_KINDS};
use proptest::prelude::*;
use std::collections::BTreeMap;

/// Printable ASCII with no newline — the single-line-value TOML subset's
/// whole domain. Deliberately includes `"`, `\` and `#` to stress the
/// escaping and comment-stripping paths.
fn printable() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[ -~]{1,30}").expect("valid regex")
}

/// Non-empty field text (keys reject empty/whitespace-only strings).
fn field() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[!-~][ -~]{0,24}").expect("valid regex")
}

/// One of the five real ordering names — `parse_manifest` rejects
/// anything else, so only file and symbol get adversarial text.
fn ordering() -> impl Strategy<Value = String> {
    (0usize..5).prop_map(|i| ["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"][i].to_string())
}

fn site_key() -> impl Strategy<Value = SiteKey> {
    (field(), field(), ordering()).prop_map(|(file, symbol, ordering)| SiteKey {
        file,
        symbol,
        ordering,
    })
}

/// A site map plus an "old" manifest carrying justifications for a
/// (generated) subset of the keys.
fn sites_and_old() -> impl Strategy<Value = (BTreeMap<SiteKey, Vec<u32>>, Vec<ManifestEntry>)> {
    proptest::collection::btree_map(
        site_key(),
        (
            proptest::collection::vec(1u32..5000, 1..5),
            proptest::option::of(printable()),
        ),
        1..8,
    )
    .prop_map(|m| {
        let mut sites = BTreeMap::new();
        let mut old = Vec::new();
        for (key, (lines, why)) in m {
            if let Some(why) = why {
                old.push(ManifestEntry {
                    key: key.clone(),
                    count: lines.len() as u64,
                    why,
                    line: 0,
                });
            }
            sites.insert(key, lines);
        }
        (sites, old)
    })
}

proptest! {
    // Render → parse over ORDERINGS.toml recovers every key, count and
    // preserved justification without a single finding.
    #[test]
    fn orderings_parse_inverts_render(input in sites_and_old()) {
        let (sites, old) = input;
        let text = manifest::render(&sites, &old);
        let mut findings = Vec::new();
        let entries = manifest::parse_manifest(&text, &mut findings);
        prop_assert!(findings.is_empty(), "{findings:?}");
        prop_assert_eq!(entries.len(), sites.len());
        let whys: BTreeMap<&SiteKey, &str> =
            old.iter().map(|e| (&e.key, e.why.as_str())).collect();
        for e in &entries {
            let lines = sites.get(&e.key).expect("rendered an unknown key");
            prop_assert_eq!(e.count, lines.len() as u64);
            let expected = whys
                .get(&e.key)
                .copied()
                .filter(|w| !w.trim().is_empty())
                .unwrap_or("");
            prop_assert_eq!(e.why.as_str(), expected);
        }
    }

    // A second bless is a byte-for-byte no-op: re-rendering with the
    // just-parsed entries as the justification source changes nothing.
    #[test]
    fn orderings_bless_is_idempotent(input in sites_and_old()) {
        let (sites, old) = input;
        let first = manifest::render(&sites, &old);
        let mut findings = Vec::new();
        let parsed = manifest::parse_manifest(&first, &mut findings);
        prop_assert!(findings.is_empty(), "{findings:?}");
        let second = manifest::render(&sites, &parsed);
        prop_assert_eq!(first, second);
    }

    // Render → parse over ORDERING_VERDICTS.toml recovers every field.
    #[test]
    fn verdicts_parse_inverts_render(
        raw in proptest::collection::btree_map(
            site_key(),
            (0usize..VERDICT_KINDS.len(), 0u64..10_000, printable(), printable()),
            1..8,
        )
    ) {
        let entries: Vec<VerdictEntry> = raw
            .into_iter()
            .map(|(key, (kind, exercised, suites, detail))| VerdictEntry {
                key,
                verdict: VERDICT_KINDS[kind].to_string(),
                exercised,
                suites,
                detail,
                line: 0,
            })
            .collect();
        let text = verdicts::render_verdicts(&entries);
        let mut findings = Vec::new();
        let back = verdicts::parse_verdicts(&text, &mut findings);
        prop_assert!(findings.is_empty(), "{findings:?}");
        prop_assert_eq!(back.len(), entries.len());
        for (a, b) in entries.iter().zip(&back) {
            prop_assert_eq!(&a.key, &b.key);
            prop_assert_eq!(&a.verdict, &b.verdict);
            prop_assert_eq!(a.exercised, b.exercised);
            prop_assert_eq!(&a.suites, &b.suites);
            prop_assert_eq!(&a.detail, &b.detail);
        }
    }

    // MINIMIZE.toml blessing keeps one justified `[[keep]]` per
    // weakenable verdict and is idempotent.
    #[test]
    fn minimize_bless_preserves_whys_and_is_idempotent(
        raw in proptest::collection::btree_map(
            site_key(),
            (0usize..VERDICT_KINDS.len(), proptest::option::of(printable())),
            1..8,
        )
    ) {
        let mut vs = Vec::new();
        let mut old = Vec::new();
        for (key, (kind, why)) in raw {
            if let Some(why) = why {
                old.push(MinimizeEntry { key: key.clone(), why, line: 0 });
            }
            vs.push(VerdictEntry {
                key,
                verdict: VERDICT_KINDS[kind].to_string(),
                exercised: 1,
                suites: String::new(),
                detail: String::new(),
                line: 0,
            });
        }
        let first = verdicts::render_minimize(&vs, &old);
        let mut findings = Vec::new();
        let parsed = verdicts::parse_minimize(&first, &mut findings);
        prop_assert!(findings.is_empty(), "{findings:?}");

        let weak: Vec<&VerdictEntry> =
            vs.iter().filter(|v| v.verdict == "weakenable").collect();
        prop_assert_eq!(parsed.len(), weak.len());
        let whys: BTreeMap<&SiteKey, &str> =
            old.iter().map(|m| (&m.key, m.why.as_str())).collect();
        for m in &parsed {
            let expected = whys
                .get(&m.key)
                .copied()
                .filter(|w| !w.trim().is_empty())
                .unwrap_or("");
            prop_assert_eq!(m.why.as_str(), expected);
        }

        let second = verdicts::render_minimize(&vs, &parsed);
        prop_assert_eq!(first, second);
    }

    // Any LINT_ALLOW.toml entry with a known rule and a real
    // justification parses findings-free with every field intact.
    #[test]
    fn allowlist_parse_accepts_documented_format(
        raw in proptest::collection::vec(
            (
                field(),
                0usize..3,
                proptest::option::of(field()),
                printable(),
            ),
            1..8,
        )
    ) {
        const RULES: &[&str] = &["facade", "trace-gate", "unsafe-safety"];
        let mut text = String::from("# generated\n");
        for (file, rule, symbol, why) in &raw {
            text.push_str("\n[[allow]]\n");
            text.push_str(&format!("file = {}\n", quote(file)));
            text.push_str(&format!("rule = {}\n", quote(RULES[*rule])));
            if let Some(sym) = symbol {
                text.push_str(&format!("symbol = {}\n", quote(sym)));
            }
            // A justification the parser must not flag as empty/TODO.
            text.push_str(&format!("why = {}\n", quote(&format!("because {why}"))));
        }
        let mut findings = Vec::new();
        let allow = Allowlist::parse(&text, &mut findings);
        prop_assert!(findings.is_empty(), "{findings:?}");
        prop_assert_eq!(allow.entries.len(), raw.len());
        for (e, (file, rule, symbol, _)) in allow.entries.iter().zip(&raw) {
            prop_assert_eq!(&e.file, file);
            prop_assert_eq!(e.rule.as_str(), RULES[*rule]);
            prop_assert_eq!(&e.symbol, symbol);
        }
    }
}
