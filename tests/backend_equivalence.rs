//! Cross-crate integration for the pluggable deque substrate: Cilk and
//! AdaptiveTC produce the serial answer on every paper workload for every
//! [`DequeBackend`], including the lock-free Chase-Lev deque running the
//! special-task protocol.

use adaptivetc_suite::core::{serial, Config, DequeBackend};
use adaptivetc_suite::runtime::Scheduler;
use adaptivetc_suite::workloads::comp::Comp;
use adaptivetc_suite::workloads::fib::Fib;
use adaptivetc_suite::workloads::knights::KnightsTour;
use adaptivetc_suite::workloads::nqueens::{NqueensArray, NqueensCompute};
use adaptivetc_suite::workloads::pentomino::Pentomino;
use adaptivetc_suite::workloads::strimko::Strimko;
use adaptivetc_suite::workloads::sudoku::Sudoku;

fn check_backends<P>(problem: &P, label: &str)
where
    P: adaptivetc_suite::core::Problem<Out = u64>,
{
    let (expected, serial_report) = serial::run(problem);
    for backend in DequeBackend::ALL {
        for scheduler in [Scheduler::Cilk, Scheduler::AdaptiveTc] {
            for threads in [1, 4] {
                // A small max_stolen_num keeps the special-task path hot on
                // every workload, exercising pop_special vs steal races on
                // the lock-free backend too.
                let cfg = Config::new(threads)
                    .backend(backend)
                    .max_stolen_num(2)
                    .seed(13 + threads as u64);
                let (got, report) = scheduler.run(problem, &cfg).unwrap_or_else(|e| {
                    panic!("{label}/{scheduler}/{}/{threads}: {e}", backend.name())
                });
                assert_eq!(
                    got,
                    expected,
                    "{label}: {scheduler} on {} with {threads} threads",
                    backend.name()
                );
                assert_eq!(
                    report.stats.nodes,
                    serial_report.nodes,
                    "{label}: {scheduler} on {} with {threads} threads visited a different tree",
                    backend.name()
                );
                // Duplicate offers are the fence-free backend's private
                // cost; an exact backend reporting any means the claim
                // layer rejected an extraction that should not exist.
                if backend != DequeBackend::FenceFree {
                    assert_eq!(
                        report.stats.dup_extractions,
                        0,
                        "{label}: exact backend {} offered duplicates",
                        backend.name()
                    );
                }
            }
        }
    }
}

#[test]
fn nqueens_array() {
    check_backends(&NqueensArray::new(8), "nqueens-array(8)");
}

#[test]
fn nqueens_compute() {
    check_backends(&NqueensCompute::new(8), "nqueens-compute(8)");
}

#[test]
fn strimko_small() {
    let mut givens = vec![0u8; 25];
    for (c, g) in givens.iter_mut().take(5).enumerate() {
        *g = c as u8 + 1;
    }
    check_backends(&Strimko::linear(5, 1, 1, givens), "strimko(5x5)");
}

#[test]
fn knights_tour() {
    check_backends(&KnightsTour::new(5, 1, 2), "knights(5x5)");
}

#[test]
fn sudoku_balanced() {
    check_backends(&Sudoku::balanced(), "sudoku(balanced)");
}

#[test]
fn pentomino() {
    check_backends(&Pentomino::with_board(5, 5, 5), "pentomino(5)");
}

#[test]
fn fib() {
    check_backends(&Fib::new(18), "fib(18)");
}

#[test]
fn comp() {
    check_backends(&Comp::new(256, 3), "comp(256)");
}
