//! Differential validation of the event-tracing subsystem: the trace is
//! an independent witness of the run, so every count it implies must
//! equal the `RunStats` the engine accumulated — per worker and in
//! aggregate, for every deque backend and scheduling mode — and the
//! simulator's stream must diff exactly against the threaded engine's
//! over the shared schema at one thread.

#![cfg(feature = "trace")]

use adaptivetc_suite::core::{Config, CutoffPolicy, DequeBackend, WorkspacePolicy};
use adaptivetc_suite::runtime::Scheduler;
use adaptivetc_suite::sim::{simulate_traced, CostModel, Policy, SimTree};
use adaptivetc_suite::trace::{to_chrome_json, validate, TraceDiff};
use adaptivetc_suite::workloads::fig1::Fig1Tree;
use adaptivetc_suite::workloads::nqueens::NqueensArray;

/// The acceptance matrix: fig1 and nqueens across every deque backend,
/// thread counts with real stealing, and the schedulers that exercise
/// the distinct engine modes (including plain Cilk — tracing is not an
/// AdaptiveTC-only facility). Each cell runs twice: exhaustively
/// (`trace_sample(1)`, everything exact) and at the default
/// flight-recorder rate (hot categories become lower bounds, everything
/// unsampled must stay exact).
#[test]
fn trace_counts_equal_runstats() {
    let fig1 = Fig1Tree::new();
    let queens = NqueensArray::new(7);
    for scheduler in [
        Scheduler::AdaptiveTc,
        Scheduler::Cilk,
        Scheduler::CutoffLibrary,
    ] {
        for backend in DequeBackend::ALL {
            for threads in [1usize, 2, 4] {
                for sample in [1u32, Config::new(1).trace_sample] {
                    let cfg = Config::new(threads)
                        .trace(true)
                        .trace_sample(sample)
                        .backend(backend)
                        .max_stolen_num(2)
                        .seed(42 + threads as u64);
                    for (label, trace, report) in [
                        {
                            let (out, report, trace) = scheduler
                                .run_traced(&fig1, &cfg.clone().cutoff(CutoffPolicy::Fixed(2)))
                                .expect("fig1 run");
                            assert_eq!(out, Fig1Tree::LEAVES);
                            ("fig1", trace, report)
                        },
                        {
                            let (out, report, trace) =
                                scheduler.run_traced(&queens, &cfg).expect("nqueens run");
                            assert_eq!(out, 40, "nqueens(7) solutions");
                            ("nqueens", trace, report)
                        },
                    ] {
                        let trace = trace.expect("Config::trace is set");
                        assert_eq!(trace.workers.len(), threads);
                        assert_eq!(trace.total_dropped(), 0, "ring sized for the workload");
                        let mismatches = validate(&trace, &report);
                        assert!(
                            mismatches.is_empty(),
                            "{label}/{scheduler}/{}/{threads}t/sample {sample}:\n{}",
                            backend.name(),
                            mismatches
                                .iter()
                                .map(ToString::to_string)
                                .collect::<Vec<_>>()
                                .join("\n")
                        );
                    }
                }
            }
        }
    }
}

/// Copy-on-steal emits its own event family (`WsRequest`/`WsDeposit`/
/// `WsTake`/`CopySaved`); the count identities must survive the handshake.
#[test]
fn trace_counts_equal_runstats_copy_on_steal() {
    let queens = NqueensArray::new(7);
    let cfg = Config::new(4)
        .trace(true)
        .workspace(WorkspacePolicy::CopyOnSteal)
        .max_stolen_num(2)
        .seed(11);
    let (out, report, trace) = Scheduler::AdaptiveTc
        .run_traced(&queens, &cfg)
        .expect("nqueens run");
    assert_eq!(out, 40);
    let trace = trace.expect("Config::trace is set");
    let mismatches = validate(&trace, &report);
    assert!(
        mismatches.is_empty(),
        "{}",
        mismatches
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(
        report.stats.workspace_copies_saved > 0,
        "copy-on-steal must elide clones on this workload"
    );
}

/// Tracing stays opt-in: without `Config::trace` the engine runs
/// untraced and `run_traced` returns `None`.
#[test]
fn tracing_is_opt_in() {
    let fig1 = Fig1Tree::new();
    let (out, _, trace) = Scheduler::AdaptiveTc
        .run_traced(&fig1, &Config::new(2))
        .expect("fig1 run");
    assert_eq!(out, Fig1Tree::LEAVES);
    assert!(trace.is_none());
}

/// At one thread both engines are deterministic and emit the shared
/// schema with identical counts: the trace-vs-sim diff must be exact on
/// the paper's Figure 1 tree.
#[test]
fn fig1_trace_diff_real_vs_sim_is_exact() {
    let tree = Fig1Tree::new();
    // Exhaustive on the real side: the sim's virtual-time stream never
    // samples, so an exact diff needs the threaded run unsampled too.
    let cfg = Config::new(1)
        .trace(true)
        .trace_sample(1)
        .cutoff(CutoffPolicy::Fixed(2))
        .seed(42);
    let (out, _, real) = Scheduler::AdaptiveTc
        .run_traced(&tree, &cfg)
        .expect("fig1 run");
    assert_eq!(out, Fig1Tree::LEAVES);
    let real = real.expect("Config::trace is set");

    let sim_tree = SimTree::from_problem(&tree);
    let (sim_out, sim) =
        simulate_traced(&sim_tree, Policy::AdaptiveTc, &cfg, CostModel::calibrated());
    assert_eq!(sim_out.leaves, Fig1Tree::LEAVES);
    let sim = sim.expect("Config::trace is set");

    let diff = TraceDiff::compare(&real, &sim);
    assert!(diff.is_exact(), "\n{}", diff.render());
}

/// The Chrome export of a real multi-threaded run is structurally valid
/// JSON with one metadata record per worker thread.
#[test]
fn chrome_export_of_nqueens_run() {
    let queens = NqueensArray::new(7);
    let cfg = Config::new(4).trace(true).max_stolen_num(2).seed(5);
    let (_, _, trace) = Scheduler::AdaptiveTc
        .run_traced(&queens, &cfg)
        .expect("nqueens run");
    let trace = trace.expect("Config::trace is set");
    let json = to_chrome_json(&trace);
    assert!(json.starts_with('{') && json.trim_end().ends_with('}'));
    assert!(json.contains("\"traceEvents\""));
    assert!(json.contains("\"displayTimeUnit\":\"ns\""));
    for w in 0..4 {
        assert!(
            json.contains(&format!("\"name\":\"worker {w}\"")),
            "missing thread_name metadata for worker {w}"
        );
    }
}
