//! Cross-crate integration: every scheduler (threaded and simulated)
//! produces the serial answer on every workload.

use adaptivetc_suite::core::{serial, Config};
use adaptivetc_suite::runtime::Scheduler;
use adaptivetc_suite::sim::{simulate, CostModel, Policy, SimTree};
use adaptivetc_suite::workloads::comp::Comp;
use adaptivetc_suite::workloads::fib::Fib;
use adaptivetc_suite::workloads::knights::KnightsTour;
use adaptivetc_suite::workloads::nqueens::{NqueensArray, NqueensCompute};
use adaptivetc_suite::workloads::pentomino::Pentomino;
use adaptivetc_suite::workloads::strimko::Strimko;
use adaptivetc_suite::workloads::sudoku::Sudoku;
use adaptivetc_suite::workloads::tree::UnbalancedTree;

fn schedulers() -> Vec<Scheduler> {
    vec![
        Scheduler::Cilk,
        Scheduler::CilkSynched,
        Scheduler::Tascell,
        Scheduler::CutoffProgrammer(2),
        Scheduler::CutoffLibrary,
        Scheduler::AdaptiveTc,
    ]
}

fn check_all<P>(problem: &P, label: &str)
where
    P: adaptivetc_suite::core::Problem<Out = u64>,
{
    let (expected, serial_report) = serial::run(problem);
    for scheduler in schedulers() {
        for threads in [1, 2, 4] {
            let cfg = Config::new(threads).seed(42 + threads as u64);
            let (got, report) = scheduler
                .run(problem, &cfg)
                .unwrap_or_else(|e| panic!("{label}/{scheduler}/{threads}: {e}"));
            assert_eq!(got, expected, "{label}: {scheduler} with {threads} threads");
            assert_eq!(
                report.stats.nodes, serial_report.nodes,
                "{label}: {scheduler} with {threads} threads visited a different tree"
            );
        }
    }
    // Simulated policies visit every leaf too.
    let tree = SimTree::from_problem(problem);
    for policy in [
        Policy::Cilk,
        Policy::CilkSynched,
        Policy::CutoffProgrammer(2),
        Policy::CutoffLibrary,
        Policy::AdaptiveTc,
        Policy::Tascell,
    ] {
        for threads in [1, 3, 8] {
            let out = simulate(
                &tree,
                policy,
                &Config::new(threads),
                CostModel::calibrated(),
            );
            assert_eq!(
                out.leaves,
                tree.leaf_count(),
                "{label}: simulated {} with {threads} workers",
                policy.name()
            );
        }
    }
}

#[test]
fn nqueens_array() {
    check_all(&NqueensArray::new(8), "nqueens-array(8)");
}

#[test]
fn nqueens_compute() {
    check_all(&NqueensCompute::new(8), "nqueens-compute(8)");
}

#[test]
fn strimko_small() {
    // A 5×5 instance keeps the integration test quick.
    let mut givens = vec![0u8; 25];
    for (c, g) in givens.iter_mut().take(5).enumerate() {
        *g = c as u8 + 1;
    }
    check_all(&Strimko::linear(5, 1, 1, givens), "strimko(5x5)");
}

#[test]
fn knights_tour() {
    check_all(&KnightsTour::new(5, 1, 2), "knights(5x5)");
}

#[test]
fn sudoku_balanced() {
    check_all(&Sudoku::balanced(), "sudoku(balanced)");
}

#[test]
fn pentomino() {
    check_all(&Pentomino::with_board(5, 5, 5), "pentomino(5)");
}

#[test]
fn fib() {
    check_all(&Fib::new(18), "fib(18)");
}

#[test]
fn comp() {
    check_all(&Comp::new(256, 3), "comp(256)");
}

#[test]
fn unbalanced_tree_left_and_right() {
    check_all(&UnbalancedTree::tree3(30_000), "tree3L(30k)");
    check_all(&UnbalancedTree::tree3(30_000).reversed(), "tree3R(30k)");
}

/// Differential test on the shared Figure 1 call tree: at one thread the
/// threaded engine is deterministic (no thieves), so its task-accounting
/// counters — real tasks, fake tasks, special tasks — must agree *exactly*
/// with the discrete-event simulator's, for every deque backend. Any drift
/// between the two engines' task-creation logic shows up here first.
#[test]
fn fig1_engine_matches_simulator_exactly() {
    use adaptivetc_suite::core::{CutoffPolicy, DequeBackend};
    use adaptivetc_suite::workloads::fig1::Fig1Tree;

    let tree = Fig1Tree::new();
    let sim_tree = SimTree::from_problem(&tree);
    for (scheduler, policy) in [
        (Scheduler::Cilk, Policy::Cilk),
        (Scheduler::AdaptiveTc, Policy::AdaptiveTc),
        (Scheduler::Tascell, Policy::Tascell),
    ] {
        let cfg = Config::new(1).cutoff(CutoffPolicy::Fixed(2)).seed(42);
        let sim = simulate(&sim_tree, policy, &cfg, CostModel::calibrated());
        assert_eq!(sim.leaves, Fig1Tree::LEAVES, "sim {}", policy.name());
        for backend in DequeBackend::ALL {
            let cfg = cfg.clone().backend(backend);
            let (out, report) = scheduler
                .run(&tree, &cfg)
                .unwrap_or_else(|e| panic!("fig1/{scheduler}/{}: {e}", backend.name()));
            assert_eq!(out, Fig1Tree::LEAVES, "{scheduler}/{}", backend.name());
            for (name, engine, simulated) in [
                (
                    "tasks_created",
                    report.stats.tasks_created,
                    sim.report.stats.tasks_created,
                ),
                (
                    "fake_tasks",
                    report.stats.fake_tasks,
                    sim.report.stats.fake_tasks,
                ),
                (
                    "special_tasks",
                    report.stats.special_tasks,
                    sim.report.stats.special_tasks,
                ),
            ] {
                assert_eq!(
                    engine,
                    simulated,
                    "fig1: {scheduler} ({}) vs simulated {}: {name} diverged",
                    backend.name(),
                    policy.name()
                );
            }
        }
    }
}
