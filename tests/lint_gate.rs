//! Tier-1 gate: the concurrency-invariant analyzer must report a clean
//! tree. This is the same engine as `cargo run -p adaptivetc-lint`, run in
//! the test suite so a facade leak, an unaudited memory ordering, a bare
//! `unsafe` or an ungated hot-path clock read fails `cargo test` with a
//! `file:line` diagnostic — not just CI.

use std::path::Path;

#[test]
fn workspace_passes_the_concurrency_lint() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let findings = adaptivetc_lint::analyze(root).expect("workspace is analyzable");
    assert!(
        findings.is_empty(),
        "adaptivetc-lint found {} violation(s):\n{}\n\
         (if an ordering changed intentionally, run \
         `cargo run -p adaptivetc-lint -- --bless` and justify the new entry)",
        findings.len(),
        findings
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}
