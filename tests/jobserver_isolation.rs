//! Multi-job isolation: jobs running concurrently on one `JobServer` must
//! be indistinguishable — in results *and* in per-slot statistics — from
//! the same problems run solo through `Scheduler`.
//!
//! The structural argument (each job owns a private engine region: its own
//! deques, signals, root frame and `RunStats`) predicts *bit-identical*
//! counters for single-slot jobs: the job's one worker consumes the same
//! seeded RNG stream as a solo one-thread run, so any divergence means
//! state leaked between jobs. Multi-slot (work-sharing) jobs have
//! scheduling-dependent counters, so they are checked against the serial
//! reference for results and node conservation instead.

use adaptivetc_suite::core::{
    serial, Config, CutoffPolicy, DequeBackend, Expansion, Problem, RunReport,
};
use adaptivetc_suite::runtime::{JobOutcome, JobServer, Mode, Priority, Scheduler, ServerConfig};
use proptest::prelude::*;

/// A tree defined by explicit child lists whose leaves reduce a hash of
/// the full root path — the same cross-job leak oracle the copy-on-steal
/// property tests use: any frame executed in the wrong job's workspace
/// (or twice, or not at all) shifts the reduced value.
#[derive(Debug, Clone)]
struct PathHashTree {
    children: Vec<Vec<u32>>,
}

impl Problem for PathHashTree {
    type State = Vec<u32>;
    type Choice = u32;
    type Out = u64;
    fn root(&self) -> Vec<u32> {
        vec![0]
    }
    fn expand(&self, path: &Vec<u32>, _d: u32) -> Expansion<u32, u64> {
        let node = *path.last().expect("never empty") as usize;
        if self.children[node].is_empty() {
            Expansion::Leaf(
                path.iter()
                    .fold(1u64, |a, &n| a.wrapping_mul(31).wrapping_add(u64::from(n)))
                    % 1_048_573,
            )
        } else {
            Expansion::Children(self.children[node].clone())
        }
    }
    fn apply(&self, path: &mut Vec<u32>, c: u32) {
        path.push(c);
    }
    fn undo(&self, path: &mut Vec<u32>, _c: u32) {
        path.pop();
    }
}

/// Deterministic pseudo-random tree (xorshift parent choice), so the
/// exhaustive backend × pool-size matrix below needs no proptest driver.
fn fixed_tree(nodes: usize, mut seed: u64) -> PathHashTree {
    let mut children = vec![Vec::new(); nodes];
    for node in 1..nodes {
        seed ^= seed << 13;
        seed ^= seed >> 7;
        seed ^= seed << 17;
        let parent = (seed as usize) % node;
        children[parent].push(node as u32);
    }
    PathHashTree { children }
}

/// Random tree as a parent-pointer forest rooted at 0 (proptest driver).
fn tree_strategy(max_nodes: usize) -> impl Strategy<Value = PathHashTree> {
    (2..max_nodes).prop_flat_map(|n| {
        proptest::collection::vec(0..u32::MAX, n - 1).prop_map(move |parents| {
            let mut children = vec![Vec::new(); n];
            for (i, p) in parents.into_iter().enumerate() {
                let node = (i + 1) as u32;
                let parent = (p as usize) % (i + 1);
                children[parent].push(node);
            }
            PathHashTree { children }
        })
    })
}

/// Unwrap a completed outcome.
fn completed(outcome: JobOutcome<u64>) -> (u64, RunReport) {
    match outcome {
        JobOutcome::Completed { out, report } => (out, report),
        JobOutcome::Cancelled { .. } => panic!("job was never cancelled"),
    }
}

/// Assert a job's report matches a solo run's bit-for-bit, ignoring only
/// the wall clock.
fn assert_bit_identical(ctx: &str, job: &RunReport, solo: &RunReport) {
    assert_eq!(job.threads, solo.threads, "{ctx}: slot count diverged");
    assert_eq!(
        job.per_worker, solo.per_worker,
        "{ctx}: per-slot stats diverged from the solo run"
    );
    assert_eq!(
        job.stats, solo.stats,
        "{ctx}: aggregate stats diverged from the solo run"
    );
}

/// The acceptance matrix: every deque backend × pool sizes 1/2/4, three
/// concurrent single-slot jobs per cell, each bit-identical to its solo
/// run.
#[test]
fn concurrent_jobs_match_solo_runs_on_every_backend() {
    let trees: Vec<PathHashTree> = (0..3)
        .map(|i| fixed_tree(120 + 40 * i, 11 + i as u64))
        .collect();
    for backend in DequeBackend::ALL {
        for workers in [1usize, 2, 4] {
            // Solo references, one per job, run the same seeded config.
            let solo: Vec<(u64, RunReport)> = trees
                .iter()
                .enumerate()
                .map(|(i, t)| {
                    let cfg = Config::new(1)
                        .backend(backend)
                        .cutoff(CutoffPolicy::Auto)
                        .seed(i as u64);
                    Scheduler::AdaptiveTc.run(t, &cfg).expect("solo run")
                })
                .collect();
            let server = JobServer::new(ServerConfig::new(workers));
            let handles: Vec<_> = trees
                .iter()
                .enumerate()
                .map(|(i, t)| {
                    let cfg = Config::new(1)
                        .backend(backend)
                        .cutoff(CutoffPolicy::Auto)
                        .seed(i as u64);
                    server
                        .submit(t.clone(), cfg, Mode::Adaptive, Priority::Normal)
                        .expect("submission accepted")
                })
                .collect();
            for (i, h) in handles.into_iter().enumerate() {
                let ctx = format!("{} workers={workers} job={i}", backend.name());
                let (out, report) = completed(h.wait());
                assert_eq!(out, solo[i].0, "{ctx}: result diverged");
                assert_bit_identical(&ctx, &report, &solo[i].1);
            }
            let stats = server.shutdown().stats;
            assert_eq!(stats.completed, trees.len() as u64);
            assert_eq!(stats.cancelled, 0);
        }
    }
}

/// Work-sharing jobs (multiple slots) have nondeterministic steal splits,
/// but results and node conservation must still hold on every backend.
#[test]
fn work_sharing_jobs_reduce_correctly_on_every_backend() {
    let tree = fixed_tree(400, 5);
    let (expected, sref) = serial::run(&tree);
    for backend in DequeBackend::ALL {
        let server = JobServer::new(ServerConfig::new(4).work_sharing(true));
        let handles: Vec<_> = (0..3)
            .map(|i| {
                let cfg = Config::new(4)
                    .backend(backend)
                    .cutoff(CutoffPolicy::Auto)
                    .seed(i as u64);
                server
                    .submit(tree.clone(), cfg, Mode::Adaptive, Priority::Normal)
                    .expect("submission accepted")
            })
            .collect();
        for h in handles {
            let (out, report) = completed(h.wait());
            assert_eq!(out, expected, "{}: result diverged", backend.name());
            assert_eq!(
                report.stats.nodes,
                sref.nodes,
                "{}: node conservation broken",
                backend.name()
            );
        }
        server.shutdown();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    // Random trees, random pool sizes: three concurrent copies of the
    // same job stay bit-identical to the solo run — and to each other.
    #[test]
    fn random_concurrent_jobs_stay_isolated(
        tree in tree_strategy(250),
        workers in 1usize..5,
        backend_idx in 0usize..DequeBackend::ALL.len(),
        seed in 0u64..50,
    ) {
        let backend = DequeBackend::ALL[backend_idx];
        let cfg = Config::new(1)
            .backend(backend)
            .cutoff(CutoffPolicy::Auto)
            .seed(seed);
        let (expected, _) = serial::run(&tree);
        let (solo_out, solo_report) =
            Scheduler::AdaptiveTc.run(&tree, &cfg).expect("solo run");
        prop_assert_eq!(solo_out, expected);
        let server = JobServer::new(ServerConfig::new(workers));
        let handles: Vec<_> = (0..3)
            .map(|_| {
                server
                    .submit(tree.clone(), cfg.clone(), Mode::Adaptive, Priority::Normal)
                    .expect("submission accepted")
            })
            .collect();
        for h in handles {
            let (out, report) = completed(h.wait());
            prop_assert_eq!(out, solo_out, "result diverged from the solo run");
            prop_assert_eq!(&report.per_worker, &solo_report.per_worker);
            prop_assert_eq!(&report.stats, &solo_report.stats);
        }
        server.shutdown();
    }
}
