//! Job server: submit a stream of independent searches to one persistent
//! worker pool instead of spinning threads up per call.
//!
//! Shows the whole handle lifecycle — priorities overtaking each other in
//! the queue, a cooperative mid-flight cancellation, non-blocking polling
//! with `try_result`, and the server's own accounting at shutdown.
//!
//! ```text
//! cargo run --release --example job_server
//! ```

use adaptivetc_suite::core::Config;
use adaptivetc_suite::runtime::{JobOutcome, JobServer, Mode, Priority, ServerConfig};
use adaptivetc_suite::workloads::nqueens::NqueensArray;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workers = std::thread::available_parallelism()?.get().min(4);
    // One pool for the whole program: `workers` threads, a bounded
    // submission queue, and work sharing so multi-slot jobs may spread
    // across idle pool workers.
    let server = JobServer::new(
        ServerConfig::new(workers)
            .queue_capacity(16)
            .work_sharing(true),
    );

    println!("job server with {workers} pool workers\n");

    // A low-priority batch submitted first ...
    let batch: Vec<_> = (6..=8)
        .map(|n| {
            server
                .submit(
                    NqueensArray::new(n),
                    Config::new(1).seed(n as u64),
                    Mode::Adaptive,
                    Priority::Low,
                )
                .map_err(|e| format!("submit {n}-queens: {e}"))
        })
        .collect::<Result<_, _>>()?;

    // ... is overtaken in the queue by an urgent multi-slot job: priority
    // lanes are claimed strictly High before Normal before Low.
    let urgent = server
        .submit(
            NqueensArray::new(10),
            Config::new(workers).seed(42),
            Mode::Adaptive,
            Priority::High,
        )
        .map_err(|e| format!("submit urgent job: {e}"))?;

    // A job we change our mind about. Cancellation is cooperative: if it
    // already started, the engine notices at its next poll point and
    // returns the partial statistics gathered so far.
    let doomed = server
        .submit(
            NqueensArray::new(12),
            Config::new(1).seed(7),
            Mode::Adaptive,
            Priority::Normal,
        )
        .map_err(|e| format!("submit doomed job: {e}"))?;
    let cancel = doomed.cancel();
    println!("cancelled the 12-queens job: {cancel:?}");
    match doomed.wait() {
        JobOutcome::Cancelled { report: None } => {
            println!("  it never ran — cancelled while still queued")
        }
        JobOutcome::Cancelled { report: Some(r) } => {
            println!("  it was pruned mid-flight after {} nodes", r.stats.nodes)
        }
        JobOutcome::Completed { .. } => {
            println!("  too late — it finished before the request landed")
        }
    }

    // Poll the urgent handle without blocking, then wait for the rest.
    let urgent = match urgent.try_result() {
        Ok(outcome) => outcome,
        Err(handle) => {
            println!("urgent job still in flight, blocking on it ...");
            handle.wait()
        }
    };
    if let JobOutcome::Completed { out, report } = urgent {
        println!(
            "urgent 10-queens: {out} solutions on {} slots ({} tasks, {} steals, {:.1} ms)\n",
            report.threads,
            report.stats.tasks_created,
            report.stats.steals_ok,
            report.wall_ns as f64 / 1e6,
        );
    }
    for (n, h) in (6..=8).zip(batch) {
        // `latency()` is `None` until the job is terminal (and `wait`
        // consumes the handle), so poll it to completion first.
        let latency = loop {
            match h.latency() {
                Some(l) => break l,
                None => std::thread::yield_now(),
            }
        };
        if let JobOutcome::Completed { out, .. } = h.wait() {
            println!("{n}-queens: {out:>4} solutions  (submit-to-terminal {latency:?})");
        }
    }

    // Shutdown drains the queue to terminal states and joins the pool;
    // the counters must balance: submitted == completed + cancelled.
    let stats = server.shutdown().stats;
    println!(
        "\nserver: {} submitted = {} completed + {} cancelled ({} rejected)",
        stats.submitted, stats.completed, stats.cancelled, stats.rejected,
    );
    Ok(())
}
