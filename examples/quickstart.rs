//! Quickstart: run one benchmark under every scheduler and compare the
//! scheduling statistics the paper is about.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use adaptivetc_suite::core::Config;
use adaptivetc_suite::runtime::Scheduler;
use adaptivetc_suite::workloads::nqueens::NqueensArray;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let queens = NqueensArray::new(10);
    let threads = std::thread::available_parallelism()?.get().min(8);
    let cfg = Config::new(threads);

    println!("10-queens on {threads} threads — who creates how many tasks?\n");
    println!(
        "{:<22} {:>10} {:>12} {:>10} {:>10} {:>12} {:>10}",
        "scheduler", "solutions", "tasks", "fake", "special", "copies", "steals"
    );
    for scheduler in [
        Scheduler::Serial,
        Scheduler::Cilk,
        Scheduler::CilkSynched,
        Scheduler::Tascell,
        Scheduler::CutoffProgrammer(3),
        Scheduler::CutoffLibrary,
        Scheduler::AdaptiveTc,
    ] {
        let (solutions, report) = scheduler.run(&queens, &cfg)?;
        let s = &report.stats;
        println!(
            "{:<22} {:>10} {:>12} {:>10} {:>10} {:>12} {:>10}",
            scheduler.to_string(),
            solutions,
            s.tasks_created,
            s.fake_tasks,
            s.special_tasks,
            s.copies,
            s.steals_ok
        );
    }
    println!(
        "\nThe paper's core claim in one table: AdaptiveTC answers the same\n\
         question with orders of magnitude fewer tasks and workspace copies\n\
         than Cilk, while still feeding idle threads (unlike a fixed cut-off)."
    );
    Ok(())
}
