//! Explore dynamic load balancing on the paper's synthetic unbalanced trees
//! (Table 3 / Figure 10) using the deterministic simulator.
//!
//! ```text
//! cargo run --release --example unbalanced_trees
//! cargo run --release --example unbalanced_trees -- 500000   # tree size
//! ```

use adaptivetc_suite::core::Config;
use adaptivetc_suite::sim::{serial_wall_ns, simulate, CostModel, Policy, SimTree};
use adaptivetc_suite::workloads::tree::UnbalancedTree;

fn main() {
    let total: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(200_000);

    let cost = CostModel::calibrated();
    println!(
        "simulated speedup over the serial baseline ({total}-node trees, 8 virtual workers)\n"
    );
    println!(
        "{:<10} {:>12} {:>12} {:>12}",
        "tree", "Cilk-SYN", "Tascell", "AdaptiveTC"
    );

    // The paper sets each node's execution time to the average task time of
    // its Figure 4 benchmarks — large relative to scheduling overhead.
    let work = 16;
    for (name, tree) in [
        ("Tree1L", UnbalancedTree::tree1(total).work(work)),
        ("Tree1R", UnbalancedTree::tree1(total).work(work).reversed()),
        ("Tree2L", UnbalancedTree::tree2(total).work(work)),
        ("Tree2R", UnbalancedTree::tree2(total).work(work).reversed()),
        ("Tree3L", UnbalancedTree::tree3(total).work(work)),
        ("Tree3R", UnbalancedTree::tree3(total).work(work).reversed()),
    ] {
        let flat = SimTree::from_problem(&tree);
        let serial = serial_wall_ns(&flat, &cost) as f64;
        let cfg = Config::new(8);
        let mut row = format!("{name:<10}");
        for policy in [Policy::CilkSynched, Policy::Tascell, Policy::AdaptiveTc] {
            let out = simulate(&flat, policy, &cfg, cost);
            assert_eq!(out.leaves, flat.leaf_count(), "work conservation");
            row.push_str(&format!(" {:>11.2}x", serial / out.wall_ns as f64));
        }
        println!("{row}");
    }
    println!(
        "\nExpected shape (paper §5.3.2): Cilk barely notices the tree's\n\
         orientation; Tascell collapses on right-heavy trees (its first\n\
         worker waits on children instead of working); AdaptiveTC sits in\n\
         between, closer to Cilk."
    );
}
