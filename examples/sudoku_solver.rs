//! Count all solutions of a Sudoku grid with the AdaptiveTC scheduler.
//!
//! ```text
//! cargo run --release --example sudoku_solver                # built-in balanced puzzle
//! cargo run --release --example sudoku_solver -- input1      # named unbalanced instance
//! cargo run --release --example sudoku_solver -- <81 chars>  # your own grid ('.' = empty)
//! ```

use adaptivetc_suite::core::treeinfo::TreeInfo;
use adaptivetc_suite::core::Config;
use adaptivetc_suite::runtime::Scheduler;
use adaptivetc_suite::workloads::sudoku::Sudoku;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let arg = std::env::args().nth(1);
    let puzzle = match arg.as_deref() {
        None | Some("balanced") => Sudoku::balanced(),
        Some("input1") => Sudoku::input1(),
        Some("input2") => Sudoku::input2(),
        Some(grid) => grid.parse()?,
    };
    println!("clues: {}", puzzle.clue_count());

    let info = TreeInfo::measure(&puzzle);
    println!(
        "search tree: {} nodes, {} leaves, depth {}",
        info.size, info.leaves, info.depth
    );
    let shares = info.depth1_percent();
    let head: Vec<String> = shares.iter().take(8).map(|p| format!("{p:.2}%")).collect();
    println!("depth-1 subtree shares: {}", head.join(", "));

    let threads = std::thread::available_parallelism()?.get().min(8);
    let (solutions, report) = Scheduler::AdaptiveTc.run(&puzzle, &Config::new(threads))?;
    println!(
        "\n{} solutions found on {} threads in {:.1} ms",
        solutions,
        threads,
        report.wall_ns as f64 / 1e6
    );
    println!(
        "tasks created: {} (vs {} tree nodes — the adaptive cut-off at work)",
        report.stats.tasks_created, report.stats.nodes
    );
    println!(
        "workspace copies: {} ({} bytes)",
        report.stats.copies, report.stats.copy_bytes
    );
    Ok(())
}
