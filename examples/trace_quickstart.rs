//! The README's tracing quick-start: record a 4-thread n-queens run,
//! export it for chrome://tracing / Perfetto, and print the provenance
//! and dwell summaries derived from the same stream.
//!
//! Run with `cargo run --release --example trace_quickstart`.

#[cfg(feature = "trace")]
fn main() -> Result<(), Box<dyn std::error::Error>> {
    use adaptivetc_suite::core::Config;
    use adaptivetc_suite::runtime::Scheduler;
    use adaptivetc_suite::trace::{dwell_times, to_chrome_json, StealTree};
    use adaptivetc_suite::workloads::nqueens::NqueensArray;

    let queens = NqueensArray::new(10);
    let cfg = Config::new(4).trace(true); // tracing is opt-in per run
    let (solutions, report, trace) = Scheduler::AdaptiveTc.run_traced(&queens, &cfg)?;
    let trace = trace.expect("Config::trace was set");
    std::fs::write("trace_nqueens.json", to_chrome_json(&trace))?;

    let steals = StealTree::build(&trace); // who stole from whom, at what depth
    let dwell = dwell_times(&trace); // per-worker work/special/sync/slow ns
    println!(
        "{solutions} solutions, {} tasks, {} steal edges, w0 work {} ns",
        report.stats.tasks_created,
        steals.edges.len(),
        dwell[0].work_ns
    );
    println!("wrote trace_nqueens.json — open it in chrome://tracing");
    Ok(())
}

#[cfg(not(feature = "trace"))]
fn main() {
    eprintln!("rebuild with the default `trace` feature to run this example");
}
