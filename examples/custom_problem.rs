//! Bring your own workload: implement `Problem` for a subset-sum counter
//! and run it under every scheduler, then through the simulator.
//!
//! The problem: how many subsets of a set of weights sum exactly to a
//! target? The taskprivate workspace is the running sum plus an index —
//! tiny, like the paper's Fib — so this is a "no definitive working set"
//! workload where AdaptiveTC's reduced task creation shines.
//!
//! ```text
//! cargo run --release --example custom_problem
//! ```

use adaptivetc_suite::core::{Config, Expansion, Problem};
use adaptivetc_suite::runtime::Scheduler;
use adaptivetc_suite::sim::{simulate, CostModel, Policy, SimTree};

/// Count subsets of `weights` that sum to `target`.
struct SubsetSum {
    weights: Vec<u32>,
    target: u32,
}

/// Workspace: next index to decide, and the sum so far.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Partial {
    index: u8,
    sum: u32,
}

impl Problem for SubsetSum {
    type State = Partial;
    /// `true` = include `weights[index]`, `false` = skip it.
    type Choice = bool;
    type Out = u64;

    fn root(&self) -> Partial {
        Partial { index: 0, sum: 0 }
    }

    fn expand(&self, st: &Partial, _depth: u32) -> Expansion<bool, u64> {
        if usize::from(st.index) == self.weights.len() {
            return Expansion::Leaf(u64::from(st.sum == self.target));
        }
        if st.sum > self.target {
            return Expansion::Leaf(0); // prune: weights are positive
        }
        Expansion::Children(vec![true, false])
    }

    fn apply(&self, st: &mut Partial, include: bool) {
        if include {
            st.sum += self.weights[usize::from(st.index)];
        }
        st.index += 1;
    }

    fn undo(&self, st: &mut Partial, include: bool) {
        st.index -= 1;
        if include {
            st.sum -= self.weights[usize::from(st.index)];
        }
    }

    fn state_bytes(&self, _: &Partial) -> usize {
        0 // no taskprivate arrays, like Fib/Comp
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let problem = SubsetSum {
        weights: (1..=24).map(|i| (i * 7 + 3) % 29 + 1).collect(),
        target: 120,
    };

    println!("subset-sum: 24 items, target 120\n");
    let threads = std::thread::available_parallelism()?.get().min(8);
    for scheduler in [Scheduler::Serial, Scheduler::Cilk, Scheduler::AdaptiveTc] {
        let (count, report) = scheduler.run(&problem, &Config::new(threads))?;
        println!(
            "{:<12} count={} tasks={} wall={:.1}ms",
            scheduler.to_string(),
            count,
            report.stats.tasks_created,
            report.wall_ns as f64 / 1e6
        );
    }

    // The same problem through the simulator: projected 8-worker speedups.
    let tree = SimTree::from_problem(&problem);
    println!("\nsimulated 8-worker speedup over 1 worker:");
    for policy in [Policy::Cilk, Policy::Tascell, Policy::AdaptiveTc] {
        let t1 = simulate(&tree, policy, &Config::new(1), CostModel::calibrated()).wall_ns;
        let t8 = simulate(&tree, policy, &Config::new(8), CostModel::calibrated()).wall_ns;
        println!("  {:<14} {:.2}x", policy.name(), t1 as f64 / t8 as f64);
    }
    Ok(())
}
