//! Offline shim for the subset of `crossbeam-utils` this workspace uses:
//! [`CachePadded`]. See `vendor/parking_lot` for why the workspace vendors
//! its external dependencies.

#![warn(missing_docs)]

use std::fmt;
use std::ops::{Deref, DerefMut};

/// Pads and aligns a value to the length of a cache line, preventing false
/// sharing between adjacent atomics.
///
/// 128 bytes covers the spatial-prefetcher pair of 64-byte lines on x86-64
/// and the 128-byte lines of apple-silicon aarch64 — the same choice the
/// real crate makes for these targets.
#[derive(Clone, Copy, Default, PartialEq, Eq)]
#[repr(align(128))]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    /// Pad `value` to a cache line.
    pub const fn new(value: T) -> Self {
        CachePadded { value }
    }

    /// Consume the padding wrapper, returning the inner value.
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> Deref for CachePadded<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

impl<T: fmt::Debug> fmt::Debug for CachePadded<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CachePadded")
            .field("value", &self.value)
            .finish()
    }
}

impl<T> From<T> for CachePadded<T> {
    fn from(value: T) -> Self {
        CachePadded::new(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aligned_to_128() {
        assert_eq!(std::mem::align_of::<CachePadded<u8>>(), 128);
        let p = CachePadded::new(7u64);
        assert_eq!(*p, 7);
        assert_eq!(p.into_inner(), 7);
    }
}
