//! Offline shim for the subset of `parking_lot` this workspace uses.
//!
//! The build container has no access to crates.io, so the workspace vendors
//! the external API surface it needs as thin wrappers over `std::sync`.
//! Semantics match `parking_lot` where they differ from `std`:
//!
//! * [`Mutex::lock`] returns the guard directly (no poisoning `Result`);
//!   a poisoned `std` mutex is transparently un-poisoned, matching
//!   `parking_lot`'s poison-free behaviour.
//! * [`Condvar::wait`] takes the guard by `&mut` rather than by value.
//!
//! Performance differs from the real crate (std mutexes are futex-based on
//! Linux, so the gap is small); correctness-sensitive code in this
//! workspace relies only on the semantics above.

#![warn(missing_docs)]

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{self, TryLockError};

/// A mutual exclusion primitive (no poisoning), wrapping [`std::sync::Mutex`].
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so `Condvar::wait` can temporarily take the std guard out
    // while the thread is parked; it is `Some` at all other times.
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Create a mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(
                self.inner
                    .lock()
                    .unwrap_or_else(sync::PoisonError::into_inner),
            ),
        }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard taken only during wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard taken only during wait")
    }
}

/// A condition variable, wrapping [`std::sync::Condvar`] with
/// `parking_lot`'s `&mut`-guard API.
#[derive(Debug, Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    /// Block until notified, atomically releasing the guarded mutex.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.inner.take().expect("guard is live");
        let std_guard = self
            .inner
            .wait(std_guard)
            .unwrap_or_else(sync::PoisonError::into_inner);
        guard.inner = Some(std_guard);
    }

    /// Block until notified or `timeout` elapses, atomically releasing the
    /// guarded mutex. Spurious wakeups are possible, as with `wait`.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: std::time::Duration,
    ) -> WaitTimeoutResult {
        let std_guard = guard.inner.take().expect("guard is live");
        let (std_guard, res) = self
            .inner
            .wait_timeout(std_guard, timeout)
            .unwrap_or_else(sync::PoisonError::into_inner);
        guard.inner = Some(std_guard);
        WaitTimeoutResult {
            timed_out: res.timed_out(),
        }
    }

    /// Wake one waiting thread.
    pub fn notify_one(&self) -> bool {
        self.inner.notify_one();
        true
    }

    /// Wake all waiting threads.
    pub fn notify_all(&self) -> usize {
        self.inner.notify_all();
        0
    }
}

/// Whether a [`Condvar::wait_for`] returned because the timeout elapsed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// `true` if the wait ended by timeout rather than notification.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        std::thread::scope(|s| {
            s.spawn(move || {
                let (m, cv) = &*p2;
                *m.lock() = true;
                cv.notify_all();
            });
            let (m, cv) = &*pair;
            let mut g = m.lock();
            while !*g {
                cv.wait(&mut g);
            }
        });
    }
}
