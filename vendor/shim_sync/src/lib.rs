//! Bounded schedule exploration for concurrent code, vendored offline in
//! the spirit of `loom` and CHESS-style stateless model checkers.
//!
//! Code under test is ported onto the model primitives in [`sync`] and
//! [`thread`]; [`explore`] then re-executes a closure under every thread
//! interleaving reachable within a preemption bound, panicking with a
//! replayable schedule trace on the first assertion failure, deadlock, or
//! livelock. See `crates/check` in this workspace for the harness that
//! applies it to the deque protocols, and DESIGN.md §8 for scope and
//! limitations. Interleavings are sequentially consistent by default;
//! [`Config::tso`] switches on an x86-TSO store-buffer model so that
//! fence-removal bugs (store buffering) become reachable violations.
//!
//! [`Config::check_races`] additionally maintains a vector-clock
//! happens-before relation (module [`hb`], FastTrack-style) and reports
//! data races on plain accesses through [`sync::RaceCell`] even when no
//! assertion fires; [`Config::overrides`] substitutes per-site candidate
//! memory orderings ([`OverrideSet`]) for the ordering-minimization
//! audit. See DESIGN.md §16.
//!
//! ```
//! let report = shim_sync::explore(shim_sync::Config::default(), || {
//!     let flag = std::sync::Arc::new(shim_sync::sync::AtomicBool::new(false));
//!     let f2 = std::sync::Arc::clone(&flag);
//!     let t = shim_sync::thread::spawn(move || {
//!         f2.store(true, shim_sync::sync::Ordering::SeqCst)
//!     });
//!     t.join().unwrap();
//!     assert!(flag.load(shim_sync::sync::Ordering::SeqCst));
//! });
//! assert!(report.complete);
//! ```

mod hb;
mod rt;
pub mod sync;
pub mod thread;

pub use rt::{
    current_trail, explore, normalize_path, replay, replay_with, Config, OpKind, OverrideRule,
    OverrideSet, Report,
};
