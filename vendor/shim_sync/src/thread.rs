//! Model threads: `spawn`/`join` with the `std::thread` API shape. Under
//! an active explorer, spawned closures become model threads whose every
//! instrumented operation is a scheduling decision; otherwise they are
//! plain OS threads.

use crate::rt;

enum Inner<T> {
    Std(std::thread::JoinHandle<T>),
    Model { tid: usize, slot: rt::Slot<T> },
}

pub struct JoinHandle<T>(Inner<T>);

pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    match rt::model_spawn(f) {
        Ok((tid, slot)) => JoinHandle(Inner::Model { tid, slot }),
        Err(f) => JoinHandle(Inner::Std(std::thread::spawn(f))),
    }
}

impl<T> JoinHandle<T> {
    pub fn join(self) -> std::thread::Result<T> {
        match self.0 {
            Inner::Std(h) => h.join(),
            Inner::Model { tid, slot } => {
                rt::model_join(tid);
                match slot.lock().unwrap_or_else(|e| e.into_inner()).take() {
                    Some(Ok(v)) => Ok(v),
                    Some(Err(e)) => Err(Box::new(e)),
                    None => Err(Box::new("model thread produced no result".to_string())),
                }
            }
        }
    }
}
