//! Explorer runtime: a token-passing cooperative scheduler plus a
//! stateless re-execution DFS over schedule decisions.
//!
//! Exactly one *model thread* runs between two yield points, so every
//! interleaving of instrumented operations corresponds to one sequence of
//! scheduling decisions (a *trail*). The DFS re-executes the user closure
//! with a forced decision prefix and enumerates the alternatives left at
//! each decision point, subject to a CHESS-style preemption bound:
//! switching away from a still-runnable thread consumes budget, switching
//! away from a blocked or finished thread is free.
//!
//! State hashing prunes re-converging schedules: when a decision point is
//! reached in a state that an already *completed* subtree explored with at
//! least as much preemption budget, its alternatives are dropped. Entries
//! are inserted only when the DFS backtracks past a fully explored frame,
//! so pruning never consults in-progress work and stays sound.

use std::cell::RefCell;
use std::collections::HashMap;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex as StdMutex, MutexGuard as StdGuard};
use std::time::{Duration, Instant};

use crate::hb::HbState;

/// Panic payload used to unwind model threads during teardown. Never a
/// reported failure by itself.
pub(crate) struct Abort;

/// Result slot shared between a model thread and its join handle.
pub(crate) type Slot<T> = Arc<StdMutex<Option<Result<T, String>>>>;

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Status {
    /// OS thread spawned but not yet parked at its first yield point.
    Starting,
    Runnable,
    BlockedMutex(u64),
    BlockedJoin(usize),
    Finished,
}

struct ThreadSt {
    status: Status,
    /// Mutex id this thread's pending operation wants, if any.
    pending_lock: Option<u64>,
    op_count: u64,
    /// Running hash of every value this thread has observed; together with
    /// `op_count` it is a proxy for the thread's deterministic local state.
    obs_hash: u64,
    /// TSO mode: FIFO store buffer of (object id, value) pairs not yet
    /// visible to other threads. Always empty when `Config::tso` is off.
    store_buf: Vec<(u64, u64)>,
}

impl ThreadSt {
    fn new(status: Status) -> Self {
        ThreadSt {
            status,
            pending_lock: None,
            op_count: 0,
            obs_hash: 0,
            store_buf: Vec::new(),
        }
    }
}

/// One decision point recorded beyond the forced prefix.
#[derive(Clone, Debug)]
pub(crate) struct Frame {
    pub chosen: usize,
    pub alts: Vec<usize>,
    pub state_hash: u64,
    /// Preemption budget remaining *before* this decision was taken.
    pub budget: u32,
}

pub(crate) struct RtState {
    max_steps: u64,
    /// Model x86-TSO store buffering (see [`Config::tso`]).
    tso: bool,
    /// The single thread allowed to execute its pending operation.
    current: usize,
    threads: Vec<ThreadSt>,
    /// Mutex object id -> owning thread (None = free).
    mutex_owner: HashMap<u64, Option<usize>>,
    /// Atomic object id -> last written value (hash input).
    objects: HashMap<u64, u64>,
    /// Raw pointer -> first-seen ordinal, so `AtomicPtr` values hash
    /// deterministically across re-executions.
    ptr_ords: HashMap<usize, u64>,
    /// Reverse of `ptr_ords`, so TSO-mode pointer loads can map a modelled
    /// ordinal back to the real pointer the caller needs.
    ptr_vals: HashMap<u64, usize>,
    next_obj_id: u64,
    forced: Vec<usize>,
    forced_pos: usize,
    frames: Vec<Frame>,
    trail: Vec<usize>,
    ops: Vec<String>,
    steps: u64,
    budget: u32,
    teardown: bool,
    violation: Option<String>,
    complete: bool,
    visited: HashMap<u64, u32>,
    record_frames: bool,
    os_handles: Vec<std::thread::JoinHandle<()>>,
    pruned: u64,
    /// Happens-before race checking (see [`Config::check_races`]).
    races: bool,
    /// Vector-clock state; only maintained when `races` is on.
    hb: HbState,
    /// Per-site memory-ordering overrides for the minimization audit.
    overrides: Option<Arc<OverrideSet>>,
}

pub(crate) struct Ctx {
    st: StdMutex<RtState>,
    cv: Condvar,
}

thread_local! {
    static TLS: RefCell<Option<(Arc<Ctx>, usize)>> = const { RefCell::new(None) };
}

fn tls() -> Option<(Arc<Ctx>, usize)> {
    TLS.with(|t| t.borrow().clone())
}

fn lock(ctx: &Ctx) -> StdGuard<'_, RtState> {
    ctx.st.lock().unwrap_or_else(|e| e.into_inner())
}

fn wait<'a>(ctx: &'a Ctx, g: StdGuard<'a, RtState>) -> StdGuard<'a, RtState> {
    ctx.cv.wait(g).unwrap_or_else(|e| e.into_inner())
}

fn abort() -> ! {
    panic::panic_any(Abort)
}

/// splitmix64 finalizer.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

fn mix2(a: u64, b: u64) -> u64 {
    mix(a ^ mix(b))
}

/// Commutative fold over objects and threads, so hashing is independent of
/// map iteration order.
fn state_hash(st: &RtState) -> u64 {
    let mut h = mix(st.current as u64 + 1);
    for (&id, &v) in &st.objects {
        h ^= mix2(id, v);
    }
    for (&id, &o) in &st.mutex_owner {
        h ^= mix2(mix(id), o.map_or(0, |t| t as u64 + 1));
    }
    for (i, t) in st.threads.iter().enumerate() {
        let s = match t.status {
            Status::Starting => 1,
            Status::Runnable => 2,
            Status::BlockedMutex(m) => mix(3 ^ m),
            Status::BlockedJoin(j) => mix(5 ^ (j as u64).wrapping_mul(7)),
            Status::Finished => 11,
        };
        // The store buffer is ordered (FIFO), so fold it sequentially.
        let mut sb = 0u64;
        for &(id, v) in &t.store_buf {
            sb = mix2(sb, mix2(id, v));
        }
        h ^= mix2(
            mix2(i as u64 + 17, t.op_count),
            mix2(t.obs_hash, mix2(s, sb)),
        );
    }
    if st.races {
        // Pruning is only sound if the pruned state agrees on everything
        // that can still produce a violation — with race checking on, that
        // includes the entire happens-before state.
        h ^= st.hb.digest(mix2);
    }
    h
}

/// TSO mode: commit every buffered store of `tid` to shared memory, in
/// program order. Called at every drain point (SeqCst store/fence, any
/// RMW, mutex lock/unlock, spawn/join, thread finish) — an
/// all-or-nothing over-approximation of the x86 store buffer, which may
/// also drain any FIFO *prefix* spontaneously; see [`Config::tso`].
fn drain_stores(st: &mut RtState, tid: usize) {
    if st.threads[tid].store_buf.is_empty() {
        return;
    }
    let buf = std::mem::take(&mut st.threads[tid].store_buf);
    for (id, v) in buf {
        st.objects.insert(id, v);
    }
}

fn runnable(st: &RtState, tid: usize) -> bool {
    matches!(st.threads[tid].status, Status::Runnable)
}

fn fail(ctx: &Ctx, st: &mut RtState, msg: String) {
    if st.violation.is_none() {
        st.violation = Some(msg);
    }
    st.teardown = true;
    ctx.cv.notify_all();
}

// ---------------------------------------------------------------------------
// Happens-before hooks (called from the sync facade's post closures, under
// the scheduler lock with the token held: `st.current` is the executor)
// ---------------------------------------------------------------------------

pub(crate) fn hb_load(st: &mut RtState, id: u64, o: Ordering) {
    if st.races {
        let t = st.current;
        st.hb.atomic_load(t, id, o);
    }
}

pub(crate) fn hb_store(st: &mut RtState, id: u64, o: Ordering) {
    if st.races {
        let t = st.current;
        st.hb.atomic_store(t, id, o);
    }
}

/// Successful RMW releases/acquires with `ok`; a failed CAS is a load with
/// the `err` ordering.
pub(crate) fn hb_rmw(st: &mut RtState, id: u64, wrote: bool, ok: Ordering, err: Ordering) {
    if st.races {
        let t = st.current;
        if wrote {
            st.hb.atomic_rmw(t, id, ok);
        } else {
            st.hb.atomic_load(t, id, err);
        }
    }
}

pub(crate) fn hb_fence(st: &mut RtState, o: Ordering) {
    if st.races {
        let t = st.current;
        st.hb.fence(t, o);
    }
}

/// Register a race-checked plain variable ([`crate::sync::RaceCell`]).
/// Returns 0 outside an active execution (the cell then passes through).
pub(crate) fn register_race_var() -> u64 {
    match tls() {
        Some((ctx, _)) if !std::thread::panicking() => {
            let mut g = lock(&ctx);
            g.next_obj_id += 1;
            g.next_obj_id
        }
        _ => 0,
    }
}

pub(crate) fn unregister_race_var(id: u64) {
    if id == 0 || std::thread::panicking() {
        return;
    }
    if let Some((ctx, _)) = tls() {
        lock(&ctx).hb.vars.remove(&id);
    }
}

/// A plain (non-atomic) access to race-checked variable `id`: a yield
/// point like any other shared-memory operation, plus a happens-before
/// check against every concurrent access recorded so far. On a race the
/// execution fails with a replayable trail and this function unwinds
/// *before* the caller touches the underlying memory.
pub(crate) fn race_access(id: u64, is_write: bool, tag: &str) {
    if id == 0 {
        return;
    }
    let raced = std::cell::Cell::new(false);
    model_op(
        || (),
        |_, st| {
            let kind = if is_write { "write" } else { "read" };
            if st.races {
                let t = st.current;
                let report = if is_write {
                    st.hb.plain_write(t, id, tag)
                } else {
                    st.hb.plain_read(t, id, tag)
                };
                if let Some(msg) = report {
                    raced.set(true);
                    // `fail` without the Ctx: set the violation directly.
                    // The racing thread aborts below; its unwind through
                    // `thread_main` notifies every parked thread, which
                    // then observe `teardown` and unwind too.
                    if st.violation.is_none() {
                        st.violation = Some(msg);
                    }
                    st.teardown = true;
                }
            }
            (u64::from(is_write), format!("{tag}#{id} plain {kind}"))
        },
    );
    if raced.get() {
        abort();
    }
}

// ---------------------------------------------------------------------------
// Per-site ordering overrides (the minimization audit)
// ---------------------------------------------------------------------------

/// What kind of operation an ordering parameter belongs to — weakening is
/// kind-dependent (`SeqCst` steps down to `Acquire` on a load but to
/// `Release` on a store), and a `compare_exchange` resolves its success
/// ordering as [`OpKind::Rmw`] and its failure ordering as [`OpKind::Load`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum OpKind {
    Load,
    Store,
    Rmw,
    Fence,
}

/// One site-targeted ordering substitution.
#[derive(Debug)]
pub struct OverrideRule {
    /// `/`-separated suffix of the normalized source path
    /// (e.g. `crates/deque/src/the.rs`).
    pub file_suffix: String,
    /// Source lines of the targeted `Ordering::` tokens. A rule applies
    /// when any of them falls within a few lines of the call site —
    /// below it for wrapped arguments, above it for orderings computed
    /// into a local before the call.
    pub lines: Vec<u32>,
    /// Only ops whose declared ordering equals this are rewritten.
    pub from: Ordering,
    /// Replacement ordering.
    pub to: Ordering,
    /// Restrict to one operation kind (`None` = any kind).
    pub kind: Option<OpKind>,
    /// Times this rule fired, across every schedule of the exploration
    /// (shared through the `Arc<OverrideSet>`): the audit's exercise
    /// signal — an override that never fires is an `unexercised` verdict.
    pub hits: AtomicU64,
}

/// A set of [`OverrideRule`]s installed via [`Config::overrides`].
#[derive(Debug, Default)]
pub struct OverrideSet {
    pub rules: Vec<OverrideRule>,
}

/// Normalize a `Location::file()` path textually: `#[path]`-included
/// sources report paths like `crates/check/src/../../deque/src/the.rs`,
/// which must compare equal to `crates/deque/src/the.rs`.
pub fn normalize_path(p: &str) -> String {
    let mut out: Vec<&str> = Vec::new();
    for seg in p.split('/') {
        match seg {
            "" | "." => {}
            ".." => {
                if out.pop().is_none() {
                    out.push("..");
                }
            }
            s => out.push(s),
        }
    }
    out.join("/")
}

impl OverrideSet {
    /// How far from the call-site line an `Ordering::` token may sit and
    /// still belong to the call: below it when rustfmt wraps arguments,
    /// above it when the ordering is computed into a local first
    /// (`let order = if owner { Ordering::Relaxed } else { ... }`).
    const LINE_WINDOW: u32 = 5;

    fn matches(rule: &OverrideRule, o: Ordering, kind: OpKind, file: &str, line: u32) -> bool {
        rule.from == o
            && rule.kind.is_none_or(|k| k == kind)
            && file.ends_with(rule.file_suffix.as_str())
            && rule
                .lines
                .iter()
                .any(|&l| l + Self::LINE_WINDOW >= line && l <= line + Self::LINE_WINDOW)
    }

    /// Resolve the ordering an op at `file:line` should actually use.
    pub fn resolve(&self, o: Ordering, kind: OpKind, file: &str, line: u32) -> Ordering {
        let file = normalize_path(file);
        for rule in &self.rules {
            if Self::matches(rule, o, kind, &file, line) {
                rule.hits.fetch_add(1, Ordering::Relaxed);
                return rule.to;
            }
        }
        o
    }
}

/// Facade-side entry point: map a declared ordering through the active
/// [`OverrideSet`], if any. Costs one scheduler-lock acquisition per op
/// while an exploration is active; free (no TLS hit beyond the lookup)
/// otherwise.
pub(crate) fn resolve_ordering(
    o: Ordering,
    kind: OpKind,
    loc: &std::panic::Location<'_>,
) -> Ordering {
    let Some((ctx, _)) = tls() else { return o };
    if std::thread::panicking() {
        return o;
    }
    let set = lock(&ctx).overrides.clone();
    match set {
        Some(set) => set.resolve(o, kind, loc.file(), loc.line()),
        None => o,
    }
}

/// One scheduling decision: which thread's pending operation executes next.
/// Called with the lock held by the token holder (`st.current == tid`).
/// Returns the chosen thread; on completion/deadlock/step-bound it returns
/// `tid` with `complete` or `teardown` set.
fn decide(ctx: &Ctx, st: &mut RtState, tid: usize) -> usize {
    st.steps += 1;
    if st.steps > st.max_steps {
        fail(
            ctx,
            st,
            format!("step bound {} exceeded (livelock?)", st.max_steps),
        );
        return tid;
    }
    let en: Vec<usize> = (0..st.threads.len()).filter(|&t| runnable(st, t)).collect();
    if en.is_empty() {
        if st.threads.iter().all(|t| t.status == Status::Finished) {
            st.complete = true;
            ctx.cv.notify_all();
        } else {
            fail(ctx, st, "deadlock: no runnable thread".to_string());
        }
        return tid;
    }
    let self_en = runnable(st, tid);
    let default = if self_en { tid } else { en[0] };
    let chosen = if st.forced_pos < st.forced.len() {
        let c = st.forced[st.forced_pos];
        st.forced_pos += 1;
        if !runnable(st, c) {
            fail(
                ctx,
                st,
                format!(
                    "replay diverged: t{c} not runnable at decision {}",
                    st.forced_pos
                ),
            );
            return tid;
        }
        c
    } else {
        // A switch away from a still-runnable thread is a preemption; it is
        // only an alternative while budget remains. Switches away from a
        // blocked thread are free.
        let mut alts: Vec<usize> = if self_en && st.budget == 0 {
            Vec::new()
        } else {
            en.iter().copied().filter(|&t| t != default).collect()
        };
        let h = state_hash(st);
        if let Some(&b) = st.visited.get(&h) {
            if b >= st.budget {
                alts.clear();
                st.pruned += 1;
            }
        }
        if st.record_frames {
            st.frames.push(Frame {
                chosen: default,
                alts,
                state_hash: h,
                budget: st.budget,
            });
        }
        default
    };
    if chosen != tid && self_en {
        st.budget = st.budget.saturating_sub(1);
    }
    st.trail.push(chosen);
    chosen
}

/// Instrumented shared-memory operation: yield, run `f` while holding the
/// token, then record its observation. Falls back to running `f` directly
/// when no explorer is active (or while unwinding during teardown).
pub(crate) fn model_op<R>(
    f: impl FnOnce() -> R,
    post: impl FnOnce(&R, &mut RtState) -> (u64, String),
) -> R {
    let Some((ctx, tid)) = tls() else { return f() };
    if std::thread::panicking() {
        return f();
    }
    let mut g = lock(&ctx);
    if g.teardown {
        drop(g);
        abort();
    }
    if g.current == tid {
        let chosen = decide(&ctx, &mut g, tid);
        if !g.teardown && chosen != tid {
            g.current = chosen;
            ctx.cv.notify_all();
        }
    }
    while g.current != tid && !g.teardown {
        g = wait(&ctx, g);
    }
    if g.teardown {
        drop(g);
        abort();
    }
    let r = f();
    let (obs, desc) = post(&r, &mut g);
    let step = g.steps;
    let t = &mut g.threads[tid];
    t.op_count += 1;
    t.obs_hash = mix2(t.obs_hash, obs);
    g.ops.push(format!("step {step:>4}: t{tid} {desc}"));
    r
}

// ---------------------------------------------------------------------------
// TSO-mode operations
// ---------------------------------------------------------------------------
//
// When `Config::tso` is on, the *model* is the ground truth for atomic
// values: non-SeqCst stores sit in the writing thread's FIFO store buffer
// until a drain point (SeqCst store or fence, any RMW, mutex lock/unlock,
// spawn/join, thread finish), loads forward from the thread's own newest
// buffered store and fall back to shared memory, and the wrappers in
// `sync.rs` return the modelled value instead of the real atomic's. The
// real atomics are still written through as mirrors (inside the token
// window, so no physical race) to keep teardown fallbacks sane.

/// Whether a TSO-mode exploration is active on this thread.
pub(crate) fn tso_active() -> bool {
    match tls() {
        Some((ctx, _)) if !std::thread::panicking() => lock(&ctx).tso,
        _ => false,
    }
}

/// TSO load: forward from the own store buffer, else read shared memory.
/// The declared ordering only matters for happens-before tracking (x86
/// loads all compile the same); store-buffer forwarding is unconditional.
pub(crate) fn tso_load(id: u64, o: Ordering, tag: &str) -> u64 {
    let out = std::cell::Cell::new(0u64);
    model_op(
        || (),
        |_, st| {
            let tid = st.current;
            let v = st.threads[tid]
                .store_buf
                .iter()
                .rev()
                .find(|&&(i, _)| i == id)
                .map(|&(_, v)| v)
                .unwrap_or_else(|| st.objects.get(&id).copied().unwrap_or(0));
            out.set(v);
            hb_load(st, id, o);
            (v, format!("{tag}#{id} load(tso) -> {v}"))
        },
    );
    out.get()
}

/// TSO store: buffer, or drain-and-commit when SeqCst.
pub(crate) fn tso_store(id: u64, v: u64, o: Ordering, tag: &str) {
    let sc = o == Ordering::SeqCst;
    model_op(
        || (),
        |_, st| {
            let tid = st.current;
            if sc {
                drain_stores(st, tid);
                st.objects.insert(id, v);
            } else {
                st.threads[tid].store_buf.push((id, v));
            }
            hb_store(st, id, o);
            let k = if sc {
                "store(tso,sc)"
            } else {
                "store(tso,buf)"
            };
            (v, format!("{tag}#{id} {k} {v}"))
        },
    );
}

/// TSO read-modify-write: drains the buffer (x86 locked ops flush), then
/// applies `f` to the shared value; `f` returning `Some(new)` commits the
/// write (CAS failure returns `None`). Returns the old shared value. A
/// successful RMW tracks happens-before with `ok`; a failure is a load
/// with `err`.
pub(crate) fn tso_rmw(
    id: u64,
    f: impl FnOnce(u64) -> Option<u64>,
    ok: Ordering,
    err: Ordering,
    tag: &str,
) -> u64 {
    let out = std::cell::Cell::new(0u64);
    let mut f = Some(f);
    model_op(
        || (),
        |_, st| {
            let tid = st.current;
            drain_stores(st, tid);
            let old = st.objects.get(&id).copied().unwrap_or(0);
            let wrote = match (f.take().expect("rmw closure"))(old) {
                Some(new) => {
                    st.objects.insert(id, new);
                    true
                }
                None => false,
            };
            out.set(old);
            hb_rmw(st, id, wrote, ok, err);
            (old, format!("{tag}#{id} rmw(tso) {old} wrote:{wrote}"))
        },
    );
    out.get()
}

/// TSO fence: a SeqCst fence drains the buffer; weaker fences are a pure
/// yield point (x86 acquire/release fences compile to nothing) but still
/// create their C11 fence edges for happens-before tracking.
pub(crate) fn tso_fence(o: Ordering) {
    let sc = o == Ordering::SeqCst;
    model_op(
        || (),
        |_, st| {
            if sc {
                let tid = st.current;
                drain_stores(st, tid);
            }
            hb_fence(st, o);
            (u64::from(sc), format!("fence(tso, sc={sc})"))
        },
    );
}

/// TSO pointer store: like [`tso_store`] but normalises to an ordinal.
pub(crate) fn tso_ptr_store(id: u64, p: usize, o: Ordering) {
    let sc = o == Ordering::SeqCst;
    model_op(
        || (),
        |_, st| {
            let ord = ptr_ord(st, p);
            let tid = st.current;
            if sc {
                drain_stores(st, tid);
                st.objects.insert(id, ord);
            } else {
                st.threads[tid].store_buf.push((id, ord));
            }
            hb_store(st, id, o);
            (ord, format!("AtomicPtr#{id} store(tso) ptr:{ord}"))
        },
    );
}

/// TSO pointer load: resolves the modelled ordinal back to the real
/// pointer (0 = null).
pub(crate) fn tso_ptr_load(id: u64, o: Ordering) -> usize {
    let out = std::cell::Cell::new(0usize);
    model_op(
        || (),
        |_, st| {
            let tid = st.current;
            let ord = st.threads[tid]
                .store_buf
                .iter()
                .rev()
                .find(|&&(i, _)| i == id)
                .map(|&(_, v)| v)
                .unwrap_or_else(|| st.objects.get(&id).copied().unwrap_or(0));
            out.set(if ord == 0 {
                0
            } else {
                st.ptr_vals.get(&ord).copied().unwrap_or(0)
            });
            hb_load(st, id, o);
            (ord, format!("AtomicPtr#{id} load(tso) -> ptr:{ord}"))
        },
    );
    out.get()
}

/// Register an atomic object; returns 0 outside an active execution.
pub(crate) fn register_object(init: u64) -> u64 {
    match tls() {
        Some((ctx, _)) if !std::thread::panicking() => {
            let mut g = lock(&ctx);
            g.next_obj_id += 1;
            let id = g.next_obj_id;
            g.objects.insert(id, init);
            id
        }
        _ => 0,
    }
}

/// Register an `AtomicPtr`, normalizing the initial pointer to an ordinal.
pub(crate) fn register_ptr_object(init: usize) -> u64 {
    match tls() {
        Some((ctx, _)) if !std::thread::panicking() => {
            let mut g = lock(&ctx);
            let v = ptr_ord(&mut g, init);
            g.next_obj_id += 1;
            let id = g.next_obj_id;
            g.objects.insert(id, v);
            id
        }
        _ => 0,
    }
}

pub(crate) fn unregister_object(id: u64) {
    if id == 0 || std::thread::panicking() {
        return;
    }
    if let Some((ctx, _)) = tls() {
        lock(&ctx).objects.remove(&id);
    }
}

/// Record the written value of an atomic for state hashing.
pub(crate) fn set_object(st: &mut RtState, id: u64, v: u64) {
    if id != 0 {
        st.objects.insert(id, v);
    }
}

/// First-seen ordinal for a raw pointer (deterministic per schedule).
pub(crate) fn ptr_ord(st: &mut RtState, p: usize) -> u64 {
    if p == 0 {
        return 0;
    }
    let next = st.ptr_ords.len() as u64 + 1;
    let ord = *st.ptr_ords.entry(p).or_insert(next);
    st.ptr_vals.entry(ord).or_insert(p);
    ord
}

pub(crate) fn register_mutex() -> u64 {
    match tls() {
        Some((ctx, _)) if !std::thread::panicking() => {
            let mut g = lock(&ctx);
            g.next_obj_id += 1;
            let id = g.next_obj_id;
            g.mutex_owner.insert(id, None);
            id
        }
        _ => 0,
    }
}

pub(crate) fn unregister_mutex(id: u64) {
    if id == 0 || std::thread::panicking() {
        return;
    }
    if let Some((ctx, _)) = tls() {
        lock(&ctx).mutex_owner.remove(&id);
    }
}

fn mutex_free(st: &RtState, id: u64) -> bool {
    st.mutex_owner.get(&id).copied().flatten().is_none()
}

/// Model-side mutex acquisition. Returns false when no explorer is active
/// (caller then relies on the real inner mutex alone).
pub(crate) fn model_lock(id: u64) -> bool {
    let Some((ctx, tid)) = tls() else {
        return false;
    };
    if std::thread::panicking() {
        return false;
    }
    let mut g = lock(&ctx);
    if g.teardown {
        drop(g);
        abort();
    }
    g.threads[tid].pending_lock = Some(id);
    if !mutex_free(&g, id) {
        g.threads[tid].status = Status::BlockedMutex(id);
    }
    loop {
        if g.current == tid && !g.teardown {
            let chosen = decide(&ctx, &mut g, tid);
            if !g.teardown && chosen != tid {
                g.current = chosen;
                ctx.cv.notify_all();
            }
        }
        while g.current != tid && !g.teardown {
            g = wait(&ctx, g);
        }
        if g.teardown {
            drop(g);
            abort();
        }
        if mutex_free(&g, id) {
            break;
        }
        // Defensive: re-block if the mutex was re-taken before our grant.
        g.threads[tid].status = Status::BlockedMutex(id);
    }
    g.mutex_owner.insert(id, Some(tid));
    if g.races {
        g.hb.lock(tid, id);
    }
    drain_stores(&mut g, tid); // lock acquisition is an RMW: flush (TSO)
    g.threads[tid].pending_lock = None;
    g.threads[tid].status = Status::Runnable;
    // Threads whose pending op wants this mutex are no longer enabled.
    for i in 0..g.threads.len() {
        if i != tid
            && g.threads[i].pending_lock == Some(id)
            && g.threads[i].status == Status::Runnable
        {
            g.threads[i].status = Status::BlockedMutex(id);
        }
    }
    let step = g.steps;
    let t = &mut g.threads[tid];
    t.op_count += 1;
    t.obs_hash = mix2(t.obs_hash, mix(id));
    g.ops
        .push(format!("step {step:>4}: t{tid} Mutex#{id} lock"));
    true
}

/// Model-side mutex release. Not a yield point: the next shared operation
/// of the releasing thread is, which captures the same interleavings.
pub(crate) fn model_unlock(id: u64) {
    let Some((ctx, tid)) = tls() else { return };
    if std::thread::panicking() {
        return;
    }
    let mut g = lock(&ctx);
    if g.teardown {
        return;
    }
    // The x86 store buffer is FIFO: by the time another thread observes
    // the releasing store it has observed everything before it, so the
    // release commits the whole buffer.
    drain_stores(&mut g, tid);
    if g.races {
        g.hb.unlock(tid, id);
    }
    g.mutex_owner.insert(id, None);
    for t in g.threads.iter_mut() {
        if t.status == Status::BlockedMutex(id) {
            t.status = Status::Runnable;
        }
    }
    let step = g.steps;
    let t = &mut g.threads[tid];
    t.op_count += 1;
    t.obs_hash = mix2(t.obs_hash, mix(id ^ 0xff));
    g.ops
        .push(format!("step {step:>4}: t{tid} Mutex#{id} unlock"));
}

/// Spawn a model thread; gives the closure back when no explorer is active.
pub(crate) fn model_spawn<T, F>(f: F) -> Result<(usize, Slot<T>), F>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    let Some((ctx, tid)) = tls() else {
        return Err(f);
    };
    if std::thread::panicking() {
        return Err(f);
    }
    let mut g = lock(&ctx);
    if g.teardown {
        drop(g);
        abort();
    }
    // The spawn itself is a yield point.
    if g.current == tid {
        let chosen = decide(&ctx, &mut g, tid);
        if !g.teardown && chosen != tid {
            g.current = chosen;
            ctx.cv.notify_all();
        }
    }
    while g.current != tid && !g.teardown {
        g = wait(&ctx, g);
    }
    if g.teardown {
        drop(g);
        abort();
    }
    let child = g.threads.len();
    g.threads.push(ThreadSt::new(Status::Starting));
    if g.races {
        g.hb.spawn(tid, child);
    }
    let slot: Slot<T> = Arc::new(StdMutex::new(None));
    let (c2, s2) = (ctx.clone(), Arc::clone(&slot));
    let os = std::thread::Builder::new()
        .name(format!("shim-t{child}"))
        .spawn(move || thread_main(c2, child, f, s2))
        .expect("spawn model OS thread");
    g.os_handles.push(os);
    // Wait for the child to park at its first yield point so that thread
    // creation order (and thus object/thread ids) is deterministic.
    while matches!(g.threads[child].status, Status::Starting) && !g.teardown {
        g = wait(&ctx, g);
    }
    if g.teardown {
        drop(g);
        abort();
    }
    drain_stores(&mut g, tid); // spawn is a synchronisation edge (TSO)
    let step = g.steps;
    let t = &mut g.threads[tid];
    t.op_count += 1;
    t.obs_hash = mix2(t.obs_hash, child as u64);
    g.ops
        .push(format!("step {step:>4}: t{tid} spawn -> t{child}"));
    Ok((child, slot))
}

fn payload_msg(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "model thread panicked (non-string payload)".to_string()
    }
}

fn thread_main<T, F>(ctx: Arc<Ctx>, tid: usize, f: F, slot: Slot<T>)
where
    F: FnOnce() -> T,
    T: Send,
{
    TLS.with(|t| *t.borrow_mut() = Some((Arc::clone(&ctx), tid)));
    {
        let mut g = lock(&ctx);
        g.threads[tid].status = Status::Runnable;
        ctx.cv.notify_all();
        // Thread start is itself a schedulable operation: park until granted.
        while g.current != tid && !g.teardown {
            g = wait(&ctx, g);
        }
        if g.teardown {
            g.threads[tid].status = Status::Finished;
            ctx.cv.notify_all();
            drop(g);
            TLS.with(|t| *t.borrow_mut() = None);
            return;
        }
        let step = g.steps;
        g.threads[tid].op_count += 1;
        g.ops.push(format!("step {step:>4}: t{tid} start"));
    }
    let r = panic::catch_unwind(AssertUnwindSafe(f));
    let mut g = lock(&ctx);
    match r {
        Ok(v) => {
            *slot.lock().unwrap_or_else(|e| e.into_inner()) = Some(Ok(v));
        }
        Err(p) => {
            if p.downcast_ref::<Abort>().is_none() {
                let msg = payload_msg(p.as_ref());
                fail(&ctx, &mut g, msg);
            }
            *slot.lock().unwrap_or_else(|e| e.into_inner()) =
                Some(Err("model thread panicked".to_string()));
        }
    }
    drain_stores(&mut g, tid); // thread exit publishes its buffer (TSO)
    g.threads[tid].status = Status::Finished;
    for t in g.threads.iter_mut() {
        if t.status == Status::BlockedJoin(tid) {
            t.status = Status::Runnable;
        }
    }
    if g.current == tid && !g.teardown && !g.complete {
        // Pass the token on (finishing is a free switch).
        let chosen = decide(&ctx, &mut g, tid);
        if !g.teardown && !g.complete && chosen != tid {
            g.current = chosen;
        }
    }
    ctx.cv.notify_all();
    drop(g);
    TLS.with(|t| *t.borrow_mut() = None);
}

/// Model-side join. Returns false when no explorer is active.
pub(crate) fn model_join(target: usize) -> bool {
    let Some((ctx, tid)) = tls() else {
        return false;
    };
    if std::thread::panicking() {
        return true;
    }
    let mut g = lock(&ctx);
    if g.teardown {
        drop(g);
        abort();
    }
    // The join is a yield point.
    if g.current == tid {
        let chosen = decide(&ctx, &mut g, tid);
        if !g.teardown && chosen != tid {
            g.current = chosen;
            ctx.cv.notify_all();
        }
    }
    while g.current != tid && !g.teardown {
        g = wait(&ctx, g);
    }
    if g.teardown {
        drop(g);
        abort();
    }
    while g.threads[target].status != Status::Finished {
        g.threads[tid].status = Status::BlockedJoin(target);
        let chosen = decide(&ctx, &mut g, tid);
        if g.teardown {
            drop(g);
            abort();
        }
        if !g.complete && chosen != tid {
            g.current = chosen;
            ctx.cv.notify_all();
        }
        while g.current != tid && !g.teardown {
            g = wait(&ctx, g);
        }
        if g.teardown {
            drop(g);
            abort();
        }
    }
    if g.races {
        g.hb.join(tid, target);
    }
    drain_stores(&mut g, tid); // join is a synchronisation edge (TSO)
    let step = g.steps;
    let t = &mut g.threads[tid];
    t.op_count += 1;
    t.obs_hash = mix2(t.obs_hash, target as u64 ^ 0xaa);
    g.ops.push(format!("step {step:>4}: t{tid} join t{target}"));
    true
}

/// The trail of scheduling decisions taken so far in the current execution.
pub fn current_trail() -> Option<Vec<usize>> {
    let (ctx, _) = tls()?;
    let trail = lock(&ctx).trail.clone();
    Some(trail)
}

// ---------------------------------------------------------------------------
// Explorer driver
// ---------------------------------------------------------------------------

/// Exploration budgets and bounds.
#[derive(Clone, Debug)]
pub struct Config {
    /// CHESS-style preemption bound per execution.
    pub preemption_bound: u32,
    /// Hard cap on the number of schedules to run; overridable with the
    /// `SHIM_SYNC_MAX_SCHEDULES` environment variable.
    pub max_schedules: u64,
    /// Per-execution step bound (livelock guard).
    pub max_steps: u64,
    /// Wall-clock budget; overridable with `SHIM_SYNC_MAX_WALL_SECS`.
    pub max_wall: Duration,
    /// Model x86-TSO store buffering instead of sequential consistency:
    /// every non-SeqCst store enters the writing thread's FIFO buffer and
    /// only becomes visible to other threads at a drain point (SeqCst
    /// store/fence, any RMW, mutex lock/unlock, spawn/join, thread exit);
    /// loads forward from the own buffer first. Atomics must be created
    /// *inside* the explored closure in this mode (id-0 objects fall back
    /// to the SC path). Over-approximation: the real buffer may also
    /// drain any FIFO prefix spontaneously between instructions; this
    /// model only drains whole buffers at the listed points, so it
    /// explores a subset of TSO behaviours (every violation it finds is
    /// real; absence of violations is evidence, not proof).
    pub tso: bool,
    /// Maintain a vector-clock happens-before relation over every
    /// atomic/fence/mutex/spawn-join event and report a data race — two
    /// accesses to the same [`crate::sync::RaceCell`], at least one a
    /// write, unordered by happens-before — as a violation with a
    /// replayable trail, even when no assertion fires. Race checking
    /// uses the *declared* C11 orderings (a C11 data race is undefined
    /// behaviour on every target), so it is meaningful in both the SC
    /// and TSO modes. The happens-before state is mixed into the state
    /// hash, so pruning stays sound at the cost of fewer prunes.
    pub check_races: bool,
    /// Per-site memory-ordering overrides for the minimization audit:
    /// each facade op resolves its declared ordering through this set
    /// (first matching rule wins) and counts the hit. `None` (the
    /// default) adds no per-op cost beyond the TLS lookup.
    pub overrides: Option<Arc<OverrideSet>>,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            preemption_bound: 2,
            max_schedules: 1_000_000,
            max_steps: 20_000,
            max_wall: Duration::from_secs(300),
            tso: false,
            check_races: false,
            overrides: None,
        }
    }
}

impl Config {
    pub fn with_preemption_bound(pb: u32) -> Self {
        Config {
            preemption_bound: pb,
            ..Config::default()
        }
    }
}

/// What an exploration did.
#[derive(Clone, Debug)]
pub struct Report {
    /// Number of executions run.
    pub schedules: u64,
    /// True when the bounded schedule space was exhausted (every reachable
    /// decision alternative within the preemption bound was explored or
    /// soundly pruned); false when a budget cut the search short.
    pub complete: bool,
    /// Decision points whose alternatives were pruned by state hashing.
    pub pruned: u64,
    /// Deepest decision stack seen.
    pub deepest: usize,
}

struct ExecOut {
    frames: Vec<Frame>,
    trail: Vec<usize>,
    ops: Vec<String>,
    violation: Option<String>,
    visited: HashMap<u64, u32>,
    pruned: u64,
}

fn run_one(
    cfg: &Config,
    forced: Vec<usize>,
    visited: HashMap<u64, u32>,
    record_frames: bool,
    f: Arc<dyn Fn() + Send + Sync>,
) -> ExecOut {
    let ctx = Arc::new(Ctx {
        st: StdMutex::new(RtState {
            max_steps: cfg.max_steps,
            tso: cfg.tso,
            current: 0,
            threads: vec![ThreadSt::new(Status::Starting)],
            mutex_owner: HashMap::new(),
            objects: HashMap::new(),
            ptr_ords: HashMap::new(),
            ptr_vals: HashMap::new(),
            next_obj_id: 0,
            forced,
            forced_pos: 0,
            frames: Vec::new(),
            trail: Vec::new(),
            ops: Vec::new(),
            steps: 0,
            budget: cfg.preemption_bound,
            teardown: false,
            violation: None,
            complete: false,
            visited,
            record_frames,
            os_handles: Vec::new(),
            pruned: 0,
            races: cfg.check_races,
            hb: HbState::default(),
            overrides: cfg.overrides.clone(),
        }),
        cv: Condvar::new(),
    });
    let slot: Slot<()> = Arc::new(StdMutex::new(None));
    let (c2, s2) = (Arc::clone(&ctx), Arc::clone(&slot));
    let os = std::thread::Builder::new()
        .name("shim-t0".to_string())
        .spawn(move || thread_main(c2, 0, move || f(), s2))
        .expect("spawn model root thread");
    {
        lock(&ctx).os_handles.push(os);
    }
    let mut g = lock(&ctx);
    loop {
        let all_done = g.threads.iter().all(|t| t.status == Status::Finished);
        if g.complete || (g.teardown && all_done) {
            break;
        }
        g = wait(&ctx, g);
    }
    let handles = std::mem::take(&mut g.os_handles);
    drop(g);
    ctx.cv.notify_all();
    for h in handles {
        let _ = h.join();
    }
    let mut g = lock(&ctx);
    ExecOut {
        frames: std::mem::take(&mut g.frames),
        trail: std::mem::take(&mut g.trail),
        ops: std::mem::take(&mut g.ops),
        violation: g.violation.take(),
        visited: std::mem::take(&mut g.visited),
        pruned: g.pruned,
    }
}

fn format_violation(v: &str, trail: &[usize], ops: &[String]) -> String {
    format!(
        "shim-sync schedule violation: {v}\n\
         schedule (replay with shim_sync::replay): {trail:?}\n\
         trace:\n  {}\n",
        ops.join("\n  ")
    )
}

fn env_u64(name: &str) -> Option<u64> {
    std::env::var(name).ok()?.trim().parse().ok()
}

/// Explore every schedule of `f` within the preemption bound, panicking
/// with a replayable trace on the first property violation (assertion
/// failure, deadlock, or step-bound livelock) and returning a [`Report`]
/// otherwise. The closure must be deterministic apart from scheduling.
pub fn explore<F>(cfg: Config, f: F) -> Report
where
    F: Fn() + Send + Sync + 'static,
{
    let f: Arc<dyn Fn() + Send + Sync> = Arc::new(f);
    let max_schedules = env_u64("SHIM_SYNC_MAX_SCHEDULES").unwrap_or(cfg.max_schedules);
    let max_wall =
        Duration::from_secs(env_u64("SHIM_SYNC_MAX_WALL_SECS").unwrap_or(cfg.max_wall.as_secs()));
    let start = Instant::now();
    let mut visited: HashMap<u64, u32> = HashMap::new();
    let mut path: Vec<Frame> = Vec::new();
    let mut schedules = 0u64;
    let mut pruned = 0u64;
    let mut deepest = 0usize;
    loop {
        let forced: Vec<usize> = path.iter().map(|fr| fr.chosen).collect();
        let out = run_one(
            &cfg,
            forced,
            std::mem::take(&mut visited),
            true,
            Arc::clone(&f),
        );
        visited = out.visited;
        schedules += 1;
        pruned += out.pruned;
        if let Some(v) = out.violation {
            panic!("{}", format_violation(&v, &out.trail, &out.ops));
        }
        path.extend(out.frames);
        deepest = deepest.max(path.len());
        let mut advanced = false;
        while let Some(fr) = path.last_mut() {
            if let Some(next) = fr.alts.pop() {
                fr.chosen = next;
                advanced = true;
                break;
            }
            // Fully explored: record its state so later re-convergences can
            // be pruned, then backtrack.
            let (h, b) = (fr.state_hash, fr.budget);
            let slot = visited.entry(h).or_insert(b);
            *slot = (*slot).max(b);
            path.pop();
        }
        if !advanced {
            return Report {
                schedules,
                complete: true,
                pruned,
                deepest,
            };
        }
        if schedules >= max_schedules || start.elapsed() >= max_wall {
            return Report {
                schedules,
                complete: false,
                pruned,
                deepest,
            };
        }
    }
}

/// Re-run `f` under a single forced schedule (as printed in a violation
/// trace or captured via [`current_trail`]); panics with the trace if the
/// schedule still violates a property.
pub fn replay<F>(trail: &[usize], f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    replay_with(Config::default(), trail, f);
}

/// [`replay`] with an explicit [`Config`], for replaying trails recorded
/// under a non-default memory model (e.g. `tso: true`).
pub fn replay_with<F>(cfg: Config, trail: &[usize], f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    let out = run_one(&cfg, trail.to_vec(), HashMap::new(), false, Arc::new(f));
    if let Some(v) = out.violation {
        panic!("{}", format_violation(&v, &out.trail, &out.ops));
    }
}
