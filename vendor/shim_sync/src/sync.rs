//! Model synchronization primitives.
//!
//! Each type wraps the real `std` primitive for storage; under an active
//! explorer every operation first passes through a yield point (see
//! [`crate::rt`]), so the explorer controls the interleaving while the
//! actual memory access stays an ordinary atomic operation. Outside an
//! exploration (or while unwinding during teardown) the wrappers delegate
//! straight to the inner primitive, so code instrumented with these types
//! still runs correctly under plain threads.
//!
//! Orderings are accepted for API compatibility. By default the explorer
//! enumerates sequentially consistent interleavings and ignores them; with
//! [`crate::Config::tso`] set, stores/loads/RMWs/fences additionally route
//! through an x86-TSO store-buffer model in [`crate::rt`] — non-SeqCst
//! stores are buffered per thread until a drain point and the *model*
//! value is returned, so store-buffering reorderings become reachable.
//! Atomics participating in TSO exploration must be created inside the
//! explored closure (objects registered outside an execution have id 0 and
//! fall back to the sequentially consistent path).
//!
//! With [`crate::Config::check_races`] set, every operation additionally
//! feeds the vector-clock happens-before engine ([`crate::hb`]) using its
//! *declared* C11 ordering, and plain accesses through [`RaceCell`] are
//! checked against the relation. Every ordering parameter also resolves
//! through the active [`crate::OverrideSet`] (if any) first — the
//! ordering-minimization audit substitutes candidate weaker orderings per
//! site this way, without touching the code under test.

use crate::rt;
use std::panic::Location;
pub use std::sync::atomic::Ordering;
use std::sync::Mutex as StdMutex;

macro_rules! int_atomic {
    ($name:ident, $std:ty, $prim:ty, $tag:literal) => {
        pub struct $name {
            inner: $std,
            id: u64,
        }

        impl $name {
            pub fn new(v: $prim) -> Self {
                Self {
                    inner: <$std>::new(v),
                    id: rt::register_object(v as u64),
                }
            }

            #[track_caller]
            pub fn load(&self, o: Ordering) -> $prim {
                let o = rt::resolve_ordering(o, rt::OpKind::Load, Location::caller());
                if self.id != 0 && rt::tso_active() {
                    return rt::tso_load(self.id, o, $tag) as $prim;
                }
                let id = self.id;
                rt::model_op(
                    || self.inner.load(o),
                    |r, st| {
                        rt::hb_load(st, id, o);
                        (*r as u64, format!(concat!($tag, "#{} load -> {}"), id, r))
                    },
                )
            }

            #[track_caller]
            pub fn store(&self, v: $prim, o: Ordering) {
                let o = rt::resolve_ordering(o, rt::OpKind::Store, Location::caller());
                if self.id != 0 && rt::tso_active() {
                    rt::tso_store(self.id, v as u64, o, $tag);
                    // Mirror inside the token window (no physical race).
                    self.inner.store(v, o);
                    return;
                }
                let id = self.id;
                rt::model_op(
                    || self.inner.store(v, o),
                    |_, st| {
                        rt::set_object(st, id, v as u64);
                        rt::hb_store(st, id, o);
                        (v as u64, format!(concat!($tag, "#{} store {}"), id, v))
                    },
                )
            }

            #[track_caller]
            pub fn swap(&self, v: $prim, o: Ordering) -> $prim {
                let o = rt::resolve_ordering(o, rt::OpKind::Rmw, Location::caller());
                if self.id != 0 && rt::tso_active() {
                    let old = rt::tso_rmw(self.id, |_| Some(v as u64), o, o, $tag) as $prim;
                    self.inner.store(v, Ordering::SeqCst);
                    return old;
                }
                let id = self.id;
                rt::model_op(
                    || self.inner.swap(v, o),
                    |r, st| {
                        rt::set_object(st, id, v as u64);
                        rt::hb_rmw(st, id, true, o, o);
                        (
                            *r as u64,
                            format!(concat!($tag, "#{} swap {} -> {}"), id, v, r),
                        )
                    },
                )
            }

            #[track_caller]
            pub fn fetch_add(&self, v: $prim, o: Ordering) -> $prim {
                let o = rt::resolve_ordering(o, rt::OpKind::Rmw, Location::caller());
                if self.id != 0 && rt::tso_active() {
                    let old = rt::tso_rmw(
                        self.id,
                        |c| Some((c as $prim).wrapping_add(v) as u64),
                        o,
                        o,
                        $tag,
                    ) as $prim;
                    self.inner.store(old.wrapping_add(v), Ordering::SeqCst);
                    return old;
                }
                let id = self.id;
                rt::model_op(
                    || self.inner.fetch_add(v, o),
                    |r, st| {
                        rt::set_object(st, id, r.wrapping_add(v) as u64);
                        rt::hb_rmw(st, id, true, o, o);
                        (
                            *r as u64,
                            format!(concat!($tag, "#{} fetch_add {} -> {}"), id, v, r),
                        )
                    },
                )
            }

            #[track_caller]
            pub fn fetch_sub(&self, v: $prim, o: Ordering) -> $prim {
                let o = rt::resolve_ordering(o, rt::OpKind::Rmw, Location::caller());
                if self.id != 0 && rt::tso_active() {
                    let old = rt::tso_rmw(
                        self.id,
                        |c| Some((c as $prim).wrapping_sub(v) as u64),
                        o,
                        o,
                        $tag,
                    ) as $prim;
                    self.inner.store(old.wrapping_sub(v), Ordering::SeqCst);
                    return old;
                }
                let id = self.id;
                rt::model_op(
                    || self.inner.fetch_sub(v, o),
                    |r, st| {
                        rt::set_object(st, id, r.wrapping_sub(v) as u64);
                        rt::hb_rmw(st, id, true, o, o);
                        (
                            *r as u64,
                            format!(concat!($tag, "#{} fetch_sub {} -> {}"), id, v, r),
                        )
                    },
                )
            }

            #[track_caller]
            pub fn compare_exchange(
                &self,
                cur: $prim,
                new: $prim,
                ok: Ordering,
                err: Ordering,
            ) -> Result<$prim, $prim> {
                let loc = Location::caller();
                let ok = rt::resolve_ordering(ok, rt::OpKind::Rmw, loc);
                let err = rt::resolve_ordering(err, rt::OpKind::Load, loc);
                if self.id != 0 && rt::tso_active() {
                    let old = rt::tso_rmw(
                        self.id,
                        |c| {
                            if c == cur as u64 {
                                Some(new as u64)
                            } else {
                                None
                            }
                        },
                        ok,
                        err,
                        $tag,
                    ) as $prim;
                    return if old == cur {
                        self.inner.store(new, Ordering::SeqCst);
                        Ok(old)
                    } else {
                        Err(old)
                    };
                }
                let id = self.id;
                rt::model_op(
                    || self.inner.compare_exchange(cur, new, ok, err),
                    |r, st| {
                        if r.is_ok() {
                            rt::set_object(st, id, new as u64);
                        }
                        rt::hb_rmw(st, id, r.is_ok(), ok, err);
                        let obs = match r {
                            Ok(v) | Err(v) => *v as u64,
                        };
                        (
                            obs,
                            format!(concat!($tag, "#{} cas {}->{} = {:?}"), id, cur, new, r),
                        )
                    },
                )
            }

            #[track_caller]
            pub fn compare_exchange_weak(
                &self,
                cur: $prim,
                new: $prim,
                ok: Ordering,
                err: Ordering,
            ) -> Result<$prim, $prim> {
                // The model never fails spuriously.
                self.compare_exchange(cur, new, ok, err)
            }
        }

        impl Drop for $name {
            fn drop(&mut self) {
                rt::unregister_object(self.id);
            }
        }

        impl std::fmt::Debug for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                f.debug_tuple(stringify!($name)).field(&self.inner).finish()
            }
        }
    };
}

int_atomic!(AtomicU8, std::sync::atomic::AtomicU8, u8, "AtomicU8");
int_atomic!(AtomicU32, std::sync::atomic::AtomicU32, u32, "AtomicU32");
int_atomic!(AtomicU64, std::sync::atomic::AtomicU64, u64, "AtomicU64");
int_atomic!(AtomicI64, std::sync::atomic::AtomicI64, i64, "AtomicI64");

pub struct AtomicBool {
    inner: std::sync::atomic::AtomicBool,
    id: u64,
}

impl AtomicBool {
    pub fn new(v: bool) -> Self {
        Self {
            inner: std::sync::atomic::AtomicBool::new(v),
            id: rt::register_object(u64::from(v)),
        }
    }

    #[track_caller]
    pub fn load(&self, o: Ordering) -> bool {
        let o = rt::resolve_ordering(o, rt::OpKind::Load, Location::caller());
        if self.id != 0 && rt::tso_active() {
            return rt::tso_load(self.id, o, "AtomicBool") != 0;
        }
        let id = self.id;
        rt::model_op(
            || self.inner.load(o),
            |r, st| {
                rt::hb_load(st, id, o);
                (u64::from(*r), format!("AtomicBool#{id} load -> {r}"))
            },
        )
    }

    #[track_caller]
    pub fn store(&self, v: bool, o: Ordering) {
        let o = rt::resolve_ordering(o, rt::OpKind::Store, Location::caller());
        if self.id != 0 && rt::tso_active() {
            rt::tso_store(self.id, u64::from(v), o, "AtomicBool");
            self.inner.store(v, o);
            return;
        }
        let id = self.id;
        rt::model_op(
            || self.inner.store(v, o),
            |_, st| {
                rt::set_object(st, id, u64::from(v));
                rt::hb_store(st, id, o);
                (u64::from(v), format!("AtomicBool#{id} store {v}"))
            },
        )
    }

    #[track_caller]
    pub fn swap(&self, v: bool, o: Ordering) -> bool {
        let o = rt::resolve_ordering(o, rt::OpKind::Rmw, Location::caller());
        if self.id != 0 && rt::tso_active() {
            let old = rt::tso_rmw(self.id, |_| Some(u64::from(v)), o, o, "AtomicBool") != 0;
            self.inner.store(v, Ordering::SeqCst);
            return old;
        }
        let id = self.id;
        rt::model_op(
            || self.inner.swap(v, o),
            |r, st| {
                rt::set_object(st, id, u64::from(v));
                rt::hb_rmw(st, id, true, o, o);
                (u64::from(*r), format!("AtomicBool#{id} swap {v} -> {r}"))
            },
        )
    }
}

impl Drop for AtomicBool {
    fn drop(&mut self) {
        rt::unregister_object(self.id);
    }
}

impl std::fmt::Debug for AtomicBool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("AtomicBool").field(&self.inner).finish()
    }
}

pub struct AtomicPtr<T> {
    inner: std::sync::atomic::AtomicPtr<T>,
    id: u64,
}

impl<T> AtomicPtr<T> {
    pub fn new(p: *mut T) -> Self {
        Self {
            inner: std::sync::atomic::AtomicPtr::new(p),
            id: rt::register_ptr_object(p as usize),
        }
    }

    #[track_caller]
    pub fn load(&self, o: Ordering) -> *mut T {
        let o = rt::resolve_ordering(o, rt::OpKind::Load, Location::caller());
        if self.id != 0 && rt::tso_active() {
            return rt::tso_ptr_load(self.id, o) as *mut T;
        }
        let id = self.id;
        rt::model_op(
            || self.inner.load(o),
            |r, st| {
                let ord = rt::ptr_ord(st, *r as usize);
                rt::hb_load(st, id, o);
                (ord, format!("AtomicPtr#{id} load -> ptr:{ord}"))
            },
        )
    }

    #[track_caller]
    pub fn store(&self, p: *mut T, o: Ordering) {
        let o = rt::resolve_ordering(o, rt::OpKind::Store, Location::caller());
        if self.id != 0 && rt::tso_active() {
            rt::tso_ptr_store(self.id, p as usize, o);
            self.inner.store(p, o);
            return;
        }
        let id = self.id;
        rt::model_op(
            || self.inner.store(p, o),
            |_, st| {
                let ord = rt::ptr_ord(st, p as usize);
                rt::set_object(st, id, ord);
                rt::hb_store(st, id, o);
                (ord, format!("AtomicPtr#{id} store ptr:{ord}"))
            },
        )
    }
}

impl<T> Drop for AtomicPtr<T> {
    fn drop(&mut self) {
        rt::unregister_object(self.id);
    }
}

impl<T> std::fmt::Debug for AtomicPtr<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("AtomicPtr").field(&self.inner).finish()
    }
}

/// A memory fence is a pure yield point under the SC explorer
/// (interleavings are already sequentially consistent), a store-buffer
/// drain point under the TSO explorer when SeqCst, and a real fence
/// otherwise. Either way it creates its C11 fence edges for
/// happens-before tracking. When the minimization audit overrides a
/// fence down to `Relaxed`, the real fence is skipped (`std`'s panics on
/// `Relaxed`) but the yield point is kept, so schedules stay aligned.
#[track_caller]
pub fn fence(o: Ordering) {
    let o = rt::resolve_ordering(o, rt::OpKind::Fence, Location::caller());
    if rt::tso_active() {
        rt::tso_fence(o);
        if o != Ordering::Relaxed {
            std::sync::atomic::fence(o);
        }
        return;
    }
    rt::model_op(
        || {
            if o != Ordering::Relaxed {
                std::sync::atomic::fence(o);
            }
        },
        |_, st| {
            rt::hb_fence(st, o);
            (0, format!("fence({o:?})"))
        },
    );
}

/// A plain, non-atomic memory cell whose accesses the explorer
/// race-checks under [`crate::Config::check_races`].
///
/// [`read`](Self::read) and [`write`](Self::write) record a checked
/// access (a yield point plus a happens-before check — on a race the
/// execution fails with a replayable trail *before* the returned pointer
/// could be dereferenced); [`speculative`](Self::speculative) is an
/// unchecked escape hatch for by-design benign races (a Chase-Lev
/// thief's speculative slot read, validated by the subsequent CAS and
/// discarded on failure). Outside an exploration the cell degrades to a
/// transparent `UnsafeCell`.
///
/// The returned pointers carry the usual `UnsafeCell` obligations: the
/// caller's protocol — not this type — must justify the dereference.
pub struct RaceCell<T> {
    inner: std::cell::UnsafeCell<T>,
    id: u64,
}

// SAFETY: RaceCell is a shared mutable cell by design — the same contract
// as `UnsafeCell` behind the checked-access API. Callers synchronize
// accesses via their own protocol; under `check_races` the explorer
// verifies exactly that.
unsafe impl<T: Send> Send for RaceCell<T> {}
// SAFETY: see the `Send` impl above.
unsafe impl<T: Send> Sync for RaceCell<T> {}

impl<T> RaceCell<T> {
    pub fn new(t: T) -> Self {
        Self {
            inner: std::cell::UnsafeCell::new(t),
            id: rt::register_race_var(),
        }
    }

    /// Record a checked plain read; dereference the pointer promptly
    /// (before this thread's next yield point) for the check to be sound.
    pub fn read(&self) -> *const T {
        rt::race_access(self.id, false, "RaceCell");
        self.inner.get()
    }

    /// Record a checked plain write; dereference promptly, as with
    /// [`read`](Self::read).
    pub fn write(&self) -> *mut T {
        rt::race_access(self.id, true, "RaceCell");
        self.inner.get()
    }

    /// Unchecked access: no yield point, no happens-before check. Only
    /// for reads that are racy *by design* and validated out-of-band.
    pub fn speculative(&self) -> *const T {
        self.inner.get()
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut()
    }
}

impl<T> Drop for RaceCell<T> {
    fn drop(&mut self) {
        rt::unregister_race_var(self.id);
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for RaceCell<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RaceCell").finish_non_exhaustive()
    }
}

/// Model mutex with the `parking_lot` API shape (`lock()` returns the
/// guard directly). Under the explorer, acquisition order is a scheduling
/// decision and contended threads are blocked, not spinning.
pub struct Mutex<T: ?Sized> {
    id: u64,
    inner: StdMutex<T>,
}

impl<T> Mutex<T> {
    pub fn new(t: T) -> Self {
        Self {
            id: rt::register_mutex(),
            inner: StdMutex::new(t),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let modeled = self.id != 0 && rt::model_lock(self.id);
        MutexGuard {
            id: if modeled { self.id } else { 0 },
            inner: self.inner.lock().unwrap_or_else(|e| e.into_inner()),
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Drop for Mutex<T> {
    fn drop(&mut self) {
        rt::unregister_mutex(self.id);
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

pub struct MutexGuard<'a, T: ?Sized> {
    id: u64,
    inner: std::sync::MutexGuard<'a, T>,
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        if self.id != 0 {
            rt::model_unlock(self.id);
        }
    }
}
