//! Model synchronization primitives.
//!
//! Each type wraps the real `std` primitive for storage; under an active
//! explorer every operation first passes through a yield point (see
//! [`crate::rt`]), so the explorer controls the interleaving while the
//! actual memory access stays an ordinary atomic operation. Outside an
//! exploration (or while unwinding during teardown) the wrappers delegate
//! straight to the inner primitive, so code instrumented with these types
//! still runs correctly under plain threads.
//!
//! Orderings are accepted for API compatibility. By default the explorer
//! enumerates sequentially consistent interleavings and ignores them; with
//! [`crate::Config::tso`] set, stores/loads/RMWs/fences additionally route
//! through an x86-TSO store-buffer model in [`crate::rt`] — non-SeqCst
//! stores are buffered per thread until a drain point and the *model*
//! value is returned, so store-buffering reorderings become reachable.
//! Atomics participating in TSO exploration must be created inside the
//! explored closure (objects registered outside an execution have id 0 and
//! fall back to the sequentially consistent path).

use crate::rt;
pub use std::sync::atomic::Ordering;
use std::sync::Mutex as StdMutex;

macro_rules! int_atomic {
    ($name:ident, $std:ty, $prim:ty, $tag:literal) => {
        pub struct $name {
            inner: $std,
            id: u64,
        }

        impl $name {
            pub fn new(v: $prim) -> Self {
                Self {
                    inner: <$std>::new(v),
                    id: rt::register_object(v as u64),
                }
            }

            pub fn load(&self, o: Ordering) -> $prim {
                if self.id != 0 && rt::tso_active() {
                    return rt::tso_load(self.id, $tag) as $prim;
                }
                let id = self.id;
                rt::model_op(
                    || self.inner.load(o),
                    |r, _| (*r as u64, format!(concat!($tag, "#{} load -> {}"), id, r)),
                )
            }

            pub fn store(&self, v: $prim, o: Ordering) {
                if self.id != 0 && rt::tso_active() {
                    rt::tso_store(self.id, v as u64, matches!(o, Ordering::SeqCst), $tag);
                    // Mirror inside the token window (no physical race).
                    self.inner.store(v, o);
                    return;
                }
                let id = self.id;
                rt::model_op(
                    || self.inner.store(v, o),
                    |_, st| {
                        rt::set_object(st, id, v as u64);
                        (v as u64, format!(concat!($tag, "#{} store {}"), id, v))
                    },
                )
            }

            pub fn swap(&self, v: $prim, o: Ordering) -> $prim {
                if self.id != 0 && rt::tso_active() {
                    let old = rt::tso_rmw(self.id, |_| Some(v as u64), $tag) as $prim;
                    self.inner.store(v, Ordering::SeqCst);
                    return old;
                }
                let id = self.id;
                rt::model_op(
                    || self.inner.swap(v, o),
                    |r, st| {
                        rt::set_object(st, id, v as u64);
                        (
                            *r as u64,
                            format!(concat!($tag, "#{} swap {} -> {}"), id, v, r),
                        )
                    },
                )
            }

            pub fn fetch_add(&self, v: $prim, o: Ordering) -> $prim {
                if self.id != 0 && rt::tso_active() {
                    let old =
                        rt::tso_rmw(self.id, |c| Some((c as $prim).wrapping_add(v) as u64), $tag)
                            as $prim;
                    self.inner.store(old.wrapping_add(v), Ordering::SeqCst);
                    return old;
                }
                let id = self.id;
                rt::model_op(
                    || self.inner.fetch_add(v, o),
                    |r, st| {
                        rt::set_object(st, id, r.wrapping_add(v) as u64);
                        (
                            *r as u64,
                            format!(concat!($tag, "#{} fetch_add {} -> {}"), id, v, r),
                        )
                    },
                )
            }

            pub fn fetch_sub(&self, v: $prim, o: Ordering) -> $prim {
                if self.id != 0 && rt::tso_active() {
                    let old =
                        rt::tso_rmw(self.id, |c| Some((c as $prim).wrapping_sub(v) as u64), $tag)
                            as $prim;
                    self.inner.store(old.wrapping_sub(v), Ordering::SeqCst);
                    return old;
                }
                let id = self.id;
                rt::model_op(
                    || self.inner.fetch_sub(v, o),
                    |r, st| {
                        rt::set_object(st, id, r.wrapping_sub(v) as u64);
                        (
                            *r as u64,
                            format!(concat!($tag, "#{} fetch_sub {} -> {}"), id, v, r),
                        )
                    },
                )
            }

            pub fn compare_exchange(
                &self,
                cur: $prim,
                new: $prim,
                ok: Ordering,
                err: Ordering,
            ) -> Result<$prim, $prim> {
                if self.id != 0 && rt::tso_active() {
                    let old = rt::tso_rmw(
                        self.id,
                        |c| {
                            if c == cur as u64 {
                                Some(new as u64)
                            } else {
                                None
                            }
                        },
                        $tag,
                    ) as $prim;
                    return if old == cur {
                        self.inner.store(new, Ordering::SeqCst);
                        Ok(old)
                    } else {
                        Err(old)
                    };
                }
                let id = self.id;
                rt::model_op(
                    || self.inner.compare_exchange(cur, new, ok, err),
                    |r, st| {
                        if r.is_ok() {
                            rt::set_object(st, id, new as u64);
                        }
                        let obs = match r {
                            Ok(v) | Err(v) => *v as u64,
                        };
                        (
                            obs,
                            format!(concat!($tag, "#{} cas {}->{} = {:?}"), id, cur, new, r),
                        )
                    },
                )
            }

            pub fn compare_exchange_weak(
                &self,
                cur: $prim,
                new: $prim,
                ok: Ordering,
                err: Ordering,
            ) -> Result<$prim, $prim> {
                // The model never fails spuriously.
                self.compare_exchange(cur, new, ok, err)
            }
        }

        impl Drop for $name {
            fn drop(&mut self) {
                rt::unregister_object(self.id);
            }
        }

        impl std::fmt::Debug for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                f.debug_tuple(stringify!($name)).field(&self.inner).finish()
            }
        }
    };
}

int_atomic!(AtomicU8, std::sync::atomic::AtomicU8, u8, "AtomicU8");
int_atomic!(AtomicU32, std::sync::atomic::AtomicU32, u32, "AtomicU32");
int_atomic!(AtomicU64, std::sync::atomic::AtomicU64, u64, "AtomicU64");
int_atomic!(AtomicI64, std::sync::atomic::AtomicI64, i64, "AtomicI64");

pub struct AtomicBool {
    inner: std::sync::atomic::AtomicBool,
    id: u64,
}

impl AtomicBool {
    pub fn new(v: bool) -> Self {
        Self {
            inner: std::sync::atomic::AtomicBool::new(v),
            id: rt::register_object(u64::from(v)),
        }
    }

    pub fn load(&self, o: Ordering) -> bool {
        if self.id != 0 && rt::tso_active() {
            return rt::tso_load(self.id, "AtomicBool") != 0;
        }
        let id = self.id;
        rt::model_op(
            || self.inner.load(o),
            |r, _| (u64::from(*r), format!("AtomicBool#{id} load -> {r}")),
        )
    }

    pub fn store(&self, v: bool, o: Ordering) {
        if self.id != 0 && rt::tso_active() {
            rt::tso_store(
                self.id,
                u64::from(v),
                matches!(o, Ordering::SeqCst),
                "AtomicBool",
            );
            self.inner.store(v, o);
            return;
        }
        let id = self.id;
        rt::model_op(
            || self.inner.store(v, o),
            |_, st| {
                rt::set_object(st, id, u64::from(v));
                (u64::from(v), format!("AtomicBool#{id} store {v}"))
            },
        )
    }

    pub fn swap(&self, v: bool, o: Ordering) -> bool {
        if self.id != 0 && rt::tso_active() {
            let old = rt::tso_rmw(self.id, |_| Some(u64::from(v)), "AtomicBool") != 0;
            self.inner.store(v, Ordering::SeqCst);
            return old;
        }
        let id = self.id;
        rt::model_op(
            || self.inner.swap(v, o),
            |r, st| {
                rt::set_object(st, id, u64::from(v));
                (u64::from(*r), format!("AtomicBool#{id} swap {v} -> {r}"))
            },
        )
    }
}

impl Drop for AtomicBool {
    fn drop(&mut self) {
        rt::unregister_object(self.id);
    }
}

impl std::fmt::Debug for AtomicBool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("AtomicBool").field(&self.inner).finish()
    }
}

pub struct AtomicPtr<T> {
    inner: std::sync::atomic::AtomicPtr<T>,
    id: u64,
}

impl<T> AtomicPtr<T> {
    pub fn new(p: *mut T) -> Self {
        Self {
            inner: std::sync::atomic::AtomicPtr::new(p),
            id: rt::register_ptr_object(p as usize),
        }
    }

    pub fn load(&self, o: Ordering) -> *mut T {
        if self.id != 0 && rt::tso_active() {
            return rt::tso_ptr_load(self.id) as *mut T;
        }
        let id = self.id;
        rt::model_op(
            || self.inner.load(o),
            |r, st| {
                let ord = rt::ptr_ord(st, *r as usize);
                (ord, format!("AtomicPtr#{id} load -> ptr:{ord}"))
            },
        )
    }

    pub fn store(&self, p: *mut T, o: Ordering) {
        if self.id != 0 && rt::tso_active() {
            rt::tso_ptr_store(self.id, p as usize, matches!(o, Ordering::SeqCst));
            self.inner.store(p, o);
            return;
        }
        let id = self.id;
        rt::model_op(
            || self.inner.store(p, o),
            |_, st| {
                let ord = rt::ptr_ord(st, p as usize);
                rt::set_object(st, id, ord);
                (ord, format!("AtomicPtr#{id} store ptr:{ord}"))
            },
        )
    }
}

impl<T> Drop for AtomicPtr<T> {
    fn drop(&mut self) {
        rt::unregister_object(self.id);
    }
}

impl<T> std::fmt::Debug for AtomicPtr<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("AtomicPtr").field(&self.inner).finish()
    }
}

/// A memory fence is a pure yield point under the SC explorer
/// (interleavings are already sequentially consistent), a store-buffer
/// drain point under the TSO explorer when SeqCst, and a real fence
/// otherwise.
pub fn fence(o: Ordering) {
    if rt::tso_active() {
        rt::tso_fence(matches!(o, Ordering::SeqCst));
        std::sync::atomic::fence(o);
        return;
    }
    rt::model_op(
        || std::sync::atomic::fence(o),
        |_, _| (0, format!("fence({o:?})")),
    );
}

/// Model mutex with the `parking_lot` API shape (`lock()` returns the
/// guard directly). Under the explorer, acquisition order is a scheduling
/// decision and contended threads are blocked, not spinning.
pub struct Mutex<T: ?Sized> {
    id: u64,
    inner: StdMutex<T>,
}

impl<T> Mutex<T> {
    pub fn new(t: T) -> Self {
        Self {
            id: rt::register_mutex(),
            inner: StdMutex::new(t),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let modeled = self.id != 0 && rt::model_lock(self.id);
        MutexGuard {
            id: if modeled { self.id } else { 0 },
            inner: self.inner.lock().unwrap_or_else(|e| e.into_inner()),
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Drop for Mutex<T> {
    fn drop(&mut self) {
        rt::unregister_mutex(self.id);
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

pub struct MutexGuard<'a, T: ?Sized> {
    id: u64,
    inner: std::sync::MutexGuard<'a, T>,
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        if self.id != 0 {
            rt::model_unlock(self.id);
        }
    }
}
