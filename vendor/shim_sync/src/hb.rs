//! Vector-clock happens-before tracking for the explorer.
//!
//! When [`crate::Config::check_races`] is on, every event the cooperative
//! scheduler already intercepts — atomic loads/stores/RMWs, fences, mutex
//! lock/unlock, spawn/join — maintains a happens-before relation, and
//! every *plain* (non-atomic) access routed through
//! [`crate::sync::RaceCell`] is checked against it: two accesses to the
//! same cell, at least one a write, with neither ordered before the other,
//! are a data race and fail the exploration with a replayable trail even
//! though no assertion fired.
//!
//! The model follows FastTrack (Flanagan & Freund, PLDI 2009) for the
//! per-variable metadata — a last-write epoch plus *adaptive* read
//! metadata that stays a single epoch while reads are totally ordered and
//! escalates to a full read vector only when concurrent readers appear —
//! and the C11/C++20 synchronizes-with rules for where edges come from:
//!
//! * a Release/AcqRel/SeqCst store publishes the writer's clock on the
//!   object; an Acquire/AcqRel/SeqCst load joins it;
//! * a Relaxed store publishes the writer's clock *as of its last
//!   release-class fence* (the fence-before-store rule); a Relaxed load
//!   banks the object's clock into a pending set that a later
//!   acquire-class fence joins (the load-before-fence rule);
//! * an RMW continues the release sequence of the store it read
//!   (C++20: the object clock is joined, not replaced), so fetch-ops
//!   never truncate an edge published before them;
//! * mutexes carry a clock from unlock to lock; spawn and join edge the
//!   parent and child clocks directly.
//!
//! The explorer itself enumerates sequentially consistent (or x86-TSO)
//! interleavings, so each load reads the latest store of its object in
//! the current schedule and one clock per object is exact — no
//! modification-order approximation is needed.

use std::sync::atomic::Ordering;

/// A vector clock: component `t` is the number of events thread `t` had
/// performed when this clock was last synchronized with it. Indexing is
/// implicit-zero beyond the stored length, so clocks of different widths
/// compare fine.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub(crate) struct VClock(Vec<u64>);

impl VClock {
    pub(crate) fn get(&self, t: usize) -> u64 {
        self.0.get(t).copied().unwrap_or(0)
    }

    pub(crate) fn set(&mut self, t: usize, v: u64) {
        if self.0.len() <= t {
            self.0.resize(t + 1, 0);
        }
        self.0[t] = v;
    }

    /// Pointwise maximum (`self ⊔ other`).
    pub(crate) fn join(&mut self, other: &VClock) {
        if self.0.len() < other.0.len() {
            self.0.resize(other.0.len(), 0);
        }
        for (s, &o) in self.0.iter_mut().zip(other.0.iter()) {
            *s = (*s).max(o);
        }
    }

    /// Whether the epoch `(t, c)` happens-before (or is) this clock.
    pub(crate) fn covers(&self, t: usize, c: u64) -> bool {
        self.get(t) >= c
    }

    /// Order-insensitive-but-indexed digest for state hashing.
    pub(crate) fn digest(&self, mix2: fn(u64, u64) -> u64) -> u64 {
        let mut h = 0u64;
        for (i, &v) in self.0.iter().enumerate() {
            if v != 0 {
                h ^= mix2(i as u64 + 1, v);
            }
        }
        h
    }
}

/// Per-thread happens-before state.
#[derive(Clone, Debug, Default)]
pub(crate) struct ThreadHb {
    /// The thread's own clock. `vc[t]` for the thread's own index is its
    /// event counter, ticked on every instrumented operation.
    pub vc: VClock,
    /// Snapshot of `vc` at the thread's last Release/AcqRel/SeqCst fence:
    /// what a subsequent *Relaxed* store publishes (fence-before-store).
    pub rel_fence: VClock,
    /// Accumulated clocks of objects read with *Relaxed* loads since the
    /// last acquire-class fence; joined into `vc` at that fence
    /// (load-before-fence).
    pub acq_pending: VClock,
}

/// FastTrack-style adaptive read metadata.
#[derive(Clone, Debug)]
pub(crate) enum Reads {
    /// No reads since the last write.
    None,
    /// All reads so far are totally ordered; only the latest epoch matters.
    Epoch(usize, u64),
    /// Concurrent readers were observed; full per-thread read clocks.
    Vec(VClock),
}

/// Race-checked metadata of one plain (non-atomic) variable.
#[derive(Clone, Debug)]
pub(crate) struct VarState {
    /// Epoch of the last write (thread, clock), if any.
    pub write: Option<(usize, u64)>,
    pub reads: Reads,
}

impl VarState {
    pub(crate) fn new() -> Self {
        VarState {
            write: None,
            reads: Reads::None,
        }
    }
}

fn is_acquire(o: Ordering) -> bool {
    matches!(o, Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst)
}

fn is_release(o: Ordering) -> bool {
    matches!(o, Ordering::Release | Ordering::AcqRel | Ordering::SeqCst)
}

/// The full happens-before state of one execution, embedded in the
/// explorer's `RtState` and updated inside the scheduler lock.
#[derive(Debug, Default)]
pub(crate) struct HbState {
    pub threads: Vec<ThreadHb>,
    /// Object id (atomic or mutex) -> clock its last release-class
    /// publication carries.
    pub objects: std::collections::HashMap<u64, VClock>,
    /// Race-checked plain variable id -> FastTrack metadata.
    pub vars: std::collections::HashMap<u64, VarState>,
}

impl HbState {
    /// Ensure thread `t` exists and return it (threads are appended by
    /// spawn in index order, so this only ever extends by one).
    fn thread(&mut self, t: usize) -> &mut ThreadHb {
        while self.threads.len() <= t {
            let idx = self.threads.len();
            let mut th = ThreadHb::default();
            th.vc.set(idx, 1);
            self.threads.push(th);
        }
        &mut self.threads[t]
    }

    /// Advance thread `t`'s own component: every instrumented event gets a
    /// distinct epoch.
    pub(crate) fn tick(&mut self, t: usize) {
        let th = self.thread(t);
        let c = th.vc.get(t) + 1;
        th.vc.set(t, c);
    }

    /// Atomic load of object `id` with ordering `o`.
    pub(crate) fn atomic_load(&mut self, t: usize, id: u64, o: Ordering) {
        self.tick(t);
        let Some(msg) = self.objects.get(&id).cloned() else {
            return;
        };
        let th = self.thread(t);
        if is_acquire(o) {
            th.vc.join(&msg);
        } else {
            th.acq_pending.join(&msg);
        }
    }

    /// Atomic store to object `id` with ordering `o`. A release-class
    /// store starts a fresh release sequence (replacing the object clock);
    /// a relaxed store publishes only what the thread's last release
    /// fence covered.
    pub(crate) fn atomic_store(&mut self, t: usize, id: u64, o: Ordering) {
        self.tick(t);
        let th = self.thread(t);
        let published = if is_release(o) {
            th.vc.clone()
        } else {
            th.rel_fence.clone()
        };
        self.objects.insert(id, published);
    }

    /// Atomic read-modify-write (successful). Acquires like a load,
    /// releases like a store, and *continues* the release sequence: the
    /// published clock joins the previous one instead of replacing it
    /// (C++20 [intro.races]: an RMW is part of the release sequence headed
    /// by the store it read from).
    pub(crate) fn atomic_rmw(&mut self, t: usize, id: u64, o: Ordering) {
        self.tick(t);
        let prev = self.objects.get(&id).cloned().unwrap_or_default();
        let th = self.thread(t);
        if is_acquire(o) {
            th.vc.join(&prev);
        } else {
            th.acq_pending.join(&prev);
        }
        let mut published = if is_release(o) {
            th.vc.clone()
        } else {
            th.rel_fence.clone()
        };
        published.join(&prev);
        self.objects.insert(id, published);
    }

    /// Memory fence with ordering `o`.
    pub(crate) fn fence(&mut self, t: usize, o: Ordering) {
        self.tick(t);
        let th = self.thread(t);
        if is_acquire(o) {
            let pending = std::mem::take(&mut th.acq_pending);
            th.vc.join(&pending);
        }
        if is_release(o) {
            th.rel_fence = th.vc.clone();
        }
    }

    /// Mutex acquisition: join the clock the last unlock published.
    pub(crate) fn lock(&mut self, t: usize, id: u64) {
        self.tick(t);
        let Some(msg) = self.objects.get(&id).cloned() else {
            return;
        };
        self.thread(t).vc.join(&msg);
    }

    /// Mutex release: publish the holder's clock on the mutex.
    pub(crate) fn unlock(&mut self, t: usize, id: u64) {
        self.tick(t);
        let vc = self.thread(t).vc.clone();
        self.objects.insert(id, vc);
    }

    /// Spawn edge: the child starts with (a copy of) the parent's clock.
    pub(crate) fn spawn(&mut self, parent: usize, child: usize) {
        self.tick(parent);
        let pvc = self.thread(parent).vc.clone();
        let th = self.thread(child);
        th.vc.join(&pvc);
        let c = th.vc.get(child) + 1;
        th.vc.set(child, c);
    }

    /// Join edge: the parent inherits everything the child did.
    pub(crate) fn join(&mut self, parent: usize, child: usize) {
        let cvc = self.thread(child).vc.clone();
        self.tick(parent);
        self.thread(parent).vc.join(&cvc);
    }

    /// Plain read of race-checked variable `id` by thread `t`. Returns a
    /// race description against the last write if one is concurrent.
    pub(crate) fn plain_read(&mut self, t: usize, id: u64, tag: &str) -> Option<String> {
        self.tick(t);
        let vc = self.thread(t).vc.clone();
        let var = self.vars.entry(id).or_insert_with(VarState::new);
        if let Some((wt, wc)) = var.write {
            if wt != t && !vc.covers(wt, wc) {
                return Some(format!(
                    "data race on {tag}#{id}: plain read by t{t} concurrent with plain write by t{wt} (no happens-before edge)"
                ));
            }
        }
        let epoch = vc.get(t);
        var.reads = match std::mem::replace(&mut var.reads, Reads::None) {
            Reads::None => Reads::Epoch(t, epoch),
            Reads::Epoch(rt, rc) => {
                if rt == t || vc.covers(rt, rc) {
                    // Still totally ordered: the new read supersedes.
                    Reads::Epoch(t, epoch)
                } else {
                    // Concurrent readers: escalate to a read vector.
                    let mut rv = VClock::default();
                    rv.set(rt, rc);
                    rv.set(t, epoch);
                    Reads::Vec(rv)
                }
            }
            Reads::Vec(mut rv) => {
                rv.set(t, epoch.max(rv.get(t)));
                Reads::Vec(rv)
            }
        };
        None
    }

    /// Plain write of race-checked variable `id` by thread `t`. Returns a
    /// race description against a concurrent write or read.
    pub(crate) fn plain_write(&mut self, t: usize, id: u64, tag: &str) -> Option<String> {
        self.tick(t);
        let vc = self.thread(t).vc.clone();
        let var = self.vars.entry(id).or_insert_with(VarState::new);
        if let Some((wt, wc)) = var.write {
            if wt != t && !vc.covers(wt, wc) {
                return Some(format!(
                    "data race on {tag}#{id}: plain write by t{t} concurrent with plain write by t{wt} (no happens-before edge)"
                ));
            }
        }
        match &var.reads {
            Reads::None => {}
            Reads::Epoch(rt, rc) => {
                if *rt != t && !vc.covers(*rt, *rc) {
                    return Some(format!(
                        "data race on {tag}#{id}: plain write by t{t} concurrent with plain read by t{rt} (no happens-before edge)"
                    ));
                }
            }
            Reads::Vec(rv) => {
                for rt in 0..self.threads.len() {
                    let rc = rv.get(rt);
                    if rc != 0 && rt != t && !vc.covers(rt, rc) {
                        return Some(format!(
                            "data race on {tag}#{id}: plain write by t{t} concurrent with plain read by t{rt} (no happens-before edge)"
                        ));
                    }
                }
            }
        }
        var.write = Some((t, vc.get(t)));
        var.reads = Reads::None;
        None
    }

    /// Digest of the whole happens-before state, mixed into the explorer's
    /// state hash when race checking is on — pruning a decision point is
    /// only sound if the pruned state agrees on everything that can still
    /// produce a violation, which now includes the clocks.
    pub(crate) fn digest(&self, mix2: fn(u64, u64) -> u64) -> u64 {
        let mut h = 0u64;
        for (i, th) in self.threads.iter().enumerate() {
            let t = th.vc.digest(mix2)
                ^ mix2(1, th.rel_fence.digest(mix2))
                ^ mix2(2, th.acq_pending.digest(mix2));
            h ^= mix2(i as u64 + 101, t);
        }
        for (&id, vc) in &self.objects {
            h ^= mix2(id.wrapping_mul(3), vc.digest(mix2));
        }
        for (&id, var) in &self.vars {
            let mut v = match var.write {
                Some((t, c)) => mix2(t as u64 + 7, c),
                None => 5,
            };
            v ^= match &var.reads {
                Reads::None => 0,
                Reads::Epoch(t, c) => mix2(*t as u64 + 13, *c),
                Reads::Vec(rv) => mix2(17, rv.digest(mix2)),
            };
            h ^= mix2(id.wrapping_mul(5), v);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn release_acquire_orders_plain_access() {
        let mut hb = HbState::default();
        // t0 writes x, releases flag; t1 acquires flag, reads x.
        assert!(hb.plain_write(0, 1, "RaceCell").is_none());
        hb.atomic_store(0, 2, Ordering::Release);
        hb.atomic_load(1, 2, Ordering::Acquire);
        assert!(hb.plain_read(1, 1, "RaceCell").is_none());
    }

    #[test]
    fn relaxed_flag_does_not_order() {
        let mut hb = HbState::default();
        assert!(hb.plain_write(0, 1, "RaceCell").is_none());
        hb.atomic_store(0, 2, Ordering::Relaxed);
        hb.atomic_load(1, 2, Ordering::Relaxed);
        assert!(hb.plain_read(1, 1, "RaceCell").is_some());
    }

    #[test]
    fn fences_restore_the_edge_around_relaxed_accesses() {
        let mut hb = HbState::default();
        assert!(hb.plain_write(0, 1, "RaceCell").is_none());
        hb.fence(0, Ordering::Release); // fence-before-store
        hb.atomic_store(0, 2, Ordering::Relaxed);
        hb.atomic_load(1, 2, Ordering::Relaxed);
        hb.fence(1, Ordering::Acquire); // load-before-fence
        assert!(hb.plain_read(1, 1, "RaceCell").is_none());
    }

    #[test]
    fn rmw_continues_the_release_sequence() {
        let mut hb = HbState::default();
        assert!(hb.plain_write(0, 1, "RaceCell").is_none());
        hb.atomic_store(0, 2, Ordering::Release);
        // A relaxed RMW by a third party must not truncate t0's edge.
        hb.atomic_rmw(2, 2, Ordering::Relaxed);
        hb.atomic_load(1, 2, Ordering::Acquire);
        assert!(hb.plain_read(1, 1, "RaceCell").is_none());
    }

    #[test]
    fn relaxed_store_truncates_the_object_clock() {
        let mut hb = HbState::default();
        assert!(hb.plain_write(0, 1, "RaceCell").is_none());
        hb.atomic_store(0, 2, Ordering::Release);
        // A later plain relaxed store (same thread, no fence) replaces the
        // clock with the (empty) fence snapshot: acquirers get nothing.
        hb.atomic_store(0, 2, Ordering::Relaxed);
        hb.atomic_load(1, 2, Ordering::Acquire);
        assert!(hb.plain_read(1, 1, "RaceCell").is_some());
    }

    #[test]
    fn mutex_and_spawn_join_edges() {
        let mut hb = HbState::default();
        hb.spawn(0, 1);
        assert!(hb.plain_write(1, 1, "RaceCell").is_none()); // child sees parent
        hb.lock(1, 9);
        hb.unlock(1, 9);
        hb.lock(2, 9);
        assert!(hb.plain_read(2, 1, "RaceCell").is_none()); // via mutex
        hb.join(0, 1);
        assert!(hb.plain_write(0, 1, "RaceCell").is_some()); // t2's read unseen
        hb.join(0, 2);
        assert!(hb.plain_write(0, 1, "RaceCell").is_none());
    }

    #[test]
    fn adaptive_reads_escalate_and_catch_concurrent_reader() {
        let mut hb = HbState::default();
        hb.spawn(0, 1);
        hb.spawn(0, 2);
        assert!(hb.plain_read(1, 1, "RaceCell").is_none());
        assert!(hb.plain_read(2, 1, "RaceCell").is_none()); // concurrent: escalates
                                                            // t0 joins only t1; t2's read is still concurrent with the write.
        hb.join(0, 1);
        assert!(hb.plain_write(0, 1, "RaceCell").is_some());
    }
}
