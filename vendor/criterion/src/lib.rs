//! Offline shim for the subset of `criterion` this workspace uses.
//!
//! Provides [`Criterion`], [`BenchmarkGroup`], [`Bencher`] and the
//! [`criterion_group!`]/[`criterion_main!`] macros with the real crate's
//! call shapes, backed by a simple calibrated timing loop instead of
//! criterion's statistical machinery: each benchmark is warmed up, then
//! timed over `sample_size` batches, and the median ns/iter is printed.
//! Good enough to compare the relative cost of deque backends and
//! schedulers on one machine; not a statistics engine.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Target wall time for one measured batch.
const BATCH_TARGET: Duration = Duration::from_millis(10);
/// Wall time spent warming up (page faults, branch predictors, freq ramp).
const WARMUP_TARGET: Duration = Duration::from_millis(50);

/// Times one benchmark routine.
#[derive(Debug)]
pub struct Bencher {
    /// Median nanoseconds per iteration, filled in by [`Bencher::iter`].
    ns_per_iter: f64,
    sample_size: usize,
}

impl Bencher {
    /// Time `routine` repeatedly and record its per-iteration cost.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm up and calibrate the batch size.
        let mut iters_per_batch: u64 = 1;
        let warmup_start = Instant::now();
        loop {
            let t0 = Instant::now();
            for _ in 0..iters_per_batch {
                std::hint::black_box(routine());
            }
            let dt = t0.elapsed();
            if warmup_start.elapsed() >= WARMUP_TARGET && dt >= BATCH_TARGET / 2 {
                break;
            }
            if dt < BATCH_TARGET {
                iters_per_batch = iters_per_batch.saturating_mul(2);
            }
        }
        // Measure.
        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size.max(1) {
            let t0 = Instant::now();
            for _ in 0..iters_per_batch {
                std::hint::black_box(routine());
            }
            samples.push(t0.elapsed().as_nanos() as f64 / iters_per_batch as f64);
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        self.ns_per_iter = samples[samples.len() / 2];
    }
}

fn report(id: &str, ns: f64) {
    if ns >= 1e6 {
        println!("{id:<44} {:>12.3} ms/iter", ns / 1e6);
    } else if ns >= 1e3 {
        println!("{id:<44} {:>12.3} µs/iter", ns / 1e3);
    } else {
        println!("{id:<44} {:>12.1} ns/iter", ns);
    }
}

/// The benchmark driver handed to `criterion_group!` functions.
#[derive(Debug, Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Accepted for call-compatibility with the real crate; no-op here.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Run one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            ns_per_iter: f64::NAN,
            sample_size: 10,
        };
        f(&mut b);
        report(id, b.ns_per_iter);
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
            sample_size: 10,
        }
    }
}

/// A group of related benchmarks sharing a sample size.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Number of timed batches per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Run one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            ns_per_iter: f64::NAN,
            sample_size: self.sample_size,
        };
        f(&mut b);
        report(&format!("{}/{}", self.name, id), b.ns_per_iter);
        self
    }

    /// Finish the group (cosmetic in this shim).
    pub fn finish(self) {}
}

/// Re-export of [`std::hint::black_box`] for call-site compatibility.
pub use std::hint::black_box;

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        let mut ran = 0u64;
        c.bench_function("noop", |b| {
            b.iter(|| {
                ran += 1;
            })
        });
        assert!(ran > 0);
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(5);
        group.bench_function("one", |b| b.iter(|| 1 + 1));
        group.finish();
    }
}
