//! Offline shim for the subset of `proptest` this workspace uses.
//!
//! The build container has no crates.io access, so the workspace vendors a
//! minimal, deterministic property-testing harness with the same API shape
//! as the real crate for the features the tests exercise:
//!
//! * integer-range strategies (`0u32..1000`), [`strategy::Just`],
//!   [`prop_oneof!`], `prop_map` / `prop_flat_map`, and
//!   [`collection::vec`];
//! * the [`proptest!`] test macro with an optional
//!   `#![proptest_config(...)]` attribute;
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`].
//!
//! Differences from the real crate: generation is seeded deterministically
//! from the test's module path and case index (every run explores the same
//! inputs), and there is **no shrinking** — a failing case reports the
//! case number so it can be replayed under a debugger, not a minimised
//! input. For the model-based deque tests and scheduler-equivalence
//! properties in this repository, determinism is a feature: CI failures
//! reproduce locally byte-for-byte.

#![warn(missing_docs)]
// The `proptest!` doc example necessarily shows a `#[test]` inside the
// macro invocation — that is the crate's API shape, not a mistaken test.
#![allow(clippy::test_attr_in_doctest)]

/// Deterministic pseudo-random generation for test cases.
pub mod test_runner {
    /// Subset of the real `ProptestConfig`: only the case count is used.
    #[derive(Debug, Clone, Copy)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Run `cases` generated inputs per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Why a single generated case failed.
    ///
    /// Property bodies may return `Result<(), TestCaseError>` (via `?`);
    /// the [`proptest!`](crate::proptest) harness panics on `Err`, failing
    /// the test with the case number for deterministic replay.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub enum TestCaseError {
        /// The property does not hold for this input.
        Fail(String),
        /// The input should be discarded (treated as a failure by this
        /// shim, which does not resample).
        Reject(String),
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "property failed: {m}"),
                TestCaseError::Reject(m) => write!(f, "input rejected: {m}"),
            }
        }
    }

    impl std::error::Error for TestCaseError {}

    /// Shorthand for a property body's result type.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// A splitmix64 generator seeded from the test name and case index.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Deterministic generator for one (test, case) pair.
        pub fn for_case(test_path: &str, case: u32) -> Self {
            // FNV-1a over the path, mixed with the case index.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_path.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng {
                state: h ^ (u64::from(case).wrapping_mul(0x9e37_79b9_7f4a_7c15)),
            }
        }

        /// Next 64 raw bits (splitmix64).
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0, "empty range has no values");
            // Lemire-style rejection to avoid modulo bias.
            let threshold = bound.wrapping_neg() % bound;
            loop {
                let r = self.next_u64();
                if r >= threshold {
                    return r % bound;
                }
            }
        }
    }
}

/// Strategies: composable random-value generators.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A generator of values of type `Value`.
    ///
    /// Unlike the real crate there is no value tree: `generate` directly
    /// produces a value (no shrinking).
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Produce one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { base: self, f }
        }

        /// Derive a second strategy from each generated value.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { base: self, f }
        }
    }

    /// Always produces a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        base: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.base.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Debug, Clone)]
    pub struct FlatMap<S, F> {
        base: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.base.generate(rng)).generate(rng)
        }
    }

    /// Uniform choice among alternatives (the [`prop_oneof!`](crate::prop_oneof) backing type).
    pub struct Union<T> {
        options: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Union<T> {
        /// Choose uniformly among `options` (must be non-empty).
        pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs an alternative");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].generate(rng)
        }
    }

    impl<T> std::fmt::Debug for Union<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("Union")
                .field("options", &self.options.len())
                .finish()
        }
    }

    /// Box a strategy as a trait object (used by [`prop_oneof!`](crate::prop_oneof)).
    pub fn boxed<T, S>(s: S) -> Box<dyn Strategy<Value = T>>
    where
        S: Strategy<Value = T> + 'static,
    {
        Box::new(s)
    }

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);

    macro_rules! int_range_strategy {
        ($($ty:ty),*) => {$(
            impl Strategy for Range<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty range has no values");
                    let width = (self.end as u64).wrapping_sub(self.start as u64);
                    (self.start as u64).wrapping_add(rng.below(width)) as $ty
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, usize);

    impl Strategy for Range<u64> {
        type Value = u64;
        fn generate(&self, rng: &mut TestRng) -> u64 {
            assert!(self.start < self.end, "empty range has no values");
            let width = self.end - self.start;
            self.start + rng.below(width)
        }
    }

    impl Strategy for Range<i32> {
        type Value = i32;
        fn generate(&self, rng: &mut TestRng) -> i32 {
            assert!(self.start < self.end, "empty range has no values");
            let width = (self.end as i64 - self.start as i64) as u64;
            (i64::from(self.start) + rng.below(width) as i64) as i32
        }
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A vector-length specification: an exact length or a half-open range.
    #[derive(Debug, Clone)]
    pub struct SizeRange(Range<usize>);

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> Self {
            SizeRange(exact..exact + 1)
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(range: Range<usize>) -> Self {
            SizeRange(range)
        }
    }

    /// Strategy for `Vec`s with a length drawn from `size` and elements
    /// drawn from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generate vectors of `element` values with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.0.clone().generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeMap`s; see [`btree_map`].
    #[derive(Debug, Clone)]
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: SizeRange,
    }

    /// Generate maps with a target size in `size`. As in the real crate,
    /// duplicate generated keys collapse, so a map may come out smaller
    /// than the drawn target (never smaller than 1 for a non-empty range).
    pub fn btree_map<K, V>(key: K, value: V, size: impl Into<SizeRange>) -> BTreeMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
    {
        BTreeMapStrategy {
            key,
            value,
            size: size.into(),
        }
    }

    impl<K, V> Strategy for BTreeMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
    {
        type Value = std::collections::BTreeMap<K::Value, V::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.0.clone().generate(rng);
            let mut map = std::collections::BTreeMap::new();
            // Colliding keys collapse; a few extra draws keep the map near
            // its target without risking an unbounded loop.
            for _ in 0..len.saturating_mul(3) {
                if map.len() >= len {
                    break;
                }
                map.insert(self.key.generate(rng), self.value.generate(rng));
            }
            map
        }
    }
}

/// `Option` strategies.
pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `Option`s; see [`of`].
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S>(S);

    /// Generate `Some` from `inner` about three times in four, else `None`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }
}

/// String strategies over a small regex subset.
pub mod string {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::fmt;
    use std::ops::RangeInclusive;

    /// A malformed or unsupported pattern.
    #[derive(Debug, Clone)]
    pub struct Error(String);

    impl fmt::Display for Error {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "string_regex: {}", self.0)
        }
    }

    impl std::error::Error for Error {}

    /// One regex atom: the characters it may produce and its repetition.
    #[derive(Debug, Clone)]
    struct Piece {
        ranges: Vec<RangeInclusive<char>>,
        min: usize,
        max: usize,
    }

    /// Strategy for strings matching a pattern; see [`string_regex`].
    #[derive(Debug, Clone)]
    pub struct RegexGeneratorStrategy {
        pieces: Vec<Piece>,
    }

    /// Generate strings matching a regex made of literal characters and
    /// character classes (`[a-z_]`, with `\\`-escapes), each optionally
    /// quantified with `{n}`, `{m,n}`, `?`, `*` or `+` (unbounded
    /// quantifiers are capped at 8 repetitions). This is the subset the
    /// workspace's tests use; anything else is an [`Error`].
    pub fn string_regex(pattern: &str) -> Result<RegexGeneratorStrategy, Error> {
        let mut chars = pattern.chars().peekable();
        let mut pieces = Vec::new();
        while let Some(c) = chars.next() {
            let ranges = match c {
                '[' => {
                    let mut ranges = Vec::new();
                    loop {
                        let lo = match chars.next() {
                            None => return Err(Error("unterminated class".into())),
                            Some(']') => break,
                            Some('\\') => chars
                                .next()
                                .ok_or_else(|| Error("dangling escape".into()))?,
                            Some(other) => other,
                        };
                        if chars.peek() == Some(&'-') {
                            chars.next();
                            let hi = match chars.next() {
                                None | Some(']') => {
                                    return Err(Error("class ends inside a range".into()))
                                }
                                Some('\\') => chars
                                    .next()
                                    .ok_or_else(|| Error("dangling escape".into()))?,
                                Some(other) => other,
                            };
                            if lo > hi {
                                return Err(Error(format!("inverted range {lo}-{hi}")));
                            }
                            ranges.push(lo..=hi);
                        } else {
                            ranges.push(lo..=lo);
                        }
                    }
                    if ranges.is_empty() {
                        return Err(Error("empty class".into()));
                    }
                    ranges
                }
                '\\' => {
                    let lit = chars
                        .next()
                        .ok_or_else(|| Error("dangling escape".into()))?;
                    vec![lit..=lit]
                }
                '(' | ')' | '|' | '.' | '^' | '$' => {
                    return Err(Error(format!("unsupported metacharacter `{c}`")))
                }
                lit => vec![lit..=lit],
            };
            let (min, max) = match chars.peek() {
                Some('{') => {
                    chars.next();
                    let mut spec = String::new();
                    for q in chars.by_ref() {
                        if q == '}' {
                            break;
                        }
                        spec.push(q);
                    }
                    let parse = |s: &str| {
                        s.parse::<usize>()
                            .map_err(|_| Error(format!("bad quantifier `{{{spec}}}`")))
                    };
                    match spec.split_once(',') {
                        Some((m, n)) => (parse(m)?, parse(n)?),
                        None => {
                            let n = parse(&spec)?;
                            (n, n)
                        }
                    }
                }
                Some('?') => {
                    chars.next();
                    (0, 1)
                }
                Some('*') => {
                    chars.next();
                    (0, 8)
                }
                Some('+') => {
                    chars.next();
                    (1, 8)
                }
                _ => (1, 1),
            };
            if min > max {
                return Err(Error(format!("quantifier minimum {min} exceeds {max}")));
            }
            pieces.push(Piece { ranges, min, max });
        }
        Ok(RegexGeneratorStrategy { pieces })
    }

    impl Strategy for RegexGeneratorStrategy {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let mut out = String::new();
            for p in &self.pieces {
                let n = p.min + rng.below((p.max - p.min + 1) as u64) as usize;
                let total: u64 = p
                    .ranges
                    .iter()
                    .map(|r| *r.end() as u64 - *r.start() as u64 + 1)
                    .sum();
                for _ in 0..n {
                    let mut pick = rng.below(total);
                    for r in &p.ranges {
                        let width = *r.end() as u64 - *r.start() as u64 + 1;
                        if pick < width {
                            out.push(
                                char::from_u32(*r.start() as u32 + pick as u32)
                                    .expect("ranges hold valid chars"),
                            );
                            break;
                        }
                        pick -= width;
                    }
                }
            }
            out
        }
    }
}

/// Everything a property test needs in scope.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Assert a condition inside a property; reports the generated case on
/// failure (no shrinking in this shim, so this is a plain assertion).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Assert equality inside a property (plain assertion in this shim).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Assert inequality inside a property (plain assertion in this shim).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Uniformly choose among alternative strategies of a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![ $( $crate::strategy::boxed($strat) ),+ ])
    };
}

/// Define `#[test]` functions whose arguments are drawn from strategies.
///
/// ```
/// use proptest::prelude::*;
///
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn addition_commutes(a in 0u32..1000, b in 0u32..1000) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// # fn main() {}
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $( #[test] fn $name:ident ( $( $arg:ident in $strat:expr ),* $(,)? ) $body:block )*
    ) => {
        $(
            #[test]
            fn $name() {
                let cfg: $crate::test_runner::ProptestConfig = $cfg;
                for case in 0..cfg.cases {
                    let mut rng = $crate::test_runner::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        case,
                    );
                    $( let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng); )*
                    // A panic or Err in the body fails the test; the
                    // deterministic seeding means the same case number
                    // reproduces it. The closure lets bodies use `?` with
                    // `TestCaseError`, as the real crate allows.
                    #[allow(clippy::redundant_closure_call)]
                    let result: $crate::test_runner::TestCaseResult = (|| {
                        $body
                        Ok(())
                    })();
                    if let Err(e) = result {
                        panic!("case {case} failed: {e}");
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_are_in_bounds_and_deterministic() {
        let mut a = crate::test_runner::TestRng::for_case("t", 0);
        let mut b = crate::test_runner::TestRng::for_case("t", 0);
        for _ in 0..1000 {
            let x = (5u32..17).generate(&mut a);
            assert!((5..17).contains(&x));
            assert_eq!(x, (5u32..17).generate(&mut b));
        }
    }

    #[test]
    fn oneof_covers_all_alternatives() {
        let s = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut rng = crate::test_runner::TestRng::for_case("cover", 0);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[s.generate(&mut rng) as usize] = true;
        }
        assert_eq!(seen, [false, true, true, true]);
    }

    #[test]
    fn vec_respects_size_range() {
        let s = crate::collection::vec(0u32..10, 3..7);
        let mut rng = crate::test_runner::TestRng::for_case("vec", 1);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((3..7).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn string_regex_matches_its_pattern() {
        let s = crate::string::string_regex("[!-~][ -~]{0,8}x\\]?").unwrap();
        let mut rng = crate::test_runner::TestRng::for_case("re", 0);
        for _ in 0..500 {
            let v = s.generate(&mut rng);
            assert!((2..=11).contains(&v.len()), "{v:?}");
            let first = v.chars().next().unwrap();
            assert!(('!'..='~').contains(&first), "{v:?}");
            assert!(v.chars().all(|c| (' '..='~').contains(&c) || c == ']'));
            assert!(v.trim_end_matches(']').ends_with('x'), "{v:?}");
        }
        assert!(crate::string::string_regex("[a-").is_err());
        assert!(crate::string::string_regex("a|b").is_err());
        assert!(crate::string::string_regex("[z-a]").is_err());
    }

    #[test]
    fn btree_map_respects_size_and_option_covers_both() {
        let s = crate::collection::btree_map(0u32..1000, 0u32..10, 2..6);
        let o = crate::option::of(0u32..10);
        let mut rng = crate::test_runner::TestRng::for_case("map", 0);
        let (mut some, mut none) = (false, false);
        for _ in 0..200 {
            let m = s.generate(&mut rng);
            assert!((1..6).contains(&m.len()), "{m:?}");
            match o.generate(&mut rng) {
                Some(_) => some = true,
                None => none = true,
            }
        }
        assert!(some && none);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn macro_roundtrip(v in crate::collection::vec(0u64..100, 0..20), k in 1usize..5) {
            prop_assert!(v.len() < 20);
            prop_assert!(k >= 1);
            prop_assert_eq!(v.iter().sum::<u64>(), v.iter().rev().sum::<u64>());
        }

        #[test]
        fn tuples_compose(pair in (0u32..10, crate::collection::vec(0u8..3, 0..4))) {
            let (a, v) = pair;
            prop_assert!(a < 10 && v.len() < 4);
        }
    }
}
