//! Meta-tests: the analyzer run over small committed fixture trees, one
//! per violation class, plus a clean tree that must produce zero findings.
//! Each violating fixture must yield a `file:line: [rule]` diagnostic
//! pointing at the seeded defect.

use adaptivetc_lint::{analyze, Finding, Rule};
use std::path::PathBuf;

fn findings(fixture: &str) -> Vec<Finding> {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(fixture);
    analyze(&root).expect("fixture tree is analyzable")
}

/// The one finding with `rule`, asserting no other classes fired.
fn only(fixture: &str, rule: Rule) -> Finding {
    let all = findings(fixture);
    assert!(
        all.iter().all(|f| f.rule == rule),
        "{fixture}: expected only {:?} findings, got: {}",
        rule,
        all.iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("; ")
    );
    assert_eq!(all.len(), 1, "{fixture}: expected exactly one finding");
    all.into_iter().next().unwrap()
}

#[test]
fn clean_tree_has_zero_findings() {
    let all = findings("clean");
    assert!(
        all.is_empty(),
        "clean fixture produced findings: {}",
        all.iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("; ")
    );
}

#[test]
fn raw_atomic_outside_facade_is_flagged() {
    let f = only("raw-atomic", Rule::Facade);
    assert_eq!(f.file, "crates/foo/src/lib.rs");
    assert_eq!(f.line, 2);
    assert_eq!(f.col, 5, "column of `std` in `use std::sync::atomic...`");
    assert!(f
        .to_string()
        .starts_with("crates/foo/src/lib.rs:2:5: [facade]"));
}

#[test]
fn unmanifested_ordering_is_flagged() {
    let f = only("unmanifested", Rule::Ordering);
    assert_eq!(f.file, "crates/foo/src/lib.rs");
    assert_eq!(f.line, 8);
    assert!(f.msg.contains("`bump`"), "symbol in message: {}", f.msg);
}

#[test]
fn stale_manifest_entry_is_flagged() {
    let f = only("stale-manifest", Rule::Manifest);
    assert_eq!(f.file, "ORDERINGS.toml");
    assert!(f.msg.contains("stale"), "message: {}", f.msg);
    assert!(f.msg.contains("gone"), "names the dead symbol: {}", f.msg);
}

#[test]
fn missing_safety_comment_is_flagged() {
    let f = only("missing-safety", Rule::UnsafeHygiene);
    assert_eq!(f.file, "crates/foo/src/lib.rs");
    assert_eq!(f.line, 3);
    assert!(f.msg.contains("`deref`"), "symbol in message: {}", f.msg);
}

#[test]
fn ungated_clock_read_on_hot_path_is_flagged() {
    let f = only("ungated-instant", Rule::TraceGate);
    assert_eq!(f.file, "crates/runtime/src/engine.rs");
    assert_eq!(f.line, 5);
    assert!(f.msg.contains("Instant::now"), "message: {}", f.msg);
}
