//! Fixture: a tree that satisfies every rule.
pub mod sync {
    pub use std::sync::atomic::{AtomicU64, Ordering};
}
use sync::{AtomicU64, Ordering};

pub fn bump(c: &AtomicU64) -> u64 {
    c.fetch_add(1, Ordering::Relaxed)
}

pub fn read(x: &u32) -> u32 {
    let p: *const u32 = x;
    // SAFETY: `p` comes from a live reference, so it is valid and aligned.
    unsafe { *p }
}
