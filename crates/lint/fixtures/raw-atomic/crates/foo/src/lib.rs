//! Fixture: a raw atomic import outside any `crate::sync` facade.
use std::sync::atomic::AtomicU64;

pub fn make() -> AtomicU64 {
    AtomicU64::new(0)
}
