//! Fixture: no `Ordering::` sites at all — the manifest entry is stale.
pub fn id(x: u64) -> u64 {
    x
}
