//! Fixture: an `Ordering::` site the manifest does not know about.
pub mod sync {
    pub use std::sync::atomic::{AtomicU64, Ordering};
}
use sync::{AtomicU64, Ordering};

pub fn bump(c: &AtomicU64) -> u64 {
    c.fetch_add(1, Ordering::Relaxed)
}
