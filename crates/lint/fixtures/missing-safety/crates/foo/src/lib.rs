//! Fixture: an `unsafe` block with no adjacent SAFETY comment.
pub fn deref(p: *const u32) -> u32 {
    unsafe { *p }
}
