//! Fixture: a clock read on a hot-path file outside the `trace` gate.
use std::time::Instant;

pub fn hot() -> u128 {
    Instant::now().elapsed().as_nanos()
}
