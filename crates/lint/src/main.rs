//! CLI for the concurrency-invariant analyzer.
//!
//! ```text
//! cargo run -p adaptivetc-lint                        # check; exit 1 on findings
//! cargo run -p adaptivetc-lint -- --bless             # regenerate ORDERINGS.toml + DESIGN table
//! cargo run -p adaptivetc-lint -- --orderings-verify  # cross-check ORDERING_VERDICTS.toml
//! cargo run -p adaptivetc-lint -- --orderings-verify --bless
//!                                                     # rewrite MINIMIZE.toml skeletons
//! cargo run -p adaptivetc-lint -- --root P            # analyze the workspace at P
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut bless = false;
    let mut orderings_verify = false;
    let mut root: Option<PathBuf> = None;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--bless" => bless = true,
            "--orderings-verify" => orderings_verify = true,
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("--root requires a path");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!(
                    "adaptivetc-lint: concurrency-invariant static analyzer\n\n\
                     USAGE: adaptivetc-lint [--root PATH] [--bless] [--orderings-verify]\n\n\
                     Default mode checks facade integrity, the ORDERINGS.toml memory-ordering\n\
                     audit, unsafe hygiene and trace discipline; exits 1 on findings.\n\
                     --bless regenerates ORDERINGS.toml (preserving justifications) and the\n\
                     generated DESIGN.md audit table.\n\
                     --orderings-verify cross-checks ORDERING_VERDICTS.toml (from the\n\
                     crates/check ordering_audit binary) and MINIMIZE.toml against the tree;\n\
                     with --bless it rewrites MINIMIZE.toml skeletons instead."
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument `{other}` (try --help)");
                return ExitCode::from(2);
            }
        }
    }

    let root = match root.or_else(|| {
        std::env::current_dir()
            .ok()
            .and_then(|d| adaptivetc_lint::find_root(&d))
    }) {
        Some(r) => r,
        None => {
            eprintln!(
                "could not locate the workspace root (no Cargo.toml with [workspace]); pass --root"
            );
            return ExitCode::from(2);
        }
    };

    if orderings_verify && bless {
        return match adaptivetc_lint::bless_minimize(&root) {
            Ok(report) => {
                println!(
                    "blessed {}: {} weakenable verdict(s) → [[keep]] skeletons ({} still unjustified)",
                    adaptivetc_lint::MINIMIZE_FILE,
                    report.weakenable,
                    report.unjustified
                );
                if report.unjustified > 0 {
                    println!(
                        "fill in every empty `why = \"\"` in {} — --orderings-verify fails on unjustified entries",
                        adaptivetc_lint::MINIMIZE_FILE
                    );
                }
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("bless failed: {e}");
                ExitCode::from(2)
            }
        };
    }
    if orderings_verify {
        return match adaptivetc_lint::verify_orderings(&root) {
            Ok(findings) if findings.is_empty() => {
                println!(
                    "adaptivetc-lint --orderings-verify: clean ({})",
                    root.display()
                );
                ExitCode::SUCCESS
            }
            Ok(findings) => {
                for f in &findings {
                    println!("{f}");
                }
                println!(
                    "adaptivetc-lint --orderings-verify: {} finding(s)",
                    findings.len()
                );
                ExitCode::FAILURE
            }
            Err(e) => {
                eprintln!("analysis failed: {e}");
                ExitCode::from(2)
            }
        };
    }

    if bless {
        match adaptivetc_lint::bless(&root) {
            Ok(report) => {
                println!(
                    "blessed: {} Ordering:: sites → {} manifest entries ({} still unjustified){}",
                    report.sites,
                    report.entries,
                    report.unjustified,
                    if report.design_updated {
                        "; DESIGN.md audit table rewritten"
                    } else {
                        ""
                    }
                );
                if report.unjustified > 0 {
                    println!(
                        "fill in every empty `why = \"\"` in {} — the check mode fails on unjustified entries",
                        adaptivetc_lint::ORDERINGS_FILE
                    );
                }
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("bless failed: {e}");
                ExitCode::from(2)
            }
        }
    } else {
        match adaptivetc_lint::analyze(&root) {
            Ok(findings) if findings.is_empty() => {
                println!("adaptivetc-lint: clean ({})", root.display());
                ExitCode::SUCCESS
            }
            Ok(findings) => {
                for f in &findings {
                    println!("{f}");
                }
                println!("adaptivetc-lint: {} finding(s)", findings.len());
                ExitCode::FAILURE
            }
            Err(e) => {
                eprintln!("analysis failed: {e}");
                ExitCode::from(2)
            }
        }
    }
}
