//! A hand-rolled Rust token scanner.
//!
//! This is not a full Rust lexer — it is the minimal scanner the lint
//! rules need: it distinguishes identifiers, string literals and single
//! punctuation characters, skips numeric literals, lifetimes and
//! whitespace, and records comments (line, block, doc) in a side list with
//! their line extents so the unsafe-hygiene rule can test adjacency.
//! Crucially, text inside string literals and comments never produces
//! identifier tokens, so a pattern like `std::sync::atomic` quoted in a
//! diagnostic message (or in this very crate) is not a finding.

/// What a token is. Only the distinctions the checks consume survive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (`Ordering`, `unsafe`, `fn`, ...).
    Ident(String),
    /// A string literal with its decoded-enough contents (escapes are kept
    /// verbatim; the checks only compare short plain values like "trace").
    Str(String),
    /// A single punctuation character (`::` arrives as two `:` tokens).
    Punct(char),
}

/// One token with the 1-based line and column it starts on.
#[derive(Debug, Clone)]
pub struct Tok {
    /// 1-based source line.
    pub line: u32,
    /// 1-based byte column on that line (diagnostics use `file:line:col`).
    pub col: u32,
    /// Token payload.
    pub kind: TokKind,
}

/// One comment (line `//`, doc `///` / `//!`, or block `/* */`, nesting
/// included) with its 1-based line extent and raw text.
#[derive(Debug, Clone)]
pub struct Comment {
    /// First line of the comment.
    pub start: u32,
    /// Last line of the comment.
    pub end: u32,
    /// Raw text including the comment markers.
    pub text: String,
}

/// Scan `src` into tokens and a side list of comments.
pub fn lex(src: &str) -> (Vec<Tok>, Vec<Comment>) {
    let b = src.as_bytes();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut toks = Vec::new();
    let mut comments = Vec::new();

    // Byte offset of each line start, so a token's 1-based column is
    // `offset - line_starts[line - 1] + 1` without threading a counter
    // through the multiline string/comment scanners.
    let mut line_starts = vec![0usize];
    for (off, byte) in b.iter().enumerate() {
        if *byte == b'\n' {
            line_starts.push(off + 1);
        }
    }
    let col_at = |l: u32, off: usize| (off - line_starts[(l - 1) as usize] + 1) as u32;

    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            _ if (c as char).is_whitespace() => i += 1,
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                let start = i;
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
                comments.push(Comment {
                    start: line,
                    end: line,
                    text: src[start..i].to_string(),
                });
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                let start_line = line;
                let start = i;
                i += 2;
                let mut depth = 1u32;
                while i < b.len() && depth > 0 {
                    if b[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                comments.push(Comment {
                    start: start_line,
                    end: line,
                    text: src[start..i].to_string(),
                });
            }
            b'"' => {
                let tok_line = line;
                let tok_col = col_at(line, i);
                let (text, ni, nl) = scan_string(src, i, line);
                toks.push(Tok {
                    line: tok_line,
                    col: tok_col,
                    kind: TokKind::Str(text),
                });
                i = ni;
                line = nl;
            }
            b'\'' => {
                // Lifetime or char literal. `'a` / `'static` / `'_` are
                // lifetimes; `'a'`, `'\n'`, `'\u{1F600}'` are char literals.
                let next = b.get(i + 1).copied();
                let after = b.get(i + 2).copied();
                let is_lifetime = matches!(next, Some(n) if (n as char).is_alphabetic() || n == b'_')
                    && after != Some(b'\'');
                if is_lifetime {
                    i += 2;
                    while i < b.len() && ((b[i] as char).is_alphanumeric() || b[i] == b'_') {
                        i += 1;
                    }
                } else {
                    // Char literal: skip to the closing quote, honouring
                    // backslash escapes.
                    i += 1;
                    while i < b.len() {
                        match b[i] {
                            b'\\' => i += 2,
                            b'\'' => {
                                i += 1;
                                break;
                            }
                            b'\n' => {
                                line += 1;
                                i += 1;
                            }
                            _ => i += 1,
                        }
                    }
                }
            }
            _ if (c as char).is_alphabetic() || c == b'_' => {
                let start = i;
                while i < b.len() && ((b[i] as char).is_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                let ident = &src[start..i];
                // Raw-string / byte-string / raw-identifier prefixes.
                let peek = b.get(i).copied();
                match (ident, peek) {
                    ("r" | "br" | "rb", Some(b'"' | b'#')) => {
                        if ident == "r" && peek == Some(b'#') {
                            // Could be a raw identifier r#match rather than
                            // a raw string r#"...".
                            let after_hashes = {
                                let mut j = i;
                                while j < b.len() && b[j] == b'#' {
                                    j += 1;
                                }
                                b.get(j).copied()
                            };
                            if after_hashes != Some(b'"') {
                                // Raw identifier: consume `#ident`.
                                i += 1;
                                let rs = i;
                                while i < b.len()
                                    && ((b[i] as char).is_alphanumeric() || b[i] == b'_')
                                {
                                    i += 1;
                                }
                                toks.push(Tok {
                                    line,
                                    col: col_at(line, start),
                                    kind: TokKind::Ident(src[rs..i].to_string()),
                                });
                                continue;
                            }
                        }
                        let tok_line = line;
                        let tok_col = col_at(line, start);
                        let (text, ni, nl) = scan_raw_string(src, i, line);
                        toks.push(Tok {
                            line: tok_line,
                            col: tok_col,
                            kind: TokKind::Str(text),
                        });
                        i = ni;
                        line = nl;
                    }
                    ("b", Some(b'"')) => {
                        let tok_line = line;
                        let tok_col = col_at(line, start);
                        let (text, ni, nl) = scan_string(src, i + 1, line);
                        toks.push(Tok {
                            line: tok_line,
                            col: tok_col,
                            kind: TokKind::Str(text),
                        });
                        i = ni;
                        line = nl;
                    }
                    ("b", Some(b'\'')) => {
                        // Byte char literal.
                        i += 2;
                        while i < b.len() {
                            match b[i] {
                                b'\\' => i += 2,
                                b'\'' => {
                                    i += 1;
                                    break;
                                }
                                _ => i += 1,
                            }
                        }
                    }
                    _ => toks.push(Tok {
                        line,
                        col: col_at(line, start),
                        kind: TokKind::Ident(ident.to_string()),
                    }),
                }
            }
            _ if c.is_ascii_digit() => {
                // Numeric literal: digits, underscores, a fractional part
                // only when followed by a digit (so `1.max(2)` keeps its
                // method call), then any alphanumeric suffix (0x.., 1u64,
                // 1e9). Exponent signs split off harmlessly as punctuation.
                i += 1;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                if i + 1 < b.len() && b[i] == b'.' && b[i + 1].is_ascii_digit() {
                    i += 1;
                    while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                        i += 1;
                    }
                }
            }
            _ => {
                toks.push(Tok {
                    line,
                    col: col_at(line, i),
                    kind: TokKind::Punct(c as char),
                });
                i += 1;
            }
        }
    }
    (toks, comments)
}

/// Scan a normal `"..."` string starting at the opening quote index.
/// Returns (contents, next index, next line).
fn scan_string(src: &str, open: usize, mut line: u32) -> (String, usize, u32) {
    let b = src.as_bytes();
    let mut i = open + 1;
    let start = i;
    while i < b.len() {
        match b[i] {
            b'\\' => i += 2,
            b'"' => {
                return (src[start..i].to_string(), i + 1, line);
            }
            b'\n' => {
                line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    (src[start..i.min(src.len())].to_string(), i, line)
}

/// Scan a raw string starting at the first `#` or `"` after the prefix.
fn scan_raw_string(src: &str, mut i: usize, mut line: u32) -> (String, usize, u32) {
    let b = src.as_bytes();
    let mut hashes = 0usize;
    while i < b.len() && b[i] == b'#' {
        hashes += 1;
        i += 1;
    }
    debug_assert!(i < b.len() && b[i] == b'"');
    i += 1; // opening quote
    let start = i;
    while i < b.len() {
        if b[i] == b'\n' {
            line += 1;
            i += 1;
            continue;
        }
        if b[i] == b'"' {
            let mut j = i + 1;
            let mut seen = 0usize;
            while j < b.len() && b[j] == b'#' && seen < hashes {
                seen += 1;
                j += 1;
            }
            if seen == hashes {
                return (src[start..i].to_string(), j, line);
            }
        }
        i += 1;
    }
    (src[start..i.min(src.len())].to_string(), i, line)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .0
            .into_iter()
            .filter_map(|t| match t.kind {
                TokKind::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn strings_and_comments_produce_no_idents() {
        let src = r##"
            // std::sync::atomic in a comment
            /* parking_lot in /* a nested */ block */
            let s = "std::sync::atomic";
            let r = r#"parking_lot"#;
            let c = 'x';
            let lt: &'static str = "y";
        "##;
        let ids = idents(src);
        assert!(ids.contains(&"let".to_string()));
        assert!(!ids.contains(&"static".to_string())); // lifetimes emit no tokens
        assert!(!ids.contains(&"atomic".to_string()));
        assert!(!ids.contains(&"parking_lot".to_string()));
    }

    #[test]
    fn lines_are_tracked_through_multiline_constructs() {
        let src = "a\n/*\n*/\nb\n\"x\ny\"\nc";
        let toks = lex(src).0;
        let find = |name: &str| {
            toks.iter()
                .find(|t| t.kind == TokKind::Ident(name.to_string()))
                .unwrap()
                .line
        };
        assert_eq!(find("a"), 1);
        assert_eq!(find("b"), 4);
        assert_eq!(find("c"), 7);
    }

    #[test]
    fn comment_extents_recorded() {
        let src = "x\n// SAFETY: fine\ny\n/* multi\nline */\nz";
        let (_, comments) = lex(src);
        assert_eq!(comments.len(), 2);
        assert_eq!((comments[0].start, comments[0].end), (2, 2));
        assert!(comments[0].text.contains("SAFETY"));
        assert_eq!((comments[1].start, comments[1].end), (4, 5));
    }

    #[test]
    fn float_method_calls_survive() {
        let ids = idents("let x = 1.max(2); let y = 1.5f64;");
        assert!(ids.contains(&"max".to_string()));
    }

    #[test]
    fn path_tokens_come_through() {
        let toks = lex("std::sync::atomic::AtomicU64").0;
        let shape: Vec<String> = toks
            .iter()
            .map(|t| match &t.kind {
                TokKind::Ident(s) => s.clone(),
                TokKind::Punct(c) => c.to_string(),
                TokKind::Str(_) => "<str>".into(),
            })
            .collect();
        assert_eq!(
            shape,
            vec![
                "std",
                ":",
                ":",
                "sync",
                ":",
                ":",
                "atomic",
                ":",
                ":",
                "AtomicU64"
            ]
        );
    }
}
