//! The memory-ordering audit: every `Ordering::` site under `crates/`
//! must be matched by a justified entry in `ORDERINGS.toml`.
//!
//! Sites are keyed by `(file, enclosing symbol, ordering)` with an
//! occurrence count rather than by line number, so routine edits that only
//! shift lines never invalidate the manifest — but adding, removing or
//! changing an ordering anywhere does, which is exactly the review nudge
//! the audit exists to produce.

use crate::model::{Finding, Rule, SourceFile};
use crate::rules::path_at;
use crate::toml::{self, quote};
use std::collections::BTreeMap;

/// The five orderings (plus fences, which reuse the same tokens).
pub const ORDERINGS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// Name of the manifest file at the workspace root.
pub const ORDERINGS_FILE: &str = "ORDERINGS.toml";

/// Identity of one audited ordering group.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct SiteKey {
    /// Workspace-relative file.
    pub file: String,
    /// Enclosing function (or `(top-level)`).
    pub symbol: String,
    /// `Relaxed` | `Acquire` | `Release` | `AcqRel` | `SeqCst`.
    pub ordering: String,
}

/// One manifest entry.
#[derive(Debug, Clone)]
pub struct ManifestEntry {
    /// Site identity.
    pub key: SiteKey,
    /// Expected number of occurrences.
    pub count: u64,
    /// One-line justification.
    pub why: String,
    /// Line of the entry header in `ORDERINGS.toml`.
    pub line: u32,
}

/// Collect all `Ordering::X` sites in `crates/` sources, grouped by key,
/// with the 1-based lines of each occurrence.
pub fn collect_sites(files: &[SourceFile]) -> BTreeMap<SiteKey, Vec<u32>> {
    let mut map: BTreeMap<SiteKey, Vec<u32>> = BTreeMap::new();
    for f in files {
        if !f.rel.starts_with("crates/") {
            continue;
        }
        for (i, t) in f.toks.iter().enumerate() {
            for ord in ORDERINGS {
                if path_at(&f.toks, i, &["Ordering", ord]) {
                    let key = SiteKey {
                        file: f.rel.clone(),
                        symbol: f.spans.symbol_at(t.line),
                        ordering: (*ord).to_string(),
                    };
                    map.entry(key).or_default().push(t.line);
                }
            }
        }
    }
    map
}

/// Parse `ORDERINGS.toml`. Structural problems become findings.
pub fn parse_manifest(text: &str, findings: &mut Vec<Finding>) -> Vec<ManifestEntry> {
    let tables = match toml::parse(text) {
        Ok(t) => t,
        Err(e) => {
            findings.push(Finding {
                file: ORDERINGS_FILE.to_string(),
                line: e.line,
                col: 1,
                rule: Rule::Manifest,
                msg: format!("parse error: {}", e.msg),
            });
            return Vec::new();
        }
    };
    let mut entries = Vec::new();
    for t in tables {
        if t.name != "site" {
            findings.push(Finding {
                file: ORDERINGS_FILE.to_string(),
                line: t.line,
                col: 1,
                rule: Rule::Manifest,
                msg: format!("unknown table `[[{}]]` (expected `[[site]]`)", t.name),
            });
            continue;
        }
        let file = t.get_str("file").unwrap_or_default().to_string();
        let symbol = t.get_str("symbol").unwrap_or_default().to_string();
        let ordering = t.get_str("ordering").unwrap_or_default().to_string();
        if file.is_empty() || symbol.is_empty() || ordering.is_empty() {
            findings.push(Finding {
                file: ORDERINGS_FILE.to_string(),
                line: t.line,
                col: 1,
                rule: Rule::Manifest,
                msg: "entry must set `file`, `symbol` and `ordering`".to_string(),
            });
            continue;
        }
        if !ORDERINGS.contains(&ordering.as_str()) {
            findings.push(Finding {
                file: ORDERINGS_FILE.to_string(),
                line: t.line,
                col: 1,
                rule: Rule::Manifest,
                msg: format!("unknown ordering `{ordering}`"),
            });
            continue;
        }
        entries.push(ManifestEntry {
            key: SiteKey {
                file,
                symbol,
                ordering,
            },
            count: t.get_int("count").unwrap_or(1),
            why: t.get_str("why").unwrap_or_default().to_string(),
            line: t.line,
        });
    }
    entries
}

/// Diff the code sites against the manifest.
pub fn check(
    sites: &BTreeMap<SiteKey, Vec<u32>>,
    entries: &[ManifestEntry],
    findings: &mut Vec<Finding>,
) {
    // Repeated `[[site]]` entries for the same key are tolerated: they merge
    // by summing counts and keeping the first non-empty `why`, so a
    // hand-split justification (e.g. one entry per call site) still checks
    // out. `--bless` collapses them back into a single entry.
    let mut by_key: BTreeMap<&SiteKey, ManifestEntry> = BTreeMap::new();
    for e in entries {
        match by_key.get_mut(&e.key) {
            Some(prev) => {
                prev.count += e.count;
                if prev.why.trim().is_empty() {
                    prev.why = e.why.clone();
                }
            }
            None => {
                by_key.insert(&e.key, e.clone());
            }
        }
    }
    for (key, lines) in sites {
        match by_key.get(key) {
            None => findings.push(Finding {
                file: key.file.clone(),
                line: lines[0],
                col: 1,
                rule: Rule::Ordering,
                msg: format!(
                    "Ordering::{} in `{}` has no ORDERINGS.toml entry (run `cargo run -p adaptivetc-lint -- --bless` and justify it)",
                    key.ordering, key.symbol
                ),
            }),
            Some(e) => {
                if e.count != lines.len() as u64 {
                    findings.push(Finding {
                        file: key.file.clone(),
                        line: lines[0],
                        col: 1,
                        rule: Rule::Ordering,
                        msg: format!(
                            "Ordering::{} in `{}`: manifest expects {} site(s), found {} — re-bless and re-justify",
                            key.ordering,
                            key.symbol,
                            e.count,
                            lines.len()
                        ),
                    });
                }
                if e.why.trim().is_empty() || e.why.trim_start().starts_with("TODO") {
                    findings.push(Finding {
                        file: ORDERINGS_FILE.to_string(),
                        line: e.line,
                        col: 1,
                        rule: Rule::Manifest,
                        msg: format!(
                            "entry for {} `{}` Ordering::{} has no justification (`why`)",
                            key.file, key.symbol, key.ordering
                        ),
                    });
                }
            }
        }
    }
    for (key, e) in &by_key {
        if !sites.contains_key(*key) {
            findings.push(Finding {
                file: ORDERINGS_FILE.to_string(),
                line: e.line,
                col: 1,
                rule: Rule::Manifest,
                msg: format!(
                    "stale entry: {} `{}` Ordering::{} no longer exists in the tree",
                    key.file, key.symbol, key.ordering
                ),
            });
        }
    }
}

/// Render a fresh manifest from the observed sites, preserving existing
/// justifications by key and leaving `why = ""` skeletons for new sites.
pub fn render(sites: &BTreeMap<SiteKey, Vec<u32>>, old: &[ManifestEntry]) -> String {
    let old_why: BTreeMap<&SiteKey, &str> = old
        .iter()
        .filter(|e| !e.why.trim().is_empty())
        .map(|e| (&e.key, e.why.as_str()))
        .collect();
    let mut out = String::new();
    out.push_str(
        "# ORDERINGS.toml — memory-ordering audit manifest.\n\
         #\n\
         # Every `Ordering::` site under crates/ must appear here, keyed by\n\
         # (file, enclosing symbol, ordering) with an occurrence count and a\n\
         # one-line justification. `cargo run -p adaptivetc-lint` fails on\n\
         # unmanifested, stale, mismatched or unjustified entries;\n\
         # `cargo run -p adaptivetc-lint -- --bless` regenerates the skeleton\n\
         # (preserving justifications) after an intentional change.\n\
         # DESIGN.md §12 renders this file; --bless keeps the two in sync.\n",
    );
    let mut last_file = String::new();
    for (key, lines) in sites {
        if key.file != last_file {
            out.push_str(&format!("\n# ---- {} ----\n", key.file));
            last_file = key.file.clone();
        }
        out.push('\n');
        out.push_str("[[site]]\n");
        out.push_str(&format!("file = {}\n", quote(&key.file)));
        out.push_str(&format!("symbol = {}\n", quote(&key.symbol)));
        out.push_str(&format!("ordering = {}\n", quote(&key.ordering)));
        out.push_str(&format!("count = {}\n", lines.len()));
        let why = old_why.get(key).copied().unwrap_or("");
        out.push_str(&format!("why = {}\n", quote(why)));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(ordering: &str, count: u64, why: &str, line: u32) -> ManifestEntry {
        ManifestEntry {
            key: SiteKey {
                file: "crates/x/src/lib.rs".to_string(),
                symbol: "f".to_string(),
                ordering: ordering.to_string(),
            },
            count,
            why: why.to_string(),
            line,
        }
    }

    #[test]
    fn duplicate_entries_merge_counts_and_why() {
        let mut sites: BTreeMap<SiteKey, Vec<u32>> = BTreeMap::new();
        sites.insert(entry("Acquire", 0, "", 0).key, vec![10, 20, 30]);
        // Three hand-split entries for the same key: counts sum to the
        // observed 3 and the first non-empty `why` wins — no findings.
        let entries = vec![
            entry("Acquire", 1, "", 1),
            entry("Acquire", 1, "pairs with the Release in g", 5),
            entry("Acquire", 1, "ignored later why", 9),
        ];
        let mut findings = Vec::new();
        check(&sites, &entries, &mut findings);
        assert!(
            findings.is_empty(),
            "merged duplicates should be clean: {findings:?}"
        );
    }

    #[test]
    fn merged_count_mismatch_is_still_flagged() {
        let mut sites: BTreeMap<SiteKey, Vec<u32>> = BTreeMap::new();
        sites.insert(entry("Release", 0, "", 0).key, vec![10]);
        let entries = vec![entry("Release", 1, "w", 1), entry("Release", 1, "w", 5)];
        let mut findings = Vec::new();
        check(&sites, &entries, &mut findings);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].msg.contains("expects 2 site(s), found 1"));
    }
}
