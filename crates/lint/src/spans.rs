//! Structural spans recovered from the token stream: `#[cfg(...)]`-gated
//! regions, function bodies, and `unsafe fn` bodies.
//!
//! The scanner is deliberately lightweight — it brace-matches the token
//! stream (strings and comments are already gone, so every `{`/`}` token
//! is structural) and interprets only the `cfg` predicates the rules care
//! about. Predicates are evaluated *conservatively*: a region counts as
//! test-only or trace-gated only when the predicate provably requires the
//! atom (`test`, `feature = "trace"` directly or under `all(...)`);
//! `any(...)` and `not(...)` never qualify.

use crate::lexer::{Tok, TokKind};

/// A line range `[start, end]` (1-based, inclusive).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LineSpan {
    /// First line.
    pub start: u32,
    /// Last line.
    pub end: u32,
}

impl LineSpan {
    /// Whether `line` falls inside the span.
    pub fn contains(&self, line: u32) -> bool {
        self.start <= line && line <= self.end
    }
}

/// A named function body span.
#[derive(Debug, Clone)]
pub struct FnSpan {
    /// The function's identifier.
    pub name: String,
    /// Line of the `fn` keyword.
    pub start: u32,
    /// Line of the closing body brace.
    pub end: u32,
    /// Whether the function is declared `unsafe fn`.
    pub is_unsafe: bool,
}

/// All structural spans of one file.
#[derive(Debug, Default)]
pub struct Spans {
    /// Regions gated by `#[cfg]` predicates requiring `test`.
    pub cfg_test: Vec<LineSpan>,
    /// Regions gated by `#[cfg]` predicates requiring `feature = "trace"`.
    pub cfg_trace: Vec<LineSpan>,
    /// Function bodies, outermost first (scan order).
    pub fns: Vec<FnSpan>,
}

impl Spans {
    /// Whether `line` is inside a test-only region.
    pub fn in_test(&self, line: u32) -> bool {
        self.cfg_test.iter().any(|s| s.contains(line))
    }

    /// Whether `line` is inside a trace-feature-gated region.
    pub fn in_trace_gate(&self, line: u32) -> bool {
        self.cfg_trace.iter().any(|s| s.contains(line))
    }

    /// Innermost function containing `line` (smallest enclosing body).
    pub fn fn_at(&self, line: u32) -> Option<&FnSpan> {
        self.fns
            .iter()
            .filter(|f| f.start <= line && line <= f.end)
            .min_by_key(|f| f.end - f.start)
    }

    /// Name of the innermost function at `line`, or a placeholder for
    /// top-level positions (static initializers and the like).
    pub fn symbol_at(&self, line: u32) -> String {
        self.fn_at(line)
            .map(|f| f.name.clone())
            .unwrap_or_else(|| "(top-level)".to_string())
    }

    /// Whether `line` lies strictly inside the body of an `unsafe fn`
    /// (the declaring line itself does not count).
    pub fn inside_unsafe_fn_body(&self, line: u32) -> bool {
        self.fns
            .iter()
            .any(|f| f.is_unsafe && f.start < line && line <= f.end)
    }
}

/// Which atom a cfg predicate must require for a span to qualify.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Atom {
    Test,
    TraceFeature,
}

/// Compute all spans for a token stream.
pub fn scan(toks: &[Tok]) -> Spans {
    let mut spans = Spans::default();
    scan_attrs(toks, &mut spans);
    scan_fns(toks, &mut spans);
    spans
}

fn is_punct(t: &Tok, c: char) -> bool {
    t.kind == TokKind::Punct(c)
}

fn ident(t: &Tok) -> Option<&str> {
    match &t.kind {
        TokKind::Ident(s) => Some(s),
        _ => None,
    }
}

/// Find `#[cfg(...)]` attributes and record the line span of the item (or
/// block) each one gates.
fn scan_attrs(toks: &[Tok], spans: &mut Spans) {
    let mut i = 0usize;
    while i < toks.len() {
        if !is_punct(&toks[i], '#') {
            i += 1;
            continue;
        }
        // `#[` outer attribute; `#![...]` inner attributes gate the whole
        // enclosing item and never carry cfg(test)/cfg(feature) here, skip.
        let Some(open) = toks.get(i + 1) else { break };
        if !is_punct(open, '[') {
            i += 1;
            continue;
        }
        // Collect the attribute token slice up to the matching `]`.
        let mut depth = 1i32;
        let mut j = i + 2;
        let attr_start = j;
        while j < toks.len() && depth > 0 {
            if is_punct(&toks[j], '[') {
                depth += 1;
            } else if is_punct(&toks[j], ']') {
                depth -= 1;
            }
            j += 1;
        }
        let attr = &toks[attr_start..j.saturating_sub(1)];
        let is_cfg = attr.first().and_then(ident) == Some("cfg");
        if is_cfg {
            let requires_test = predicate_requires(attr, Atom::Test);
            let requires_trace = predicate_requires(attr, Atom::TraceFeature);
            if requires_test || requires_trace {
                if let Some(span) = attached_span(toks, j) {
                    if requires_test {
                        spans.cfg_test.push(span);
                    }
                    if requires_trace {
                        spans.cfg_trace.push(span);
                    }
                }
            }
        }
        i = j;
    }
}

/// Whether the cfg predicate (tokens between `cfg(` and `)`) provably
/// requires `atom`. Handles `test`, `feature = "trace"`, and `all(...)`
/// containing either at any depth; `any`/`not` subtrees never qualify.
fn predicate_requires(attr: &[Tok], atom: Atom) -> bool {
    // Walk the token list; treat `all(` as transparent, and skip balanced
    // parens after `any` / `not` / unknown functions entirely.
    let mut i = 0usize;
    while i < attr.len() {
        match ident(&attr[i]) {
            Some("all") | Some("cfg") => i += 1, // transparent wrappers
            Some("any") | Some("not") => {
                // Skip the balanced `(...)` group.
                let mut j = i + 1;
                if j < attr.len() && is_punct(&attr[j], '(') {
                    let mut depth = 1i32;
                    j += 1;
                    while j < attr.len() && depth > 0 {
                        if is_punct(&attr[j], '(') {
                            depth += 1;
                        } else if is_punct(&attr[j], ')') {
                            depth -= 1;
                        }
                        j += 1;
                    }
                }
                i = j;
            }
            Some("test") if atom == Atom::Test => return true,
            Some("feature") if atom == Atom::TraceFeature => {
                // feature = "trace"
                if let (Some(eq), Some(val)) = (attr.get(i + 1), attr.get(i + 2)) {
                    if is_punct(eq, '=') && val.kind == TokKind::Str("trace".to_string()) {
                        return true;
                    }
                }
                i += 1;
            }
            _ => i += 1,
        }
    }
    false
}

/// The line span of the item an attribute at token index `start` attaches
/// to: further attributes are skipped, then the span runs to the matching
/// close brace of the first `{`, or to the first `;` when no brace opens
/// before it (e.g. a gated `use` or `const`).
fn attached_span(toks: &[Tok], mut start: usize) -> Option<LineSpan> {
    // Skip stacked attributes.
    while start + 1 < toks.len() && is_punct(&toks[start], '#') && is_punct(&toks[start + 1], '[') {
        let mut depth = 1i32;
        let mut j = start + 2;
        while j < toks.len() && depth > 0 {
            if is_punct(&toks[j], '[') {
                depth += 1;
            } else if is_punct(&toks[j], ']') {
                depth -= 1;
            }
            j += 1;
        }
        start = j;
    }
    let first = toks.get(start)?;
    let start_line = first.line;
    let mut i = start;
    while i < toks.len() {
        if is_punct(&toks[i], ';') {
            return Some(LineSpan {
                start: start_line,
                end: toks[i].line,
            });
        }
        if is_punct(&toks[i], '{') {
            let end = match_brace(toks, i)?;
            return Some(LineSpan {
                start: start_line,
                end: toks[end].line,
            });
        }
        i += 1;
    }
    None
}

/// Index of the `}` matching the `{` at `open`.
fn match_brace(toks: &[Tok], open: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (k, t) in toks.iter().enumerate().skip(open) {
        if is_punct(t, '{') {
            depth += 1;
        } else if is_punct(t, '}') {
            depth -= 1;
            if depth == 0 {
                return Some(k);
            }
        }
    }
    None
}

/// Find every `fn name ... { body }` definition and record its body span.
fn scan_fns(toks: &[Tok], spans: &mut Spans) {
    let mut i = 0usize;
    while i < toks.len() {
        if ident(&toks[i]) != Some("fn") {
            i += 1;
            continue;
        }
        // `fn(` is a function-pointer type, not a definition.
        let Some(name_tok) = toks.get(i + 1) else {
            break;
        };
        let Some(name) = ident(name_tok) else {
            i += 1;
            continue;
        };
        // Unsafety: look back over qualifiers (`pub(crate) unsafe fn`,
        // `unsafe extern fn`). Scan a few tokens back for `unsafe` that is
        // not separated by a `;`, `}` or `{`.
        let is_unsafe = toks[..i]
            .iter()
            .rev()
            .take(6)
            .take_while(|t| !is_punct(t, ';') && !is_punct(t, '}') && !is_punct(t, '{'))
            .any(|t| ident(t) == Some("unsafe"));
        // Find the body `{` at paren depth 0 (the signature's parameter
        // list and any const-generic braces live behind parens or `=`).
        let mut paren = 0i32;
        let mut j = i + 2;
        let mut body = None;
        while j < toks.len() {
            match &toks[j].kind {
                TokKind::Punct('(') => paren += 1,
                TokKind::Punct(')') => paren -= 1,
                TokKind::Punct(';') if paren == 0 => break, // trait decl, no body
                TokKind::Punct('{') if paren == 0 => {
                    body = Some(j);
                    break;
                }
                _ => {}
            }
            j += 1;
        }
        if let Some(open) = body {
            if let Some(close) = match_brace(toks, open) {
                spans.fns.push(FnSpan {
                    name: name.to_string(),
                    start: toks[i].line,
                    end: toks[close].line,
                    is_unsafe,
                });
                // Continue scanning *inside* the body too (nested fns).
                i += 2;
                continue;
            }
        }
        i = j.max(i + 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn spans_of(src: &str) -> Spans {
        scan(&lex(src).0)
    }

    #[test]
    fn cfg_test_mod_span() {
        let src = "fn a() {}\n#[cfg(test)]\nmod tests {\n fn t() {}\n}\nfn b() {}";
        let s = spans_of(src);
        assert!(!s.in_test(1));
        assert!(s.in_test(3));
        assert!(s.in_test(4));
        assert!(!s.in_test(6));
    }

    #[test]
    fn cfg_trace_item_and_use_spans() {
        let src = "#[cfg(feature = \"trace\")]\nuse other::Thing;\n#[cfg(feature = \"trace\")]\nfn traced() {\n x();\n}\nfn plain() {}";
        let s = spans_of(src);
        assert!(s.in_trace_gate(2));
        assert!(s.in_trace_gate(5));
        assert!(!s.in_trace_gate(7));
    }

    #[test]
    fn negated_and_any_predicates_do_not_gate() {
        let src = "#[cfg(not(feature = \"trace\"))]\nfn a() { x(); }\n#[cfg(any(test, feature = \"x\"))]\nfn b() { y(); }\n#[cfg(all(test, unix))]\nfn c() { z(); }";
        let s = spans_of(src);
        assert!(!s.in_trace_gate(2));
        assert!(!s.in_test(4));
        assert!(s.in_test(6)); // all(test, ..) requires test
    }

    #[test]
    fn fn_spans_and_symbols() {
        let src =
            "impl Foo {\n fn alpha(&self) {\n  one();\n }\n unsafe fn beta() {\n  two();\n }\n}";
        let s = spans_of(src);
        assert_eq!(s.symbol_at(3), "alpha");
        assert_eq!(s.symbol_at(6), "beta");
        assert!(s.inside_unsafe_fn_body(6));
        assert!(!s.inside_unsafe_fn_body(3));
        assert!(!s.inside_unsafe_fn_body(5)); // declaring line itself
    }

    #[test]
    fn fn_pointer_types_are_not_defs() {
        let s = spans_of("type F = fn(usize) -> bool;\nfn real() { body(); }");
        assert_eq!(s.fns.len(), 1);
        assert_eq!(s.fns[0].name, "real");
    }

    #[test]
    fn block_level_trace_gate() {
        let src = "fn hot() {\n #[cfg(feature = \"trace\")]\n {\n  emit();\n }\n cold();\n}";
        let s = spans_of(src);
        assert!(s.in_trace_gate(4));
        assert!(!s.in_trace_gate(6));
    }
}
