//! Workspace walking, per-file analysis state, and findings.

use crate::lexer::{self, Comment, Tok};
use crate::spans::{self, Spans};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Which invariant a finding violates. The stable string names double as
/// the `rule` values accepted by `LINT_ALLOW.toml`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rule {
    /// Raw `std::sync::atomic` / `std::thread::spawn` / `parking_lot`
    /// outside a `crate::sync` facade.
    Facade,
    /// An `Ordering::` site missing from, or disagreeing with,
    /// `ORDERINGS.toml`.
    Ordering,
    /// An `unsafe` block/fn/impl without an adjacent `// SAFETY:` comment.
    UnsafeHygiene,
    /// Trace emission or `Instant::now` on a hot path outside the `trace`
    /// feature gate.
    TraceGate,
    /// A problem in `LINT_ALLOW.toml` itself (stale or unjustified entry).
    Allowlist,
    /// A problem in `ORDERINGS.toml` itself (stale or unjustified entry).
    Manifest,
    /// The generated DESIGN.md audit section is out of sync.
    Design,
    /// An `ORDERING_VERDICTS.toml` problem from the ordering-minimization
    /// audit: a covered site with no verdict, a stale verdict, or an
    /// `unexercised` site no bounded suite reaches.
    Verdict,
    /// A `weakenable` verdict not yet applied or justified in
    /// `MINIMIZE.toml` (advisory), or a stale `MINIMIZE.toml` entry.
    Minimize,
}

impl Rule {
    /// The stable display/allowlist name.
    pub fn name(self) -> &'static str {
        match self {
            Rule::Facade => "facade",
            Rule::Ordering => "ordering",
            Rule::UnsafeHygiene => "unsafe-safety",
            Rule::TraceGate => "trace-gate",
            Rule::Allowlist => "allowlist",
            Rule::Manifest => "manifest",
            Rule::Design => "design",
            Rule::Verdict => "verdict",
            Rule::Minimize => "minimize",
        }
    }
}

/// One diagnostic: `file:line:col: [rule] message`.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Workspace-relative path with forward slashes.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based byte column; `1` when the finding is about a whole line
    /// (manifest/allowlist entries) rather than a specific token.
    pub col: u32,
    /// Violated invariant.
    pub rule: Rule,
    /// Human explanation.
    pub msg: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}:{}: [{}] {}",
            self.file,
            self.line,
            self.col,
            self.rule.name(),
            self.msg
        )
    }
}

/// One lexed-and-scanned source file.
pub struct SourceFile {
    /// Workspace-relative path, forward slashes.
    pub rel: String,
    /// Raw lines (for adjacency/context checks).
    pub lines: Vec<String>,
    /// Token stream.
    pub toks: Vec<Tok>,
    /// Comments with line extents.
    pub comments: Vec<Comment>,
    /// Structural spans.
    pub spans: Spans,
}

impl SourceFile {
    /// Build the analysis state for one file.
    pub fn parse(rel: String, text: &str) -> SourceFile {
        let (toks, comments) = lexer::lex(text);
        let spans = spans::scan(&toks);
        SourceFile {
            rel,
            lines: text.lines().map(str::to_string).collect(),
            toks,
            comments,
            spans,
        }
    }

    /// Concatenated comment text overlapping `line` (empty if none).
    pub fn comment_text_at(&self, line: u32) -> String {
        let mut out = String::new();
        for c in &self.comments {
            if c.start <= line && line <= c.end {
                out.push_str(&c.text);
                out.push('\n');
            }
        }
        out
    }

    /// Whether any token starts on `line`.
    pub fn has_code_on(&self, line: u32) -> bool {
        // Tokens are in line order; a binary search would work, but files
        // are small enough that a scan is fine and simpler.
        self.toks.iter().any(|t| t.line == line)
    }

    /// Raw text of `line` (1-based), or empty for out-of-range.
    pub fn line_text(&self, line: u32) -> &str {
        self.lines
            .get(line.saturating_sub(1) as usize)
            .map(String::as_str)
            .unwrap_or("")
    }

    /// Whether the file lives in a test/example context (integration test
    /// dirs and examples are exempt from the facade and hot-path rules;
    /// `#[cfg(test)]` modules are handled separately via spans).
    pub fn is_test_context(&self) -> bool {
        let r = &self.rel;
        r.starts_with("tests/")
            || r.starts_with("examples/")
            || r.contains("/tests/")
            || r.contains("/examples/")
            || r.contains("/benches/")
    }
}

/// Directory names never descended into.
const SKIP_DIRS: &[&str] = &["target", "vendor", ".git", "fixtures"];

/// Top-level entries of the workspace that are walked for sources.
const WALK_ROOTS: &[&str] = &["crates", "src", "tests", "examples"];

/// Collect and parse every `.rs` file under the workspace `root`.
pub fn load_workspace(root: &Path) -> io::Result<Vec<SourceFile>> {
    let mut files = Vec::new();
    for entry in WALK_ROOTS {
        let dir = root.join(entry);
        if dir.is_dir() {
            walk(&dir, root, &mut files)?;
        }
    }
    files.sort_by(|a, b| a.rel.cmp(&b.rel));
    Ok(files)
}

fn walk(dir: &Path, root: &Path, out: &mut Vec<SourceFile>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name) {
                continue;
            }
            walk(&path, root, out)?;
        } else if name.ends_with(".rs") {
            let text = fs::read_to_string(&path)?;
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            out.push(SourceFile::parse(rel, &text));
        }
    }
    Ok(())
}
