//! The per-file token rules: facade integrity, unsafe hygiene, and trace
//! discipline. (The memory-ordering audit lives in `manifest`, since it is
//! a cross-file diff against `ORDERINGS.toml`.)

use crate::allowlist::Allowlist;
use crate::lexer::{Tok, TokKind};
use crate::model::{Finding, Rule, SourceFile};

/// Files whose bodies are the scheduler/deque/trace hot paths. Clock reads
/// and trace emission in these files must sit behind the `trace` feature
/// gate (or an explicit allowlist entry naming the symbol).
pub const HOT_PATH_FILES: &[&str] = &[
    "crates/runtime/src/engine.rs",
    "crates/runtime/src/tascell.rs",
    "crates/runtime/src/frame.rs",
    "crates/runtime/src/pool.rs",
    "crates/deque/src/the.rs",
    "crates/deque/src/chase_lev.rs",
    "crates/deque/src/pool.rs",
    "crates/deque/src/signal.rs",
    "crates/deque/src/backend.rs",
    "crates/trace/src/ring.rs",
];

fn ident_at(toks: &[Tok], i: usize) -> Option<&str> {
    match toks.get(i).map(|t| &t.kind) {
        Some(TokKind::Ident(s)) => Some(s),
        _ => None,
    }
}

fn punct_at(toks: &[Tok], i: usize, c: char) -> bool {
    matches!(toks.get(i).map(|t| &t.kind), Some(TokKind::Punct(p)) if *p == c)
}

/// Whether the path `seg0::seg1::...` starts at token `i`.
pub fn path_at(toks: &[Tok], i: usize, segs: &[&str]) -> bool {
    let mut idx = i;
    for (k, seg) in segs.iter().enumerate() {
        if k > 0 {
            if !(punct_at(toks, idx, ':') && punct_at(toks, idx + 1, ':')) {
                return false;
            }
            idx += 2;
        }
        if ident_at(toks, idx) != Some(*seg) {
            return false;
        }
        idx += 1;
    }
    true
}

/// Facade integrity: raw concurrency primitives may only be named inside
/// the `crate::sync` facade modules (allowlisted) and test code. Everything
/// else must import through a facade so the model checker's coverage claim
/// — "every atomic the deques execute is a shim-sync yield point" — stays
/// machine-verified.
pub fn check_facade(f: &SourceFile, allow: &Allowlist, out: &mut Vec<Finding>) {
    if f.is_test_context() {
        return;
    }
    const BANNED: &[(&[&str], &str)] = &[
        (
            &["std", "sync", "atomic"],
            "raw `std::sync::atomic` outside a `crate::sync` facade",
        ),
        (
            &["std", "thread", "spawn"],
            "raw `std::thread::spawn` outside a `crate::sync` facade (use scoped workers)",
        ),
        (
            &["parking_lot"],
            "direct `parking_lot` use outside a `crate::sync` facade",
        ),
    ];
    for (i, t) in f.toks.iter().enumerate() {
        for (segs, what) in BANNED {
            if path_at(&f.toks, i, segs) {
                let line = t.line;
                if f.spans.in_test(line) {
                    continue;
                }
                let symbol = f.spans.symbol_at(line);
                if allow.permits(Rule::Facade, &f.rel, &symbol) {
                    continue;
                }
                out.push(Finding {
                    file: f.rel.clone(),
                    line,
                    col: t.col,
                    rule: Rule::Facade,
                    msg: format!("{what} (in `{symbol}`)"),
                });
            }
        }
    }
}

/// Unsafe hygiene: every `unsafe` keyword in non-test code needs an
/// adjacent `// SAFETY:` comment stating the discharged invariant. Blocks
/// inside an `unsafe fn` body are covered by the function's own
/// requirement comment; consecutive `unsafe impl` lines share one comment.
pub fn check_unsafe(f: &SourceFile, allow: &Allowlist, out: &mut Vec<Finding>) {
    if f.is_test_context() {
        return;
    }
    let mut reported = Vec::new();
    for t in &f.toks {
        if t.kind != TokKind::Ident("unsafe".to_string()) {
            continue;
        }
        let line = t.line;
        if f.spans.in_test(line) || f.spans.inside_unsafe_fn_body(line) {
            continue;
        }
        if reported.contains(&line) {
            continue; // one finding per line, e.g. `unsafe { a() }; unsafe { b() }`
        }
        if has_safety_comment(f, line) {
            continue;
        }
        let symbol = f.spans.symbol_at(line);
        if allow.permits(Rule::UnsafeHygiene, &f.rel, &symbol) {
            continue;
        }
        reported.push(line);
        out.push(Finding {
            file: f.rel.clone(),
            line,
            col: t.col,
            rule: Rule::UnsafeHygiene,
            msg: format!("`unsafe` without an adjacent `// SAFETY:` comment (in `{symbol}`)"),
        });
    }
}

/// Whether a SAFETY comment sits adjacent to the `unsafe` token on `line`:
/// on the line itself, directly above (skipping blanks, attributes, other
/// comments and earlier `unsafe impl` one-liners of the same group), or —
/// when the line opens a block — in the comment lines leading its body.
fn has_safety_comment(f: &SourceFile, line: u32) -> bool {
    let marks = |text: &str| text.contains("SAFETY") || text.contains("# Safety");
    if marks(&f.comment_text_at(line)) {
        return true;
    }
    // Down-scan into an opened block: `unsafe fn foo(...) {` / `unsafe {`
    // followed by the comment as the body's first lines.
    if f.line_text(line).trim_end().ends_with('{') {
        let mut l = line + 1;
        while (l as usize) <= f.lines.len() {
            let comment = f.comment_text_at(l);
            if marks(&comment) {
                return true;
            }
            let pure_comment = !comment.is_empty() && !f.has_code_on(l);
            let blank = comment.is_empty() && f.line_text(l).trim().is_empty();
            if pure_comment || blank {
                l += 1;
                continue;
            }
            break;
        }
    }
    // Up-scan for the comment above the construct.
    let mut l = line.saturating_sub(1);
    while l >= 1 {
        let comment = f.comment_text_at(l);
        if marks(&comment) {
            return true;
        }
        let trimmed = f.line_text(l).trim().to_string();
        let pure_comment = !comment.is_empty() && !f.has_code_on(l);
        let blank = trimmed.is_empty();
        let attr = trimmed.starts_with("#[") || trimmed.starts_with("#!");
        let unsafe_impl = trimmed.starts_with("unsafe impl");
        if pure_comment || blank || attr || unsafe_impl {
            l -= 1;
            continue;
        }
        break;
    }
    false
}

/// Trace discipline: on hot-path files, clock reads (`Instant::now`) and
/// direct trace-crate references must be compiled out with the `trace`
/// feature. Everything else would put instrumentation cost into the
/// untraced build the benchmarks use as their baseline.
pub fn check_trace_gate(f: &SourceFile, allow: &Allowlist, out: &mut Vec<Finding>) {
    if !HOT_PATH_FILES.contains(&f.rel.as_str()) {
        return;
    }
    for (i, t) in f.toks.iter().enumerate() {
        let what = if path_at(&f.toks, i, &["Instant", "now"]) {
            "`Instant::now` on a hot path outside the `trace` feature gate"
        } else if ident_at(&f.toks, i) == Some("adaptivetc_trace") {
            "direct `adaptivetc_trace` reference on a hot path outside the `trace` feature gate"
        } else {
            continue;
        };
        let line = t.line;
        if f.spans.in_test(line) || f.spans.in_trace_gate(line) {
            continue;
        }
        let symbol = f.spans.symbol_at(line);
        if allow.permits(Rule::TraceGate, &f.rel, &symbol) {
            continue;
        }
        out.push(Finding {
            file: f.rel.clone(),
            line,
            col: t.col,
            rule: Rule::TraceGate,
            msg: format!("{what} (in `{symbol}`)"),
        });
    }
}
