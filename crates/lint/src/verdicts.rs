//! The ordering-minimization audit: machine-readable verdicts for every
//! `Ordering::` site that the bounded model-checking suites can reach.
//!
//! `crates/check`'s `ordering_audit` binary re-runs the relevant bounded
//! suites with each site weakened one step down the ladder
//! (`SeqCst → AcqRel → Acquire/Release → Relaxed`, in both SC and x86-TSO
//! store-buffer modes) and writes one `[[verdict]]` per site group to
//! `ORDERING_VERDICTS.toml`:
//!
//! - `required` — some one-step-weaker candidate was refuted (an assertion
//!   or race fired), so the declared ordering is load-bearing at the
//!   explored bounds.
//! - `weakenable` — every one-step-weaker candidate survived exhaustive
//!   bounded exploration; the site is a minimization candidate and must be
//!   either weakened (and re-proved) or kept with a justification in
//!   `MINIMIZE.toml`.
//! - `minimal` — already `Relaxed`; there is nothing weaker to try.
//! - `unexercised` — no covering suite ever executed the site, so the
//!   audit proved nothing; this is a hard failure (grow a suite or drop
//!   the site from [`COVERED_FILES`]).
//!
//! This module cross-checks the committed verdicts against the live tree:
//! every site group in a covered file needs a fresh verdict, stale
//! verdicts must go, and `weakenable` verdicts must be justified.

use crate::manifest::SiteKey;
use crate::model::{Finding, Rule, SourceFile};
use crate::toml::{self, quote};
use std::collections::BTreeMap;

/// Files whose ordering sites are reachable from the `crates/check`
/// bounded suites (the `#[path]`-included model-checked sources). Sites
/// elsewhere (e.g. the runtime's worker loop) have no bounded harness and
/// are out of the audit's scope.
pub const COVERED_FILES: &[&str] = &[
    "crates/deque/src/chase_lev.rs",
    "crates/deque/src/fence_free.rs",
    "crates/deque/src/pool.rs",
    "crates/deque/src/signal.rs",
    "crates/deque/src/the.rs",
    "crates/runtime/src/submit.rs",
    "crates/strategy/src/controller.rs",
];

/// Name of the verdict report at the workspace root.
pub const VERDICTS_FILE: &str = "ORDERING_VERDICTS.toml";

/// Name of the weakenable-justification file at the workspace root.
pub const MINIMIZE_FILE: &str = "MINIMIZE.toml";

/// The verdict classes the audit binary may emit.
pub const VERDICT_KINDS: &[&str] = &["required", "weakenable", "minimal", "unexercised"];

/// One `[[verdict]]` from `ORDERING_VERDICTS.toml`.
#[derive(Debug, Clone)]
pub struct VerdictEntry {
    /// Site identity (same key space as `ORDERINGS.toml`).
    pub key: SiteKey,
    /// `required` | `weakenable` | `minimal` | `unexercised`.
    pub verdict: String,
    /// Number of times the site group executed in the baseline run.
    pub exercised: u64,
    /// Comma-separated covering suite names.
    pub suites: String,
    /// Human-readable evidence (which candidate failed how, or why not).
    pub detail: String,
    /// Line of the entry header in the verdicts file.
    pub line: u32,
}

/// One `[[keep]]` from `MINIMIZE.toml`: a deliberately-unweakened site.
#[derive(Debug, Clone)]
pub struct MinimizeEntry {
    /// Site identity.
    pub key: SiteKey,
    /// Why the stronger ordering is kept despite the `weakenable` verdict.
    pub why: String,
    /// Line of the entry header in `MINIMIZE.toml`.
    pub line: u32,
}

fn parse_key(t: &toml::Table, file_name: &str, findings: &mut Vec<Finding>) -> Option<SiteKey> {
    let file = t.get_str("file").unwrap_or_default().to_string();
    let symbol = t.get_str("symbol").unwrap_or_default().to_string();
    let ordering = t.get_str("ordering").unwrap_or_default().to_string();
    if file.is_empty() || symbol.is_empty() || ordering.is_empty() {
        findings.push(Finding {
            file: file_name.to_string(),
            line: t.line,
            col: 1,
            rule: Rule::Verdict,
            msg: "entry must set `file`, `symbol` and `ordering`".to_string(),
        });
        return None;
    }
    Some(SiteKey {
        file,
        symbol,
        ordering,
    })
}

/// Parse `ORDERING_VERDICTS.toml`. Structural problems become findings.
pub fn parse_verdicts(text: &str, findings: &mut Vec<Finding>) -> Vec<VerdictEntry> {
    let tables = match toml::parse(text) {
        Ok(t) => t,
        Err(e) => {
            findings.push(Finding {
                file: VERDICTS_FILE.to_string(),
                line: e.line,
                col: 1,
                rule: Rule::Verdict,
                msg: format!("parse error: {}", e.msg),
            });
            return Vec::new();
        }
    };
    let mut entries = Vec::new();
    for t in tables {
        if t.name != "verdict" {
            findings.push(Finding {
                file: VERDICTS_FILE.to_string(),
                line: t.line,
                col: 1,
                rule: Rule::Verdict,
                msg: format!("unknown table `[[{}]]` (expected `[[verdict]]`)", t.name),
            });
            continue;
        }
        let Some(key) = parse_key(&t, VERDICTS_FILE, findings) else {
            continue;
        };
        let verdict = t.get_str("verdict").unwrap_or_default().to_string();
        if !VERDICT_KINDS.contains(&verdict.as_str()) {
            findings.push(Finding {
                file: VERDICTS_FILE.to_string(),
                line: t.line,
                col: 1,
                rule: Rule::Verdict,
                msg: format!(
                    "unknown verdict `{verdict}` (expected one of {})",
                    VERDICT_KINDS.join(", ")
                ),
            });
            continue;
        }
        entries.push(VerdictEntry {
            key,
            verdict,
            exercised: t.get_int("exercised").unwrap_or(0),
            suites: t.get_str("suites").unwrap_or_default().to_string(),
            detail: t.get_str("detail").unwrap_or_default().to_string(),
            line: t.line,
        });
    }
    entries
}

/// Parse `MINIMIZE.toml`. Structural problems become findings.
pub fn parse_minimize(text: &str, findings: &mut Vec<Finding>) -> Vec<MinimizeEntry> {
    let tables = match toml::parse(text) {
        Ok(t) => t,
        Err(e) => {
            findings.push(Finding {
                file: MINIMIZE_FILE.to_string(),
                line: e.line,
                col: 1,
                rule: Rule::Minimize,
                msg: format!("parse error: {}", e.msg),
            });
            return Vec::new();
        }
    };
    let mut entries = Vec::new();
    for t in tables {
        if t.name != "keep" {
            findings.push(Finding {
                file: MINIMIZE_FILE.to_string(),
                line: t.line,
                col: 1,
                rule: Rule::Minimize,
                msg: format!("unknown table `[[{}]]` (expected `[[keep]]`)", t.name),
            });
            continue;
        }
        let Some(key) = parse_key(&t, MINIMIZE_FILE, findings) else {
            continue;
        };
        entries.push(MinimizeEntry {
            key,
            why: t.get_str("why").unwrap_or_default().to_string(),
            line: t.line,
        });
    }
    entries
}

/// Cross-check the committed verdicts (and `MINIMIZE.toml`) against the
/// `Ordering::` sites observed in the tree.
///
/// Hard failures: a covered site group with no verdict, a verdict for a
/// site that no longer exists, an `unexercised` verdict, a `weakenable`
/// verdict with neither an applied weakening nor a justified
/// `MINIMIZE.toml` entry, and stale or unjustified `MINIMIZE.toml`
/// entries.
pub fn check(
    sites: &BTreeMap<SiteKey, Vec<u32>>,
    verdicts: &[VerdictEntry],
    minimize: &[MinimizeEntry],
    findings: &mut Vec<Finding>,
) {
    let by_key: BTreeMap<&SiteKey, &VerdictEntry> = verdicts.iter().map(|v| (&v.key, v)).collect();
    let kept: BTreeMap<&SiteKey, &MinimizeEntry> = minimize.iter().map(|m| (&m.key, m)).collect();

    for (key, lines) in sites {
        if !COVERED_FILES.contains(&key.file.as_str()) {
            continue;
        }
        let Some(v) = by_key.get(key) else {
            findings.push(Finding {
                file: key.file.clone(),
                line: lines[0],
                col: 1,
                rule: Rule::Verdict,
                msg: format!(
                    "Ordering::{} in `{}` has no {VERDICTS_FILE} entry; run `cargo run -p adaptivetc-check --bin ordering_audit`",
                    key.ordering, key.symbol
                ),
            });
            continue;
        };
        match v.verdict.as_str() {
            "unexercised" => findings.push(Finding {
                file: key.file.clone(),
                line: lines[0],
                col: 1,
                rule: Rule::Verdict,
                msg: format!(
                    "Ordering::{} in `{}` is unexercised: no bounded suite reaches it — add coverage or drop the file from the audit scope",
                    key.ordering, key.symbol
                ),
            }),
            "weakenable" => match kept.get(key) {
                None => findings.push(Finding {
                    file: key.file.clone(),
                    line: lines[0],
                    col: 1,
                    rule: Rule::Minimize,
                    msg: format!(
                        "Ordering::{} in `{}` is weakenable at the explored bounds: weaken it (and re-run the audit) or justify keeping it in {MINIMIZE_FILE} (`--orderings-verify --bless` writes the skeleton)",
                        key.ordering, key.symbol
                    ),
                }),
                Some(m) if m.why.trim().is_empty() || m.why.trim_start().starts_with("TODO") => {
                    findings.push(Finding {
                        file: MINIMIZE_FILE.to_string(),
                        line: m.line,
                        col: 1,
                        rule: Rule::Minimize,
                        msg: format!(
                            "entry for {} `{}` Ordering::{} has no justification (`why`)",
                            key.file, key.symbol, key.ordering
                        ),
                    });
                }
                Some(_) => {}
            },
            _ => {}
        }
    }

    for v in verdicts {
        if !sites.contains_key(&v.key) {
            findings.push(Finding {
                file: VERDICTS_FILE.to_string(),
                line: v.line,
                col: 1,
                rule: Rule::Verdict,
                msg: format!(
                    "stale verdict: {} `{}` Ordering::{} no longer exists in the tree — re-run the audit",
                    v.key.file, v.key.symbol, v.key.ordering
                ),
            });
        }
    }

    for m in minimize {
        let still_weakenable = by_key
            .get(&m.key)
            .is_some_and(|v| v.verdict == "weakenable");
        if !still_weakenable {
            findings.push(Finding {
                file: MINIMIZE_FILE.to_string(),
                line: m.line,
                col: 1,
                rule: Rule::Minimize,
                msg: format!(
                    "stale entry: {} `{}` Ordering::{} has no `weakenable` verdict any more",
                    m.key.file, m.key.symbol, m.key.ordering
                ),
            });
        }
    }
}

/// Render `ORDERING_VERDICTS.toml` from audit results (used by the
/// `ordering_audit` binary so the file format lives next to its parser).
pub fn render_verdicts(entries: &[VerdictEntry]) -> String {
    let mut sorted: Vec<&VerdictEntry> = entries.iter().collect();
    sorted.sort_by(|a, b| a.key.cmp(&b.key));
    let mut out = String::new();
    out.push_str(
        "# ORDERING_VERDICTS.toml — machine-written by the ordering-minimization audit.\n\
         #\n\
         # One [[verdict]] per (file, symbol, ordering) group in the audit's\n\
         # covered files. Regenerate with:\n\
         #   cargo run -p adaptivetc-check --bin ordering_audit\n\
         # (check-shim build; see DESIGN.md §16 for verdict semantics).\n\
         # `cargo run -p adaptivetc-lint -- --orderings-verify` cross-checks\n\
         # this file against the live tree and fails on unexercised or\n\
         # unjustified-weakenable sites. Do not edit by hand.\n",
    );
    let mut last_file = String::new();
    for v in sorted {
        if v.key.file != last_file {
            out.push_str(&format!("\n# ---- {} ----\n", v.key.file));
            last_file = v.key.file.clone();
        }
        out.push('\n');
        out.push_str("[[verdict]]\n");
        out.push_str(&format!("file = {}\n", quote(&v.key.file)));
        out.push_str(&format!("symbol = {}\n", quote(&v.key.symbol)));
        out.push_str(&format!("ordering = {}\n", quote(&v.key.ordering)));
        out.push_str(&format!("verdict = {}\n", quote(&v.verdict)));
        out.push_str(&format!("exercised = {}\n", v.exercised));
        out.push_str(&format!("suites = {}\n", quote(&v.suites)));
        out.push_str(&format!("detail = {}\n", quote(&v.detail)));
    }
    out
}

/// Render a fresh `MINIMIZE.toml` holding one `[[keep]]` skeleton per
/// `weakenable` verdict, preserving existing justifications by key.
pub fn render_minimize(verdicts: &[VerdictEntry], old: &[MinimizeEntry]) -> String {
    let old_why: BTreeMap<&SiteKey, &str> = old
        .iter()
        .filter(|m| !m.why.trim().is_empty())
        .map(|m| (&m.key, m.why.as_str()))
        .collect();
    let mut weak: Vec<&VerdictEntry> = verdicts
        .iter()
        .filter(|v| v.verdict == "weakenable")
        .collect();
    weak.sort_by(|a, b| a.key.cmp(&b.key));
    let mut out = String::new();
    out.push_str(
        "# MINIMIZE.toml — justified decisions to KEEP orderings the audit\n\
         # proved weakenable at the explored bounds.\n\
         #\n\
         # One [[keep]] per `weakenable` verdict in ORDERING_VERDICTS.toml.\n\
         # `why` must say what the bounded exploration cannot see (larger\n\
         # thread counts, unbounded preemptions, non-TSO targets, ...) that\n\
         # makes the stronger ordering worth its cost. Regenerate skeletons\n\
         # (preserving justifications) with:\n\
         #   cargo run -p adaptivetc-lint -- --orderings-verify --bless\n",
    );
    for v in weak {
        out.push('\n');
        out.push_str("[[keep]]\n");
        out.push_str(&format!("file = {}\n", quote(&v.key.file)));
        out.push_str(&format!("symbol = {}\n", quote(&v.key.symbol)));
        out.push_str(&format!("ordering = {}\n", quote(&v.key.ordering)));
        let why = old_why.get(&v.key).copied().unwrap_or("");
        out.push_str(&format!("why = {}\n", quote(why)));
    }
    out
}

/// Collect the ordering sites of the covered files only — what the audit
/// binary iterates. Sites inside `#[cfg(test)]` context are dropped:
/// the bounded scenarios run the *product* protocol paths, and a unit
/// test's own atomics are exercised by that unit test, not the audit.
pub fn covered_sites(files: &[SourceFile]) -> BTreeMap<SiteKey, Vec<u32>> {
    let mut map = BTreeMap::new();
    for f in files {
        if !COVERED_FILES.contains(&f.rel.as_str()) {
            continue;
        }
        for (key, lines) in crate::manifest::collect_sites(std::slice::from_ref(f)) {
            let live: Vec<u32> = lines.into_iter().filter(|&l| !f.spans.in_test(l)).collect();
            if !live.is_empty() {
                map.insert(key, live);
            }
        }
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(ordering: &str) -> SiteKey {
        SiteKey {
            file: "crates/deque/src/the.rs".to_string(),
            symbol: "steal".to_string(),
            ordering: ordering.to_string(),
        }
    }

    fn verdict(ordering: &str, kind: &str) -> VerdictEntry {
        VerdictEntry {
            key: key(ordering),
            verdict: kind.to_string(),
            exercised: 4,
            suites: "the_protocol".to_string(),
            detail: "d".to_string(),
            line: 1,
        }
    }

    #[test]
    fn missing_verdict_and_unexercised_are_hard_failures() {
        let mut sites = BTreeMap::new();
        sites.insert(key("SeqCst"), vec![10]);
        sites.insert(key("Acquire"), vec![20]);
        let verdicts = vec![verdict("Acquire", "unexercised")];
        let mut findings = Vec::new();
        check(&sites, &verdicts, &[], &mut findings);
        assert_eq!(findings.len(), 2, "{findings:?}");
        assert!(findings
            .iter()
            .any(|f| f.msg.contains("no ORDERING_VERDICTS.toml entry")));
        assert!(findings.iter().any(|f| f.msg.contains("unexercised")));
    }

    #[test]
    fn weakenable_requires_justified_keep() {
        let mut sites = BTreeMap::new();
        sites.insert(key("SeqCst"), vec![10]);
        let verdicts = vec![verdict("SeqCst", "weakenable")];
        let mut findings = Vec::new();
        check(&sites, &verdicts, &[], &mut findings);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].msg.contains("weakenable"));

        let keep = MinimizeEntry {
            key: key("SeqCst"),
            why: "paper's proof assumes SC for this edge".to_string(),
            line: 3,
        };
        findings.clear();
        check(&sites, &verdicts, &[keep], &mut findings);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn stale_verdict_and_stale_keep_are_flagged() {
        let sites = BTreeMap::new();
        let verdicts = vec![verdict("SeqCst", "required")];
        let keep = MinimizeEntry {
            key: key("Relaxed"),
            why: "w".to_string(),
            line: 9,
        };
        let mut findings = Vec::new();
        check(&sites, &verdicts, &[keep], &mut findings);
        assert_eq!(findings.len(), 2, "{findings:?}");
        assert!(findings.iter().any(|f| f.msg.contains("stale verdict")));
        assert!(findings.iter().any(|f| f.msg.contains("stale entry")));
    }

    #[test]
    fn minimize_roundtrip_preserves_why() {
        let verdicts = vec![verdict("SeqCst", "weakenable")];
        let old = vec![MinimizeEntry {
            key: key("SeqCst"),
            why: "kept for portability".to_string(),
            line: 1,
        }];
        let text = render_minimize(&verdicts, &old);
        let mut findings = Vec::new();
        let back = parse_minimize(&text, &mut findings);
        assert!(findings.is_empty(), "{findings:?}");
        assert_eq!(back.len(), 1);
        assert_eq!(back[0].why, "kept for portability");
    }

    #[test]
    fn verdicts_roundtrip() {
        let entries = vec![verdict("SeqCst", "required"), verdict("Relaxed", "minimal")];
        let text = render_verdicts(&entries);
        let mut findings = Vec::new();
        let back = parse_verdicts(&text, &mut findings);
        assert!(findings.is_empty(), "{findings:?}");
        assert_eq!(back.len(), 2);
        assert!(back
            .iter()
            .any(|v| v.verdict == "required" && v.exercised == 4));
    }
}
