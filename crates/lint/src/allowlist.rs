//! `LINT_ALLOW.toml`: the explicit, justified exception list.
//!
//! Every entry must name the file, the rule it suppresses, and a
//! non-empty justification; an optional `symbol` narrows the exception to
//! one function. Entries that suppress nothing are themselves findings
//! (stale), as are entries without a real justification — the allowlist
//! can only ever shrink silently, never grow silently.

use crate::model::{Finding, Rule};
use crate::toml;
use std::cell::Cell;

/// One allowlist entry.
#[derive(Debug)]
pub struct AllowEntry {
    /// Workspace-relative file the exception applies to.
    pub file: String,
    /// Rule name (`facade`, `trace-gate`, `unsafe-safety`).
    pub rule: String,
    /// Optional enclosing-function restriction.
    pub symbol: Option<String>,
    /// Why the exception is legitimate.
    pub why: String,
    /// Line of the entry in `LINT_ALLOW.toml`.
    pub line: u32,
    used: Cell<bool>,
}

/// The parsed allowlist.
#[derive(Debug, Default)]
pub struct Allowlist {
    /// All entries, in file order.
    pub entries: Vec<AllowEntry>,
}

/// Rules an allowlist entry may suppress. The ordering audit is
/// deliberately absent: its exception mechanism is the manifest itself.
const ALLOWABLE: &[&str] = &["facade", "trace-gate", "unsafe-safety"];

/// Name of the allowlist file at the workspace root.
pub const ALLOWLIST_FILE: &str = "LINT_ALLOW.toml";

impl Allowlist {
    /// Parse the allowlist document. Structural problems become findings
    /// rather than hard errors so one bad entry does not mask the rest of
    /// the run.
    pub fn parse(text: &str, findings: &mut Vec<Finding>) -> Allowlist {
        let tables = match toml::parse(text) {
            Ok(t) => t,
            Err(e) => {
                findings.push(Finding {
                    file: ALLOWLIST_FILE.to_string(),
                    line: e.line,
                    col: 1,
                    rule: Rule::Allowlist,
                    msg: format!("parse error: {}", e.msg),
                });
                return Allowlist::default();
            }
        };
        let mut entries = Vec::new();
        for t in tables {
            if t.name != "allow" {
                findings.push(Finding {
                    file: ALLOWLIST_FILE.to_string(),
                    line: t.line,
                    col: 1,
                    rule: Rule::Allowlist,
                    msg: format!("unknown table `[[{}]]` (expected `[[allow]]`)", t.name),
                });
                continue;
            }
            let file = t.get_str("file").unwrap_or_default().to_string();
            let rule = t.get_str("rule").unwrap_or_default().to_string();
            let why = t.get_str("why").unwrap_or_default().to_string();
            if file.is_empty() || rule.is_empty() {
                findings.push(Finding {
                    file: ALLOWLIST_FILE.to_string(),
                    line: t.line,
                    col: 1,
                    rule: Rule::Allowlist,
                    msg: "entry must set both `file` and `rule`".to_string(),
                });
                continue;
            }
            if !ALLOWABLE.contains(&rule.as_str()) {
                findings.push(Finding {
                    file: ALLOWLIST_FILE.to_string(),
                    line: t.line,
                    col: 1,
                    rule: Rule::Allowlist,
                    msg: format!(
                        "rule `{rule}` cannot be allowlisted (allowed: {})",
                        ALLOWABLE.join(", ")
                    ),
                });
                continue;
            }
            if why.trim().is_empty() || why.trim_start().starts_with("TODO") {
                findings.push(Finding {
                    file: ALLOWLIST_FILE.to_string(),
                    line: t.line,
                    col: 1,
                    rule: Rule::Allowlist,
                    msg: format!("entry for `{file}` has no justification (`why`)"),
                });
                // Fall through: an unjustified entry still suppresses, so a
                // missing justification is exactly one finding, not a
                // cascade of re-opened sites.
            }
            entries.push(AllowEntry {
                file,
                rule,
                symbol: t.get_str("symbol").map(str::to_string),
                why,
                line: t.line,
                used: Cell::new(false),
            });
        }
        Allowlist { entries }
    }

    /// Whether an entry suppresses `rule` at `file`/`symbol`; marks the
    /// entry used for staleness accounting.
    pub fn permits(&self, rule: Rule, file: &str, symbol: &str) -> bool {
        let mut hit = false;
        for e in &self.entries {
            if e.rule == rule.name()
                && e.file == file
                && e.symbol.as_deref().map(|s| s == symbol).unwrap_or(true)
            {
                e.used.set(true);
                hit = true;
            }
        }
        hit
    }

    /// Report entries that suppressed nothing this run.
    pub fn report_stale(&self, findings: &mut Vec<Finding>) {
        for e in &self.entries {
            if !e.used.get() {
                findings.push(Finding {
                    file: ALLOWLIST_FILE.to_string(),
                    line: e.line,
                    col: 1,
                    rule: Rule::Allowlist,
                    msg: format!(
                        "stale entry: rule `{}` at `{}`{} no longer matches any site — remove it",
                        e.rule,
                        e.file,
                        e.symbol
                            .as_deref()
                            .map(|s| format!(" (symbol `{s}`)"))
                            .unwrap_or_default()
                    ),
                });
            }
        }
    }
}
