//! A minimal TOML-subset reader/writer for the lint's two data files.
//!
//! Supports exactly what `ORDERINGS.toml` and `LINT_ALLOW.toml` use:
//! `[[table]]` array-of-tables headers, `key = "string"` (with `\"` and
//! `\\` escapes) and `key = integer` pairs, blank lines and `#` comments.
//! Anything else is a hard parse error — the files are machine-written
//! (`--bless`) or short and hand-curated, so strictness beats leniency.

use std::collections::BTreeMap;
use std::fmt;

/// A scalar value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Value {
    /// A quoted string.
    Str(String),
    /// A non-negative integer.
    Int(u64),
}

impl Value {
    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            Value::Int(_) => None,
        }
    }

    /// The integer payload, if this is an integer.
    pub fn as_int(&self) -> Option<u64> {
        match self {
            Value::Int(n) => Some(*n),
            Value::Str(_) => None,
        }
    }
}

/// One `[[name]]` table: its keys plus the line its header sits on.
#[derive(Debug, Clone)]
pub struct Table {
    /// The array-of-tables name (`site`, `allow`).
    pub name: String,
    /// 1-based line of the `[[name]]` header.
    pub line: u32,
    /// Key/value pairs, insertion-ordered per file but stored sorted.
    pub entries: BTreeMap<String, Value>,
}

impl Table {
    /// String value for `key`, if present.
    pub fn get_str(&self, key: &str) -> Option<&str> {
        self.entries.get(key).and_then(Value::as_str)
    }

    /// Integer value for `key`, if present.
    pub fn get_int(&self, key: &str) -> Option<u64> {
        self.entries.get(key).and_then(Value::as_int)
    }
}

/// A parse failure with its 1-based line.
#[derive(Debug, Clone)]
pub struct ParseError {
    /// Offending line number.
    pub line: u32,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

/// Parse a document into its array-of-tables entries.
pub fn parse(text: &str) -> Result<Vec<Table>, ParseError> {
    let mut tables: Vec<Table> = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let lineno = (idx + 1) as u32;
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if let Some(inner) = line.strip_prefix("[[").and_then(|l| l.strip_suffix("]]")) {
            tables.push(Table {
                name: inner.trim().to_string(),
                line: lineno,
                entries: BTreeMap::new(),
            });
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(ParseError {
                line: lineno,
                msg: format!("expected `key = value` or `[[table]]`, got `{line}`"),
            });
        };
        let Some(table) = tables.last_mut() else {
            return Err(ParseError {
                line: lineno,
                msg: "key/value pair before any [[table]] header".to_string(),
            });
        };
        let key = key.trim().to_string();
        let value = parse_value(value.trim(), lineno)?;
        if table.entries.insert(key.clone(), value).is_some() {
            return Err(ParseError {
                line: lineno,
                msg: format!("duplicate key `{key}` in one table"),
            });
        }
    }
    Ok(tables)
}

/// Remove a trailing `#` comment, respecting quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_str => escaped = true,
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_value(v: &str, line: u32) -> Result<Value, ParseError> {
    if let Some(rest) = v.strip_prefix('"') {
        let Some(body) = rest.strip_suffix('"') else {
            return Err(ParseError {
                line,
                msg: "unterminated string".to_string(),
            });
        };
        let mut out = String::with_capacity(body.len());
        let mut chars = body.chars();
        while let Some(c) = chars.next() {
            if c == '\\' {
                match chars.next() {
                    Some('"') => out.push('"'),
                    Some('\\') => out.push('\\'),
                    Some(other) => {
                        return Err(ParseError {
                            line,
                            msg: format!("unsupported escape `\\{other}`"),
                        })
                    }
                    None => {
                        return Err(ParseError {
                            line,
                            msg: "dangling escape".to_string(),
                        })
                    }
                }
            } else if c == '"' {
                return Err(ParseError {
                    line,
                    msg: "unescaped quote inside string".to_string(),
                });
            } else {
                out.push(c);
            }
        }
        return Ok(Value::Str(out));
    }
    match v.parse::<u64>() {
        Ok(n) => Ok(Value::Int(n)),
        Err(_) => Err(ParseError {
            line,
            msg: format!("expected quoted string or integer, got `{v}`"),
        }),
    }
}

/// Quote a string for emission.
pub fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            _ => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_tables() {
        let doc = "# header\n[[site]]\nfile = \"a/b.rs\" # trailing\ncount = 3\nwhy = \"has # inside\"\n\n[[site]]\nfile = \"c.rs\"\n";
        let tables = parse(doc).unwrap();
        assert_eq!(tables.len(), 2);
        assert_eq!(tables[0].get_str("file"), Some("a/b.rs"));
        assert_eq!(tables[0].get_int("count"), Some(3));
        assert_eq!(tables[0].get_str("why"), Some("has # inside"));
        assert_eq!(tables[1].line, 7);
    }

    #[test]
    fn escapes_round_trip() {
        let doc = format!("[[x]]\nwhy = {}\n", quote("a \"quoted\" \\ thing"));
        let tables = parse(&doc).unwrap();
        assert_eq!(tables[0].get_str("why"), Some("a \"quoted\" \\ thing"));
    }

    #[test]
    fn errors_carry_lines() {
        let err = parse("[[x]]\nnot a pair\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(parse("key = \"before table\"\n").is_err());
        assert!(parse("[[x]]\nk = unquoted\n").is_err());
    }
}
