//! `adaptivetc-lint`: a zero-dependency static analyzer enforcing the
//! workspace's concurrency invariants.
//!
//! The paper's correctness story rests on a hand-proved THE protocol and
//! deliberately chosen fences; this crate makes the reproduction's
//! counterparts machine-checked on every commit:
//!
//! 1. **Facade integrity** — no `std::sync::atomic`, `std::thread::spawn`
//!    or `parking_lot` outside the `crate::sync` facade modules (plus a
//!    short justified allowlist), so the `crates/check` model-checking
//!    coverage claim — every atomic the protocols execute is a shim-sync
//!    yield point in check builds — cannot silently rot.
//! 2. **Memory-ordering audit** — every `Ordering::` site under `crates/`
//!    must appear in `ORDERINGS.toml` with a justification; see
//!    [`manifest`].
//! 3. **Unsafe hygiene** — every `unsafe` needs an adjacent `// SAFETY:`
//!    comment.
//! 4. **Trace discipline** — clock reads and trace emission on hot paths
//!    must be compiled out with the `trace` feature.
//!
//! Run as `cargo run -p adaptivetc-lint` (checks, exits non-zero on
//! findings) or with `--bless` to regenerate `ORDERINGS.toml` skeleton
//! entries and the DESIGN.md §12 table after intentional changes. The same
//! engine runs as the tier-1 test `tests/lint_gate.rs`.

#![warn(missing_docs)]

pub mod allowlist;
pub mod design;
pub mod lexer;
pub mod manifest;
pub mod model;
pub mod rules;
pub mod spans;
pub mod toml;
pub mod verdicts;

pub use allowlist::ALLOWLIST_FILE;
pub use manifest::ORDERINGS_FILE;
pub use model::{Finding, Rule};
pub use verdicts::{MINIMIZE_FILE, VERDICTS_FILE};

use allowlist::Allowlist;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// The design document carrying the generated audit section.
pub const DESIGN_FILE: &str = "DESIGN.md";

/// Run every check over the workspace at `root`. Returns the findings,
/// sorted by file and line; an empty vector means the tree is clean.
pub fn analyze(root: &Path) -> io::Result<Vec<Finding>> {
    let files = model::load_workspace(root)?;
    let mut findings = Vec::new();

    let allow_text = read_or_empty(&root.join(ALLOWLIST_FILE))?;
    let allow = Allowlist::parse(&allow_text, &mut findings);

    for f in &files {
        rules::check_facade(f, &allow, &mut findings);
        rules::check_unsafe(f, &allow, &mut findings);
        rules::check_trace_gate(f, &allow, &mut findings);
    }

    let sites = manifest::collect_sites(&files);
    let manifest_path = root.join(ORDERINGS_FILE);
    let entries = if manifest_path.is_file() {
        manifest::parse_manifest(&fs::read_to_string(&manifest_path)?, &mut findings)
    } else if sites.is_empty() {
        Vec::new()
    } else {
        findings.push(Finding {
            file: ORDERINGS_FILE.to_string(),
            line: 1,
            col: 1,
            rule: Rule::Manifest,
            msg: format!(
                "{ORDERINGS_FILE} is missing but the tree has {} `Ordering::` site group(s); run `cargo run -p adaptivetc-lint -- --bless`",
                sites.len()
            ),
        });
        Vec::new()
    };
    manifest::check(&sites, &entries, &mut findings);

    // DESIGN sync: only meaningful where a DESIGN.md exists (fixture trees
    // in the meta-tests have none).
    let design_path = root.join(DESIGN_FILE);
    if design_path.is_file() && manifest_path.is_file() {
        let mut sorted = entries.clone();
        sorted.sort_by(|a, b| a.key.cmp(&b.key));
        let expected = design::render(&sorted);
        design::check(&fs::read_to_string(&design_path)?, &expected, &mut findings);
    }

    allow.report_stale(&mut findings);

    findings.sort_by(|a, b| (a.file.as_str(), a.line).cmp(&(b.file.as_str(), b.line)));
    Ok(findings)
}

/// What `bless` changed.
#[derive(Debug)]
pub struct BlessReport {
    /// Total `Ordering::` occurrences observed.
    pub sites: usize,
    /// Manifest entries written.
    pub entries: usize,
    /// Entries that still need a justification.
    pub unjustified: usize,
    /// Whether the DESIGN.md section was rewritten.
    pub design_updated: bool,
}

/// Regenerate `ORDERINGS.toml` (preserving justifications) and the
/// DESIGN.md generated table.
pub fn bless(root: &Path) -> io::Result<BlessReport> {
    let files = model::load_workspace(root)?;
    let sites = manifest::collect_sites(&files);

    let manifest_path = root.join(ORDERINGS_FILE);
    let mut scratch = Vec::new(); // parse problems are irrelevant while blessing
    let old = if manifest_path.is_file() {
        manifest::parse_manifest(&fs::read_to_string(&manifest_path)?, &mut scratch)
    } else {
        Vec::new()
    };
    let text = manifest::render(&sites, &old);
    fs::write(&manifest_path, &text)?;

    let mut findings = Vec::new();
    let entries = manifest::parse_manifest(&text, &mut findings);
    let unjustified = entries.iter().filter(|e| e.why.trim().is_empty()).count();

    let design_path = root.join(DESIGN_FILE);
    let mut design_updated = false;
    if design_path.is_file() {
        let design_text = fs::read_to_string(&design_path)?;
        let mut sorted = entries.clone();
        sorted.sort_by(|a, b| a.key.cmp(&b.key));
        if let Some(new_text) = design::splice(&design_text, &design::render(&sorted)) {
            if new_text != design_text {
                fs::write(&design_path, new_text)?;
                design_updated = true;
            }
        }
    }

    Ok(BlessReport {
        sites: sites.values().map(Vec::len).sum(),
        entries: entries.len(),
        unjustified,
        design_updated,
    })
}

/// Run the ordering-minimization cross-checks (`--orderings-verify`):
/// every covered `Ordering::` site must carry a fresh
/// `ORDERING_VERDICTS.toml` verdict, `unexercised` verdicts fail hard,
/// and `weakenable` verdicts need a justified `MINIMIZE.toml` entry.
pub fn verify_orderings(root: &Path) -> io::Result<Vec<Finding>> {
    let files = model::load_workspace(root)?;
    let sites = verdicts::covered_sites(&files);
    let mut findings = Vec::new();

    let verdicts_path = root.join(VERDICTS_FILE);
    let verdicts = if verdicts_path.is_file() {
        verdicts::parse_verdicts(&fs::read_to_string(&verdicts_path)?, &mut findings)
    } else {
        findings.push(Finding {
            file: VERDICTS_FILE.to_string(),
            line: 1,
            col: 1,
            rule: Rule::Verdict,
            msg: format!(
                "{VERDICTS_FILE} is missing; run `cargo run -p adaptivetc-check --bin ordering_audit`"
            ),
        });
        Vec::new()
    };
    let minimize_text = read_or_empty(&root.join(MINIMIZE_FILE))?;
    let minimize = verdicts::parse_minimize(&minimize_text, &mut findings);

    verdicts::check(&sites, &verdicts, &minimize, &mut findings);
    findings.sort_by(|a, b| (a.file.as_str(), a.line).cmp(&(b.file.as_str(), b.line)));
    Ok(findings)
}

/// What `--orderings-verify --bless` changed.
#[derive(Debug)]
pub struct MinimizeReport {
    /// `weakenable` verdicts found (→ `[[keep]]` skeletons written).
    pub weakenable: usize,
    /// Skeletons still missing a justification.
    pub unjustified: usize,
}

/// Regenerate `MINIMIZE.toml` skeletons from the `weakenable` verdicts,
/// preserving existing justifications by key.
pub fn bless_minimize(root: &Path) -> io::Result<MinimizeReport> {
    let mut scratch = Vec::new(); // parse problems are irrelevant while blessing
    let verdicts_path = root.join(VERDICTS_FILE);
    let verdicts = if verdicts_path.is_file() {
        verdicts::parse_verdicts(&fs::read_to_string(&verdicts_path)?, &mut scratch)
    } else {
        Vec::new()
    };
    let minimize_path = root.join(MINIMIZE_FILE);
    let old = verdicts::parse_minimize(&read_or_empty(&minimize_path)?, &mut scratch);
    let text = verdicts::render_minimize(&verdicts, &old);
    fs::write(&minimize_path, &text)?;
    let fresh = verdicts::parse_minimize(&text, &mut scratch);
    Ok(MinimizeReport {
        weakenable: fresh.len(),
        unjustified: fresh.iter().filter(|m| m.why.trim().is_empty()).count(),
    })
}

/// Locate the workspace root by walking up from `start` to the first
/// directory whose `Cargo.toml` declares `[workspace]`.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(d);
                }
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

fn read_or_empty(path: &Path) -> io::Result<String> {
    if path.is_file() {
        fs::read_to_string(path)
    } else {
        Ok(String::new())
    }
}
