//! The paper's `Fib(n)` benchmark: naive recursive Fibonacci.
//!
//! `Fib` has no taskprivate variables and almost no per-node computation, so
//! it maximises the relative weight of task creation and d-e-que management
//! — the one benchmark where Tascell beats AdaptiveTC in the paper (its
//! nested-function overhead is only 1.4 % of execution time there, versus
//! 51.7 % for task/d-e-que management in AdaptiveTC).

use adaptivetc_core::{Expansion, Problem};

/// Recursive Fibonacci as a search tree: `fib(n)` equals the number of
/// leaves that evaluate to 1.
///
/// # Examples
///
/// ```
/// use adaptivetc_core::serial;
/// use adaptivetc_workloads::fib::Fib;
///
/// let (fib10, _) = serial::run(&Fib::new(10));
/// assert_eq!(fib10, 55);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fib {
    n: u32,
}

impl Fib {
    /// The benchmark instance for argument `n`.
    pub fn new(n: u32) -> Self {
        Fib { n }
    }

    /// The argument.
    pub fn n(&self) -> u32 {
        self.n
    }

    /// Closed-form check value (iterative).
    pub fn expected(&self) -> u64 {
        let (mut a, mut b) = (0u64, 1u64);
        for _ in 0..self.n {
            let next = a + b;
            a = b;
            b = next;
        }
        a
    }
}

impl Problem for Fib {
    type State = u32;
    type Choice = u32;
    type Out = u64;

    fn root(&self) -> u32 {
        self.n
    }

    fn expand(&self, n: &u32, _depth: u32) -> Expansion<u32, u64> {
        if *n < 2 {
            Expansion::Leaf(u64::from(*n))
        } else {
            Expansion::Children(vec![1, 2])
        }
    }

    fn apply(&self, n: &mut u32, d: u32) {
        *n -= d;
    }

    fn undo(&self, n: &mut u32, d: u32) {
        *n += d;
    }

    /// `Fib` has no taskprivate workspace.
    fn state_bytes(&self, _: &u32) -> usize {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adaptivetc_core::serial;

    #[test]
    fn small_values() {
        for (n, expect) in [(0, 0), (1, 1), (2, 1), (3, 2), (10, 55), (20, 6765)] {
            let (got, _) = serial::run(&Fib::new(n));
            assert_eq!(got, expect, "fib({n})");
        }
    }

    #[test]
    fn expected_matches_recursion() {
        for n in 0..25 {
            let p = Fib::new(n);
            let (got, _) = serial::run(&p);
            assert_eq!(got, p.expected());
        }
    }

    #[test]
    fn node_count_is_2fib_minus_1() {
        // The fib(n) call tree has 2·fib(n+1) − 1 nodes.
        let p = Fib::new(15);
        let (_, r) = serial::run(&p);
        assert_eq!(r.nodes, 2 * Fib::new(16).expected() - 1);
    }

    #[test]
    fn reports_no_taskprivate_bytes() {
        let p = Fib::new(5);
        assert_eq!(p.state_bytes(&5), 0);
    }
}
