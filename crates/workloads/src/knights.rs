//! The Knight's Tour benchmark: count all open tours visiting every square
//! of an `n × n` board exactly once, moving by chess knight rules.
//!
//! The paper uses 6×6 from a fixed start; the instance here is configurable
//! (board side up to 8, any starting square). The taskprivate workspace is
//! the visited-set plus the knight's square.

use adaptivetc_core::{Expansion, Problem};

/// The knight's workspace: visited squares and current position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TourState {
    visited: u64,
    pos: u8,
}

/// A knight move; carries the origin so it can be undone exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hop {
    from: u8,
    to: u8,
}

const DELTAS: [(i8, i8); 8] = [
    (1, 2),
    (2, 1),
    (2, -1),
    (1, -2),
    (-1, -2),
    (-2, -1),
    (-2, 1),
    (-1, 2),
];

/// Count all open knight's tours on an `n × n` board from a fixed start.
///
/// # Examples
///
/// ```
/// use adaptivetc_core::serial;
/// use adaptivetc_workloads::knights::KnightsTour;
///
/// // No full tour of a 4×4 board exists.
/// let (tours, _) = serial::run(&KnightsTour::new(4, 0, 0));
/// assert_eq!(tours, 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KnightsTour {
    n: u8,
    start: u8,
}

impl KnightsTour {
    /// An `n × n` board starting at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if `n > 8` (the visited mask is 64 bits) or the start square
    /// is off the board.
    pub fn new(n: u8, row: u8, col: u8) -> Self {
        assert!((1..=8).contains(&n), "board side must be in 1..=8");
        assert!(row < n && col < n, "start square off the board");
        KnightsTour {
            n,
            start: row * n + col,
        }
    }

    /// Board side.
    pub fn n(&self) -> u8 {
        self.n
    }

    fn squares(&self) -> u32 {
        u32::from(self.n) * u32::from(self.n)
    }
}

impl Problem for KnightsTour {
    type State = TourState;
    type Choice = Hop;
    type Out = u64;

    fn root(&self) -> TourState {
        TourState {
            visited: 1u64 << self.start,
            pos: self.start,
        }
    }

    fn expand(&self, st: &TourState, _depth: u32) -> Expansion<Hop, u64> {
        if st.visited.count_ones() == self.squares() {
            return Expansion::Leaf(1);
        }
        let n = i8::try_from(self.n).expect("n <= 8");
        let (r, c) = ((st.pos / self.n) as i8, (st.pos % self.n) as i8);
        let moves: Vec<Hop> = DELTAS
            .iter()
            .filter_map(|&(dr, dc)| {
                let (nr, nc) = (r + dr, c + dc);
                if nr < 0 || nc < 0 || nr >= n || nc >= n {
                    return None;
                }
                let to = (nr as u8) * self.n + nc as u8;
                (st.visited & (1 << to) == 0).then_some(Hop { from: st.pos, to })
            })
            .collect();
        Expansion::Children(moves)
    }

    fn apply(&self, st: &mut TourState, m: Hop) {
        st.visited |= 1 << m.to;
        st.pos = m.to;
    }

    fn undo(&self, st: &mut TourState, m: Hop) {
        st.visited &= !(1 << m.to);
        st.pos = m.from;
    }

    fn state_bytes(&self, _: &TourState) -> usize {
        // The paper's implementation keeps an n×n board array.
        usize::from(self.n) * usize::from(self.n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adaptivetc_core::serial;

    #[test]
    fn trivial_board() {
        let (tours, _) = serial::run(&KnightsTour::new(1, 0, 0));
        assert_eq!(tours, 1); // the knight is already everywhere
    }

    #[test]
    fn small_boards_have_no_tours() {
        for n in [2, 3, 4] {
            let (tours, _) = serial::run(&KnightsTour::new(n, 0, 0));
            assert_eq!(tours, 0, "n={n}");
        }
    }

    #[test]
    fn five_by_five_corner_count() {
        // Open tours on 5×5 from a corner: 304 (of 1728 total directed
        // tours; tours exist only from squares of the majority colour).
        let (tours, _) = serial::run(&KnightsTour::new(5, 0, 0));
        assert_eq!(tours, 304);
    }

    #[test]
    fn five_by_five_center_is_minority_colour() {
        // (0,1) is a minority-colour square on 5×5: no tour can start there.
        let (tours, _) = serial::run(&KnightsTour::new(5, 0, 1));
        assert_eq!(tours, 0);
    }

    #[test]
    fn apply_undo_roundtrip() {
        let p = KnightsTour::new(6, 2, 3);
        let mut st = p.root();
        let orig = st;
        if let Expansion::Children(cs) = p.expand(&st, 0) {
            assert!(!cs.is_empty());
            for m in cs {
                p.apply(&mut st, m);
                p.undo(&mut st, m);
                assert_eq!(st, orig);
            }
        }
    }

    #[test]
    #[should_panic(expected = "board side")]
    fn oversized_board_rejected() {
        KnightsTour::new(9, 0, 0);
    }
}
