//! The Pentomino benchmark: count all ways to tile a board with `n`
//! distinct pentominoes (duplicating pieces and expanding the board for
//! `n > 12`, as the paper does for `Pentomino(13)`).
//!
//! The solver is the classic first-empty-cell backtracker: at each node it
//! finds the first uncovered cell and tries every placement of every unused
//! piece that covers it. The taskprivate workspace is the board occupancy
//! plus the used-piece set.

use adaptivetc_core::{Expansion, Problem};

/// Relative cells of the 12 pentominoes in a fixed canonical orientation.
const PIECES: [[(i8, i8); 5]; 12] = [
    [(0, 0), (1, 0), (2, 0), (3, 0), (4, 0)], // I
    [(0, 0), (0, 1), (1, 0), (1, 1), (2, 0)], // P
    [(0, 0), (1, 0), (2, 0), (3, 0), (3, 1)], // L
    [(0, 1), (1, 1), (2, 0), (2, 1), (3, 0)], // N
    [(0, 1), (0, 2), (1, 0), (1, 1), (2, 1)], // F
    [(0, 0), (0, 1), (0, 2), (1, 1), (2, 1)], // T
    [(0, 0), (0, 2), (1, 0), (1, 1), (1, 2)], // U
    [(0, 0), (1, 0), (2, 0), (2, 1), (2, 2)], // V
    [(0, 0), (1, 0), (1, 1), (2, 1), (2, 2)], // W
    [(0, 1), (1, 0), (1, 1), (1, 2), (2, 1)], // X
    [(0, 1), (1, 0), (1, 1), (2, 1), (3, 1)], // Y
    [(0, 0), (0, 1), (1, 1), (2, 1), (2, 2)], // Z
];

/// One-letter names of the 12 pentominoes, in the internal piece order.
pub const PIECE_NAMES: [char; 12] = ['I', 'P', 'L', 'N', 'F', 'T', 'U', 'V', 'W', 'X', 'Y', 'Z'];

/// The board workspace: occupancy bits and the used-piece set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BoardState {
    occ: u128,
    used: u16,
}

/// One placement: which piece, which orientation, anchored at which cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Place {
    piece: u8,
    orient: u8,
    cell: u8,
}

/// A pentomino tiling instance.
///
/// # Examples
///
/// ```
/// use adaptivetc_core::serial;
/// use adaptivetc_workloads::pentomino::Pentomino;
///
/// // A single I pentomino tiles a 1×5 strip exactly one way.
/// let p = Pentomino::with_board(1, 1, 5);
/// let (tilings, _) = serial::run(&p);
/// assert_eq!(tilings, 1);
/// ```
#[derive(Debug, Clone)]
pub struct Pentomino {
    pieces: usize,
    width: usize,
    height: usize,
    /// `orients[p]` = distinct orientations of piece `p`, each as offsets
    /// relative to its row-major-first cell (which is always `(0, 0)`).
    orients: Vec<Vec<[(i8, i8); 5]>>,
}

impl Pentomino {
    /// The paper's `Pentomino(n)` instance on a default board of area `5n`
    /// (6×10 for the classic 12-piece problem; pieces repeat for `n > 12`).
    ///
    /// # Panics
    ///
    /// Panics if `n` is 0 or greater than 24.
    pub fn new(n: usize) -> Self {
        let (w, h) = match n {
            12 => (6, 10),
            13 => (5, 13),
            _ => (5, n),
        };
        Pentomino::with_board(n, w, h)
    }

    /// An instance on an explicit `width × height` board.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= n <= 24`, the board area equals `5·n` and fits in
    /// 128 bits.
    pub fn with_board(n: usize, width: usize, height: usize) -> Self {
        assert!((1..=24).contains(&n), "piece count must be in 1..=24");
        assert_eq!(width * height, 5 * n, "board area must equal 5·n");
        assert!(
            width * height <= 128,
            "board must fit in 128 occupancy bits"
        );
        let orients = (0..n)
            .map(|p| orientations_of(&PIECES[p % PIECES.len()]))
            .collect();
        Pentomino {
            pieces: n,
            width,
            height,
            orients,
        }
    }

    /// Number of pieces.
    pub fn pieces(&self) -> usize {
        self.pieces
    }

    /// Board width and height.
    pub fn board(&self) -> (usize, usize) {
        (self.width, self.height)
    }

    /// Distinct orientations of piece `p` (for inspection/tests).
    pub fn orientation_count(&self, p: usize) -> usize {
        self.orients[p].len()
    }

    /// Occupancy mask of a placement, or `None` if it leaves the board.
    fn mask_for(&self, place: Place) -> Option<u128> {
        let cells = &self.orients[usize::from(place.piece)][usize::from(place.orient)];
        let (r0, c0) = (
            i32::from(place.cell) / self.width as i32,
            i32::from(place.cell) % self.width as i32,
        );
        let mut mask = 0u128;
        for &(dr, dc) in cells {
            let r = r0 + i32::from(dr);
            let c = c0 + i32::from(dc);
            if r < 0 || c < 0 || r >= self.height as i32 || c >= self.width as i32 {
                return None;
            }
            mask |= 1u128 << (r as usize * self.width + c as usize);
        }
        Some(mask)
    }

    fn full(&self) -> u128 {
        if self.width * self.height == 128 {
            u128::MAX
        } else {
            (1u128 << (self.width * self.height)) - 1
        }
    }
}

/// Generate the distinct orientations (rotations × reflections) of a piece,
/// normalised so the row-major-first cell is at `(0, 0)`.
fn orientations_of(cells: &[(i8, i8); 5]) -> Vec<[(i8, i8); 5]> {
    let mut seen: Vec<[(i8, i8); 5]> = Vec::new();
    let mut shape: Vec<(i8, i8)> = cells.to_vec();
    for flip in 0..2 {
        for _rot in 0..4 {
            // Normalise: sort row-major, shift so the first cell is (0,0).
            let mut s = shape.clone();
            s.sort();
            let (r0, c0) = s[0];
            let mut arr = [(0i8, 0i8); 5];
            for (i, &(r, c)) in s.iter().enumerate() {
                arr[i] = (r - r0, c - c0);
            }
            if !seen.contains(&arr) {
                seen.push(arr);
            }
            // Rotate 90°: (r, c) -> (c, -r).
            shape = shape.iter().map(|&(r, c)| (c, -r)).collect();
        }
        if flip == 0 {
            // Reflect: (r, c) -> (r, -c).
            shape = shape.iter().map(|&(r, c)| (r, -c)).collect();
        }
    }
    seen
}

impl Problem for Pentomino {
    type State = BoardState;
    type Choice = Place;
    type Out = u64;

    fn root(&self) -> BoardState {
        BoardState { occ: 0, used: 0 }
    }

    fn expand(&self, st: &BoardState, _depth: u32) -> Expansion<Place, u64> {
        if st.occ == self.full() {
            return Expansion::Leaf(1);
        }
        let cell = (!st.occ & self.full()).trailing_zeros() as u8;
        let mut placements = Vec::new();
        for piece in 0..self.pieces {
            if st.used & (1 << piece) != 0 {
                continue;
            }
            for orient in 0..self.orients[piece].len() {
                let place = Place {
                    piece: piece as u8,
                    orient: orient as u8,
                    cell,
                };
                if let Some(mask) = self.mask_for(place) {
                    if mask & st.occ == 0 {
                        placements.push(place);
                    }
                }
            }
        }
        Expansion::Children(placements)
    }

    fn apply(&self, st: &mut BoardState, p: Place) {
        let mask = self.mask_for(p).expect("choices come from expand");
        st.occ |= mask;
        st.used |= 1 << p.piece;
    }

    fn undo(&self, st: &mut BoardState, p: Place) {
        let mask = self.mask_for(p).expect("choices come from expand");
        st.occ &= !mask;
        st.used &= !(1 << p.piece);
    }

    fn state_bytes(&self, _: &BoardState) -> usize {
        // The paper's workspace is the board array plus the piece set.
        self.width * self.height + self.pieces
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adaptivetc_core::serial;

    #[test]
    fn fixed_orientation_counts() {
        // Fixed (one-sided, translated) pentomino orientation counts.
        let expected = [
            ('I', 2),
            ('P', 8),
            ('L', 8),
            ('N', 8),
            ('F', 8),
            ('T', 4),
            ('U', 4),
            ('V', 4),
            ('W', 4),
            ('X', 1),
            ('Y', 8),
            ('Z', 4),
        ];
        let total: usize = expected.iter().map(|&(_, n)| n).sum();
        assert_eq!(total, 63, "the 12 pentominoes have 63 fixed forms");
        for (i, &(name, count)) in expected.iter().enumerate() {
            assert_eq!(
                orientations_of(&PIECES[i]).len(),
                count,
                "piece {name} has the wrong orientation count"
            );
            assert_eq!(PIECE_NAMES[i], name);
        }
    }

    #[test]
    fn each_piece_has_five_cells_once() {
        for piece in &PIECES {
            let mut cells = piece.to_vec();
            cells.sort();
            cells.dedup();
            assert_eq!(cells.len(), 5);
        }
    }

    #[test]
    fn single_i_on_strip() {
        let (tilings, _) = serial::run(&Pentomino::with_board(1, 1, 5));
        assert_eq!(tilings, 1);
        let (tilings, _) = serial::run(&Pentomino::with_board(1, 5, 1));
        assert_eq!(tilings, 1);
    }

    #[test]
    fn single_i_on_square_board_fails() {
        // A 5-cell board shaped 5×1 works; the I piece cannot tile any
        // 5-cell board that is not a straight strip, so use 1 piece with a
        // non-strip board: width*height = 5 forces a strip, so instead check
        // 2 pieces where one region is unreachable.
        let p = Pentomino::with_board(2, 2, 5);
        let (tilings, r) = serial::run(&p);
        // I does not fit in a 2-wide board vertically beyond column runs; L,
        // P do. Whatever the count, the tree must terminate and be
        // deterministic.
        let (tilings2, r2) = serial::run(&p);
        assert_eq!(tilings, tilings2);
        assert_eq!(r.nodes, r2.nodes);
    }

    #[test]
    fn three_pieces_cannot_tile_5x3() {
        // {I, P, L} cannot tile 5×3 (golden value), but the exhaustive
        // search still explores a real tree.
        let p = Pentomino::with_board(3, 5, 3);
        let (tilings, r) = serial::run(&p);
        assert_eq!(tilings, 0);
        assert!(r.nodes > 1, "the search must branch");
    }

    #[test]
    fn eight_pieces_tile_5x8_one_hundred_ways() {
        // Golden value, cross-checked against the full 6×10 constant below.
        let (tilings, _) = serial::run(&Pentomino::with_board(8, 5, 8));
        assert_eq!(tilings, 100);
    }

    #[test]
    #[ignore = "runs ~6 s in release; the classic full-board enumeration"]
    fn classic_6x10_has_2339_distinct_solutions() {
        // The solver counts *fixed* tilings; the rectangle has 4 symmetries,
        // and the literature's 2339 distinct solutions correspond to
        // 4 × 2339 = 9356 fixed ones.
        let (tilings, _) = serial::run(&Pentomino::new(12));
        assert_eq!(tilings, 4 * 2339);
    }

    #[test]
    #[should_panic(expected = "board area")]
    fn mismatched_board_rejected() {
        Pentomino::with_board(2, 3, 3);
    }
}
