//! Layered random dataflow DAGs with phase-skewed grain.
//!
//! The paper's synthetic workloads ([`crate::tree`]) are trees whose
//! *shape* is irregular but whose per-node grain is uniform, so a single
//! well-chosen static cutoff serves the whole run. This family is built
//! to defeat that: a [`LayeredDag`] is a seeded random dataflow graph
//! whose layers are grouped into **phases** with contrasting width and
//! grain — a wide band of fine-grained vertices (wants a deep cutoff:
//! lots of cheap parallelism to expose) followed by a narrow band of
//! coarse-grained vertices (wants a shallow cutoff: task overhead
//! dominates), and so on. No static cutoff is right for every phase,
//! which is exactly the regime the adaptive creation policy's online
//! controller is supposed to win.
//!
//! # Encoding a DAG as a [`Problem`]
//!
//! The engine's interface is a tree search (apply/undo on a path), so
//! the DAG is executed along a **spanning tree**: every vertex beyond
//! the first layer draws exactly one *tree* in-edge from a random
//! vertex of the previous layer, and traversal descends tree edges
//! only. The remaining dataflow in-edges (each vertex draws up to
//! [`MAX_EXTRA_EDGES`] extra predecessors) are not traversed — their
//! cost is charged at the vertex itself as [`EXTRA_EDGE_WORK`] extra
//! work units per edge, modelling the combine/await of the extra
//! inputs. Every vertex is visited exactly once, the traversal is
//! deterministic in the seed, and vertices whose layer-successor draw
//! left them childless become leaves mid-graph, keeping the spanning
//! tree as irregular as the DAG it covers.

use adaptivetc_core::{Expansion, Problem, XorShift64};

/// Most extra (non-tree) dataflow in-edges one vertex may draw.
pub const MAX_EXTRA_EDGES: u64 = 3;

/// Work units charged per extra in-edge (the combine of one input).
pub const EXTRA_EDGE_WORK: u64 = 2;

/// One band of consecutive layers sharing a width and a grain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseSpec {
    /// Number of layers in this band.
    pub layers: usize,
    /// Vertices per layer.
    pub width: usize,
    /// Base work units per vertex (before extra-edge charges).
    pub grain: u64,
}

/// A seeded layered random dataflow DAG executed along its spanning
/// tree (see the module docs).
///
/// # Examples
///
/// ```
/// use adaptivetc_core::serial;
/// use adaptivetc_workloads::dag::LayeredDag;
///
/// let d = LayeredDag::phase_skewed(2, 42);
/// let (leaves, report) = serial::run(&d);
/// assert!(leaves > 0);
/// // Every vertex runs exactly once (plus the virtual root).
/// assert_eq!(report.nodes, d.vertices() as u64 + 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayeredDag {
    /// Tree children of each vertex (next-layer vertices whose tree
    /// in-edge came from it).
    children: Vec<Vec<u32>>,
    /// Per-vertex work units: phase grain + extra-edge charges.
    work: Vec<u64>,
    /// First-layer vertices (children of the virtual root).
    roots: Vec<u32>,
    /// Width of each layer, in order (the realised phase profile).
    widths: Vec<usize>,
    /// Total non-tree dataflow edges drawn.
    extra_edges: u64,
    seed: u64,
}

impl LayeredDag {
    /// Build a DAG from explicit phase bands.
    ///
    /// # Panics
    ///
    /// Panics if `phases` is empty or any band has zero layers or zero
    /// width.
    pub fn from_phases(phases: &[PhaseSpec], seed: u64) -> Self {
        assert!(!phases.is_empty(), "a DAG needs at least one phase");
        for p in phases {
            assert!(p.layers > 0 && p.width > 0, "empty phase band");
        }
        let mut rng = XorShift64::new(seed ^ 0xDA6_0001);
        let mut children: Vec<Vec<u32>> = Vec::new();
        let mut work: Vec<u64> = Vec::new();
        let mut widths: Vec<usize> = Vec::new();
        let mut extra_edges = 0u64;
        let mut prev_layer: Vec<u32> = Vec::new();
        let mut roots: Vec<u32> = Vec::new();
        for p in phases {
            for _ in 0..p.layers {
                let mut layer: Vec<u32> = Vec::with_capacity(p.width);
                for _ in 0..p.width {
                    let v = children.len() as u32;
                    children.push(Vec::new());
                    let extra = if prev_layer.len() > 1 {
                        rng.below_usize(MAX_EXTRA_EDGES as usize + 1) as u64
                    } else {
                        0
                    };
                    extra_edges += extra;
                    work.push(p.grain.max(1) + extra * EXTRA_EDGE_WORK);
                    if prev_layer.is_empty() {
                        roots.push(v);
                    } else {
                        // The one tree in-edge: a uniform draw over the
                        // previous layer. Parents never drawn stay
                        // childless — leaves mid-graph.
                        let parent = prev_layer[rng.below_usize(prev_layer.len())];
                        children[parent as usize].push(v);
                    }
                    layer.push(v);
                }
                widths.push(layer.len());
                prev_layer = layer;
            }
        }
        LayeredDag {
            children,
            work,
            roots,
            widths,
            extra_edges,
            seed,
        }
    }

    /// The phase-skewed preset: two rounds of a wide fine-grained band
    /// followed by a narrow coarse-grained band. The wide band's best
    /// static cutoff is deep (cheap abundant parallelism), the narrow
    /// band's is shallow (scarce expensive vertices) — no single static
    /// cutoff serves both. `scale` multiplies the wide band's width.
    pub fn phase_skewed(scale: usize, seed: u64) -> Self {
        let s = scale.max(1);
        let wide = PhaseSpec {
            layers: 6,
            width: 16 * s,
            grain: 1,
        };
        let narrow = PhaseSpec {
            layers: 6,
            width: 2,
            grain: 48,
        };
        LayeredDag::from_phases(&[wide, narrow, wide, narrow], seed)
    }

    /// The uniform control: same vertex and work totals order of
    /// magnitude, one width and one grain throughout — a single static
    /// cutoff is near-optimal, so adaptive creation should match it.
    pub fn uniform(scale: usize, seed: u64) -> Self {
        let s = scale.max(1);
        LayeredDag::from_phases(
            &[PhaseSpec {
                layers: 24,
                width: 9 * s,
                grain: 7,
            }],
            seed,
        )
    }

    /// Total vertex count (excluding the virtual root).
    pub fn vertices(&self) -> usize {
        self.children.len()
    }

    /// Realised layer widths, in order.
    pub fn widths(&self) -> &[usize] {
        &self.widths
    }

    /// Total non-tree dataflow edges drawn.
    pub fn extra_edges(&self) -> u64 {
        self.extra_edges
    }

    /// The construction seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Tree children of the node a path ends at (`None` top = the
    /// virtual root, whose children are the first layer).
    fn kids(&self, path: &[u32]) -> &[u32] {
        match path.last() {
            Some(&v) => &self.children[v as usize],
            None => &self.roots,
        }
    }
}

impl Problem for LayeredDag {
    /// The spanning-tree path of vertex ids (empty at the virtual root).
    type State = Vec<u32>;
    type Choice = u16;
    type Out = u64;

    fn root(&self) -> Vec<u32> {
        Vec::new()
    }

    fn expand(&self, path: &Vec<u32>, _depth: u32) -> Expansion<u16, u64> {
        if let Some(&v) = path.last() {
            spin(self.work[v as usize]);
        }
        let kids = self.kids(path);
        if kids.is_empty() {
            Expansion::Leaf(1)
        } else {
            Expansion::Children((0..kids.len() as u16).collect())
        }
    }

    fn apply(&self, path: &mut Vec<u32>, c: u16) {
        let v = self.kids(path)[usize::from(c)];
        path.push(v);
    }

    fn undo(&self, path: &mut Vec<u32>, _c: u16) {
        path.pop();
    }

    fn state_bytes(&self, path: &Vec<u32>) -> usize {
        path.len() * std::mem::size_of::<u32>()
    }

    fn node_work(&self, path: &Vec<u32>, _depth: u32) -> u64 {
        match path.last() {
            Some(&v) => self.work[v as usize],
            None => 1,
        }
    }
}

/// Burn roughly `units` small amounts of CPU, defeating the optimiser.
#[inline]
fn spin(units: u64) {
    let mut acc = 0u64;
    for i in 0..units * 8 {
        acc = acc.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(i);
        std::hint::black_box(acc);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adaptivetc_core::serial;

    #[test]
    fn every_vertex_runs_exactly_once() {
        let d = LayeredDag::phase_skewed(2, 7);
        let (leaves, r) = serial::run(&d);
        assert_eq!(r.nodes, d.vertices() as u64 + 1, "virtual root + DAG");
        assert_eq!(leaves, r.leaves);
        assert!(leaves > 0);
    }

    #[test]
    fn construction_is_deterministic_in_the_seed() {
        let a = LayeredDag::phase_skewed(3, 99);
        let b = LayeredDag::phase_skewed(3, 99);
        assert_eq!(a, b);
        let c = LayeredDag::phase_skewed(3, 100);
        assert_ne!(a, c, "a different seed must redraw the edges");
    }

    #[test]
    fn widths_follow_the_phase_profile() {
        let d = LayeredDag::from_phases(
            &[
                PhaseSpec {
                    layers: 2,
                    width: 5,
                    grain: 1,
                },
                PhaseSpec {
                    layers: 3,
                    width: 2,
                    grain: 9,
                },
            ],
            1,
        );
        assert_eq!(d.widths(), &[5, 5, 2, 2, 2]);
        assert_eq!(d.vertices(), 2 * 5 + 3 * 2);
    }

    #[test]
    fn phase_skew_contrasts_grain_across_bands() {
        let d = LayeredDag::phase_skewed(1, 5);
        // Wide band: 6 layers × 16 fine vertices. Narrow band: 6 × 2
        // coarse ones. The base grains must differ by well over the
        // extra-edge noise, or the bands do not actually skew.
        let wide_vertices = 6 * 16;
        let wide_max: u64 = d.work[..wide_vertices].iter().copied().max().unwrap();
        let narrow_min: u64 = d.work[wide_vertices..wide_vertices + 12]
            .iter()
            .copied()
            .min()
            .unwrap();
        assert!(wide_max <= 1 + MAX_EXTRA_EDGES * EXTRA_EDGE_WORK);
        assert!(narrow_min >= 48);
    }

    #[test]
    fn extra_edges_charge_work_at_the_vertex() {
        let d = LayeredDag::uniform(2, 11);
        assert!(d.extra_edges() > 0, "a multi-layer DAG draws extra edges");
        let heavier = d.work.iter().filter(|&&w| w > 7).count();
        assert!(heavier > 0, "some vertex carries extra-edge work");
    }

    #[test]
    fn parallel_and_serial_agree() {
        use adaptivetc_core::Config;
        use adaptivetc_runtime::Scheduler;
        let d = LayeredDag::phase_skewed(1, 3);
        let (serial_leaves, _) = serial::run(&d);
        for threads in [1, 2, 4] {
            let cfg = Config::new(threads).seed(13);
            let (leaves, _) = Scheduler::AdaptiveTc.run(&d, &cfg).unwrap();
            assert_eq!(leaves, serial_leaves, "threads={threads}");
        }
    }
}
