//! Synthetic unbalanced search trees (Table 3, Figures 8 and 10).
//!
//! The paper generates reproducible unbalanced trees with a linear
//! congruential sequence `x_i = (x_{i-1}·A + C) mod M`, localising `x_i` in
//! each node to derive the sizes of its subtrees; given the tree size and
//! the initial seed, the same tree is generated on every execution. This
//! module implements that construction with two refinements used by the
//! harness:
//!
//! * the depth-1 split can be pinned to the exact percentage lists of
//!   Table 3 (`Tree1`–`Tree3`) or Figure 8 (`input1`);
//! * a `skew` exponent shapes the LCG splits below depth 1 (larger = more
//!   mass on one child, deeper tree);
//! * [`UnbalancedTree::reversed`] mirrors child order everywhere, producing
//!   the right-heavy `Tree*R` variants from the left-heavy `Tree*L` ones.
//!
//! Node budgets are *exact*: a tree built with `total` nodes has exactly
//! `total` nodes ([`adaptivetc_core::treeinfo::TreeInfo`] verifies this),
//! scaled down from the paper's 1.9-billion-node instances.

use adaptivetc_core::{Expansion, Problem};

/// LCG constants (Numerical Recipes).
const LCG_A: u64 = 1_664_525;
const LCG_C: u64 = 1_013_904_223;

#[inline]
fn lcg(x: u64) -> u64 {
    x.wrapping_mul(LCG_A).wrapping_add(LCG_C)
}

/// Per-node parameters: how many nodes its subtree contains and the node's
/// localised random value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeParams {
    budget: u64,
    seed: u64,
}

/// A reproducible unbalanced tree defined by total size, branching factor,
/// skew, and an optional pinned depth-1 split.
///
/// # Examples
///
/// ```
/// use adaptivetc_core::treeinfo::TreeInfo;
/// use adaptivetc_workloads::tree::UnbalancedTree;
///
/// let t = UnbalancedTree::new(10_000, 42).skew(3.0);
/// let info = TreeInfo::measure(&t);
/// assert_eq!(info.size, 10_000); // budgets are exact
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct UnbalancedTree {
    total: u64,
    seed: u64,
    branching: usize,
    skew: f64,
    depth1_percent: Option<Vec<f64>>,
    reversed: bool,
    work: u64,
}

impl UnbalancedTree {
    /// A tree with `total` nodes grown from `seed` (branching 7, mild skew).
    ///
    /// # Panics
    ///
    /// Panics if `total == 0`.
    pub fn new(total: u64, seed: u64) -> Self {
        assert!(total > 0, "a tree has at least its root");
        UnbalancedTree {
            total,
            seed,
            branching: 7,
            skew: 2.0,
            depth1_percent: None,
            reversed: false,
            work: 1,
        }
    }

    /// Set the maximum branching factor (default 7, as in Table 3).
    ///
    /// # Panics
    ///
    /// Panics if `branching == 0`.
    pub fn branching(mut self, branching: usize) -> Self {
        assert!(branching > 0, "branching factor must be nonzero");
        self.branching = branching;
        self
    }

    /// Set the skew exponent for LCG splits (≥ 1.0; larger = more
    /// unbalanced).
    pub fn skew(mut self, skew: f64) -> Self {
        self.skew = skew.max(1.0);
        self
    }

    /// Pin the depth-1 subtree percentages (e.g. a Table 3 row). Values are
    /// renormalised over the non-root mass.
    pub fn depth1(mut self, percent: Vec<f64>) -> Self {
        assert!(
            !percent.is_empty(),
            "depth-1 split needs at least one share"
        );
        self.depth1_percent = Some(percent);
        self
    }

    /// Mirror child order everywhere (`Tree*L` → `Tree*R`).
    pub fn reversed(mut self) -> Self {
        self.reversed = !self.reversed;
        self
    }

    /// Set the per-node busy-work units (spun on the real runtime, charged
    /// by the simulator's cost model).
    pub fn work(mut self, work: u64) -> Self {
        self.work = work.max(1);
        self
    }

    /// Total node count.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Table 3 `Tree1L`: moderately left-heavy.
    pub fn tree1(total: u64) -> Self {
        UnbalancedTree::new(total, 0x7111)
            .skew(2.0)
            .depth1(vec![42.512, 25.362, 13.019, 4.936, 0.416, 11.771, 1.984])
    }

    /// Table 3 `Tree2L`: strongly left-heavy.
    pub fn tree2(total: u64) -> Self {
        UnbalancedTree::new(total, 0x7222)
            .skew(4.0)
            .depth1(vec![74.492, 20.791, 1.106, 2.732, 0.637, 0.049, 0.193])
    }

    /// Table 3 `Tree3L`: the most unbalanced of the three.
    pub fn tree3(total: u64) -> Self {
        UnbalancedTree::new(total, 0x7333)
            .skew(6.0)
            .depth1(vec![89.675, 6.891, 1.836, 0.819, 0.645, 0.026, 0.108])
    }

    /// The Figure 8 tree (Sudoku `input1`'s dynamically generated shape):
    /// three depth-1 subtrees holding ~61 %, ~28 % and ~11 % of the mass.
    pub fn fig8(total: u64) -> Self {
        UnbalancedTree::new(total, 0x7888)
            .branching(3)
            .skew(3.0)
            .depth1(vec![61.04, 27.99, 10.97])
    }

    /// Split a node's non-root budget among its children. Every child gets
    /// at least one node; the remainder is distributed by weight.
    fn split(&self, p: NodeParams, at_root: bool) -> Vec<u64> {
        let below = p.budget - 1;
        if below == 0 {
            return Vec::new();
        }
        let k = self.branching.min(below as usize).max(1);
        // Weights: pinned percentages at the root, LCG^skew elsewhere.
        let weights: Vec<f64> = if at_root {
            match &self.depth1_percent {
                Some(ps) => ps.iter().take(k).map(|&x| x.max(1e-6)).collect(),
                None => lcg_weights(p.seed, k, self.skew),
            }
        } else {
            lcg_weights(p.seed, k, self.skew)
        };
        let k = weights.len();
        let total_w: f64 = weights.iter().sum();
        // Give each child 1, distribute the rest proportionally with
        // largest-remainder rounding so the parts sum exactly to `below`.
        let spare = below - k as u64;
        let mut parts: Vec<u64> = Vec::with_capacity(k);
        let mut acc = 0f64;
        let mut given = 0u64;
        for w in &weights {
            // Cumulative-rounding: targets are nondecreasing and capped at
            // `spare`, so each increment is well-defined.
            acc += w / total_w * spare as f64;
            let target = (acc.round() as u64).min(spare);
            parts.push(1 + (target - given));
            given = target;
        }
        // Rounding drift lands on the last child (before any mirroring, so
        // reversed trees are exact mirrors).
        let sum: u64 = parts.iter().sum();
        debug_assert!(sum <= below);
        *parts.last_mut().expect("k >= 1") += below - sum;
        if self.reversed {
            parts.reverse();
        }
        parts
    }
}

fn lcg_weights(seed: u64, k: usize, skew: f64) -> Vec<f64> {
    let mut x = lcg(seed);
    (0..k)
        .map(|_| {
            x = lcg(x);
            let u = (x >> 11) as f64 / (1u64 << 53) as f64;
            // u^skew concentrates mass on whichever child draws the largest
            // value, skewing harder as the exponent grows.
            (u + 1e-9).powf(skew)
        })
        .collect()
}

impl Problem for UnbalancedTree {
    /// The path of node parameters from the root (apply pushes, undo pops).
    type State = Vec<NodeParams>;
    type Choice = u8;
    type Out = u64;

    fn root(&self) -> Vec<NodeParams> {
        vec![NodeParams {
            budget: self.total,
            seed: self.seed,
        }]
    }

    fn expand(&self, path: &Vec<NodeParams>, depth: u32) -> Expansion<u8, u64> {
        let top = *path.last().expect("path never empty");
        // Per-node busy work (the paper sets each node's execution time to
        // the average task time of the Figure 4 benchmarks).
        spin(self.work);
        if top.budget <= 1 {
            return Expansion::Leaf(1);
        }
        let parts = self.split(top, depth == 0);
        Expansion::Children((0..parts.len() as u8).collect())
    }

    fn apply(&self, path: &mut Vec<NodeParams>, c: u8) {
        let top = *path.last().expect("path never empty");
        let depth = path.len() as u32 - 1;
        let parts = self.split(top, depth == 0);
        let budget = parts[usize::from(c)];
        // Seed identity follows the *unreversed* child so that a reversed
        // tree is the exact mirror of its left-heavy twin.
        let ident = if self.reversed {
            (parts.len() - 1 - usize::from(c)) as u64
        } else {
            u64::from(c)
        };
        let seed = lcg(top.seed ^ (ident + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        path.push(NodeParams { budget, seed });
    }

    fn undo(&self, path: &mut Vec<NodeParams>, _c: u8) {
        path.pop();
    }

    fn state_bytes(&self, path: &Vec<NodeParams>) -> usize {
        path.len() * std::mem::size_of::<NodeParams>()
    }

    fn node_work(&self, _path: &Vec<NodeParams>, _depth: u32) -> u64 {
        self.work
    }
}

/// Burn roughly `units` small amounts of CPU, defeating the optimiser.
#[inline]
fn spin(units: u64) {
    let mut acc = 0u64;
    for i in 0..units * 8 {
        acc = acc.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(i);
        std::hint::black_box(acc);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adaptivetc_core::serial;
    use adaptivetc_core::treeinfo::TreeInfo;

    #[test]
    fn budgets_are_exact() {
        for total in [1u64, 2, 3, 10, 1_000, 54_321] {
            let t = UnbalancedTree::new(total, 9);
            let info = TreeInfo::measure(&t);
            assert_eq!(info.size, total, "total={total}");
        }
    }

    #[test]
    fn leaves_equal_reduction() {
        let t = UnbalancedTree::new(20_000, 5);
        let (leaves, r) = serial::run(&t);
        assert_eq!(leaves, r.leaves);
        assert_eq!(r.nodes, 20_000);
    }

    #[test]
    fn deterministic_across_runs() {
        let a = TreeInfo::measure(&UnbalancedTree::new(50_000, 77).skew(4.0));
        let b = TreeInfo::measure(&UnbalancedTree::new(50_000, 77).skew(4.0));
        assert_eq!(a, b);
    }

    #[test]
    fn seeds_change_the_shape() {
        let a = TreeInfo::measure(&UnbalancedTree::new(50_000, 1));
        let b = TreeInfo::measure(&UnbalancedTree::new(50_000, 2));
        assert_eq!(a.size, b.size);
        assert_ne!(a.depth1_shares, b.depth1_shares);
    }

    #[test]
    fn reversed_mirrors_depth1_shares() {
        let l = TreeInfo::measure(&UnbalancedTree::tree2(100_000));
        let r = TreeInfo::measure(&UnbalancedTree::tree2(100_000).reversed());
        let mut mirrored = l.depth1_shares.clone();
        mirrored.reverse();
        assert_eq!(mirrored, r.depth1_shares);
        assert_eq!(l.size, r.size);
        assert_eq!(l.leaves, r.leaves);
        assert_eq!(l.depth, r.depth);
    }

    #[test]
    fn table3_presets_match_their_percentages() {
        let t = UnbalancedTree::tree3(1_000_000);
        let info = TreeInfo::measure(&t);
        let got = info.depth1_percent();
        let want = [89.675, 6.891, 1.836, 0.819, 0.645, 0.026, 0.108];
        assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(want) {
            assert!(
                (g - w).abs() < 0.5,
                "depth-1 share {g:.3} too far from {w:.3}"
            );
        }
    }

    #[test]
    fn skew_deepens_the_tree() {
        let shallow = TreeInfo::measure(&UnbalancedTree::new(100_000, 3).skew(1.0));
        let deep = TreeInfo::measure(&UnbalancedTree::new(100_000, 3).skew(8.0));
        assert!(
            deep.depth > shallow.depth,
            "skewed depth {} <= balanced depth {}",
            deep.depth,
            shallow.depth
        );
    }

    #[test]
    fn single_node_tree_is_a_leaf() {
        let (leaves, r) = serial::run(&UnbalancedTree::new(1, 0));
        assert_eq!(leaves, 1);
        assert_eq!(r.nodes, 1);
        assert_eq!(r.max_depth, 0);
    }

    #[test]
    fn fig8_has_three_heavy_children() {
        let info = TreeInfo::measure(&UnbalancedTree::fig8(200_000));
        assert_eq!(info.depth1_shares.len(), 3);
        let p = info.depth1_percent();
        assert!(p[0] > p[1] && p[1] > p[2]);
        assert!((p[0] - 61.04).abs() < 0.5);
    }
}
