//! The paper's `Comp(n)` benchmark: compare `a[i]` and `b[j]` for all
//! `0 <= i, j < n` by divide and conquer.
//!
//! Like `Fib`, `Comp` has no taskprivate workspace; its state is a `Copy`
//! rectangle of index ranges. The result is the number of equal pairs.

use adaptivetc_core::{Expansion, Problem, XorShift64};
use std::sync::Arc;

/// An index rectangle `[i0, i1) × [j0, j1)` over the two arrays.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rect {
    i0: u32,
    i1: u32,
    j0: u32,
    j1: u32,
}

/// A half-split choice. Carries the replaced boundary so `undo` can restore
/// it exactly (a half-split is not invertible from the half alone).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Split {
    /// `false`: split the `i` axis; `true`: the `j` axis.
    j_axis: bool,
    /// `false`: keep the low half; `true`: keep the high half.
    hi: bool,
    /// The boundary value this split overwrites.
    saved: u32,
}

/// All-pairs comparison of two arrays, split recursively along the longer
/// dimension until at most `leaf` rows and columns remain.
///
/// # Examples
///
/// ```
/// use adaptivetc_core::serial;
/// use adaptivetc_workloads::comp::Comp;
///
/// let p = Comp::from_arrays(vec![1, 2, 3], vec![3, 2, 9]);
/// let (equal_pairs, _) = serial::run(&p);
/// assert_eq!(equal_pairs, 2); // (2,2) and (3,3)
/// ```
#[derive(Debug, Clone)]
pub struct Comp {
    a: Arc<Vec<i32>>,
    b: Arc<Vec<i32>>,
    leaf: u32,
}

impl Comp {
    /// The paper's instance: two pseudo-random arrays of length `n` drawn
    /// from a small value range so some pairs match.
    pub fn new(n: usize, seed: u64) -> Self {
        let mut rng = XorShift64::new(seed);
        let a = (0..n).map(|_| (rng.below(997)) as i32).collect();
        let b = (0..n).map(|_| (rng.below(997)) as i32).collect();
        Comp::from_arrays(a, b)
    }

    /// Build from explicit arrays.
    pub fn from_arrays(a: Vec<i32>, b: Vec<i32>) -> Self {
        Comp {
            a: Arc::new(a),
            b: Arc::new(b),
            leaf: 8,
        }
    }

    /// Set the leaf rectangle side (default 8).
    ///
    /// # Panics
    ///
    /// Panics if `leaf == 0`.
    pub fn leaf_size(mut self, leaf: u32) -> Self {
        assert!(leaf >= 1, "leaf size must be at least 1");
        self.leaf = leaf;
        self
    }

    /// Direct O(n²) check value.
    pub fn expected(&self) -> u64 {
        let mut count = 0;
        for &x in self.a.iter() {
            for &y in self.b.iter() {
                if x == y {
                    count += 1;
                }
            }
        }
        count
    }
}

impl Problem for Comp {
    type State = Rect;
    type Choice = Split;
    type Out = u64;

    fn root(&self) -> Rect {
        Rect {
            i0: 0,
            i1: self.a.len() as u32,
            j0: 0,
            j1: self.b.len() as u32,
        }
    }

    fn expand(&self, r: &Rect, _depth: u32) -> Expansion<Split, u64> {
        let rows = r.i1 - r.i0;
        let cols = r.j1 - r.j0;
        if rows == 0 || cols == 0 {
            return Expansion::Leaf(0);
        }
        if rows <= self.leaf && cols <= self.leaf {
            let mut count = 0;
            for i in r.i0..r.i1 {
                for j in r.j0..r.j1 {
                    if self.a[i as usize] == self.b[j as usize] {
                        count += 1;
                    }
                }
            }
            return Expansion::Leaf(count);
        }
        let j_axis = cols > rows;
        let saved_lo = if j_axis { r.j1 } else { r.i1 };
        let saved_hi = if j_axis { r.j0 } else { r.i0 };
        Expansion::Children(vec![
            Split {
                j_axis,
                hi: false,
                saved: saved_lo,
            },
            Split {
                j_axis,
                hi: true,
                saved: saved_hi,
            },
        ])
    }

    fn apply(&self, r: &mut Rect, c: Split) {
        match (c.j_axis, c.hi) {
            (false, false) => r.i1 = r.i0 + (r.i1 - r.i0) / 2,
            (false, true) => r.i0 += (r.i1 - r.i0) / 2,
            (true, false) => r.j1 = r.j0 + (r.j1 - r.j0) / 2,
            (true, true) => r.j0 += (r.j1 - r.j0) / 2,
        }
    }

    fn undo(&self, r: &mut Rect, c: Split) {
        match (c.j_axis, c.hi) {
            (false, false) => r.i1 = c.saved,
            (false, true) => r.i0 = c.saved,
            (true, false) => r.j1 = c.saved,
            (true, true) => r.j0 = c.saved,
        }
    }

    /// `Comp` has no taskprivate workspace.
    fn state_bytes(&self, _: &Rect) -> usize {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adaptivetc_core::serial;

    #[test]
    fn matches_direct_count() {
        let p = Comp::new(100, 7);
        let (got, _) = serial::run(&p);
        assert_eq!(got, p.expected());
    }

    #[test]
    fn handles_unequal_lengths() {
        let p = Comp::from_arrays(vec![5; 13], vec![5; 29]);
        let (got, _) = serial::run(&p);
        assert_eq!(got, 13 * 29);
    }

    #[test]
    fn leaf_size_changes_tree_not_result() {
        let coarse = Comp::new(64, 3).leaf_size(16);
        let fine = Comp::new(64, 3).leaf_size(1);
        let (a, ra) = serial::run(&coarse);
        let (b, rb) = serial::run(&fine);
        assert_eq!(a, b);
        assert!(rb.nodes > ra.nodes);
    }

    #[test]
    fn apply_undo_roundtrip() {
        let p = Comp::new(32, 1);
        let mut r = p.root();
        let orig = r;
        if let Expansion::Children(cs) = p.expand(&r, 0) {
            for c in cs {
                p.apply(&mut r, c);
                p.undo(&mut r, c);
                assert_eq!(r, orig);
            }
        } else {
            panic!("root must split");
        }
    }

    #[test]
    fn empty_arrays_yield_zero() {
        let p = Comp::from_arrays(vec![], vec![1, 2]);
        let (got, _) = serial::run(&p);
        assert_eq!(got, 0);
    }
}
