//! The Strimko benchmark: fill a 7×7 grid so that every row, column and
//! *stream* (a 7-cell region) contains the digits 1–7 exactly once.
//!
//! A Strimko instance is a stream assignment (a partition of the grid into
//! `n` regions of `n` cells) plus given digits. The solver counts all
//! completions — a classic backtracking search whose taskprivate workspace
//! is the grid plus row/column/stream candidate masks.

use adaptivetc_core::{Expansion, Problem};

/// The solver workspace: grid contents and used-digit masks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StrimkoState {
    /// 0 = empty, 1..=n = digit.
    grid: Vec<u8>,
    row_mask: Vec<u16>,
    col_mask: Vec<u16>,
    stream_mask: Vec<u16>,
}

/// Placing `digit` into `cell` (the first empty cell at expansion time).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Placement {
    cell: u8,
    digit: u8,
}

/// A Strimko puzzle instance.
///
/// # Examples
///
/// ```
/// use adaptivetc_core::serial;
/// use adaptivetc_workloads::strimko::Strimko;
///
/// let puzzle = Strimko::paper_default();
/// let (solutions, _) = serial::run(&puzzle);
/// assert!(solutions > 0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Strimko {
    n: u8,
    /// Stream id of each cell, row-major.
    streams: Vec<u8>,
    /// Given digits, 0 = empty, row-major.
    givens: Vec<u8>,
}

impl Strimko {
    /// Build from an explicit stream map and givens (both `n*n` long,
    /// row-major; givens use 0 for empty).
    ///
    /// # Panics
    ///
    /// Panics if `n` is not in `2..=9`, the vectors have the wrong length,
    /// the stream map is not a partition into `n` regions of `n` cells, or a
    /// given digit is out of range.
    pub fn new(n: u8, streams: Vec<u8>, givens: Vec<u8>) -> Self {
        assert!((2..=9).contains(&n), "grid side must be in 2..=9");
        let nn = usize::from(n) * usize::from(n);
        assert_eq!(streams.len(), nn, "stream map must cover the grid");
        assert_eq!(givens.len(), nn, "givens must cover the grid");
        let mut sizes = vec![0usize; usize::from(n)];
        for &s in &streams {
            assert!(s < n, "stream id {s} out of range");
            sizes[usize::from(s)] += 1;
        }
        assert!(
            sizes.iter().all(|&c| c == usize::from(n)),
            "each stream must have exactly n cells"
        );
        assert!(givens.iter().all(|&d| d <= n), "given digits must be 0..=n");
        Strimko { n, streams, givens }
    }

    /// A linear stream layout: cell `(r, c)` belongs to stream
    /// `(a·r + b·c) mod n`.
    pub fn linear(n: u8, a: u8, b: u8, givens: Vec<u8>) -> Self {
        let streams = (0..n)
            .flat_map(|r| (0..n).map(move |c| (a * r + b * c) % n))
            .collect();
        Strimko::new(n, streams, givens)
    }

    /// The default 7×7 instance used by the benchmark harness: diagonal
    /// streams with the first row given as `1..=7`.
    pub fn paper_default() -> Self {
        let n = 7;
        let mut givens = vec![0u8; 49];
        for (c, g) in givens.iter_mut().take(7).enumerate() {
            *g = c as u8 + 1;
        }
        Strimko::linear(n, 1, 1, givens)
    }

    /// Grid side.
    pub fn n(&self) -> u8 {
        self.n
    }

    /// Verify a completed grid against all three constraint families.
    pub fn is_solution(&self, grid: &[u8]) -> bool {
        let n = usize::from(self.n);
        if grid.len() != n * n {
            return false;
        }
        let full: u16 = ((1u32 << self.n) - 1) as u16;
        let mut rows = vec![0u16; n];
        let mut cols = vec![0u16; n];
        let mut streams = vec![0u16; n];
        for (i, &d) in grid.iter().enumerate() {
            if d == 0 || d > self.n {
                return false;
            }
            let bit = 1u16 << (d - 1);
            rows[i / n] |= bit;
            cols[i % n] |= bit;
            streams[usize::from(self.streams[i])] |= bit;
        }
        rows.iter().chain(&cols).chain(&streams).all(|&m| m == full)
    }
}

impl Problem for Strimko {
    type State = StrimkoState;
    type Choice = Placement;
    type Out = u64;

    fn root(&self) -> StrimkoState {
        let n = usize::from(self.n);
        let mut st = StrimkoState {
            grid: vec![0; n * n],
            row_mask: vec![0; n],
            col_mask: vec![0; n],
            stream_mask: vec![0; n],
        };
        for (i, &d) in self.givens.iter().enumerate() {
            if d != 0 {
                let bit = 1u16 << (d - 1);
                st.grid[i] = d;
                st.row_mask[i / n] |= bit;
                st.col_mask[i % n] |= bit;
                st.stream_mask[usize::from(self.streams[i])] |= bit;
            }
        }
        st
    }

    fn expand(&self, st: &StrimkoState, _depth: u32) -> Expansion<Placement, u64> {
        let n = usize::from(self.n);
        let Some(cell) = st.grid.iter().position(|&d| d == 0) else {
            return Expansion::Leaf(1);
        };
        let used = st.row_mask[cell / n]
            | st.col_mask[cell % n]
            | st.stream_mask[usize::from(self.streams[cell])];
        let candidates: Vec<Placement> = (1..=self.n)
            .filter(|d| used & (1 << (d - 1)) == 0)
            .map(|digit| Placement {
                cell: cell as u8,
                digit,
            })
            .collect();
        Expansion::Children(candidates)
    }

    fn apply(&self, st: &mut StrimkoState, p: Placement) {
        let n = usize::from(self.n);
        let cell = usize::from(p.cell);
        let bit = 1u16 << (p.digit - 1);
        st.grid[cell] = p.digit;
        st.row_mask[cell / n] |= bit;
        st.col_mask[cell % n] |= bit;
        st.stream_mask[usize::from(self.streams[cell])] |= bit;
    }

    fn undo(&self, st: &mut StrimkoState, p: Placement) {
        let n = usize::from(self.n);
        let cell = usize::from(p.cell);
        let bit = 1u16 << (p.digit - 1);
        st.grid[cell] = 0;
        st.row_mask[cell / n] &= !bit;
        st.col_mask[cell % n] &= !bit;
        st.stream_mask[usize::from(self.streams[cell])] &= !bit;
    }

    fn state_bytes(&self, st: &StrimkoState) -> usize {
        st.grid.len() + 2 * (st.row_mask.len() + st.col_mask.len() + st.stream_mask.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adaptivetc_core::serial;

    #[test]
    fn default_instance_has_635_solutions() {
        // Golden value for the diagonal-stream instance with row 0 given.
        let (solutions, r) = serial::run(&Strimko::paper_default());
        assert_eq!(solutions, 635);
        assert!(r.nodes > solutions, "interior nodes exist");
    }

    #[test]
    fn solutions_satisfy_the_checker() {
        // Spot-check the constructed linear solution family: grid[r][c] =
        // (2r + 3c) mod 7 + 1 satisfies rows, columns and (1,1)-streams.
        let p = Strimko::linear(7, 1, 1, vec![0; 49]);
        let grid: Vec<u8> = (0..7)
            .flat_map(|r| (0..7).map(move |c| ((2 * r + 3 * c) % 7 + 1) as u8))
            .collect();
        assert!(p.is_solution(&grid));
    }

    #[test]
    fn tiny_instance_counts_exactly() {
        // 2×2 with streams = columns and no givens: rows and columns and
        // streams distinct. Solutions: grids [[1,2],[2,1]] and [[2,1],[1,2]].
        let p = Strimko::new(2, vec![0, 1, 0, 1], vec![0; 4]);
        let (solutions, _) = serial::run(&p);
        assert_eq!(solutions, 2);
    }

    #[test]
    fn givens_constrain_the_count() {
        let free = Strimko::new(2, vec![0, 1, 0, 1], vec![0; 4]);
        let pinned = Strimko::new(2, vec![0, 1, 0, 1], vec![1, 0, 0, 0]);
        let (a, _) = serial::run(&free);
        let (b, _) = serial::run(&pinned);
        assert_eq!(a, 2);
        assert_eq!(b, 1);
    }

    #[test]
    fn is_solution_validates() {
        let p = Strimko::new(2, vec![0, 1, 0, 1], vec![0; 4]);
        assert!(p.is_solution(&[1, 2, 2, 1]));
        assert!(!p.is_solution(&[1, 1, 2, 2]));
        assert!(!p.is_solution(&[1, 2, 2]));
        assert!(!p.is_solution(&[1, 2, 2, 3]));
    }

    #[test]
    #[should_panic(expected = "each stream must have exactly n cells")]
    fn lopsided_streams_rejected() {
        Strimko::new(2, vec![0, 0, 0, 1], vec![0; 4]);
    }

    #[test]
    fn apply_undo_roundtrip() {
        let p = Strimko::paper_default();
        let mut st = p.root();
        let orig = st.clone();
        if let Expansion::Children(cs) = p.expand(&st, 0) {
            for c in cs {
                p.apply(&mut st, c);
                p.undo(&mut st, c);
                assert_eq!(st, orig);
            }
        }
    }
}
