//! The n-queens benchmarks: `Nqueen-array(n)` and `Nqueen-compute(n)`.
//!
//! Both count all placements of `n` queens on an `n × n` board with no two
//! queens sharing a row, column or diagonal. They differ in the taskprivate
//! workspace, exactly as in Table 1:
//!
//! * [`NqueensArray`] keeps three conflict arrays (column, both diagonals) —
//!   *time efficient*, but its workspace is ~`5n` bytes, so workspace
//!   copying dominates in Cilk;
//! * [`NqueensCompute`] keeps only the list of placed queens (one byte per
//!   row) and re-scans it for conflicts — *memory efficient* with a heavier
//!   per-node compute share.

use adaptivetc_core::{Expansion, Problem};

/// Known solution counts for `n = 0..=16` (OEIS A000170).
pub const SOLUTIONS: [u64; 17] = [
    1, 1, 0, 0, 2, 10, 4, 40, 92, 352, 724, 2680, 14200, 73712, 365_596, 2_279_184, 14_772_512,
];

/// The conflict-array workspace of [`NqueensArray`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArrayState {
    row: u8,
    cols: Vec<bool>,
    /// Diagonal `row + col`.
    diag_a: Vec<bool>,
    /// Anti-diagonal `row - col + n - 1`.
    diag_b: Vec<bool>,
}

/// `Nqueen-array(n)`: conflict bookkeeping in three boolean arrays.
///
/// # Examples
///
/// ```
/// use adaptivetc_core::serial;
/// use adaptivetc_workloads::nqueens::NqueensArray;
///
/// let (solutions, _) = serial::run(&NqueensArray::new(8));
/// assert_eq!(solutions, 92);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NqueensArray {
    n: u8,
}

impl NqueensArray {
    /// An `n × n` instance.
    ///
    /// # Panics
    ///
    /// Panics if `n > 16` (the paper's largest instance; bigger boards are
    /// impractical here).
    pub fn new(n: u8) -> Self {
        assert!(n <= 16, "n-queens instances above 16 are impractical here");
        NqueensArray { n }
    }

    /// Board size.
    pub fn n(&self) -> u8 {
        self.n
    }
}

impl Problem for NqueensArray {
    type State = ArrayState;
    type Choice = u8;
    type Out = u64;

    fn root(&self) -> ArrayState {
        let n = self.n as usize;
        ArrayState {
            row: 0,
            cols: vec![false; n],
            diag_a: vec![false; 2 * n.max(1) - 1],
            diag_b: vec![false; 2 * n.max(1) - 1],
        }
    }

    fn expand(&self, st: &ArrayState, _depth: u32) -> Expansion<u8, u64> {
        if st.row == self.n {
            return Expansion::Leaf(1);
        }
        let n = self.n as usize;
        let r = st.row as usize;
        let free: Vec<u8> = (0..n)
            .filter(|&c| !st.cols[c] && !st.diag_a[r + c] && !st.diag_b[r + n - 1 - c])
            .map(|c| c as u8)
            .collect();
        Expansion::Children(free)
    }

    fn apply(&self, st: &mut ArrayState, c: u8) {
        let n = self.n as usize;
        let (r, c) = (st.row as usize, c as usize);
        st.cols[c] = true;
        st.diag_a[r + c] = true;
        st.diag_b[r + n - 1 - c] = true;
        st.row += 1;
    }

    fn undo(&self, st: &mut ArrayState, c: u8) {
        st.row -= 1;
        let n = self.n as usize;
        let (r, c) = (st.row as usize, c as usize);
        st.cols[c] = false;
        st.diag_a[r + c] = false;
        st.diag_b[r + n - 1 - c] = false;
    }

    fn state_bytes(&self, st: &ArrayState) -> usize {
        st.cols.len() + st.diag_a.len() + st.diag_b.len() + 1
    }
}

/// `Nqueen-compute(n)`: the board is re-traversed to detect conflicts.
///
/// # Examples
///
/// ```
/// use adaptivetc_core::serial;
/// use adaptivetc_workloads::nqueens::NqueensCompute;
///
/// let (solutions, _) = serial::run(&NqueensCompute::new(6));
/// assert_eq!(solutions, 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NqueensCompute {
    n: u8,
}

impl NqueensCompute {
    /// An `n × n` instance.
    ///
    /// # Panics
    ///
    /// Panics if `n > 16`.
    pub fn new(n: u8) -> Self {
        assert!(n <= 16, "n-queens instances above 16 are impractical here");
        NqueensCompute { n }
    }

    /// Board size.
    pub fn n(&self) -> u8 {
        self.n
    }
}

impl Problem for NqueensCompute {
    /// Columns of the queens placed so far, one per row.
    type State = Vec<u8>;
    type Choice = u8;
    type Out = u64;

    fn root(&self) -> Vec<u8> {
        Vec::with_capacity(self.n as usize)
    }

    fn expand(&self, placed: &Vec<u8>, _depth: u32) -> Expansion<u8, u64> {
        if placed.len() == self.n as usize {
            return Expansion::Leaf(1);
        }
        let row = placed.len();
        let free: Vec<u8> = (0..self.n)
            .filter(|&c| {
                placed.iter().enumerate().all(|(pr, &pc)| {
                    pc != c && (row - pr) as i32 != (i32::from(c) - i32::from(pc)).abs()
                })
            })
            .collect();
        Expansion::Children(free)
    }

    fn apply(&self, placed: &mut Vec<u8>, c: u8) {
        placed.push(c);
    }

    fn undo(&self, placed: &mut Vec<u8>, _c: u8) {
        placed.pop();
    }

    fn state_bytes(&self, placed: &Vec<u8>) -> usize {
        placed.capacity().max(self.n as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adaptivetc_core::serial;

    #[test]
    fn array_matches_known_counts() {
        for n in 1..=9u8 {
            let (got, _) = serial::run(&NqueensArray::new(n));
            assert_eq!(got, SOLUTIONS[n as usize], "n={n}");
        }
    }

    #[test]
    fn compute_matches_known_counts() {
        for n in 1..=9u8 {
            let (got, _) = serial::run(&NqueensCompute::new(n));
            assert_eq!(got, SOLUTIONS[n as usize], "n={n}");
        }
    }

    #[test]
    fn variants_traverse_the_same_tree() {
        let (_, ra) = serial::run(&NqueensArray::new(7));
        let (_, rc) = serial::run(&NqueensCompute::new(7));
        assert_eq!(ra.nodes, rc.nodes);
        assert_eq!(ra.leaves, rc.leaves);
    }

    #[test]
    fn array_state_bytes_scale_with_n() {
        let p = NqueensArray::new(10);
        let st = p.root();
        assert_eq!(p.state_bytes(&st), 10 + 19 + 19 + 1);
    }

    #[test]
    fn apply_undo_roundtrip() {
        let p = NqueensArray::new(6);
        let mut st = p.root();
        let orig = st.clone();
        if let Expansion::Children(cs) = p.expand(&st, 0) {
            for c in cs {
                p.apply(&mut st, c);
                p.undo(&mut st, c);
                assert_eq!(st, orig);
            }
        }
    }

    #[test]
    #[should_panic(expected = "impractical")]
    fn oversized_instance_rejected() {
        NqueensArray::new(17);
    }
}
