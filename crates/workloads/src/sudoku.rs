//! The Sudoku benchmark: count all solutions of a 9×9 grid (Appendix A of
//! the paper).
//!
//! Instances are 81-character strings (`.` or `0` = empty). Three named
//! inputs mirror the paper's evaluation:
//!
//! * [`Sudoku::balanced`] — the classic uniquely-solvable puzzle used for
//!   the "balance tree" rows of Table 2 and Figure 4(e);
//! * [`Sudoku::input1`] / [`Sudoku::input2`] — sparse grids whose search
//!   trees are large and *unbalanced* (Figures 8–10a). The paper's exact
//!   inputs are not published; these substitutes blank whole bands of a
//!   solved grid, which concentrates the subtree mass the same way
//!   (documented in DESIGN.md).

use adaptivetc_core::{Expansion, Problem};
use std::fmt;
use std::str::FromStr;

/// The solver workspace: board plus row/column/box candidate masks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SudokuState {
    grid: Vec<u8>,
    rows: Vec<u16>,
    cols: Vec<u16>,
    boxes: Vec<u16>,
}

/// Placing `digit` into `cell`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fill {
    cell: u8,
    digit: u8,
}

/// A parse failure for a Sudoku grid string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseSudokuError {
    /// The string did not contain exactly 81 cells.
    WrongLength(usize),
    /// An unexpected character (stores it and its position).
    BadCell(char, usize),
    /// The givens already conflict.
    Contradiction,
}

impl fmt::Display for ParseSudokuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseSudokuError::WrongLength(n) => {
                write!(f, "expected 81 cells, found {n}")
            }
            ParseSudokuError::BadCell(c, i) => {
                write!(f, "unexpected character {c:?} at cell {i}")
            }
            ParseSudokuError::Contradiction => write!(f, "the givens conflict"),
        }
    }
}

impl std::error::Error for ParseSudokuError {}

/// A 9×9 Sudoku whose solutions are counted exhaustively.
///
/// # Examples
///
/// ```
/// use adaptivetc_core::serial;
/// use adaptivetc_workloads::sudoku::Sudoku;
///
/// let (solutions, _) = serial::run(&Sudoku::balanced());
/// assert_eq!(solutions, 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Sudoku {
    givens: Vec<u8>,
}

/// The classic solved grid used to derive the named instances.
const SOLVED: &str =
    "534678912672195348198342567859761423426853791713924856961537284287419635345286179";

impl Sudoku {
    /// The uniquely-solvable "balance tree" instance.
    pub fn balanced() -> Self {
        "53..7....6..195....98....6.8...6...34..8.3..17...2...6.6....28....419..5....8..79"
            .parse()
            .expect("the balanced instance is well-formed")
    }

    /// The "balance tree" instance of Table 2 / Figure 4(e): the first four
    /// rows blanked, which makes the search tree bushy at the top (four
    /// depth-1 subtrees holding roughly 31/19/31/18 % of the mass) and
    /// roughly balanced — unlike [`Sudoku::input1`]'s chain-heavy shape.
    pub fn balanced_tree() -> Self {
        let mut s: Vec<u8> = SOLVED.bytes().collect();
        for b in s.iter_mut().take(36) {
            *b = b'.';
        }
        std::str::from_utf8(&s)
            .expect("ascii")
            .parse()
            .expect("derived from a valid grid")
    }

    /// Unbalanced instance 1: the last four rows blanked.
    pub fn input1() -> Self {
        let mut s: Vec<u8> = SOLVED.bytes().collect();
        for b in s.iter_mut().skip(45) {
            *b = b'.';
        }
        std::str::from_utf8(&s)
            .expect("ascii")
            .parse()
            .expect("derived from a valid grid")
    }

    /// Unbalanced instance 2: rows 0–2 and columns 0–2 of the remainder
    /// blanked (mass concentrated differently from `input1`).
    pub fn input2() -> Self {
        let mut s: Vec<u8> = SOLVED.bytes().collect();
        for r in 0..9 {
            for c in 0..9 {
                if r < 3 || c < 3 {
                    s[r * 9 + c] = b'.';
                }
            }
        }
        std::str::from_utf8(&s)
            .expect("ascii")
            .parse()
            .expect("derived from a valid grid")
    }

    /// The given digits, row-major, 0 for empty.
    pub fn givens(&self) -> &[u8] {
        &self.givens
    }

    /// Number of given clues.
    pub fn clue_count(&self) -> usize {
        self.givens.iter().filter(|&&d| d != 0).count()
    }
}

impl FromStr for Sudoku {
    type Err = ParseSudokuError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let cells: Vec<char> = s.chars().filter(|c| !c.is_whitespace()).collect();
        if cells.len() != 81 {
            return Err(ParseSudokuError::WrongLength(cells.len()));
        }
        let mut givens = Vec::with_capacity(81);
        for (i, c) in cells.into_iter().enumerate() {
            match c {
                '.' | '0' => givens.push(0),
                '1'..='9' => givens.push(c as u8 - b'0'),
                other => return Err(ParseSudokuError::BadCell(other, i)),
            }
        }
        let p = Sudoku { givens };
        // Reject conflicting givens up front.
        let mut st = SudokuState {
            grid: vec![0; 81],
            rows: vec![0; 9],
            cols: vec![0; 9],
            boxes: vec![0; 9],
        };
        for (i, &d) in p.givens.iter().enumerate() {
            if d == 0 {
                continue;
            }
            let bit = 1u16 << (d - 1);
            let (r, c) = (i / 9, i % 9);
            let b = (r / 3) * 3 + c / 3;
            if st.rows[r] & bit != 0 || st.cols[c] & bit != 0 || st.boxes[b] & bit != 0 {
                return Err(ParseSudokuError::Contradiction);
            }
            st.rows[r] |= bit;
            st.cols[c] |= bit;
            st.boxes[b] |= bit;
        }
        Ok(p)
    }
}

impl Problem for Sudoku {
    type State = SudokuState;
    type Choice = Fill;
    type Out = u64;

    fn root(&self) -> SudokuState {
        let mut st = SudokuState {
            grid: self.givens.clone(),
            rows: vec![0; 9],
            cols: vec![0; 9],
            boxes: vec![0; 9],
        };
        for (i, &d) in self.givens.iter().enumerate() {
            if d != 0 {
                let bit = 1u16 << (d - 1);
                st.rows[i / 9] |= bit;
                st.cols[i % 9] |= bit;
                st.boxes[(i / 9 / 3) * 3 + (i % 9) / 3] |= bit;
            }
        }
        st
    }

    fn expand(&self, st: &SudokuState, _depth: u32) -> Expansion<Fill, u64> {
        // find_free_cell: fixed row-major scan, as in Appendix A.
        let Some(cell) = st.grid.iter().position(|&d| d == 0) else {
            return Expansion::Leaf(1);
        };
        let (r, c) = (cell / 9, cell % 9);
        let b = (r / 3) * 3 + c / 3;
        let used = st.rows[r] | st.cols[c] | st.boxes[b];
        let candidates: Vec<Fill> = (1..=9u8)
            .filter(|d| used & (1 << (d - 1)) == 0)
            .map(|digit| Fill {
                cell: cell as u8,
                digit,
            })
            .collect();
        Expansion::Children(candidates)
    }

    fn apply(&self, st: &mut SudokuState, f: Fill) {
        let cell = usize::from(f.cell);
        let (r, c) = (cell / 9, cell % 9);
        let bit = 1u16 << (f.digit - 1);
        st.grid[cell] = f.digit;
        st.rows[r] |= bit;
        st.cols[c] |= bit;
        st.boxes[(r / 3) * 3 + c / 3] |= bit;
    }

    fn undo(&self, st: &mut SudokuState, f: Fill) {
        let cell = usize::from(f.cell);
        let (r, c) = (cell / 9, cell % 9);
        let bit = 1u16 << (f.digit - 1);
        st.grid[cell] = 0;
        st.rows[r] &= !bit;
        st.cols[c] &= !bit;
        st.boxes[(r / 3) * 3 + c / 3] &= !bit;
    }

    fn state_bytes(&self, st: &SudokuState) -> usize {
        // The paper's Status_t: board + three placed arrays (9×9 each).
        st.grid.len() * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adaptivetc_core::serial;

    #[test]
    fn solved_grid_counts_one() {
        let p: Sudoku = SOLVED.parse().unwrap();
        let (n, r) = serial::run(&p);
        assert_eq!(n, 1);
        assert_eq!(r.nodes, 1);
    }

    #[test]
    fn balanced_has_unique_solution() {
        let (n, _) = serial::run(&Sudoku::balanced());
        assert_eq!(n, 1);
    }

    #[test]
    fn balanced_tree_is_bushy_at_the_top() {
        let p = Sudoku::balanced_tree();
        let info = adaptivetc_core::treeinfo::TreeInfo::measure(&p);
        assert!(info.depth1_shares.len() >= 3, "bushy root");
        let max = info.depth1_percent().into_iter().fold(0.0f64, f64::max);
        assert!(max < 50.0, "no depth-1 subtree dominates: {max:.1}%");
    }

    #[test]
    fn named_instances_have_golden_counts() {
        let (n, r) = serial::run(&Sudoku::input1());
        assert_eq!(n, 1284);
        assert!(r.nodes > 10_000);
        let (n, _) = serial::run(&Sudoku::balanced_tree());
        assert_eq!(n, 1224);
    }

    #[test]
    #[ignore = "input2 explores ~10M nodes (seconds in release)"]
    fn input2_golden_count() {
        let (n, _) = serial::run(&Sudoku::input2());
        assert_eq!(n, 244_224);
    }

    #[test]
    fn parse_rejects_bad_input() {
        assert!(matches!(
            "123".parse::<Sudoku>(),
            Err(ParseSudokuError::WrongLength(3))
        ));
        let mut bad = SOLVED.to_string();
        bad.replace_range(0..1, "x");
        assert!(matches!(
            bad.parse::<Sudoku>(),
            Err(ParseSudokuError::BadCell('x', 0))
        ));
        let mut conflict = ".".repeat(79);
        conflict.push_str("11");
        assert!(matches!(
            conflict.parse::<Sudoku>(),
            Err(ParseSudokuError::Contradiction)
        ));
    }

    #[test]
    fn parse_accepts_whitespace_and_zeroes() {
        let spaced = format!("{}\n", SOLVED.replace('1', "0"));
        let p: Sudoku = spaced.parse().unwrap();
        assert_eq!(p.clue_count(), 81 - SOLVED.matches('1').count());
    }

    #[test]
    fn apply_undo_roundtrip() {
        let p = Sudoku::balanced();
        let mut st = p.root();
        let orig = st.clone();
        if let Expansion::Children(cs) = p.expand(&st, 0) {
            for f in cs {
                p.apply(&mut st, f);
                p.undo(&mut st, f);
                assert_eq!(st, orig);
            }
        }
    }
}
