//! The Figure 1 worked example: the paper's 49-node call tree, on which
//! AdaptiveTC generates ~20 tasks while Cilk generates one per node.
//!
//! The exact 49-node tree of Figure 1 is only partially recoverable from
//! the paper's prose (known edges: 0→{1,40}, 1→{2,7}, 40→{41,44}, with the
//! bulk of the mass under node 7); the reconstruction here respects those
//! edges and the 49-node total. It is shared by the `fig1_tasks` bench
//! binary and the scheduler/simulator differential tests, so the two
//! always agree on the tree they count tasks on.

use adaptivetc_core::{Expansion, Problem};

/// A 49-node reconstruction of the Figure 1 call tree. Leaves return 1,
/// so the answer is the leaf count: [`Fig1Tree::LEAVES`].
#[derive(Debug)]
pub struct Fig1Tree {
    children: Vec<Vec<u32>>,
}

impl Fig1Tree {
    /// Number of nodes in the reconstruction (as in the figure).
    pub const NODES: usize = 49;
    /// Number of leaves, i.e. the search's answer.
    pub const LEAVES: u64 = 25;

    /// Build the reconstruction.
    pub fn new() -> Self {
        // 0→{1,40}, 1→{2,7}, 40→{41,44}; 2, 41, 44 root small subtrees;
        // 7 roots the large one (the figure's nodes 8–39).
        let mut children: Vec<Vec<u32>> = vec![Vec::new(); Self::NODES];
        children[0] = vec![1, 40];
        children[1] = vec![2, 7];
        children[40] = vec![41, 44];
        children[2] = vec![3, 4];
        children[3] = vec![5, 6];
        children[41] = vec![42, 43];
        children[44] = vec![45, 46];
        children[45] = vec![47, 48];
        // The big subtree under 7: a 3-wide, then binary, bushy shape over
        // nodes 8..=39.
        children[7] = vec![8, 9, 10];
        children[8] = vec![11, 12];
        children[9] = vec![13, 14];
        children[10] = vec![15, 16];
        children[11] = vec![17, 18];
        children[12] = vec![19, 20];
        children[13] = vec![21, 22];
        children[14] = vec![23, 24];
        children[15] = vec![25, 26];
        children[16] = vec![27, 28];
        children[17] = vec![29, 30];
        children[18] = vec![31, 32];
        children[19] = vec![33, 34];
        children[20] = vec![35, 36];
        children[21] = vec![37, 38];
        children[22] = vec![39];
        Fig1Tree { children }
    }
}

impl Default for Fig1Tree {
    fn default() -> Self {
        Self::new()
    }
}

impl Problem for Fig1Tree {
    type State = Vec<u32>; // path of node ids
    type Choice = u32;
    type Out = u64;
    fn root(&self) -> Vec<u32> {
        vec![0]
    }
    fn expand(&self, path: &Vec<u32>, _d: u32) -> Expansion<u32, u64> {
        let node = *path.last().expect("path never empty") as usize;
        let kids = &self.children[node];
        if kids.is_empty() {
            Expansion::Leaf(1)
        } else {
            Expansion::Children(kids.clone())
        }
    }
    fn apply(&self, path: &mut Vec<u32>, c: u32) {
        path.push(c);
    }
    fn undo(&self, path: &mut Vec<u32>, _c: u32) {
        path.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adaptivetc_core::serial;

    #[test]
    fn shape_matches_the_figure() {
        let tree = Fig1Tree::new();
        let reachable: usize = {
            let mut seen = [false; Fig1Tree::NODES];
            let mut stack = vec![0u32];
            while let Some(n) = stack.pop() {
                if !std::mem::replace(&mut seen[n as usize], true) {
                    stack.extend(&tree.children[n as usize]);
                }
            }
            seen.iter().filter(|s| **s).count()
        };
        assert_eq!(reachable, Fig1Tree::NODES, "every node is in the tree");
        let (leaves, report) = serial::run(&tree);
        assert_eq!(leaves, Fig1Tree::LEAVES);
        assert_eq!(report.nodes, Fig1Tree::NODES as u64);
    }
}
