//! The benchmark workloads of the AdaptiveTC paper (Table 1), expressed as
//! [`Problem`](adaptivetc_core::Problem)s, plus the synthetic unbalanced
//! trees of Table 3 / Figure 8.
//!
//! | module | paper benchmark | taskprivate workspace |
//! |---|---|---|
//! | [`nqueens`] | Nqueen-array(n), Nqueen-compute(n) | conflict arrays / placed-queen list |
//! | [`strimko`] | Strimko | 7×7 grid + row/col/stream masks |
//! | [`knights`] | Knight's Tour (6×6) | visited mask + square |
//! | [`sudoku`] | Sudoku | 9×9 board + row/col/box masks |
//! | [`pentomino`] | Pentomino(n) | board occupancy + used pieces |
//! | [`fib`] | Fib(n) | none |
//! | [`comp`] | Comp(n) | none |
//! | [`tree`] | unbalanced search trees (Figs. 8–10, Table 3) | path stack |
//! | [`fig1`] | the Figure 1 worked-example call tree | path stack |
//! | [`dag`] | phase-skewed layered dataflow DAGs (strategy ablation) | vertex path |
//!
//! # Examples
//!
//! ```
//! use adaptivetc_core::serial;
//! use adaptivetc_workloads::nqueens::NqueensArray;
//!
//! let (solutions, _) = serial::run(&NqueensArray::new(6));
//! assert_eq!(solutions, 4);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod comp;
pub mod dag;
pub mod fib;
pub mod fig1;
pub mod knights;
pub mod nqueens;
pub mod pentomino;
pub mod strimko;
pub mod sudoku;
pub mod tree;
