//! Threaded work-stealing schedulers reproducing the AdaptiveTC paper
//! (Wang et al., CGO 2010).
//!
//! Seven schedulers execute any [`Problem`]:
//!
//! | [`Scheduler`] | paper system | mechanism |
//! |---|---|---|
//! | `Serial` | sequential C baseline | plain recursion |
//! | `Cilk` | Cilk 5.4.6 | work-first, a task + workspace copy per spawn |
//! | `CilkSynched` | Cilk + `SYNCHED` | as Cilk, workspace buffers recycled |
//! | `Tascell` | Tascell | request-driven backtracking, no deque, no suspension |
//! | `CutoffProgrammer(d)` | Cutoff-programmer | tasks above depth `d`, copy-free recursion below |
//! | `CutoffLibrary` | Cutoff-library | tasks above `⌈log₂ N⌉`, but copies at every node |
//! | `AdaptiveTc` | **AdaptiveTC** | the five-version FSM with special tasks |
//!
//! # Examples
//!
//! ```
//! use adaptivetc_core::{Config, Expansion, Problem};
//! use adaptivetc_runtime::Scheduler;
//!
//! /// Count the leaves of a ternary tree of height 6.
//! struct Tern;
//! impl Problem for Tern {
//!     type State = u32;
//!     type Choice = u8;
//!     type Out = u64;
//!     fn root(&self) -> u32 { 0 }
//!     fn expand(&self, _: &u32, d: u32) -> Expansion<u8, u64> {
//!         if d == 6 { Expansion::Leaf(1) } else { Expansion::Children(vec![0, 1, 2]) }
//!     }
//!     fn apply(&self, s: &mut u32, _: u8) { *s += 1; }
//!     fn undo(&self, s: &mut u32, _: u8) { *s -= 1; }
//! }
//!
//! # fn main() -> Result<(), adaptivetc_core::SchedulerError> {
//! let cfg = Config::new(2);
//! let (leaves, report) = Scheduler::AdaptiveTc.run(&Tern, &cfg)?;
//! assert_eq!(leaves, 3u64.pow(6));
//! assert_eq!(report.threads, 2);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod engine;
mod frame;
pub mod fsm;
pub mod par;
pub mod pool;
pub mod server;
pub mod submit;
pub(crate) mod sync;
pub mod tascell;
mod trace;

#[cfg(feature = "trace")]
pub use engine::run_traced;
pub use engine::Mode;
pub use server::{
    JobHandle, JobOutcome, JobServer, RejectReason, ServerConfig, ServerReport, ServerStats,
    SubmitError,
};
pub use submit::{CancelOutcome, JobStatus, Priority};

use adaptivetc_core::{serial, Config, CutoffPolicy, Problem, RunReport, RunStats, SchedulerError};

/// A scheduling policy from the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scheduler {
    /// The sequential baseline (speedup denominator).
    Serial,
    /// Work-first Cilk 5: every spawn creates a task and copies the
    /// workspace.
    Cilk,
    /// Cilk with `SYNCHED`-style workspace buffer reuse.
    CilkSynched,
    /// Tascell: backtracking-based, request-driven load balancing.
    Tascell,
    /// Fixed programmer-chosen cut-off depth; copy-free recursion below it.
    CutoffProgrammer(u32),
    /// Runtime-chosen cut-off (`⌈log₂ N⌉`); workspace copies at every node
    /// below it.
    CutoffLibrary,
    /// The paper's contribution: adaptive task creation.
    AdaptiveTc,
}

impl Scheduler {
    /// All schedulers compared in the paper's figures, in presentation
    /// order (the two cut-off baselines appear only in Figure 9).
    pub fn paper_lineup() -> [Scheduler; 4] {
        [
            Scheduler::Cilk,
            Scheduler::CilkSynched,
            Scheduler::Tascell,
            Scheduler::AdaptiveTc,
        ]
    }

    /// A short display name matching the paper's figure legends.
    pub fn name(&self) -> &'static str {
        match self {
            Scheduler::Serial => "Serial",
            Scheduler::Cilk => "Cilk",
            Scheduler::CilkSynched => "Cilk-SYNCHED",
            Scheduler::Tascell => "Tascell",
            Scheduler::CutoffProgrammer(_) => "Cutoff-programmer",
            Scheduler::CutoffLibrary => "Cutoff-library",
            Scheduler::AdaptiveTc => "AdaptiveTC",
        }
    }

    /// Execute `problem` under this policy.
    ///
    /// # Errors
    ///
    /// Returns [`SchedulerError::Config`] for invalid configurations and
    /// [`SchedulerError::WorkerPanicked`] if a worker thread panics.
    pub fn run<P: Problem>(
        &self,
        problem: &P,
        cfg: &Config,
    ) -> Result<(P::Out, RunReport), SchedulerError> {
        match self {
            Scheduler::Serial => {
                cfg.validate()?;
                let (out, sr) = serial::run(problem);
                let stats = RunStats {
                    nodes: sr.nodes,
                    fake_tasks: sr.nodes,
                    ..RunStats::default()
                };
                Ok((out, RunReport::from_workers(vec![stats], sr.wall_ns)))
            }
            Scheduler::Cilk => engine::run(problem, cfg, Mode::Cilk),
            Scheduler::CilkSynched => engine::run(problem, cfg, Mode::CilkSynched),
            Scheduler::Tascell => tascell::run(problem, cfg),
            Scheduler::CutoffProgrammer(d) => {
                let cfg = cfg.clone().cutoff(CutoffPolicy::Fixed(*d));
                engine::run(problem, &cfg, Mode::CutoffSequence)
            }
            Scheduler::CutoffLibrary => {
                let cfg = cfg.clone().cutoff(CutoffPolicy::Auto);
                engine::run(problem, &cfg, Mode::CutoffCopy)
            }
            Scheduler::AdaptiveTc => engine::run(problem, cfg, Mode::Adaptive),
        }
    }

    /// As [`Scheduler::run`], but additionally returns the drained event
    /// trace when `cfg.trace` is set. `Serial` and `Tascell` do not run on
    /// the traced engine and always return `None` (their counters remain
    /// available through the report).
    ///
    /// Only available with the `trace` cargo feature (on by default).
    ///
    /// # Errors
    ///
    /// As [`Scheduler::run`].
    #[cfg(feature = "trace")]
    pub fn run_traced<P: Problem>(
        &self,
        problem: &P,
        cfg: &Config,
    ) -> Result<(P::Out, RunReport, Option<adaptivetc_trace::Trace>), SchedulerError> {
        match self {
            Scheduler::Serial | Scheduler::Tascell => {
                let (out, report) = self.run(problem, cfg)?;
                Ok((out, report, None))
            }
            Scheduler::Cilk => engine::run_traced(problem, cfg, Mode::Cilk),
            Scheduler::CilkSynched => engine::run_traced(problem, cfg, Mode::CilkSynched),
            Scheduler::CutoffProgrammer(d) => {
                let cfg = cfg.clone().cutoff(CutoffPolicy::Fixed(*d));
                engine::run_traced(problem, &cfg, Mode::CutoffSequence)
            }
            Scheduler::CutoffLibrary => {
                let cfg = cfg.clone().cutoff(CutoffPolicy::Auto);
                engine::run_traced(problem, &cfg, Mode::CutoffCopy)
            }
            Scheduler::AdaptiveTc => engine::run_traced(problem, cfg, Mode::Adaptive),
        }
    }
}

impl std::fmt::Display for Scheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Scheduler::CutoffProgrammer(d) => write!(f, "Cutoff-programmer({d})"),
            other => f.write_str(other.name()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adaptivetc_core::Expansion;

    /// Ternary tree of height `h` with a tiny taskprivate payload so copies
    /// are observable.
    struct Tern {
        h: u32,
    }
    impl Problem for Tern {
        type State = Vec<u8>;
        type Choice = u8;
        type Out = u64;
        fn root(&self) -> Vec<u8> {
            vec![0; 32]
        }
        fn expand(&self, _: &Vec<u8>, d: u32) -> Expansion<u8, u64> {
            if d == self.h {
                Expansion::Leaf(1)
            } else {
                Expansion::Children(vec![0, 1, 2])
            }
        }
        fn apply(&self, s: &mut Vec<u8>, c: u8) {
            s[0] = s[0].wrapping_add(c + 1);
        }
        fn undo(&self, s: &mut Vec<u8>, c: u8) {
            s[0] = s[0].wrapping_sub(c + 1);
        }
        fn state_bytes(&self, st: &Vec<u8>) -> usize {
            st.len()
        }
    }

    fn all_schedulers() -> Vec<Scheduler> {
        vec![
            Scheduler::Serial,
            Scheduler::Cilk,
            Scheduler::CilkSynched,
            Scheduler::Tascell,
            Scheduler::CutoffProgrammer(3),
            Scheduler::CutoffLibrary,
            Scheduler::AdaptiveTc,
        ]
    }

    #[test]
    fn every_scheduler_matches_serial_single_thread() {
        let p = Tern { h: 7 };
        let expected = 3u64.pow(7);
        for s in all_schedulers() {
            let (out, _) = s.run(&p, &Config::new(1)).unwrap();
            assert_eq!(out, expected, "{s} returned a wrong result");
        }
    }

    #[test]
    fn every_scheduler_matches_serial_multi_thread() {
        let p = Tern { h: 8 };
        let expected = 3u64.pow(8);
        for s in all_schedulers() {
            for threads in [2, 4] {
                let (out, report) = s.run(&p, &Config::new(threads)).unwrap();
                assert_eq!(out, expected, "{s} with {threads} threads");
                if !matches!(s, Scheduler::Serial) {
                    assert_eq!(report.threads, threads);
                }
            }
        }
    }

    #[test]
    fn cilk_creates_a_task_per_node() {
        let p = Tern { h: 5 };
        let nodes = (3u64.pow(6) - 1) / 2; // sum of 3^0..3^5
        let (_, report) = Scheduler::Cilk.run(&p, &Config::new(1)).unwrap();
        assert_eq!(report.stats.nodes, nodes);
        assert_eq!(report.stats.tasks_created, nodes);
        // Every non-root task copies its workspace.
        assert_eq!(report.stats.copies, nodes - 1);
    }

    #[test]
    fn adaptive_creates_far_fewer_tasks_than_cilk() {
        let p = Tern { h: 8 };
        let (_, cilk) = Scheduler::Cilk.run(&p, &Config::new(4)).unwrap();
        let (_, adpt) = Scheduler::AdaptiveTc.run(&p, &Config::new(4)).unwrap();
        assert!(
            adpt.stats.tasks_created * 10 < cilk.stats.tasks_created,
            "adaptive={} cilk={}",
            adpt.stats.tasks_created,
            cilk.stats.tasks_created
        );
        assert!(adpt.stats.copies * 10 < cilk.stats.copies);
    }

    #[test]
    fn adaptive_single_thread_has_no_copies_beyond_cutoff_frontier() {
        let p = Tern { h: 8 };
        let (_, r) = Scheduler::AdaptiveTc.run(&p, &Config::new(1)).unwrap();
        // cutoff=1 for one thread: tasks only at depth 0 spawns; everything
        // else is fake tasks.
        assert!(r.stats.copies <= 3 + 1, "copies={}", r.stats.copies);
        assert_eq!(r.stats.special_tasks, 0);
        assert!(r.stats.fake_tasks > 1000);
    }

    #[test]
    fn synched_reuses_allocations() {
        let p = Tern { h: 7 };
        let (_, cilk) = Scheduler::Cilk.run(&p, &Config::new(1)).unwrap();
        let (_, syn) = Scheduler::CilkSynched.run(&p, &Config::new(1)).unwrap();
        assert_eq!(cilk.stats.copies, syn.stats.copies, "copies are not saved");
        assert!(
            syn.stats.allocations * 10 < cilk.stats.allocations,
            "synched={} cilk={}",
            syn.stats.allocations,
            cilk.stats.allocations
        );
    }

    #[test]
    fn cutoff_library_copies_more_than_programmer() {
        let p = Tern { h: 7 };
        let cfg = Config::new(2);
        let (_, prog) = Scheduler::CutoffProgrammer(2).run(&p, &cfg).unwrap();
        let (_, lib) = Scheduler::CutoffLibrary.run(&p, &cfg).unwrap();
        assert!(
            lib.stats.copies > prog.stats.copies * 10,
            "lib={} prog={}",
            lib.stats.copies,
            prog.stats.copies
        );
    }

    #[test]
    fn tascell_counts_requests_and_responses() {
        let p = Tern { h: 9 };
        let (out, r) = Scheduler::Tascell.run(&p, &Config::new(4)).unwrap();
        assert_eq!(out, 3u64.pow(9));
        // Every task beyond the root came from answering a steal request
        // (whether any flow at all is timing-dependent on a loaded machine).
        assert_eq!(r.stats.tasks_created, 1 + r.stats.steal_responses);
        assert!(r.stats.steals_ok <= r.stats.steal_responses);
    }

    #[test]
    fn config_errors_are_propagated() {
        let p = Tern { h: 3 };
        let err = Scheduler::Cilk.run(&p, &Config::new(0)).unwrap_err();
        assert!(matches!(err, SchedulerError::Config(_)));
    }

    #[test]
    fn display_names_match_legends() {
        assert_eq!(Scheduler::AdaptiveTc.to_string(), "AdaptiveTC");
        assert_eq!(
            Scheduler::CutoffProgrammer(5).to_string(),
            "Cutoff-programmer(5)"
        );
        assert_eq!(Scheduler::CilkSynched.to_string(), "Cilk-SYNCHED");
    }
}
