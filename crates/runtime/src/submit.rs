//! The job-submission kernel: a bounded MPMC priority queue plus the job
//! lifecycle state machine.
//!
//! This file is the model-checked core of the [`crate::server`] frontend.
//! Like the deque protocol sources, it is `#[path]`-included by the
//! `adaptivetc-check` crate, where its `crate::sync` imports resolve to the
//! `shim-sync` model primitives instead of the real ones — so everything
//! here must restrict itself to the facade subset the shim provides
//! (`AtomicBool`/`AtomicU32`/`AtomicU64`, `Mutex`, `Ordering`; no
//! `Condvar`, no `AtomicUsize`, no clocks, no OS threads). Parking,
//! notification and timing live in `server.rs`, outside the kernel.
//!
//! # Submission queue
//!
//! [`SubmitQueue`] is a Vyukov-style bounded MPMC ring: each slot carries a
//! sequence counter that encodes whose turn the slot is on (`seq == pos`:
//! free for the producer of ticket `pos`; `seq == pos + 1`: holds that
//! ticket's payload; `seq == pos + capacity`: recycled for the next lap).
//! Producers and consumers claim tickets with a CAS on the `enq`/`deq`
//! cursor and then publish through the slot's sequence counter, so a
//! half-finished transfer is never observable: a submission is either not
//! yet in the queue or claimable by exactly one consumer. The payload
//! itself travels under a per-slot mutex rather than an `UnsafeCell` —
//! submissions are rare relative to task operations, and the uncontended
//! lock keeps the kernel free of `unsafe`.
//!
//! [`PrioQueue`] stacks three rings (one per [`Priority`]) and pops
//! high-before-normal-before-low.
//!
//! # Job lifecycle
//!
//! ```text
//!            claim (worker)            finish(cancelled=false)
//!   Queued ────────────────► Running ─────────────────────────► Completed
//!      │                        │
//!      │ cancel (client)        │ finish(cancelled=true)
//!      ▼                        ▼
//!   Cancelled               Cancelled
//! ```
//!
//! [`JobLifecycle`] owns the state word. The transitions are all CAS-based
//! and partition the writers: a *worker* claims `Queued → Running`; a
//! *client* cancels `Queued → Cancelled` (the job never runs); only the
//! job's *lead worker* performs the `Running → {Completed, Cancelled}`
//! terminal transition, folding in the [`CancelToken`] it observed at
//! finish time. A cancel that arrives while the job runs therefore only
//! raises the token — the poll points of the engine prune the remaining
//! subtree — and the race against completion is resolved by the single
//! terminal writer: exactly one terminal state, always.

use crate::sync::{AtomicBool, AtomicU32, AtomicU64, Mutex, Ordering};
use std::sync::Arc;

/// Scheduling class of a submitted job. Workers drain submission lanes in
/// declared order, so a `High` job is always claimed before a `Normal` one
/// that is also ready (no aging: a flood of high-priority jobs starves
/// lower lanes by design).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Priority {
    /// Claimed before every other lane.
    High,
    /// The default lane.
    #[default]
    Normal,
    /// Claimed only when the other lanes are empty.
    Low,
}

impl Priority {
    /// All lanes, in claim order.
    pub const ALL: [Priority; 3] = [Priority::High, Priority::Normal, Priority::Low];

    /// Lane index (claim order).
    #[inline]
    pub fn lane(self) -> usize {
        match self {
            Priority::High => 0,
            Priority::Normal => 1,
            Priority::Low => 2,
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Priority::High => "high",
            Priority::Normal => "normal",
            Priority::Low => "low",
        }
    }
}

/// Observable state of a submitted job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    /// Accepted, not yet claimed by a worker.
    Queued,
    /// A lead worker is executing the job.
    Running,
    /// Terminal: ran to completion; a result is available.
    Completed,
    /// Terminal: cancelled before or during execution; no result.
    Cancelled,
}

impl JobStatus {
    /// Whether the state is terminal (no further transitions).
    #[inline]
    pub fn is_terminal(self) -> bool {
        matches!(self, JobStatus::Completed | JobStatus::Cancelled)
    }
}

const QUEUED: u32 = 0;
const RUNNING: u32 = 1;
const COMPLETED: u32 = 2;
const CANCELLED: u32 = 3;

fn decode(state: u32) -> JobStatus {
    match state {
        QUEUED => JobStatus::Queued,
        RUNNING => JobStatus::Running,
        COMPLETED => JobStatus::Completed,
        _ => JobStatus::Cancelled,
    }
}

/// What a cancellation request achieved (see [`JobLifecycle::cancel`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CancelOutcome {
    /// The job was still queued and will never run.
    CancelledBeforeRun,
    /// The job is running; the cancel token was raised and the engine's
    /// poll points will prune the remaining work. Whether the terminal
    /// state becomes `Cancelled` or `Completed` is decided by the lead
    /// worker at finish time (the job may complete first).
    Requested,
    /// The job had already reached a terminal state; the request had no
    /// effect.
    AlreadyTerminal,
}

/// The cooperative cancellation flag a running job's workers poll.
///
/// Cheaply cloneable; one clone lives in the job handle, one inside the
/// engine's shared state. Raising the token never blocks and carries no
/// data — it only asks the engine's poll points to prune, so the relaxed
/// read on the hot path is enough (the flag is monotone and eventually
/// visible).
#[derive(Debug, Clone)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

// Manual impl: the shim `AtomicBool` this file compiles against in
// `adaptivetc-check` does not implement `Default`.
impl Default for CancelToken {
    fn default() -> Self {
        Self::new()
    }
}

impl CancelToken {
    /// A fresh, unraised token.
    pub fn new() -> Self {
        CancelToken {
            flag: Arc::new(AtomicBool::new(false)),
        }
    }

    /// Raise the token (idempotent).
    #[inline]
    pub fn set(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Whether the token has been raised. Relaxed: pruning is a monotone
    /// hint, not a synchronization edge.
    #[inline]
    pub fn get(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }
}

/// The job state word and its CAS transitions (see the module docs for the
/// full diagram and the writer partition argument).
#[derive(Debug)]
pub struct JobLifecycle {
    state: AtomicU32,
}

impl Default for JobLifecycle {
    fn default() -> Self {
        Self::new()
    }
}

impl JobLifecycle {
    /// A job in the `Queued` state.
    pub fn new() -> Self {
        JobLifecycle {
            state: AtomicU32::new(QUEUED),
        }
    }

    /// Current state. Acquire: a terminal observation must also see the
    /// result the finishing worker published before the transition.
    #[inline]
    pub fn status(&self) -> JobStatus {
        decode(self.state.load(Ordering::Acquire))
    }

    /// Worker side: claim the job for execution (`Queued → Running`).
    /// `false` means a client cancelled the job first — it must not run.
    /// Acquire on failure orders the loser after the cancel.
    pub fn claim(&self) -> bool {
        self.state
            .compare_exchange(QUEUED, RUNNING, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
    }

    /// Lead-worker side: enter the terminal state (`Running → Completed`
    /// or `Running → Cancelled`, per the cancel token observed at finish).
    /// Returns `false` if the job was not `Running` — which the writer
    /// partition rules out for the lead, so callers treat it as a logic
    /// error.
    pub fn finish(&self, cancelled: bool) -> bool {
        let terminal = if cancelled { CANCELLED } else { COMPLETED };
        self.state
            .compare_exchange(RUNNING, terminal, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
    }

    /// Client side: request cancellation. Queued jobs transition directly
    /// to `Cancelled` (they will never run); running jobs get `token`
    /// raised and keep their state until the lead worker's [`finish`]
    /// resolves the race — exactly one terminal state either way.
    ///
    /// [`finish`]: JobLifecycle::finish
    pub fn cancel(&self, token: &CancelToken) -> CancelOutcome {
        loop {
            match self.state.load(Ordering::Acquire) {
                QUEUED => {
                    if self
                        .state
                        .compare_exchange(QUEUED, CANCELLED, Ordering::AcqRel, Ordering::Acquire)
                        .is_ok()
                    {
                        token.set();
                        return CancelOutcome::CancelledBeforeRun;
                    }
                    // Lost to a claim or a concurrent cancel; re-read.
                }
                RUNNING => {
                    token.set();
                    return CancelOutcome::Requested;
                }
                _ => return CancelOutcome::AlreadyTerminal,
            }
        }
    }
}

/// One slot of the Vyukov ring: the turn counter plus the payload cell.
struct Slot<T> {
    /// `pos` (free for producer `pos`), `pos + 1` (full, for consumer
    /// `pos`), or `pos + capacity` (recycled for the next lap).
    seq: AtomicU64,
    item: Mutex<Option<T>>,
}

/// A bounded multi-producer multi-consumer FIFO ring (Vyukov's algorithm,
/// with mutexed payload cells — see the module docs).
pub struct SubmitQueue<T> {
    slots: Box<[Slot<T>]>,
    enq: AtomicU64,
    deq: AtomicU64,
}

impl<T> SubmitQueue<T> {
    /// A queue holding at most `capacity` items.
    ///
    /// `capacity` is clamped to at least 2: with a single slot the "full
    /// for consumer of ticket 0" and "recycled for producer of ticket 1"
    /// sequence values coincide (`seq == 1` both ways), so a second push
    /// would overwrite the first payload instead of reporting full.
    pub fn with_capacity(capacity: usize) -> Self {
        let capacity = capacity.max(2);
        SubmitQueue {
            slots: (0..capacity)
                .map(|i| Slot {
                    seq: AtomicU64::new(i as u64),
                    item: Mutex::new(None),
                })
                .collect(),
            enq: AtomicU64::new(0),
            deq: AtomicU64::new(0),
        }
    }

    /// Maximum number of queued items.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Approximate occupancy (torn cursor pairs are acceptable: the value
    /// is advisory, for `ServerStats` and parking heuristics).
    pub fn len(&self) -> usize {
        let enq = self.enq.load(Ordering::Relaxed);
        let deq = self.deq.load(Ordering::Relaxed);
        enq.saturating_sub(deq) as usize
    }

    /// Whether the queue currently appears empty (advisory, as [`len`]).
    ///
    /// [`len`]: SubmitQueue::len
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Enqueue `value`, or give it back if the queue is full. A `Full`
    /// verdict is conservative: a consumer that has claimed a ticket but
    /// not yet recycled the slot makes the queue momentarily report full
    /// one lap early — acceptable for admission control.
    pub fn try_push(&self, value: T) -> Result<(), T> {
        let cap = self.slots.len() as u64;
        loop {
            // Relaxed cursor read: the slot's Acquire sequence load below
            // is what orders this producer against the slot's last user.
            let pos = self.enq.load(Ordering::Relaxed);
            let slot = &self.slots[(pos % cap) as usize];
            let seq = slot.seq.load(Ordering::Acquire);
            if seq == pos {
                // Our turn; claim the ticket. Relaxed: the ticket CAS only
                // arbitrates producers — the payload is published by the
                // Release sequence store below, not by the cursor.
                if self
                    .enq
                    .compare_exchange_weak(pos, pos + 1, Ordering::Relaxed, Ordering::Relaxed)
                    .is_ok()
                {
                    *slot.item.lock() = Some(value);
                    // Release: publishes the payload to the consumer's
                    // Acquire sequence load.
                    slot.seq.store(pos + 1, Ordering::Release);
                    return Ok(());
                }
            } else if seq < pos {
                // The slot still holds last lap's payload: full.
                return Err(value);
            }
            // seq > pos: another producer advanced the cursor; retry.
        }
    }

    /// Dequeue the oldest item, or `None` if the queue is empty (possibly
    /// transiently: a producer that has claimed a ticket but not yet
    /// published makes its item invisible until the publish lands).
    pub fn try_pop(&self) -> Option<T> {
        let cap = self.slots.len() as u64;
        loop {
            let pos = self.deq.load(Ordering::Relaxed);
            let slot = &self.slots[(pos % cap) as usize];
            // Acquire: pairs with the producer's Release publish, making
            // the payload write visible before the take below.
            let seq = slot.seq.load(Ordering::Acquire);
            if seq == pos + 1 {
                // Relaxed ticket CAS, as in `try_push`.
                if self
                    .deq
                    .compare_exchange_weak(pos, pos + 1, Ordering::Relaxed, Ordering::Relaxed)
                    .is_ok()
                {
                    let value = slot.item.lock().take();
                    debug_assert!(value.is_some(), "claimed ticket found an empty slot");
                    // Release: recycles the slot for the producer one lap
                    // ahead, ordering our take before its store.
                    slot.seq.store(pos + cap, Ordering::Release);
                    return value;
                }
            } else if seq <= pos {
                return None;
            }
            // seq > pos + 1: another consumer advanced the cursor; retry.
        }
    }
}

/// Three [`SubmitQueue`] lanes popped in [`Priority`] order.
pub struct PrioQueue<T> {
    lanes: [SubmitQueue<T>; 3],
}

impl<T> PrioQueue<T> {
    /// Build with `capacity` slots **per lane**.
    pub fn with_capacity(capacity: usize) -> Self {
        PrioQueue {
            lanes: [
                SubmitQueue::with_capacity(capacity),
                SubmitQueue::with_capacity(capacity),
                SubmitQueue::with_capacity(capacity),
            ],
        }
    }

    /// Enqueue into the lane for `priority`; gives the value back when
    /// that lane is full.
    pub fn try_push(&self, priority: Priority, value: T) -> Result<(), T> {
        self.lanes[priority.lane()].try_push(value)
    }

    /// Dequeue from the highest-priority non-empty lane.
    pub fn try_pop(&self) -> Option<(Priority, T)> {
        for p in Priority::ALL {
            if let Some(v) = self.lanes[p.lane()].try_pop() {
                return Some((p, v));
            }
        }
        None
    }

    /// Approximate total occupancy across lanes (advisory).
    pub fn len(&self) -> usize {
        self.lanes.iter().map(SubmitQueue::len).sum()
    }

    /// Whether every lane currently appears empty (advisory).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_is_fifo_within_a_lane() {
        let q = SubmitQueue::with_capacity(4);
        for i in 0..4 {
            q.try_push(i).unwrap();
        }
        assert_eq!(q.try_push(99), Err(99), "full queue must reject");
        for i in 0..4 {
            assert_eq!(q.try_pop(), Some(i));
        }
        assert_eq!(q.try_pop(), None);
        // Wrap around a second lap.
        q.try_push(10).unwrap();
        assert_eq!(q.try_pop(), Some(10));
    }

    #[test]
    fn one_slot_request_is_clamped_to_two() {
        // A true one-slot ring would let a second push overwrite the
        // first payload (see `with_capacity`); the clamp keeps FIFO.
        let q = SubmitQueue::with_capacity(1);
        assert_eq!(q.capacity(), 2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.try_push(3), Err(3), "clamped ring still bounds");
        assert_eq!(q.try_pop(), Some(1));
        assert_eq!(q.try_pop(), Some(2));
        assert_eq!(q.try_pop(), None);
    }

    #[test]
    fn priority_lanes_pop_high_first() {
        let q = PrioQueue::with_capacity(2);
        q.try_push(Priority::Low, 3).unwrap();
        q.try_push(Priority::Normal, 2).unwrap();
        q.try_push(Priority::High, 1).unwrap();
        assert_eq!(q.try_pop(), Some((Priority::High, 1)));
        assert_eq!(q.try_pop(), Some((Priority::Normal, 2)));
        assert_eq!(q.try_pop(), Some((Priority::Low, 3)));
        assert_eq!(q.try_pop(), None);
    }

    #[test]
    fn lifecycle_claim_then_finish() {
        let l = JobLifecycle::new();
        assert_eq!(l.status(), JobStatus::Queued);
        assert!(l.claim());
        assert!(!l.claim(), "double claim must fail");
        assert_eq!(l.status(), JobStatus::Running);
        assert!(l.finish(false));
        assert_eq!(l.status(), JobStatus::Completed);
        assert!(!l.finish(true), "terminal states are final");
    }

    #[test]
    fn cancel_before_claim_wins() {
        let l = JobLifecycle::new();
        let t = CancelToken::new();
        assert_eq!(l.cancel(&t), CancelOutcome::CancelledBeforeRun);
        assert!(t.get());
        assert!(!l.claim(), "a cancelled job must not run");
        assert_eq!(l.status(), JobStatus::Cancelled);
        assert_eq!(l.cancel(&t), CancelOutcome::AlreadyTerminal);
    }

    #[test]
    fn cancel_while_running_raises_the_token() {
        let l = JobLifecycle::new();
        let t = CancelToken::new();
        assert!(l.claim());
        assert_eq!(l.cancel(&t), CancelOutcome::Requested);
        assert!(t.get());
        assert_eq!(
            l.status(),
            JobStatus::Running,
            "state unchanged until finish"
        );
        assert!(l.finish(t.get()));
        assert_eq!(l.status(), JobStatus::Cancelled);
    }

    #[test]
    fn queue_many_producers_consumers_native() {
        // Native smoke over the MPMC ring; the exhaustive interleaving
        // coverage lives in adaptivetc-check's jobserver_submit suite.
        let q = std::sync::Arc::new(SubmitQueue::with_capacity(8));
        let mut produced = Vec::new();
        std::thread::scope(|s| {
            let mut handles = Vec::new();
            for t in 0..4u32 {
                let q = std::sync::Arc::clone(&q);
                handles.push(s.spawn(move || {
                    let mut got = Vec::new();
                    for i in 0..100u32 {
                        let v = t * 1000 + i;
                        let mut item = v;
                        loop {
                            match q.try_push(item) {
                                Ok(()) => break,
                                Err(back) => item = back,
                            }
                            if let Some(x) = q.try_pop() {
                                got.push(x);
                            }
                        }
                    }
                    got
                }));
            }
            for h in handles {
                produced.extend(h.join().unwrap());
            }
        });
        while let Some(x) = q.try_pop() {
            produced.push(x);
        }
        produced.sort_unstable();
        let mut expected: Vec<u32> = (0..4u32)
            .flat_map(|t| (0..100u32).map(move |i| t * 1000 + i))
            .collect();
        expected.sort_unstable();
        assert_eq!(produced, expected, "every push popped exactly once");
    }
}
