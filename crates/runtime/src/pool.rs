//! Bounded per-worker object pools for the engine's hot path.
//!
//! The paper's Table 2 attributes most of Cilk's one-thread overhead to
//! task-creation costs, a large share of which is heap traffic: a workspace
//! allocation per spawned child and a frame (`task_info`) allocation per
//! task. The `SYNCHED` experiment in the paper shows what recycling buys
//! (allocations drop, copies remain). This module generalizes that idiom
//! into a reusable primitive: a bounded LIFO free list each worker owns
//! privately, so `take`/`put` are unsynchronized.
//!
//! Two pools ride on this type in [`engine`](crate::engine):
//!
//! * a **workspace arena** (`Pool<P::State>`) recycling taskprivate
//!   buffers for every mode that copies (all but the faithful `Cilk`
//!   baseline, which must keep allocating to reproduce the paper's
//!   numbers);
//! * a **frame free list** (`Pool<Arc<Frame<P>>>`) recycling task frames
//!   whose `Arc` has become unique again after a synchronous completion.
//!
//! The bound keeps a worker that momentarily held a huge subtree from
//! pinning its peak footprint forever; overflow simply drops the object.

/// A bounded LIFO free list owned by a single worker.
///
/// Not a synchronized structure: wrap it per worker, not in `Shared`.
///
/// # Examples
///
/// ```
/// use adaptivetc_runtime::pool::Pool;
///
/// let mut pool: Pool<Vec<u8>> = Pool::new(2);
/// assert!(pool.take().is_none());       // empty pool allocates nothing
/// assert!(pool.put(vec![1]));           // recycled
/// assert!(pool.put(vec![2]));           // recycled (at capacity)
/// assert!(!pool.put(vec![3]));          // full: dropped, not stored
/// assert_eq!(pool.take(), Some(vec![2])); // LIFO: hottest buffer first
/// assert_eq!(pool.len(), 1);
/// ```
pub struct Pool<T> {
    slots: Vec<T>,
    cap: usize,
}

impl<T> Pool<T> {
    /// An empty pool that retains at most `cap` objects.
    pub fn new(cap: usize) -> Self {
        Pool {
            slots: Vec::new(),
            cap,
        }
    }

    /// Take the most recently returned object, if any.
    pub fn take(&mut self) -> Option<T> {
        self.slots.pop()
    }

    /// Return an object to the pool.
    ///
    /// Returns `false` (and drops the object) when the pool is already at
    /// capacity.
    pub fn put(&mut self, item: T) -> bool {
        if self.slots.len() < self.cap {
            self.slots.push(item);
            true
        } else {
            false
        }
    }

    /// Objects currently pooled.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the pool holds no objects.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// The retention bound this pool was created with.
    pub fn capacity(&self) -> usize {
        self.cap
    }
}

impl<T> std::fmt::Debug for Pool<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pool")
            .field("len", &self.slots.len())
            .field("cap", &self.cap)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifo_order() {
        let mut p = Pool::new(8);
        for i in 0..5 {
            assert!(p.put(i));
        }
        for i in (0..5).rev() {
            assert_eq!(p.take(), Some(i));
        }
        assert_eq!(p.take(), None);
    }

    #[test]
    fn bound_is_enforced() {
        let mut p = Pool::new(3);
        assert!(p.put(1) && p.put(2) && p.put(3));
        assert!(!p.put(4));
        assert_eq!(p.len(), 3);
        assert_eq!(p.capacity(), 3);
    }

    #[test]
    fn zero_capacity_pools_nothing() {
        let mut p = Pool::new(0);
        assert!(!p.put(1));
        assert!(p.is_empty());
        assert_eq!(p.take(), None);
    }

    #[test]
    fn drops_overflow_immediately() {
        use std::rc::Rc;
        let token = Rc::new(());
        let mut p = Pool::new(1);
        assert!(p.put(Rc::clone(&token)));
        assert!(!p.put(Rc::clone(&token)));
        assert_eq!(Rc::strong_count(&token), 2); // overflow copy was dropped
        drop(p);
        assert_eq!(Rc::strong_count(&token), 1);
    }
}
