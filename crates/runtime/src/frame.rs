//! Task frames and the asynchronous result-delivery chain.
//!
//! A [`Frame`] is the runtime representation of a *task*: the continuation of
//! a node whose children are being spawned. It corresponds to the
//! `task_info` structure the AdaptiveTC compiler allocates at the entry of a
//! fast version (saved program counter = `next`, saved live variables =
//! `state` + `acc`).
//!
//! Results flow bottom-up: every spawned child eventually delivers its
//! subtree result into its parent frame. The frame completes when its
//! continuation has finished *and* all children have delivered; completion
//! delivers the frame's own accumulated result one level up, cascading until
//! a root/waiter [`OutCell`] is reached. Suspension at a `sync` is implicit:
//! the continuation finishes with children outstanding, the worker walks
//! away, and the last delivering child performs the completion (the paper's
//! Terminate rule (3)).

use crate::sync::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use crate::sync::{Condvar, Mutex};
use adaptivetc_core::{Problem, Reduce};
use std::sync::Arc;
use std::time::Duration;

/// A one-shot result mailbox with blocking wait.
///
/// Used for the root task's final result and for the special task's
/// `sync_specialtask` wait.
#[derive(Debug)]
pub(crate) struct OutCell<O> {
    slot: Mutex<Option<O>>,
    cv: Condvar,
    done: AtomicBool,
}

impl<O: Send> OutCell<O> {
    pub(crate) fn new() -> Arc<Self> {
        Arc::new(OutCell {
            slot: Mutex::new(None),
            cv: Condvar::new(),
            done: AtomicBool::new(false),
        })
    }

    pub(crate) fn deliver(&self, out: O) {
        let mut g = self.slot.lock();
        debug_assert!(g.is_none(), "OutCell delivered twice");
        *g = Some(out);
        self.done.store(true, Ordering::Release);
        self.cv.notify_all();
    }

    /// Non-blocking readiness check (workers poll this to terminate).
    pub(crate) fn is_done(&self) -> bool {
        self.done.load(Ordering::Acquire)
    }

    /// Block until the value arrives.
    pub(crate) fn wait(&self) -> O {
        let mut g = self.slot.lock();
        while g.is_none() {
            self.cv.wait(&mut g);
        }
        g.take().expect("guarded by loop")
    }

    /// Block for at most `timeout`; `Some` if the value arrived. Used by
    /// waiters that must keep servicing copy-on-steal workspace requests
    /// while blocked (see `engine::special_section`).
    pub(crate) fn wait_timeout(&self, timeout: Duration) -> Option<O> {
        let mut g = self.slot.lock();
        if g.is_none() {
            let _ = self.cv.wait_for(&mut g, timeout);
        }
        g.take()
    }
}

/// Where a frame delivers its completed result.
pub(crate) enum Parent<P: Problem> {
    /// A root or special-task waiter mailbox.
    Cell(Arc<OutCell<P::Out>>),
    /// An enclosing frame.
    Frame(Arc<Frame<P>>),
}

impl<P: Problem> Clone for Parent<P> {
    fn clone(&self) -> Self {
        match self {
            Parent::Cell(c) => Parent::Cell(Arc::clone(c)),
            Parent::Frame(f) => Parent::Frame(Arc::clone(f)),
        }
    }
}

/// The mutable core of a frame, guarded by the frame lock.
pub(crate) struct Inner<P: Problem> {
    /// The node's taskprivate workspace (the *parent's* copy; children get
    /// clones). `None` for special tasks, which never spawn from their own
    /// workspace — their children are cloned from the enclosing fake
    /// task's in-place workspace — and for copy-on-steal frames, which
    /// borrow the owner's in-place workspace until a thief requests a
    /// materialised clone (deposited here, published via `ws_ready`).
    pub state: Option<P::State>,
    /// Choices at this node, in order.
    pub choices: Vec<P::Choice>,
    /// Index of the next choice to spawn (the saved program counter).
    pub next: usize,
    /// Partial reduction of delivered child results.
    pub acc: P::Out,
    /// Children spawned but not yet delivered, plus 1 for the running
    /// continuation itself.
    pub outstanding: u32,
}

/// A heap-allocated task continuation.
pub(crate) struct Frame<P: Problem> {
    pub parent: Parent<P>,
    pub inner: Mutex<Inner<P>>,
    /// Task depth (the paper's cut-off counter; reset to 0 under a special
    /// task).
    pub depth: u32,
    /// Logical depth of the node in the problem tree (always root-relative;
    /// passed to `Problem::expand`).
    pub logical: u32,
    /// Copy-on-steal handshake. `owner` is the worker whose in-place
    /// workspace this frame borrows; a thief that steals the frame before a
    /// workspace was materialised sets `ws_requested` and waits for the
    /// owner to deposit a clone and publish it through `ws_ready`. The
    /// owner also deposits unconditionally when a pop conflict reveals the
    /// frame was stolen, so a waiting thief always makes progress.
    pub owner: AtomicUsize,
    pub ws_requested: AtomicBool,
    pub ws_ready: AtomicBool,
    /// Generation stamp, bumped every time a pooled frame shell is reused.
    /// A thief snapshots it when it begins the workspace handshake; the
    /// stamp changing under the handshake would mean the frame was recycled
    /// while a steal was in flight (checked in debug builds).
    pub generation: AtomicU32,
    /// Claim epoch for multiplicity deque backends (`fence-free`): each
    /// deque entry snapshots this counter at push time, and every
    /// extraction must CAS it from its snapshot to snapshot+1 before the
    /// frame may run — duplicates of the same entry lose the CAS and are
    /// discarded (`RunStats::dup_extractions`). Strictly monotone over
    /// the *shell's* whole lifetime, pooled reuse included: never reset,
    /// so a stale entry from a previous incarnation can never claim a
    /// recycled shell (ABA guard). Exactly-once backends never touch it.
    pub claim_seq: AtomicU64,
}

impl<P: Problem> Frame<P> {
    /// Create a frame for a node whose continuation is about to run.
    pub(crate) fn new(
        parent: Parent<P>,
        state: Option<P::State>,
        choices: Vec<P::Choice>,
        logical: u32,
        depth: u32,
    ) -> Arc<Self> {
        Arc::new(Frame {
            parent,
            inner: Mutex::new(Inner {
                state,
                choices,
                next: 0,
                acc: P::Out::identity(),
                outstanding: 1, // the continuation itself
            }),
            depth,
            logical,
            owner: AtomicUsize::new(usize::MAX),
            ws_requested: AtomicBool::new(false),
            ws_ready: AtomicBool::new(false),
            generation: AtomicU32::new(0),
            claim_seq: AtomicU64::new(0),
        })
    }

    /// Owner side of the copy-on-steal handshake: store a materialised
    /// workspace clone and publish it. Idempotent — a deposit racing with a
    /// pop-conflict backstop deposit keeps the first clone.
    pub(crate) fn deposit_ws(&self, state: P::State) {
        let mut g = self.inner.lock();
        if g.state.is_none() {
            g.state = Some(state);
            drop(g);
            self.ws_ready.store(true, Ordering::Release);
        }
        self.ws_requested.store(false, Ordering::Release);
    }

    /// Thief side: take the deposited workspace if the owner published one.
    /// Consuming the deposit lowers `ws_ready` again, keeping the invariant
    /// `ws_ready ⟺ an untaken deposit is present` — the owner's pop-conflict
    /// backstop relies on it when the same frame shell is stolen again
    /// later (a thief that materialised a frame re-pushes it, and *its*
    /// thief starts a fresh handshake).
    pub(crate) fn try_take_ws(&self) -> Option<P::State> {
        if !self.ws_ready.swap(false, Ordering::AcqRel) {
            return None;
        }
        self.ws_requested.store(false, Ordering::Release);
        self.inner.lock().state.take()
    }

    /// Merge a child's result; returns the frame's completed result if this
    /// was the last outstanding obligation.
    fn absorb(&self, out: P::Out) -> Option<P::Out> {
        let mut g = self.inner.lock();
        g.acc.combine(out);
        g.outstanding -= 1;
        if g.outstanding == 0 {
            Some(std::mem::replace(&mut g.acc, P::Out::identity()))
        } else {
            None
        }
    }

    /// The continuation finished its loop (reached the sync point); returns
    /// the completed result if no children are outstanding, otherwise the
    /// frame is left suspended for the last child to complete.
    pub(crate) fn finish_continuation(&self) -> Option<P::Out> {
        let mut g = self.inner.lock();
        g.outstanding -= 1;
        if g.outstanding == 0 {
            Some(std::mem::replace(&mut g.acc, P::Out::identity()))
        } else {
            None
        }
    }
}

/// Deliver `out` produced by a child of `parent`, cascading completions
/// upward. Iterative to keep completion chains off the call stack.
pub(crate) fn deliver<P: Problem>(parent: &Parent<P>, out: P::Out) {
    let mut current = parent.clone();
    let mut value = out;
    loop {
        match current {
            Parent::Cell(cell) => {
                cell.deliver(value);
                return;
            }
            Parent::Frame(f) => match f.absorb(value) {
                None => return,
                Some(completed) => {
                    value = completed;
                    current = f.parent.clone();
                }
            },
        }
    }
}

/// As [`deliver`], but for a continuation that has just finished its loop.
#[cfg(test)]
pub(crate) fn finish_and_deliver<P: Problem>(frame: &Arc<Frame<P>>) {
    if let Some(completed) = frame.finish_continuation() {
        deliver(&frame.parent, completed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adaptivetc_core::Expansion;

    struct Nop;
    impl Problem for Nop {
        type State = ();
        type Choice = u8;
        type Out = u64;
        fn root(&self) {}
        fn expand(&self, _: &(), _: u32) -> Expansion<u8, u64> {
            Expansion::Leaf(0)
        }
        fn apply(&self, _: &mut (), _: u8) {}
        fn undo(&self, _: &mut (), _: u8) {}
    }

    fn leaf_frame(parent: Parent<Nop>, children: u32) -> Arc<Frame<Nop>> {
        let f = Frame::new(parent, Some(()), vec![0; children as usize], 0, 0);
        f.inner.lock().outstanding += children; // pretend children were spawned
        f
    }

    #[test]
    fn out_cell_roundtrip() {
        let cell: Arc<OutCell<u64>> = OutCell::new();
        assert!(!cell.is_done());
        cell.deliver(42);
        assert!(cell.is_done());
        assert_eq!(cell.wait(), 42);
    }

    #[test]
    fn frame_completes_after_children_and_continuation() {
        let cell = OutCell::new();
        let f = leaf_frame(Parent::Cell(Arc::clone(&cell)), 2);
        deliver(&Parent::Frame(Arc::clone(&f)), 10);
        assert!(!cell.is_done());
        finish_and_deliver(&f); // continuation done, one child pending
        assert!(!cell.is_done());
        deliver(&Parent::Frame(Arc::clone(&f)), 5); // last child completes it
        assert_eq!(cell.wait(), 15);
    }

    #[test]
    fn completion_cascades_through_nested_frames() {
        let cell = OutCell::new();
        let top = leaf_frame(Parent::Cell(Arc::clone(&cell)), 1);
        let mid = leaf_frame(Parent::Frame(Arc::clone(&top)), 1);
        finish_and_deliver(&top);
        finish_and_deliver(&mid);
        deliver(&Parent::Frame(mid), 7); // completes mid, cascades into top
        assert_eq!(cell.wait(), 7);
    }

    #[test]
    fn continuation_finishing_last_completes() {
        let cell = OutCell::new();
        let f = leaf_frame(Parent::Cell(Arc::clone(&cell)), 1);
        deliver(&Parent::Frame(Arc::clone(&f)), 3);
        finish_and_deliver(&f);
        assert_eq!(cell.wait(), 3);
    }

    #[test]
    fn blocking_wait_wakes_from_another_thread() {
        let cell: Arc<OutCell<u64>> = OutCell::new();
        let c2 = Arc::clone(&cell);
        std::thread::scope(|s| {
            s.spawn(move || {
                std::thread::sleep(std::time::Duration::from_millis(10));
                c2.deliver(9);
            });
            assert_eq!(cell.wait(), 9);
        });
    }
}
