//! Feature-gated tracing plumbing for the engine.
//!
//! With the `trace` cargo feature **on**, these aliases carry an optional
//! `adaptivetc-trace` collector / per-worker handle through the engine;
//! with the feature **off** they collapse to `()` and every `tev!` call
//! site expands to nothing, so the hot path is byte-identical to an
//! untraced build. All instrumentation goes through [`tev!`] — never call
//! trace APIs directly from the engine, or the feature-off build breaks.

#[cfg(feature = "trace")]
pub(crate) type TracerRef<'a> = Option<&'a adaptivetc_trace::TraceCollector>;
#[cfg(not(feature = "trace"))]
pub(crate) type TracerRef<'a> = ();

#[cfg(feature = "trace")]
pub(crate) type WorkerTracer<'a> = Option<adaptivetc_trace::WorkerHandle<'a>>;
#[cfg(not(feature = "trace"))]
pub(crate) type WorkerTracer<'a> = ();

/// The per-worker recording endpoint for worker `id`, or the unit value
/// when tracing is compiled out.
#[cfg(feature = "trace")]
pub(crate) fn worker_tracer(tracer: TracerRef<'_>, id: usize) -> WorkerTracer<'_> {
    tracer.map(|c| c.handle(id))
}
#[cfg(not(feature = "trace"))]
pub(crate) fn worker_tracer(_tracer: TracerRef<'_>, _id: usize) -> WorkerTracer<'_> {}

/// Emit a trace event from a [`Worker`](crate::engine):
/// `tev!(self, <Category>, <expr>)` where `<Category>` is a bare
/// `adaptivetc_trace::Category` variant name and `<expr>` evaluates to an
/// `adaptivetc_trace::EventKind` (the engine imports it as `Ev`).
///
/// The category is named statically at the call site so the filter check
/// (`WorkerHandle::enabled`, one relaxed load against the run's category
/// mask) happens **before** the event expression is evaluated — a masked
/// category costs the load and a predicted branch, nothing else. Expands
/// to nothing when the `trace` feature is off — the expression tokens are
/// removed before name resolution, so they may freely reference
/// trace-only types.
macro_rules! tev {
    ($worker:expr, $cat:ident, $kind:expr) => {
        #[cfg(feature = "trace")]
        {
            if let Some(h) = $worker.tr.as_ref() {
                if h.enabled(adaptivetc_trace::Category::$cat) {
                    h.emit_in(adaptivetc_trace::Category::$cat, $kind);
                }
            }
        }
    };
}
pub(crate) use tev;
