//! A Tascell-style backtracking load-balancing scheduler (Hiraishi et al.,
//! PPoPP 2009), the paper's second comparator.
//!
//! Tascell keeps no task deque. Each worker runs one task as plain
//! sequential recursion over its execution stack (here: an explicit shadow
//! stack), **polling** for steal *requests* at every node. When a request
//! arrives, the victim *temporarily backtracks*: it undoes the applied
//! choices down to the **shallowest** frame that still has an untried
//! choice, takes that choice, copies the workspace once, re-applies the
//! undone choices, and ships the packaged subtree to the requester.
//!
//! The crucial limitation the paper exploits: a Tascell task **cannot be
//! suspended** at a synchronization point (its state lives on the execution
//! stack), so at the end of a task the victim blocks until every subtree it
//! gave away has delivered its result — the `wait_children` overhead of
//! Figures 6 and 7.

use crate::frame::OutCell;
use crate::sync::Mutex;
use crate::sync::{AtomicBool, Ordering};
use adaptivetc_core::{Config, Expansion, Problem, Reduce, RunReport, RunStats, XorShift64};
use std::sync::mpsc::{channel, sync_channel, Receiver, Sender, SyncSender};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A packaged half-range of sibling subtrees handed to a requester.
///
/// Tascell's parallel-for split: the victim keeps the first half of the
/// untried choices at the split frame and hands the second half away in one
/// task (this is what makes it collapse on right-heavy trees — the heavy
/// late siblings leave early and the victim ends up waiting on them).
struct Task<P: Problem> {
    /// Workspace at the split frame's node (no choice applied).
    state: P::State,
    /// Logical depth of the split frame's children.
    child_logical: u32,
    /// The handed-away choices, in order.
    choices: Vec<P::Choice>,
    /// Where the range's total result must be sent (the victim waits on the
    /// other end).
    result: Sender<P::Out>,
}

/// One outstanding steal request: the requester's id and where to send the
/// response.
type Responder<P> = (usize, SyncSender<Option<Task<P>>>);

struct RequestBox<P: Problem> {
    /// Polled by the victim at every node (cheap).
    flag: AtomicBool,
    slot: Mutex<Option<Responder<P>>>,
}

struct Shared<'p, P: Problem> {
    problem: &'p P,
    boxes: Vec<RequestBox<P>>,
    root: Arc<OutCell<P::Out>>,
    timing: bool,
}

/// One level of the victim's shadow stack.
struct ShadowFrame<C> {
    choices: Vec<C>,
    next: usize,
    /// The choice currently applied on the path below this frame.
    applied: Option<C>,
}

/// Channels and counter for the subtrees the current task handed away.
struct TaskChildren<O> {
    rx: Receiver<O>,
    tx: Sender<O>,
    handed: u32,
}

struct Worker<'s, 'p, P: Problem> {
    shared: &'s Shared<'p, P>,
    id: usize,
    stats: RunStats,
    rng: XorShift64,
    stack: Vec<ShadowFrame<P::Choice>>,
    /// Present while the worker is running a task.
    task_children: Option<TaskChildren<P::Out>>,
}

/// Per-op timing probe. Compiled down to a constant `None` without the
/// `trace` feature so untraced builds carry zero clock reads on the hot
/// path even when `Config::timing` is (uselessly) set.
#[cfg(feature = "trace")]
#[inline]
fn now_if(enabled: bool) -> Option<Instant> {
    enabled.then(Instant::now)
}

#[cfg(not(feature = "trace"))]
#[inline]
fn now_if(_enabled: bool) -> Option<Instant> {
    None
}

#[inline]
fn lap(field: &mut u64, start: Option<Instant>) {
    if let Some(t0) = start {
        *field += t0.elapsed().as_nanos() as u64;
    }
}

impl<'s, 'p, P: Problem> Worker<'s, 'p, P> {
    fn problem(&self) -> &'p P {
        self.shared.problem
    }

    /// Run the root task to completion, including the terminal wait for
    /// children given away, and return its total result.
    fn run_root_task(&mut self, mut state: P::State, logical: u32) -> P::Out {
        let (tx, rx) = channel::<P::Out>();
        self.task_children = Some(TaskChildren { rx, tx, handed: 0 });
        debug_assert!(self.stack.is_empty());
        let out = self.node(&mut state, logical);
        self.await_children(out)
    }

    /// Run a handed-over sibling range to completion.
    fn run_range_task(&mut self, task: Task<P>) -> P::Out {
        let Task {
            mut state,
            child_logical,
            choices,
            result,
        } = task;
        let (tx, rx) = channel::<P::Out>();
        self.task_children = Some(TaskChildren { rx, tx, handed: 0 });
        debug_assert!(self.stack.is_empty());
        let out = self.traverse_set(&mut state, child_logical, choices);
        let out = self.await_children(out);
        let _ = result.send(out);
        P::Out::identity()
    }

    /// Terminal sync: wait (no stealing possible!) for given-away subtrees.
    fn await_children(&mut self, mut out: P::Out) -> P::Out {
        let TaskChildren { rx, tx, handed } =
            self.task_children.take().expect("installed by run_*_task");
        drop(tx);
        if handed > 0 {
            let t0 = now_if(self.shared.timing);
            for _ in 0..handed {
                out.combine(rx.recv().expect("child task panicked or leaked its sender"));
            }
            lap(&mut self.stats.time.wait_children_ns, t0);
        }
        out
    }

    /// Execute a set of sibling subtrees under a stealable shadow frame.
    fn traverse_set(
        &mut self,
        state: &mut P::State,
        child_logical: u32,
        choices: Vec<P::Choice>,
    ) -> P::Out {
        let mut acc = P::Out::identity();
        self.stack.push(ShadowFrame {
            choices,
            next: 0,
            applied: None,
        });
        let level = self.stack.len() - 1;
        loop {
            let c = {
                let f = &mut self.stack[level];
                if f.next >= f.choices.len() {
                    break;
                }
                let c = f.choices[f.next];
                f.next += 1;
                f.applied = Some(c);
                c
            };
            self.problem().apply(state, c);
            acc.combine(self.node(state, child_logical));
            self.problem().undo(state, c);
            self.stack[level].applied = None;
        }
        self.stack.pop();
        acc
    }

    /// Sequential node execution with per-node request polling.
    fn node(&mut self, state: &mut P::State, logical: u32) -> P::Out {
        self.stats.nodes += 1;
        self.stats.polls += 1;
        if self.shared.boxes[self.id].flag.load(Ordering::Relaxed) {
            self.respond(state, logical);
        }
        match self.problem().expand(state, logical) {
            Expansion::Leaf(out) => out,
            Expansion::Children(choices) => {
                self.stats.fake_tasks += 1;
                self.traverse_set(state, logical + 1, choices)
            }
        }
    }

    /// Answer a pending steal request by backtracking to the shallowest
    /// frame with an untried choice.
    fn respond(&mut self, state: &mut P::State, _logical: u32) {
        let Some((_, responder)) = self.shared.boxes[self.id].slot.lock().take() else {
            // Raced with a timed-out requester that retracted its request;
            // clear the flag.
            self.shared.boxes[self.id]
                .flag
                .store(false, Ordering::Relaxed);
            return;
        };
        self.shared.boxes[self.id]
            .flag
            .store(false, Ordering::Relaxed);

        // Shallowest splittable frame.
        let split = self.stack.iter().position(|f| f.next < f.choices.len());
        let Some(level) = split else {
            let _ = responder.send(None);
            return;
        };

        // Temporary backtracking: undo the applied path from the deepest
        // frame down to (and including) `level`, snapshot the workspace at
        // the split frame's node, hand away the second half of its untried
        // choices, then re-apply the path.
        let path: Vec<P::Choice> = self.stack[level..]
            .iter()
            .filter_map(|f| f.applied)
            .collect();
        for &c in path.iter().rev() {
            self.problem().undo(state, c);
        }
        // Frame at `level` sits `path.len()` applied choices above the
        // current node (at `_logical`); its children are one deeper.
        let child_logical = _logical - path.len() as u32 + 1;
        let handed_choices: Vec<P::Choice> = {
            let f = &mut self.stack[level];
            let remaining = f.choices.len() - f.next;
            let give = (remaining / 2).max(1);
            f.choices.drain(f.choices.len() - give..).collect()
        };
        let t0 = now_if(self.shared.timing);
        let task_state = state.clone();
        self.stats.copies += 1;
        self.stats.allocations += 1;
        self.stats.copy_bytes += self.problem().state_bytes(state) as u64;
        lap(&mut self.stats.time.copy_ns, t0);
        for &c in path.iter() {
            self.problem().apply(state, c);
        }

        let result_tx = self
            .task_children
            .as_ref()
            .expect("responding only while running a task")
            .tx
            .clone();
        match responder.send(Some(Task {
            state: task_state,
            child_logical,
            choices: handed_choices,
            result: result_tx,
        })) {
            Ok(()) => {
                self.task_children.as_mut().expect("installed").handed += 1;
                self.stats.tasks_created += 1;
                self.stats.steal_responses += 1;
            }
            Err(_) => {
                // The requester timed out and dropped its receiver. The
                // handed choices were drained with the Task and dropped with
                // it; this arm is unreachable under the retract-or-block
                // protocol, which guarantees the receiver stays alive once
                // the victim holds the responder.
                unreachable!("requester receivers outlive taken responders");
            }
        }
    }

    /// Idle loop: request tasks from random victims.
    fn steal_loop(&mut self) {
        let n = self.shared.boxes.len();
        if n == 1 {
            return;
        }
        let mut idle_since = now_if(self.shared.timing);
        while !self.shared.root.is_done() {
            // Serve (reject) requests aimed at us while we are idle, so
            // requesters don't wait out their timeout on an empty worker.
            if self.shared.boxes[self.id].flag.load(Ordering::Relaxed) {
                if let Some((_, r)) = self.shared.boxes[self.id].slot.lock().take() {
                    let _ = r.send(None);
                }
                self.shared.boxes[self.id]
                    .flag
                    .store(false, Ordering::Relaxed);
            }

            let victim = {
                let mut v = self.rng.below_usize(n - 1);
                if v >= self.id {
                    v += 1;
                }
                v
            };
            let vbox = &self.shared.boxes[victim];
            if vbox
                .flag
                .compare_exchange(false, true, Ordering::Relaxed, Ordering::Relaxed)
                .is_err()
            {
                // Someone else is already requesting from this victim.
                self.stats.steals_failed += 1;
                std::thread::yield_now();
                continue;
            }
            let (tx, rx) = sync_channel::<Option<Task<P>>>(1);
            *vbox.slot.lock() = Some((self.id, tx));
            self.stats.steal_requests += 1;
            let response = match rx.recv_timeout(Duration::from_micros(200)) {
                Ok(r) => Some(r),
                Err(_) => {
                    // Timed out. If our request is still in the slot the
                    // victim has not seen it: retract it and move on. If the
                    // victim already took it, a response is imminent — block
                    // briefly for it so the handed-out task is never lost.
                    let mut slot = vbox.slot.lock();
                    let still_ours = matches!(*slot, Some((id, _)) if id == self.id);
                    if still_ours {
                        *slot = None;
                        vbox.flag.store(false, Ordering::Relaxed);
                        drop(slot);
                        None
                    } else {
                        drop(slot);
                        rx.recv().ok()
                    }
                }
            };
            match response {
                Some(Some(task)) => {
                    self.stats.steals_ok += 1;
                    lap(&mut self.stats.time.steal_wait_ns, idle_since.take());
                    self.run_range_task(task);
                    idle_since = now_if(self.shared.timing);
                }
                Some(None) | None => {
                    self.stats.steals_failed += 1;
                }
            }
            std::thread::yield_now();
        }
        lap(&mut self.stats.time.steal_wait_ns, idle_since.take());
    }
}

/// Run `problem` under the Tascell policy.
///
/// # Errors
///
/// Returns [`adaptivetc_core::SchedulerError::Config`] for invalid
/// configurations and `WorkerPanicked` if a worker thread panics.
pub fn run<P: Problem>(
    problem: &P,
    cfg: &Config,
) -> Result<(P::Out, RunReport), adaptivetc_core::SchedulerError> {
    cfg.validate()?;
    let threads = cfg.threads;
    let shared = Shared {
        problem,
        boxes: (0..threads)
            .map(|_| RequestBox {
                flag: AtomicBool::new(false),
                slot: Mutex::new(None),
            })
            .collect(),
        root: OutCell::new(),
        timing: cfg.timing,
    };
    let mut seeder = XorShift64::new(cfg.seed);
    let seeds: Vec<XorShift64> = (0..threads).map(|_| seeder.split()).collect();

    let start = Instant::now();
    let per_worker = std::thread::scope(|s| {
        let mut handles = Vec::with_capacity(threads);
        for (id, rng) in seeds.into_iter().enumerate() {
            let shared = &shared;
            handles.push(s.spawn(move || {
                let mut w = Worker {
                    shared,
                    id,
                    stats: RunStats::default(),
                    rng,
                    stack: Vec::new(),
                    task_children: None,
                };
                if id == 0 {
                    let root_state = shared.problem.root();
                    w.stats.tasks_created += 1; // the root task
                    let out = w.run_root_task(root_state, 0);
                    shared.root.deliver(out);
                }
                w.steal_loop();
                w.stats
            }));
        }
        handles
            .into_iter()
            .enumerate()
            .map(|(id, h)| {
                h.join()
                    .map_err(|_| adaptivetc_core::SchedulerError::WorkerPanicked(id))
            })
            .collect::<Result<Vec<_>, _>>()
    })?;
    let wall_ns = start.elapsed().as_nanos() as u64;
    let out = shared.root.wait();
    Ok((out, RunReport::from_workers(per_worker, wall_ns)))
}
