//! Convenience data-parallel helpers built on the schedulers.
//!
//! The paper's machinery is expressed as a search-tree [`Problem`]; most
//! day-to-day parallelism is "map this function over a slice and reduce".
//! [`map_reduce`] bridges the two: it wraps a slice in a divide-and-conquer
//! range problem (split-in-half choices, like the paper's `Comp`) and runs
//! it under any scheduler. The [`Range`] workspace is two words, so these
//! runs are where `Config::workspace` matters least — copy-on-steal still
//! elides the clone per spawn (visible in `workspace_copies_saved`), but
//! the paper-scale win needs a workload with a real taskprivate payload.

use crate::Scheduler;
use adaptivetc_core::{Config, Expansion, Problem, Reduce, RunReport, SchedulerError};

/// A half-split over an index range; carries the replaced bound so it can
/// be undone exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RangeSplit {
    hi_half: bool,
    saved: usize,
}

/// The range workspace (no taskprivate payload).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Range {
    lo: usize,
    hi: usize,
}

struct MapReduce<'a, T, O, F> {
    items: &'a [T],
    f: F,
    grain: usize,
    _out: std::marker::PhantomData<fn() -> O>,
}

impl<T, O, F> Problem for MapReduce<'_, T, O, F>
where
    T: Sync,
    O: Reduce,
    F: Fn(&T) -> O + Send + Sync,
{
    type State = Range;
    type Choice = RangeSplit;
    type Out = O;

    fn root(&self) -> Range {
        Range {
            lo: 0,
            hi: self.items.len(),
        }
    }

    fn expand(&self, r: &Range, _depth: u32) -> Expansion<RangeSplit, O> {
        if r.hi - r.lo <= self.grain {
            let mut acc = O::identity();
            for item in &self.items[r.lo..r.hi] {
                acc.combine((self.f)(item));
            }
            return Expansion::Leaf(acc);
        }
        Expansion::Children(vec![
            RangeSplit {
                hi_half: false,
                saved: r.hi,
            },
            RangeSplit {
                hi_half: true,
                saved: r.lo,
            },
        ])
    }

    fn apply(&self, r: &mut Range, c: RangeSplit) {
        let mid = r.lo + (r.hi - r.lo) / 2;
        if c.hi_half {
            r.lo = mid;
        } else {
            r.hi = mid;
        }
    }

    fn undo(&self, r: &mut Range, c: RangeSplit) {
        if c.hi_half {
            r.lo = c.saved;
        } else {
            r.hi = c.saved;
        }
    }

    fn state_bytes(&self, _: &Range) -> usize {
        0
    }
}

/// Map `f` over `items` and reduce the results under a scheduler.
///
/// `grain` items are processed per leaf task (pick it so a leaf does at
/// least a few microseconds of work).
///
/// # Errors
///
/// Propagates [`SchedulerError`] from the scheduler.
///
/// # Examples
///
/// ```
/// use adaptivetc_core::Config;
/// use adaptivetc_runtime::{par, Scheduler};
///
/// # fn main() -> Result<(), adaptivetc_core::SchedulerError> {
/// let xs: Vec<u64> = (1..=10_000).collect();
/// let (sum, _) = par::map_reduce(
///     Scheduler::AdaptiveTc,
///     &Config::new(2),
///     &xs,
///     64,
///     |&x| x * x,
/// )?;
/// assert_eq!(sum, xs.iter().map(|&x| x * x).sum::<u64>());
/// # Ok(())
/// # }
/// ```
pub fn map_reduce<T, O, F>(
    scheduler: Scheduler,
    cfg: &Config,
    items: &[T],
    grain: usize,
    f: F,
) -> Result<(O, RunReport), SchedulerError>
where
    T: Sync,
    O: Reduce,
    F: Fn(&T) -> O + Send + Sync,
{
    let problem = MapReduce {
        items,
        f,
        grain: grain.max(1),
        _out: std::marker::PhantomData,
    };
    scheduler.run(&problem, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sums_match_across_schedulers() {
        let xs: Vec<u64> = (0..5_000).collect();
        let want: u64 = xs.iter().sum();
        for s in [
            Scheduler::Serial,
            Scheduler::Cilk,
            Scheduler::Tascell,
            Scheduler::AdaptiveTc,
        ] {
            let (got, _) = map_reduce(s, &Config::new(2), &xs, 32, |&x| x).expect("runs");
            assert_eq!(got, want, "{s}");
        }
    }

    #[test]
    fn empty_slice_reduces_to_identity() {
        let xs: Vec<u64> = Vec::new();
        let (got, _) =
            map_reduce(Scheduler::AdaptiveTc, &Config::new(1), &xs, 8, |&x| x).expect("runs");
        assert_eq!(got, 0);
    }

    #[test]
    fn grain_one_handles_single_item() {
        let xs = vec![41u64];
        let (got, _) =
            map_reduce(Scheduler::Cilk, &Config::new(2), &xs, 1, |&x| x + 1).expect("runs");
        assert_eq!(got, 42);
    }

    #[test]
    fn pair_reduction_collects_min_and_count() {
        use adaptivetc_core::reduce::Min;
        let xs: Vec<u64> = (10..100).rev().collect();
        let (got, _): ((Min<u64>, u64), _) =
            map_reduce(Scheduler::AdaptiveTc, &Config::new(2), &xs, 8, |&x| {
                (Min(Some(x)), 1u64)
            })
            .expect("runs");
        assert_eq!(got.0 .0, Some(10));
        assert_eq!(got.1, 90);
    }
}
