//! A persistent job server: one long-lived worker pool serving a *stream*
//! of scheduler runs.
//!
//! [`Scheduler::run`](crate::Scheduler::run) spawns and joins a whole
//! thread pool per root task, which caps the reproduction at one benchmark
//! at a time. [`JobServer`] amortises that: the pool is spawned once,
//! workers park when idle, and submissions flow through a bounded MPMC
//! priority queue (see [`crate::submit`] for the model-checked protocol).
//!
//! # Job lifecycle
//!
//! ```text
//! submit() ──► Queued ──claim──► Running ──finish──► Completed
//!                │                  │                      │
//!              cancel()          cancel()             (exactly one
//!                ▼                  ▼                  terminal state)
//!            Cancelled      token raised; engine
//!         (never executed)  prunes at poll points ──► Cancelled
//! ```
//!
//! The state machine lives in [`crate::submit::JobLifecycle`]; its
//! no-lost-submission / no-double-claim / single-terminal-state properties
//! are verified exhaustively by the `adaptivetc-check` suite.
//!
//! # Isolation and work sharing
//!
//! Each job owns a complete engine [`Shared`] region: its own root frame,
//! deques, `need_task` signals and per-slot `RunStats`. The "job id tag" on
//! deque entries and signals is therefore structural — an entry physically
//! cannot migrate across jobs because no other job's workers ever probe
//! these deques. By default a job runs entirely on the pool worker that
//! claimed it (lead at job slot 0), so N concurrent single-thread jobs
//! behave bit-identically to N solo runs. With
//! [`ServerConfig::work_sharing`] enabled, idle pool workers additionally
//! *join* running multi-slot jobs: they claim a free job slot, steal within
//! that job only, and abandon it again between tasks when new submissions
//! are queued. Every participant brackets its engine entry with
//! `JobBegin`/`JobEnd` trace markers so a server trace can be split back
//! into per-job run-epochs (`adaptivetc_trace::jobs`).

use crate::engine::{participate, DequeEntry, FfEntry, Mode, ProblemRef, Shared};
use crate::frame::Frame;
use crate::submit::{CancelOutcome, CancelToken, JobLifecycle, JobStatus, PrioQueue, Priority};
use crate::sync::{AtomicBool, AtomicU32, AtomicU64, Condvar, Mutex, Ordering};
use crate::trace::{worker_tracer, TracerRef};
use adaptivetc_core::{
    Config, ConfigError, DequeBackend, Problem, RunReport, RunStats, XorShift64,
};
use adaptivetc_deque::{ChaseLevDeque, FenceFreeDeque, PoolDeque, TheDeque, WsDeque};
use std::any::Any;
use std::sync::Arc;
use std::time::{Duration, Instant};

#[cfg(feature = "trace")]
use adaptivetc_trace::EventKind as Ev;

/// The pool-wide trace collector, shared by every worker thread. Collapses
/// to `()` when tracing is compiled out.
#[cfg(feature = "trace")]
type SharedCollector = Option<Arc<adaptivetc_trace::TraceCollector>>;
#[cfg(not(feature = "trace"))]
type SharedCollector = ();

/// Borrow a [`TracerRef`] out of a worker's collector clone.
#[cfg(feature = "trace")]
fn tracer_ref(c: &SharedCollector) -> TracerRef<'_> {
    c.as_deref()
}
#[cfg(not(feature = "trace"))]
fn tracer_ref(_c: &SharedCollector) -> TracerRef<'_> {}

/// Emit a job-epoch marker from pool worker `$worker`. Expands to nothing
/// when the `trace` feature is off (the tokens are removed before name
/// resolution, like `tev!`).
macro_rules! jmark {
    ($tracer:expr, $worker:expr, $kind:expr) => {
        #[cfg(feature = "trace")]
        {
            if let Some(c) = $tracer {
                c.handle($worker).emit($kind);
            }
        }
    };
}

// ---------------------------------------------------------------------------
// Configuration
// ---------------------------------------------------------------------------

/// Configuration for a [`JobServer`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Pool worker threads. Clamped to at least 1.
    pub workers: usize,
    /// Submission-queue capacity *per priority lane* (admission control:
    /// a full lane rejects with [`RejectReason::QueueFull`]). Clamped to
    /// at least 1.
    pub queue_capacity: usize,
    /// Allow idle pool workers to join running multi-slot jobs and steal
    /// within them. Off by default: strict job isolation.
    pub work_sharing: bool,
    /// Record a pool-wide event trace (requires the `trace` cargo
    /// feature; ignored without it). Drained by [`JobServer::shutdown`].
    pub trace: bool,
    /// Per-worker trace ring capacity when `trace` is set.
    pub trace_capacity: usize,
    /// Category bitmask for the pool trace (see
    /// `adaptivetc_trace::Category`); the job-bracket category is always
    /// kept on so traces stay splittable per job.
    pub trace_filter: u64,
    /// Record 1 in `n` events for the highest-frequency categories
    /// (default 16, the production flight-recorder rate; `1` = record
    /// everything; see `Config::trace_sample`).
    pub trace_sample: u32,
}

impl ServerConfig {
    /// A server with `workers` pool threads and defaults for the rest
    /// (queue capacity 64 per lane, no work sharing, no tracing).
    pub fn new(workers: usize) -> ServerConfig {
        ServerConfig {
            workers,
            queue_capacity: 64,
            work_sharing: false,
            trace: false,
            trace_capacity: 1 << 14,
            trace_filter: u64::MAX,
            trace_sample: 16,
        }
    }

    /// Builder-style setter for [`ServerConfig::queue_capacity`].
    pub fn queue_capacity(mut self, cap: usize) -> ServerConfig {
        self.queue_capacity = cap;
        self
    }

    /// Builder-style setter for [`ServerConfig::work_sharing`].
    pub fn work_sharing(mut self, on: bool) -> ServerConfig {
        self.work_sharing = on;
        self
    }

    /// Builder-style setter for [`ServerConfig::trace`].
    pub fn trace(mut self, on: bool) -> ServerConfig {
        self.trace = on;
        self
    }

    /// Builder-style setter for [`ServerConfig::trace_filter`].
    pub fn trace_filter(mut self, mask: u64) -> ServerConfig {
        self.trace_filter = mask;
        self
    }

    /// Builder-style setter for [`ServerConfig::trace_sample`].
    pub fn trace_sample(mut self, n: u32) -> ServerConfig {
        self.trace_sample = n;
        self
    }
}

// ---------------------------------------------------------------------------
// Submission results
// ---------------------------------------------------------------------------

/// Why a submission was rejected (the problem is handed back in
/// [`SubmitError`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RejectReason {
    /// The priority lane was full (admission control back-pressure).
    /// Retry later or shed load.
    QueueFull,
    /// The server is shutting down and no longer accepts jobs.
    ShuttingDown,
    /// The job's [`Config`] failed validation.
    Config(ConfigError),
}

impl std::fmt::Display for RejectReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RejectReason::QueueFull => f.write_str("submission queue full"),
            RejectReason::ShuttingDown => f.write_str("server shutting down"),
            RejectReason::Config(e) => write!(f, "invalid job config: {e}"),
        }
    }
}

/// A rejected submission: the reason plus the problem, returned so the
/// caller can retry without having cloned it.
pub struct SubmitError<P> {
    /// The problem instance, given back unchanged.
    pub problem: P,
    /// Why it was rejected.
    pub reason: RejectReason,
}

impl<P> std::fmt::Debug for SubmitError<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SubmitError")
            .field("reason", &self.reason)
            .finish_non_exhaustive()
    }
}

impl<P> std::fmt::Display for SubmitError<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job rejected: {}", self.reason)
    }
}

impl<P> std::error::Error for SubmitError<P> {}

// ---------------------------------------------------------------------------
// Job handle
// ---------------------------------------------------------------------------

/// How a job ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobOutcome<O> {
    /// The job ran to completion.
    Completed {
        /// The reduced result.
        out: O,
        /// Per-slot statistics, isolated to this job.
        report: RunReport,
    },
    /// The job was cancelled. `report` is `None` when the cancel landed
    /// before any worker claimed the job (it never executed), `Some` when
    /// the engine was pruned mid-flight (partial counters).
    Cancelled {
        /// Statistics up to the prune, if the job had started.
        report: Option<RunReport>,
    },
}

/// The client half of a submitted job.
struct JobShared<O> {
    id: u64,
    lifecycle: JobLifecycle,
    cancel: CancelToken,
    outcome: Mutex<Option<JobOutcome<O>>>,
    cv: Condvar,
    submitted: Instant,
    /// Submission-to-terminal latency, stored at publication (so `wait`
    /// order does not skew bench percentiles).
    latency_ns: AtomicU64,
}

impl<O: Send> JobShared<O> {
    fn new(id: u64) -> Arc<JobShared<O>> {
        Arc::new(JobShared {
            id,
            lifecycle: JobLifecycle::new(),
            cancel: CancelToken::new(),
            outcome: Mutex::new(None),
            cv: Condvar::new(),
            submitted: Instant::now(),
            latency_ns: AtomicU64::new(0),
        })
    }

    fn publish(&self, outcome: JobOutcome<O>) {
        self.latency_ns.store(
            self.submitted.elapsed().as_nanos() as u64,
            Ordering::Relaxed,
        );
        let mut g = self.outcome.lock();
        debug_assert!(g.is_none(), "job outcome published twice");
        *g = Some(outcome);
        self.cv.notify_all();
    }
}

/// A typed handle to a submitted job.
///
/// Dropping the handle detaches the job: it still runs (or is cancelled at
/// shutdown drain) but its outcome is discarded.
pub struct JobHandle<O> {
    shared: Arc<JobShared<O>>,
}

impl<O> std::fmt::Debug for JobHandle<O> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobHandle")
            .field("id", &self.shared.id)
            .field("status", &self.shared.lifecycle.status())
            .finish()
    }
}

impl<O: Send> JobHandle<O> {
    /// The server-assigned job id (also the trace epoch tag).
    pub fn id(&self) -> u64 {
        self.shared.id
    }

    /// The job's current lifecycle state.
    pub fn status(&self) -> JobStatus {
        self.shared.lifecycle.status()
    }

    /// Request cancellation. Queued jobs are cancelled before ever
    /// running; running jobs are pruned cooperatively at the engine's
    /// poll points (the same points that service the copy-on-steal
    /// deposit handshake, so cancellation never wedges a thief).
    pub fn cancel(&self) -> CancelOutcome {
        self.shared.lifecycle.cancel(&self.shared.cancel)
    }

    /// Block until the job reaches its terminal state.
    pub fn wait(self) -> JobOutcome<O> {
        let mut g = self.shared.outcome.lock();
        while g.is_none() {
            self.shared.cv.wait(&mut g);
        }
        g.take().expect("guarded by loop")
    }

    /// Non-blocking poll: the outcome if terminal, otherwise the handle
    /// back.
    pub fn try_result(self) -> Result<JobOutcome<O>, JobHandle<O>> {
        {
            let mut g = self.shared.outcome.lock();
            if g.is_some() {
                return Ok(g.take().expect("checked"));
            }
        }
        Err(self)
    }

    /// Submission-to-terminal latency, `None` until the job is terminal.
    pub fn latency(&self) -> Option<Duration> {
        if self.shared.outcome.lock().is_some() {
            Some(Duration::from_nanos(
                self.shared.latency_ns.load(Ordering::Relaxed),
            ))
        } else {
            None
        }
    }
}

// ---------------------------------------------------------------------------
// Queued / active job erasure
// ---------------------------------------------------------------------------

/// A type-erased queued job: `lead` claims and runs it to a terminal
/// state on the calling pool worker.
trait QueuedJob: Send + 'static {
    fn lead(self: Box<Self>, ctx: &Arc<ServerCtx>, worker: usize, tracer: TracerRef<'_>);
    /// Recover the concrete `Pending<P>` on queue-full rejection.
    fn into_any(self: Box<Self>) -> Box<dyn Any + Send>;
}

/// A type-erased running job an idle worker can join (work sharing).
trait ActiveJob: Send + Sync {
    fn id(&self) -> u64;
    fn done(&self) -> bool;
    /// Claim a free slot and steal within the job until it completes or
    /// the abandon condition fires. Returns whether any participation
    /// happened.
    fn try_join(&self, ctx: &ServerCtx, worker: usize, tracer: TracerRef<'_>) -> bool;
}

/// A submission waiting in the queue.
struct Pending<P: Problem> {
    problem: P,
    cfg: Config,
    mode: Mode,
    shared: Arc<JobShared<P::Out>>,
}

impl<P: Problem + 'static> QueuedJob for Pending<P> {
    fn lead(self: Box<Self>, ctx: &Arc<ServerCtx>, worker: usize, tracer: TracerRef<'_>) {
        let Pending {
            problem,
            cfg,
            mode,
            shared,
        } = *self;
        if !shared.lifecycle.claim() {
            // Cancelled while queued: never executes.
            shared.publish(JobOutcome::Cancelled { report: None });
            ctx.jobs_cancelled.fetch_add(1, Ordering::Relaxed);
            return;
        }
        match cfg.backend {
            DequeBackend::The => run_job::<P, Arc<Frame<P>>, TheDeque<Arc<Frame<P>>>>(
                problem, cfg, mode, shared, ctx, worker, tracer,
            ),
            DequeBackend::ChaseLev => run_job::<P, Arc<Frame<P>>, ChaseLevDeque<Arc<Frame<P>>>>(
                problem, cfg, mode, shared, ctx, worker, tracer,
            ),
            DequeBackend::Pool => run_job::<P, Arc<Frame<P>>, PoolDeque<Arc<Frame<P>>>>(
                problem, cfg, mode, shared, ctx, worker, tracer,
            ),
            DequeBackend::FenceFree => run_job::<P, FfEntry<P>, FenceFreeDeque<FfEntry<P>>>(
                problem, cfg, mode, shared, ctx, worker, tracer,
            ),
        }
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any + Send> {
        self
    }
}

/// One job's engine region plus the slot bookkeeping work sharing needs.
struct JobCtx<P: Problem + 'static, E: DequeEntry<P>, D: WsDeque<E>> {
    id: u64,
    eng: Shared<'static, P, D>,
    /// Slot claim flags; slot 0 is pre-taken by the lead.
    taken: Vec<AtomicBool>,
    /// Live participants (lead + joiners). The lead drains this to zero
    /// before collecting per-slot stats.
    participants: AtomicU32,
    /// Per-slot stats, merged by whoever occupied the slot.
    stats: Vec<Mutex<RunStats>>,
    /// Per-slot deterministic RNG streams (identical to a solo run's).
    seeds: Vec<XorShift64>,
    _entry: std::marker::PhantomData<fn() -> E>,
}

impl<P, E, D> ActiveJob for JobCtx<P, E, D>
where
    P: Problem + 'static,
    E: DequeEntry<P> + 'static,
    D: WsDeque<E> + 'static,
{
    fn id(&self) -> u64 {
        self.id
    }

    fn done(&self) -> bool {
        self.eng.root.is_done()
    }

    fn try_join(&self, ctx: &ServerCtx, worker: usize, tracer: TracerRef<'_>) -> bool {
        if self.done() {
            return false;
        }
        // Claim a free joiner slot (slot 0 is the lead's).
        let Some(slot) = (1..self.taken.len()).find(|&i| {
            self.taken[i]
                .compare_exchange(false, true, Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
        }) else {
            return false;
        };
        self.participants.fetch_add(1, Ordering::AcqRel);
        // Recheck after announcing ourselves: the lead may have observed
        // participants == 0 and started collecting stats. `done` is
        // monotone, so if it is still false here the lead is guaranteed
        // to wait for our decrement.
        if self.done() {
            self.taken[slot].store(false, Ordering::Release);
            self.participants.fetch_sub(1, Ordering::Release);
            return false;
        }
        jmark!(
            tracer,
            worker,
            Ev::JobBegin {
                job: self.id as u32,
                slot: slot as u16,
            }
        );
        #[cfg_attr(not(feature = "trace"), allow(clippy::let_unit_value))]
        let tr = worker_tracer(tracer, worker);
        let abandon = || ctx.shutdown.load(Ordering::Acquire) || !ctx.queue.is_empty();
        let stats = participate::<P, E, D>(
            &self.eng,
            slot,
            self.seeds[slot].clone(),
            tr,
            false,
            Some(&abandon),
        );
        jmark!(
            tracer,
            worker,
            Ev::JobEnd {
                job: self.id as u32
            }
        );
        self.stats[slot].lock().merge(&stats);
        self.taken[slot].store(false, Ordering::Release);
        self.participants.fetch_sub(1, Ordering::Release);
        true
    }
}

/// Lead a claimed job to its terminal state on the calling worker.
#[allow(clippy::needless_pass_by_value)]
fn run_job<P, E, D>(
    problem: P,
    cfg: Config,
    mode: Mode,
    shared: Arc<JobShared<P::Out>>,
    ctx: &Arc<ServerCtx>,
    worker: usize,
    tracer: TracerRef<'_>,
) where
    P: Problem + 'static,
    E: DequeEntry<P> + 'static,
    D: WsDeque<E> + 'static,
{
    // A job never gets more slots than the pool has workers; the cut-off
    // still derives from cfg.threads (see Shared::new), so clamping only
    // bounds parallelism, never changes the task-creation frontier.
    let slots = cfg.threads.min(ctx.workers).max(1);
    let t0 = Instant::now();
    let job = Arc::new(JobCtx::<P, E, D> {
        id: shared.id,
        eng: Shared::new::<E>(
            ProblemRef::Owned(Arc::new(problem)),
            &cfg,
            mode,
            slots,
            Some(shared.cancel.clone()),
        ),
        taken: (0..slots).map(|i| AtomicBool::new(i == 0)).collect(),
        participants: AtomicU32::new(1),
        stats: (0..slots)
            .map(|_| Mutex::new(RunStats::default()))
            .collect(),
        seeds: Shared::<P, D>::seeds(&cfg, slots),
        _entry: std::marker::PhantomData,
    });
    let registered = ctx.work_sharing && slots > 1;
    if registered {
        ctx.active.lock().push(job.clone());
        ctx.wake_all();
    }
    jmark!(
        tracer,
        worker,
        Ev::JobBegin {
            job: job.id as u32,
            slot: 0,
        }
    );
    #[cfg_attr(not(feature = "trace"), allow(clippy::let_unit_value))]
    let tr = worker_tracer(tracer, worker);
    let lead_stats = participate::<P, E, D>(&job.eng, 0, job.seeds[0].clone(), tr, true, None);
    jmark!(tracer, worker, Ev::JobEnd { job: job.id as u32 });
    job.stats[0].lock().merge(&lead_stats);
    if registered {
        let id = job.id;
        ctx.active.lock().retain(|j| j.id() != id);
    }
    // Wait for every joiner to finish merging its slot stats. They exit
    // promptly: the root is done, so their steal loops terminate.
    job.participants.fetch_sub(1, Ordering::Release);
    while job.participants.load(Ordering::Acquire) != 0 {
        std::thread::yield_now();
    }
    let per_slot: Vec<RunStats> = job.stats.iter().map(|m| m.lock().clone()).collect();
    let report = RunReport::from_workers(per_slot, t0.elapsed().as_nanos() as u64);
    let out = job.eng.root.wait();
    let cancelled = shared.cancel.get();
    shared.lifecycle.finish(cancelled);
    // Count before publishing: `publish` releases the waiter, and callers
    // reasonably expect `stats()` to reflect a job whose `wait()` returned.
    if cancelled {
        drop(out);
        ctx.jobs_cancelled.fetch_add(1, Ordering::Relaxed);
        shared.publish(JobOutcome::Cancelled {
            report: Some(report),
        });
    } else {
        ctx.jobs_completed.fetch_add(1, Ordering::Relaxed);
        shared.publish(JobOutcome::Completed { out, report });
    }
}

// ---------------------------------------------------------------------------
// The server
// ---------------------------------------------------------------------------

/// Shared server state, one `Arc` per worker thread plus the front end.
struct ServerCtx {
    queue: PrioQueue<Box<dyn QueuedJob>>,
    /// Running multi-slot jobs joinable under work sharing.
    active: Mutex<Vec<Arc<dyn ActiveJob>>>,
    park: Mutex<()>,
    wake: Condvar,
    shutdown: AtomicBool,
    accepting: AtomicBool,
    next_job: AtomicU64,
    jobs_submitted: AtomicU64,
    jobs_completed: AtomicU64,
    jobs_cancelled: AtomicU64,
    jobs_rejected: AtomicU64,
    workers: usize,
    work_sharing: bool,
}

impl ServerCtx {
    fn wake_all(&self) {
        let _g = self.park.lock();
        self.wake.notify_all();
    }
}

/// A point-in-time snapshot of server health (admission control state).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerStats {
    /// Jobs accepted by `submit`.
    pub submitted: u64,
    /// Jobs that reached `Completed`.
    pub completed: u64,
    /// Jobs that reached `Cancelled` (before or during execution).
    pub cancelled: u64,
    /// Submissions rejected by admission control (`QueueFull` only;
    /// config and shutdown rejections are the caller's bug, not load).
    pub rejected: u64,
    /// Submissions currently waiting in the queue (advisory, summed over
    /// priority lanes).
    pub queue_depth: usize,
    /// Multi-slot jobs currently registered for work sharing.
    pub active_jobs: usize,
    /// Pool worker threads.
    pub workers: usize,
}

/// The server's final report, returned by [`JobServer::shutdown`].
pub struct ServerReport {
    /// Counter snapshot at shutdown (queue necessarily drained to 0).
    pub stats: ServerStats,
    /// The pool-wide event trace, when [`ServerConfig::trace`] was set.
    /// Split it per job with `adaptivetc_trace::Trace::split_jobs`.
    #[cfg(feature = "trace")]
    pub trace: Option<adaptivetc_trace::Trace>,
}

/// A long-lived worker pool serving a stream of scheduler jobs. See the
/// [module docs](crate::server) for the lifecycle and isolation model.
pub struct JobServer {
    ctx: Arc<ServerCtx>,
    threads: Vec<std::thread::JoinHandle<()>>,
    #[cfg_attr(not(feature = "trace"), allow(dead_code))]
    collector: SharedCollector,
}

impl JobServer {
    /// Spawn the worker pool (once; workers park between jobs).
    pub fn new(cfg: ServerConfig) -> JobServer {
        let workers = cfg.workers.max(1);
        let ctx = Arc::new(ServerCtx {
            queue: PrioQueue::with_capacity(cfg.queue_capacity.max(1)),
            active: Mutex::new(Vec::new()),
            park: Mutex::new(()),
            wake: Condvar::new(),
            shutdown: AtomicBool::new(false),
            accepting: AtomicBool::new(true),
            next_job: AtomicU64::new(1),
            jobs_submitted: AtomicU64::new(0),
            jobs_completed: AtomicU64::new(0),
            jobs_cancelled: AtomicU64::new(0),
            jobs_rejected: AtomicU64::new(0),
            workers,
            work_sharing: cfg.work_sharing,
        });
        #[cfg(feature = "trace")]
        let collector: SharedCollector = cfg.trace.then(|| {
            Arc::new(adaptivetc_trace::TraceCollector::with_options(
                workers,
                cfg.trace_capacity,
                cfg.trace_filter,
                cfg.trace_sample,
            ))
        });
        #[cfg(not(feature = "trace"))]
        let collector: SharedCollector = ();
        let threads = (0..workers)
            .map(|id| {
                let ctx = Arc::clone(&ctx);
                #[cfg(feature = "trace")]
                let collector = collector.clone();
                #[cfg(not(feature = "trace"))]
                let collector = ();
                std::thread::Builder::new()
                    .name(format!("jobserver-{id}"))
                    .spawn(move || worker_loop(&ctx, id, &collector))
                    .expect("spawn job-server worker")
            })
            .collect();
        JobServer {
            ctx,
            threads,
            collector,
        }
    }

    /// Submit `problem` to run under `mode` with the per-job `cfg`
    /// (backend, threads, seed, cut-off — everything a solo run accepts).
    ///
    /// `cfg.threads` asks for that many job slots, clamped to the pool
    /// size; slots beyond the lead are only filled when
    /// [`ServerConfig::work_sharing`] is on.
    ///
    /// # Errors
    ///
    /// Rejects (returning the problem) when the priority lane is full,
    /// the server is shutting down, or `cfg` is invalid.
    pub fn submit<P>(
        &self,
        problem: P,
        cfg: Config,
        mode: Mode,
        priority: Priority,
    ) -> Result<JobHandle<P::Out>, SubmitError<P>>
    where
        P: Problem + 'static,
    {
        if let Err(e) = cfg.validate() {
            return Err(SubmitError {
                problem,
                reason: RejectReason::Config(e),
            });
        }
        if !self.ctx.accepting.load(Ordering::Acquire) {
            return Err(SubmitError {
                problem,
                reason: RejectReason::ShuttingDown,
            });
        }
        let id = self.ctx.next_job.fetch_add(1, Ordering::Relaxed);
        let shared = JobShared::<P::Out>::new(id);
        let pending = Box::new(Pending {
            problem,
            cfg,
            mode,
            shared: Arc::clone(&shared),
        });
        match self
            .ctx
            .queue
            .try_push(priority, pending as Box<dyn QueuedJob>)
        {
            Ok(()) => {
                self.ctx.jobs_submitted.fetch_add(1, Ordering::Relaxed);
                self.ctx.wake_all();
                Ok(JobHandle { shared })
            }
            Err(rejected) => {
                self.ctx.jobs_rejected.fetch_add(1, Ordering::Relaxed);
                let pending = rejected
                    .into_any()
                    .downcast::<Pending<P>>()
                    .expect("a lane rejects the value it was offered");
                Err(SubmitError {
                    problem: pending.problem,
                    reason: RejectReason::QueueFull,
                })
            }
        }
    }

    /// A point-in-time health snapshot.
    pub fn stats(&self) -> ServerStats {
        ServerStats {
            submitted: self.ctx.jobs_submitted.load(Ordering::Relaxed),
            completed: self.ctx.jobs_completed.load(Ordering::Relaxed),
            cancelled: self.ctx.jobs_cancelled.load(Ordering::Relaxed),
            rejected: self.ctx.jobs_rejected.load(Ordering::Relaxed),
            queue_depth: self.ctx.queue.len(),
            active_jobs: self.ctx.active.lock().len(),
            workers: self.ctx.workers,
        }
    }

    /// Drain every event the pool's workers have *published* so far into
    /// a point-in-time [`Trace`](adaptivetc_trace::Trace) snapshot,
    /// without stopping (or even pausing) the pool. Wait-free for the
    /// workers; concurrent drains are serialised inside the collector,
    /// and events handed out here never reappear in a later drain or in
    /// the final [`shutdown`](JobServer::shutdown) trace. Returns `None`
    /// when the server was built without [`ServerConfig::trace`].
    ///
    /// Use [`published_len`](JobServer::published_len) to size
    /// expectations: a drain returns at least the events a worker had
    /// published before the call began (minus at most one in-flight
    /// block near ring overflow).
    #[cfg(feature = "trace")]
    pub fn drain_trace(&self) -> Option<adaptivetc_trace::Trace> {
        self.collector.as_deref().map(|c| c.drain_published())
    }

    /// Events `worker` has published and not yet drained — a lower bound
    /// (up to one in-flight block) on what the next
    /// [`drain_trace`](JobServer::drain_trace) returns for that ring.
    /// `None` without tracing or for an out-of-range worker id.
    #[cfg(feature = "trace")]
    pub fn published_len(&self, worker: usize) -> Option<usize> {
        let c = self.collector.as_deref()?;
        (worker < self.ctx.workers).then(|| c.published_len(worker))
    }

    /// Stop accepting submissions, run every already-queued job to its
    /// terminal state, join the pool, and return the final report (with
    /// the drained trace when tracing was on).
    pub fn shutdown(mut self) -> ServerReport {
        self.shutdown_inner()
    }

    fn shutdown_inner(&mut self) -> ServerReport {
        self.ctx.accepting.store(false, Ordering::Release);
        self.ctx.shutdown.store(true, Ordering::Release);
        self.ctx.wake_all();
        for t in std::mem::take(&mut self.threads) {
            let _ = t.join();
        }
        // Workers exit on (shutdown && queue empty); the Vyukov queue's
        // empty verdict is conservative, so a submission racing shutdown
        // can still be parked here. Every accepted job must reach a
        // terminal state, so drain inline on this thread (the pool is
        // joined — worker id 0's trace ring has a single producer again).
        #[cfg(feature = "trace")]
        let tracer: TracerRef<'_> = self.collector.as_deref();
        #[cfg(not(feature = "trace"))]
        let tracer: TracerRef<'_> = ();
        while let Some((_prio, job)) = self.ctx.queue.try_pop() {
            job.lead(&self.ctx, 0, tracer);
        }
        let stats = ServerStats {
            submitted: self.ctx.jobs_submitted.load(Ordering::Relaxed),
            completed: self.ctx.jobs_completed.load(Ordering::Relaxed),
            cancelled: self.ctx.jobs_cancelled.load(Ordering::Relaxed),
            rejected: self.ctx.jobs_rejected.load(Ordering::Relaxed),
            queue_depth: self.ctx.queue.len(),
            active_jobs: self.ctx.active.lock().len(),
            workers: self.ctx.workers,
        };
        ServerReport {
            stats,
            #[cfg(feature = "trace")]
            trace: self
                .collector
                .take()
                .and_then(|c| Arc::try_unwrap(c).ok())
                .map(|c| c.finish()),
        }
    }
}

impl Drop for JobServer {
    /// A dropped server still drains and joins (outcomes of queued jobs
    /// are published to any waiting handles; the trace is discarded).
    fn drop(&mut self) {
        if !self.threads.is_empty() {
            let _ = self.shutdown_inner();
        }
    }
}

/// One pool worker: lead queued jobs; otherwise join active jobs (work
/// sharing); otherwise park.
fn worker_loop(ctx: &Arc<ServerCtx>, id: usize, collector: &SharedCollector) {
    loop {
        let tracer = tracer_ref(collector);
        if let Some((_prio, job)) = ctx.queue.try_pop() {
            job.lead(ctx, id, tracer);
            continue;
        }
        if ctx.work_sharing {
            let snapshot: Vec<Arc<dyn ActiveJob>> = ctx.active.lock().clone();
            if snapshot.iter().any(|j| j.try_join(ctx, id, tracer)) {
                continue;
            }
        }
        if ctx.shutdown.load(Ordering::Acquire) {
            break;
        }
        let mut g = ctx.park.lock();
        // Re-check under the park lock to close the submit/park race, then
        // sleep with a timeout as a backstop for the conservative queue
        // verdicts.
        if ctx.queue.is_empty() && !ctx.shutdown.load(Ordering::Acquire) {
            let _ = ctx.wake.wait_for(&mut g, Duration::from_millis(1));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adaptivetc_core::Expansion;

    /// Ternary tree of height `h`; counts leaves.
    struct Tern {
        h: u32,
    }
    impl Problem for Tern {
        type State = u32;
        type Choice = u8;
        type Out = u64;
        fn root(&self) -> u32 {
            0
        }
        fn expand(&self, _: &u32, d: u32) -> Expansion<u8, u64> {
            if d == self.h {
                Expansion::Leaf(1)
            } else {
                Expansion::Children(vec![0, 1, 2])
            }
        }
        fn apply(&self, s: &mut u32, _: u8) {
            *s += 1;
        }
        fn undo(&self, s: &mut u32, _: u8) {
            *s -= 1;
        }
    }

    /// As `Tern`, but the first leaf reached raises `started` and blocks
    /// until `gate` opens — a deterministic way to keep a pool worker
    /// busy while the test arranges queue states around it.
    struct GatedTern {
        h: u32,
        started: Arc<AtomicBool>,
        gate: Arc<AtomicBool>,
    }
    impl Problem for GatedTern {
        type State = u32;
        type Choice = u8;
        type Out = u64;
        fn root(&self) -> u32 {
            0
        }
        fn expand(&self, _: &u32, d: u32) -> Expansion<u8, u64> {
            if d == self.h {
                if !self.started.swap(true, Ordering::AcqRel) {
                    while !self.gate.load(Ordering::Acquire) {
                        std::thread::yield_now();
                    }
                }
                Expansion::Leaf(1)
            } else {
                Expansion::Children(vec![0, 1, 2])
            }
        }
        fn apply(&self, s: &mut u32, _: u8) {
            *s += 1;
        }
        fn undo(&self, s: &mut u32, _: u8) {
            *s -= 1;
        }
    }

    fn wait_started(flag: &AtomicBool) {
        while !flag.load(Ordering::Acquire) {
            std::thread::yield_now();
        }
    }

    /// Submit a gated job to occupy the (single) pool worker; returns the
    /// handle plus the gate to open when done.
    fn occupy_worker(server: &JobServer) -> (JobHandle<u64>, Arc<AtomicBool>) {
        let started = Arc::new(AtomicBool::new(false));
        let gate = Arc::new(AtomicBool::new(false));
        let h = server
            .submit(
                GatedTern {
                    h: 2,
                    started: Arc::clone(&started),
                    gate: Arc::clone(&gate),
                },
                Config::new(1),
                Mode::Adaptive,
                Priority::Normal,
            )
            .expect("submit gate job");
        wait_started(&started);
        (h, gate)
    }

    #[test]
    fn single_job_completes_with_correct_result() {
        let server = JobServer::new(ServerConfig::new(2));
        let h = server
            .submit(
                Tern { h: 6 },
                Config::new(1),
                Mode::Adaptive,
                Priority::Normal,
            )
            .expect("submit");
        let id = h.id();
        match h.wait() {
            JobOutcome::Completed { out, report } => {
                assert_eq!(out, 3u64.pow(6));
                assert_eq!(report.per_worker.len(), 1);
                assert!(report.stats.tasks_created >= 1);
            }
            JobOutcome::Cancelled { .. } => panic!("job {id} spuriously cancelled"),
        }
        let report = server.shutdown();
        assert_eq!(report.stats.submitted, 1);
        assert_eq!(report.stats.completed, 1);
        assert_eq!(report.stats.queue_depth, 0);
    }

    #[test]
    fn pool_survives_a_stream_of_jobs() {
        let server = JobServer::new(ServerConfig::new(2));
        let handles: Vec<_> = (0..10)
            .map(|i| {
                server
                    .submit(
                        Tern { h: 3 + (i % 3) },
                        Config::new(1),
                        Mode::Adaptive,
                        Priority::Normal,
                    )
                    .expect("submit")
            })
            .collect();
        for (i, h) in handles.into_iter().enumerate() {
            match h.wait() {
                JobOutcome::Completed { out, .. } => {
                    assert_eq!(out, 3u64.pow(3 + (i as u32 % 3)));
                }
                JobOutcome::Cancelled { .. } => panic!("job {i} spuriously cancelled"),
            }
        }
        assert_eq!(server.stats().completed, 10);
    }

    #[test]
    fn cancel_while_queued_never_runs() {
        let server = JobServer::new(ServerConfig::new(1));
        let (gate_job, gate) = occupy_worker(&server);
        let victim = server
            .submit(
                Tern { h: 6 },
                Config::new(1),
                Mode::Adaptive,
                Priority::Normal,
            )
            .expect("submit victim");
        assert_eq!(victim.status(), JobStatus::Queued);
        assert_eq!(victim.cancel(), CancelOutcome::CancelledBeforeRun);
        assert_eq!(victim.status(), JobStatus::Cancelled);
        gate.store(true, Ordering::Release);
        assert!(matches!(gate_job.wait(), JobOutcome::Completed { .. }));
        match victim.wait() {
            JobOutcome::Cancelled { report } => assert!(report.is_none(), "never executed"),
            JobOutcome::Completed { .. } => panic!("cancelled job ran"),
        }
        assert_eq!(server.shutdown().stats.cancelled, 1);
    }

    #[test]
    fn cancel_mid_flight_prunes_and_reports_partial_stats() {
        let server = JobServer::new(ServerConfig::new(1));
        let started = Arc::new(AtomicBool::new(false));
        let gate = Arc::new(AtomicBool::new(false));
        let h = 9; // 9841 nodes if run to completion
        let job = server
            .submit(
                GatedTern {
                    h,
                    started: Arc::clone(&started),
                    gate: Arc::clone(&gate),
                },
                Config::new(1),
                Mode::Adaptive,
                Priority::Normal,
            )
            .expect("submit");
        wait_started(&started);
        assert_eq!(job.status(), JobStatus::Running);
        assert_eq!(job.cancel(), CancelOutcome::Requested);
        gate.store(true, Ordering::Release);
        match job.wait() {
            JobOutcome::Cancelled { report } => {
                let report = report.expect("job had started");
                let total_nodes = (3u64.pow(h + 1) - 1) / 2;
                assert!(
                    report.stats.nodes < total_nodes,
                    "prune should skip most of the tree: {} vs {total_nodes}",
                    report.stats.nodes
                );
            }
            JobOutcome::Completed { .. } => panic!("cancel lost"),
        }
        assert_eq!(server.shutdown().stats.cancelled, 1);
    }

    #[test]
    fn cancel_after_completion_is_already_terminal() {
        let server = JobServer::new(ServerConfig::new(1));
        let h = server
            .submit(
                Tern { h: 4 },
                Config::new(1),
                Mode::Adaptive,
                Priority::Normal,
            )
            .expect("submit");
        // Wait for terminality through the handle's non-consuming probe.
        while h.latency().is_none() {
            std::thread::yield_now();
        }
        assert_eq!(h.cancel(), CancelOutcome::AlreadyTerminal);
        assert!(matches!(h.wait(), JobOutcome::Completed { .. }));
        server.shutdown();
    }

    /// Records its tag at root expansion, exposing execution order.
    struct LogTern {
        tag: u8,
        log: Arc<Mutex<Vec<u8>>>,
    }
    impl Problem for LogTern {
        type State = u32;
        type Choice = u8;
        type Out = u64;
        fn root(&self) -> u32 {
            0
        }
        fn expand(&self, _: &u32, d: u32) -> Expansion<u8, u64> {
            if d == 0 {
                self.log.lock().push(self.tag);
            }
            if d == 2 {
                Expansion::Leaf(1)
            } else {
                Expansion::Children(vec![0, 1, 2])
            }
        }
        fn apply(&self, s: &mut u32, _: u8) {
            *s += 1;
        }
        fn undo(&self, s: &mut u32, _: u8) {
            *s -= 1;
        }
    }

    #[test]
    fn high_priority_overtakes_queued_normal_and_low() {
        let server = JobServer::new(ServerConfig::new(1));
        let (gate_job, gate) = occupy_worker(&server);
        let log = Arc::new(Mutex::new(Vec::new()));
        let order = |tag| LogTern {
            tag,
            log: Arc::clone(&log),
        };
        let low = server
            .submit(order(1), Config::new(1), Mode::Adaptive, Priority::Low)
            .expect("submit low");
        let normal = server
            .submit(order(2), Config::new(1), Mode::Adaptive, Priority::Normal)
            .expect("submit normal");
        let high = server
            .submit(order(3), Config::new(1), Mode::Adaptive, Priority::High)
            .expect("submit high");
        gate.store(true, Ordering::Release);
        assert!(matches!(gate_job.wait(), JobOutcome::Completed { .. }));
        for h in [high, normal, low] {
            assert!(matches!(h.wait(), JobOutcome::Completed { .. }));
        }
        // All three were queued while the single worker was pinned, so it
        // must drain lanes strictly by priority.
        assert_eq!(*log.lock(), vec![3, 2, 1]);
        server.shutdown();
    }

    #[test]
    fn full_lane_rejects_and_returns_the_problem() {
        let server = JobServer::new(ServerConfig::new(1).queue_capacity(2));
        let (gate_job, gate) = occupy_worker(&server);
        let mut queued = Vec::new();
        let mut rejected_problem = None;
        // The worker is pinned; pushes beyond the lane capacity must fail.
        for i in 0..4u32 {
            match server.submit(
                Tern { h: 2 + i },
                Config::new(1),
                Mode::Adaptive,
                Priority::Normal,
            ) {
                Ok(h) => queued.push(h),
                Err(e) => {
                    assert!(matches!(e.reason, RejectReason::QueueFull));
                    rejected_problem = Some(e.problem);
                    break;
                }
            }
        }
        let rejected = rejected_problem.expect("a push beyond capacity was rejected");
        // The problem comes back intact for a retry.
        assert!(rejected.h >= 2);
        assert!(server.stats().rejected >= 1);
        gate.store(true, Ordering::Release);
        assert!(matches!(gate_job.wait(), JobOutcome::Completed { .. }));
        for h in queued {
            assert!(matches!(h.wait(), JobOutcome::Completed { .. }));
        }
        server.shutdown();
    }

    #[test]
    fn invalid_job_config_is_rejected_up_front() {
        let server = JobServer::new(ServerConfig::new(1));
        let err = server
            .submit(
                Tern { h: 3 },
                Config::new(0),
                Mode::Adaptive,
                Priority::Normal,
            )
            .expect_err("zero threads is invalid");
        assert!(matches!(err.reason, RejectReason::Config(_)));
        assert_eq!(server.stats().submitted, 0);
        server.shutdown();
    }

    #[test]
    fn shutdown_drains_queued_jobs_to_terminal_states() {
        let server = JobServer::new(ServerConfig::new(1));
        let (gate_job, gate) = occupy_worker(&server);
        let queued: Vec<_> = (0..3)
            .map(|_| {
                server
                    .submit(
                        Tern { h: 3 },
                        Config::new(1),
                        Mode::Adaptive,
                        Priority::Normal,
                    )
                    .expect("submit")
            })
            .collect();
        gate.store(true, Ordering::Release);
        assert!(matches!(gate_job.wait(), JobOutcome::Completed { .. }));
        let report = server.shutdown();
        assert_eq!(report.stats.queue_depth, 0);
        for h in queued {
            // Drained either by the worker before it joined or inline by
            // shutdown; both must produce a terminal outcome.
            match h.try_result() {
                Ok(JobOutcome::Completed { out, .. }) => assert_eq!(out, 3u64.pow(3)),
                other => panic!("queued job not completed at shutdown: {other:?}"),
            }
        }
    }

    #[test]
    fn work_sharing_job_uses_multiple_slots() {
        let server = JobServer::new(ServerConfig::new(2).work_sharing(true));
        let h = server
            .submit(
                Tern { h: 10 },
                Config::new(2),
                Mode::Adaptive,
                Priority::Normal,
            )
            .expect("submit");
        match h.wait() {
            JobOutcome::Completed { out, report } => {
                assert_eq!(out, 3u64.pow(10));
                assert_eq!(report.per_worker.len(), 2, "two job slots");
            }
            JobOutcome::Cancelled { .. } => panic!("spuriously cancelled"),
        }
        server.shutdown();
    }

    #[test]
    fn dropped_server_still_drains() {
        let started = Arc::new(AtomicBool::new(false));
        let gate = Arc::new(AtomicBool::new(true)); // gate open: plain run
        let handle = {
            let server = JobServer::new(ServerConfig::new(1));
            let h = server
                .submit(
                    GatedTern {
                        h: 3,
                        started: Arc::clone(&started),
                        gate,
                    },
                    Config::new(1),
                    Mode::Adaptive,
                    Priority::Normal,
                )
                .expect("submit");
            drop(server); // Drop runs shutdown_inner
            h
        };
        match handle.try_result() {
            Ok(JobOutcome::Completed { out, .. }) => assert_eq!(out, 3u64.pow(3)),
            other => panic!("job not terminal after server drop: {other:?}"),
        }
    }

    #[test]
    fn job_ids_are_unique_and_reported() {
        let server = JobServer::new(ServerConfig::new(2));
        let a = server
            .submit(
                Tern { h: 2 },
                Config::new(1),
                Mode::Adaptive,
                Priority::Normal,
            )
            .expect("submit");
        let b = server
            .submit(
                Tern { h: 2 },
                Config::new(1),
                Mode::Adaptive,
                Priority::Normal,
            )
            .expect("submit");
        assert_ne!(a.id(), b.id());
        a.wait();
        b.wait();
        server.shutdown();
    }

    /// Drain the trace from a live server — pool running, its only worker
    /// blocked mid-job — and check the snapshot against `published_len`,
    /// then that the mid-run drain and the shutdown trace partition the
    /// job markers with no loss and no duplication.
    #[cfg(feature = "trace")]
    #[test]
    fn drain_trace_mid_run_without_stopping_the_pool() {
        use adaptivetc_trace::EventKind;

        let count_ends = |t: &adaptivetc_trace::Trace| {
            t.workers
                .iter()
                .flat_map(|w| &w.events)
                .filter(|e| matches!(e.kind, EventKind::JobEnd { .. }))
                .count()
        };

        let server = JobServer::new(ServerConfig::new(1).trace(true));
        // Three completed jobs, big enough that whole event blocks are
        // published (only full blocks are visible mid-run).
        for _ in 0..3 {
            let h = server
                .submit(
                    Tern { h: 8 },
                    Config::new(1),
                    Mode::Adaptive,
                    Priority::Normal,
                )
                .expect("submit");
            assert!(matches!(h.wait(), JobOutcome::Completed { .. }));
        }
        // A gated job pins the pool's only worker mid-run: the server is
        // demonstrably live (not quiesced) while we read.
        let (gated, gate) = occupy_worker(&server);

        let announced = server.published_len(0).expect("tracing is on");
        assert!(
            announced > 0,
            "three completed jobs must have published whole blocks"
        );
        let snap = server.drain_trace().expect("tracing is on");
        assert!(
            snap.len() >= announced,
            "drain returned {} events, {announced} were announced published",
            snap.len()
        );
        let after = server.published_len(0).expect("tracing is on");
        assert!(
            after < announced,
            "drain must consume the published events it returned"
        );
        let ends_mid = count_ends(&snap);
        assert!(ends_mid <= 3, "only three jobs have ended");

        gate.store(true, Ordering::Release);
        assert!(matches!(gated.wait(), JobOutcome::Completed { .. }));
        let report = server.shutdown();
        let final_trace = report.trace.expect("tracing is on");
        // Partition: every job's end marker lands in exactly one of the
        // two traces — the mid-run drain lost nothing and the shutdown
        // trace repeats nothing.
        assert_eq!(
            ends_mid + count_ends(&final_trace),
            4,
            "mid-run drain and shutdown trace must partition the 4 job-end markers"
        );
        assert!(
            !final_trace.workers.is_empty(),
            "shutdown trace still reports every worker ring"
        );
    }
}
