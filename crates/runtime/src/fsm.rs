//! Pure decision kernel of the paper's five-version finite-state machine.
//!
//! The adaptive scheduler compiles five versions of every task-creating
//! function — fast, check, special task, fast_2 and sequence (§3.2, Fig. 4)
//! — and the engine's control flow is the walk between them. This module
//! isolates the *decisions* of that walk (which version handles a node,
//! what the check version does after a poll, what the special section
//! re-enters with) as pure functions with no synchronization, so that the
//! threaded engine and the model-checking harness in `crates/check` drive
//! the exact same transition logic: the harness explores interleavings of
//! a miniature worker built on these functions and the real deque/signal
//! protocols, and any divergence between the two call sites is a test
//! failure rather than a silent fork of the FSM.

/// The five compiled versions of a task-creating function. `Fast` also
/// stands for the slow version: a stolen frame re-enters the same code
/// path with the cut-off of the fast version (the "slow" distinction is
/// only who resumed the frame).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Version {
    /// Spawn real tasks while above the cut-off.
    Fast,
    /// Fake tasks: traverse sequentially, polling `need_task` per node.
    Check,
    /// Transition back to task creation via a special task.
    Special,
    /// Like fast but with the cut-off doubled and task depth reset.
    Fast2,
    /// Plain sequential execution, no polling (below fast_2's cut-off).
    Sequence,
}

/// The effective cut-off: fast_2 doubles the base cut-off depth (§3.2:
/// "with a cut-off depth twice the original").
#[must_use]
pub fn effective_cutoff(base: u32, fast2: bool) -> u32 {
    if fast2 {
        base * 2
    } else {
        base
    }
}

/// Does a node at task depth `tdepth` still create a real task (run with a
/// frame), given the base cut-off and whether the worker is in fast_2?
#[must_use]
pub fn task_mode(tdepth: u32, base: u32, fast2: bool) -> bool {
    tdepth < effective_cutoff(base, fast2)
}

/// Which version a node falls through to once `task_mode` is false: the
/// fast version hands over to the check version (fake tasks), while fast_2
/// runs the rest of the subtree sequentially (Appendix C).
#[must_use]
pub fn fallthrough(fast2: bool) -> Version {
    if fast2 {
        Version::Sequence
    } else {
        Version::Check
    }
}

/// One `need_task` poll of the check version: a raised signal diverts the
/// fake task into the special-task section, otherwise it stays a fake task.
#[must_use]
pub fn after_poll(need_task: bool) -> Version {
    if need_task {
        Version::Special
    } else {
        Version::Check
    }
}

/// The special section runs every child through fast_2 with its task depth
/// reset to zero (§3.2: "the special task creates tasks eagerly again").
#[must_use]
pub fn special_reentry() -> (Version, u32) {
    (Version::Fast2, 0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast2_doubles_cutoff_and_resets_depth() {
        assert_eq!(effective_cutoff(3, false), 3);
        assert_eq!(effective_cutoff(3, true), 6);
        assert_eq!(special_reentry(), (Version::Fast2, 0));
        // Depth reset + doubled cut-off: the special task's children are
        // always tasks again, whatever depth the fake task had reached.
        assert!(task_mode(special_reentry().1, 3, true));
    }

    #[test]
    fn fallthrough_matrix() {
        assert_eq!(fallthrough(false), Version::Check);
        assert_eq!(fallthrough(true), Version::Sequence);
        assert_eq!(after_poll(false), Version::Check);
        assert_eq!(after_poll(true), Version::Special);
    }
}
