//! The shared deque-based execution engine.
//!
//! One engine implements four scheduling policies as [`Mode`]s, because they
//! are all points on the same design axis — *when does a spawn create a
//! task?*:
//!
//! * [`Mode::Cilk`] — always (the work-first Cilk 5 policy): every spawn
//!   pushes the parent continuation and copies the child's taskprivate
//!   workspace.
//! * [`Mode::CilkSynched`] — as Cilk, but workspace buffers are recycled
//!   through a per-worker free list (the `SYNCHED` idiom: allocations drop,
//!   copies remain).
//! * [`Mode::CutoffSequence`] / [`Mode::CutoffCopy`] — tasks only above a
//!   fixed cut-off depth; below it, plain recursion. The *programmer*
//!   variant knows the subtree is sequential and skips workspace copies; the
//!   *library* variant cannot and still copies per child (Figure 9).
//! * [`Mode::Adaptive`] — the paper's AdaptiveTC: tasks above `⌈log₂ N⌉`
//!   (the **fast** version), then fake tasks that poll `need_task` (the
//!   **check** version), transitioning through a **special task** into
//!   **fast_2** (doubled cut-off, task depth reset to 0) and finally the
//!   **sequence** version. Stolen tasks resume in the **slow** version
//!   (fast/check rules).
//!
//! The engine tracks two depths: the *logical* depth (distance from the root
//! node, passed to [`Problem::expand`]) and the *task* depth (the paper's
//! cut-off counter, reset to 0 under a special task).
//!
//! The engine uses continuation stealing over any
//! [`WsDeque`] backend (selected by
//! [`Config::backend`](adaptivetc_core::Config)): a spawn pushes the parent
//! frame, the worker dives into the child, and the matched pop detects theft
//! (the THE race, or the Chase-Lev bottom CAS). Results flow through the
//! asynchronous delivery chain in [`crate::frame`].
//!
//! # Hot-path object pools
//!
//! Each worker privately recycles the two allocations the hot path would
//! otherwise make per task:
//!
//! * **workspace buffers** — every mode that copies except the faithful
//!   [`Mode::Cilk`] baseline (which must allocate per spawn to reproduce
//!   the paper's Cilk numbers) draws from a [`Pool`] of dead buffers and
//!   overwrites them with `clone_from`; `RunStats::state_reuse` counts the
//!   hits.
//! * **frames** — a completed frame whose `Arc` has become unique again is
//!   scrubbed and parked in a frame pool; the next spawn reuses the
//!   allocation (`RunStats::frame_reuse`). Frames that complete
//!   asynchronously (delivered by a thief's last child) bypass the pool and
//!   simply drop.

use crate::frame::{deliver, Frame, OutCell, Parent};
use crate::fsm;
use crate::pool::Pool;
use adaptivetc_core::{
    Config, DequeBackend, Expansion, Problem, Reduce, RunReport, RunStats, XorShift64,
};
use adaptivetc_deque::{
    ChaseLevDeque, NeedTask, PoolDeque, PopSpecial, StealOutcome, TheDeque, WsDeque,
};
use std::sync::Arc;
use std::time::Instant;

/// Objects each worker's pools retain at most (dead workspace buffers and
/// scrubbed frames). Bounds the steady-state footprint while covering the
/// spawn working set of every paper workload.
const POOL_CAP: usize = 128;

/// Failed steals after which a spinning thief starts yielding the CPU
/// (2^6 = 64 spin-hint rounds of exponential back-off first).
const BACKOFF_SPIN_LIMIT: u32 = 6;

/// Which scheduling policy the engine runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mode {
    /// Work-first Cilk: every spawn is a task with a workspace copy.
    Cilk,
    /// Cilk with `SYNCHED`-style workspace buffer reuse.
    CilkSynched,
    /// Fixed cut-off, sequential (copy-free) recursion below it
    /// ("Cutoff-programmer").
    CutoffSequence,
    /// Fixed cut-off, but workspace copies at every node below it
    /// ("Cutoff-library").
    CutoffCopy,
    /// The AdaptiveTC five-version state machine.
    Adaptive,
}

/// The code-version regime a frame's children are spawned under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Regime {
    /// fast / slow versions: cut-off = `cutoff`; beyond it, the check
    /// version.
    Fast,
    /// fast_2 version: cut-off = `2 * cutoff`; beyond it, the sequence
    /// version.
    Fast2,
}

struct Shared<'p, P: Problem, D> {
    problem: &'p P,
    deques: Vec<D>,
    signals: Vec<NeedTask>,
    root: Arc<OutCell<P::Out>>,
    mode: Mode,
    cutoff: u32,
    timing: bool,
}

#[inline]
fn now_if(enabled: bool) -> Option<Instant> {
    enabled.then(Instant::now)
}

#[inline]
fn lap(field: &mut u64, start: Option<Instant>) {
    if let Some(t0) = start {
        *field += t0.elapsed().as_nanos() as u64;
    }
}

struct Worker<'s, 'p, P: Problem, D: WsDeque<Arc<Frame<P>>>> {
    shared: &'s Shared<'p, P, D>,
    id: usize,
    stats: RunStats,
    rng: XorShift64,
    /// Recycled workspace buffers (all copying modes except `Cilk`).
    freelist: Pool<P::State>,
    /// Recycled frame shells whose `Arc` became unique after a synchronous
    /// completion.
    frames: Pool<Arc<Frame<P>>>,
    /// Sink parent installed into pooled frames so they hold no live
    /// references while parked.
    dummy: Arc<OutCell<P::Out>>,
}

impl<'s, 'p, P: Problem, D: WsDeque<Arc<Frame<P>>>> Worker<'s, 'p, P, D> {
    fn new(shared: &'s Shared<'p, P, D>, id: usize, rng: XorShift64) -> Self {
        Worker {
            shared,
            id,
            stats: RunStats::default(),
            rng,
            freelist: Pool::new(POOL_CAP),
            frames: Pool::new(POOL_CAP),
            dummy: OutCell::new(),
        }
    }

    #[inline]
    fn problem(&self) -> &'p P {
        self.shared.problem
    }

    #[inline]
    fn my_deque(&self) -> &D {
        &self.shared.deques[self.id]
    }

    #[inline]
    fn my_signal(&self) -> &NeedTask {
        &self.shared.signals[self.id]
    }

    /// Does this mode recycle workspace buffers? `Cilk` stays
    /// allocate-per-spawn (the paper's work-first baseline); every other
    /// copying mode draws from the pool.
    #[inline]
    fn pools_state(&self) -> bool {
        self.shared.mode != Mode::Cilk
    }

    /// The paper's taskprivate copy: allocate (or recycle) and memcpy.
    fn clone_state(&mut self, src: &P::State) -> P::State {
        let t0 = now_if(self.shared.timing);
        let state = if self.pools_state() {
            match self.freelist.take() {
                Some(mut buf) => {
                    buf.clone_from(src);
                    self.stats.state_reuse += 1;
                    buf
                }
                None => {
                    self.stats.allocations += 1;
                    src.clone()
                }
            }
        } else {
            self.stats.allocations += 1;
            src.clone()
        };
        self.stats.copies += 1;
        self.stats.copy_bytes += self.problem().state_bytes(src) as u64;
        lap(&mut self.stats.time.copy_ns, t0);
        state
    }

    /// Return a dead workspace buffer to the free list.
    fn recycle(&mut self, state: P::State) {
        if self.pools_state() {
            self.freelist.put(state);
        }
    }

    /// Create (or revive from the frame pool) a frame for a node whose
    /// continuation is about to run.
    fn make_frame(
        &mut self,
        parent: Parent<P>,
        state: Option<P::State>,
        choices: Vec<P::Choice>,
        logical: u32,
        depth: u32,
    ) -> Arc<Frame<P>> {
        match self.frames.take() {
            Some(mut arc) => {
                let f = Arc::get_mut(&mut arc).expect("pooled frames hold the only reference");
                f.parent = parent;
                f.depth = depth;
                f.logical = logical;
                let inner = f.inner.get_mut();
                inner.state = state;
                inner.choices = choices;
                inner.next = 0;
                inner.acc = P::Out::identity();
                inner.outstanding = 1; // the continuation itself
                self.stats.frame_reuse += 1;
                arc
            }
            None => Frame::new(parent, state, choices, logical, depth),
        }
    }

    /// Park a completed frame for reuse if this worker holds the only
    /// reference; otherwise let it drop (a thief or late child still holds
    /// it).
    fn retire_frame(&mut self, mut frame: Arc<Frame<P>>) {
        if let Some(f) = Arc::get_mut(&mut frame) {
            // Scrub every live reference so the parked frame keeps nothing
            // alive: the parent chain, leftover choices, the workspace.
            f.parent = Parent::Cell(Arc::clone(&self.dummy));
            let inner = f.inner.get_mut();
            if let Some(state) = inner.state.take() {
                self.recycle(state);
            }
            inner.choices.clear();
            inner.next = 0;
            inner.acc = P::Out::identity();
            inner.outstanding = 0;
            self.frames.put(frame);
        }
    }

    /// Push a continuation entry, tolerating overflow by leaving the child
    /// unstealable (executed inline); returns whether the entry was pushed.
    fn push_entry(&mut self, frame: Arc<Frame<P>>, special: bool) -> bool {
        let result = if special {
            self.my_deque().push_special(frame)
        } else {
            self.my_deque().push(frame)
        };
        match result {
            Ok(()) => {
                self.stats.deque_pushes += 1;
                self.stats.deque_peak = self.stats.deque_peak.max(self.my_deque().len() as u64);
                true
            }
            Err(_) => {
                self.stats.deque_overflows += 1;
                false
            }
        }
    }

    /// Does a child at task depth `tdepth` run as a task (with a frame)?
    fn task_mode(&self, tdepth: u32, regime: Regime) -> bool {
        match self.shared.mode {
            Mode::Cilk | Mode::CilkSynched => true,
            Mode::CutoffSequence | Mode::CutoffCopy => tdepth < self.shared.cutoff,
            Mode::Adaptive => {
                fsm::task_mode(tdepth, self.shared.cutoff, matches!(regime, Regime::Fast2))
            }
        }
    }

    /// Execute a node given an owned workspace, delivering its subtree
    /// result to `parent`.
    fn exec_node(
        &mut self,
        mut state: P::State,
        logical: u32,
        tdepth: u32,
        parent: Parent<P>,
        regime: Regime,
    ) {
        self.stats.nodes += 1;
        match self.problem().expand(&state, logical) {
            Expansion::Leaf(out) => {
                self.recycle(state);
                deliver(&parent, out);
            }
            Expansion::Children(choices) => {
                if self.task_mode(tdepth, regime) {
                    let frame = self.make_frame(parent, Some(state), choices, logical, tdepth);
                    self.frame_loop(frame, regime);
                } else {
                    let out = match (self.shared.mode, regime) {
                        (Mode::CutoffSequence, _) => self.sequence(&mut state, logical, choices),
                        (Mode::CutoffCopy, _) => self.sequence_copy(&state, logical, choices),
                        // Appendix C: the check version recurses into the
                        // check version at every depth; only fast_2 falls
                        // through to the sequence version.
                        (Mode::Adaptive, Regime::Fast) => self.check(&mut state, logical, choices),
                        (Mode::Adaptive, Regime::Fast2) => {
                            self.sequence(&mut state, logical, choices)
                        }
                        (Mode::Cilk | Mode::CilkSynched, _) => unreachable!("always task mode"),
                    };
                    self.recycle(state);
                    deliver(&parent, out);
                }
            }
        }
    }

    /// Run a frame's continuation: spawn each remaining child as a task.
    ///
    /// This is the loop body shared by the fast, fast_2 and slow versions;
    /// stolen frames enter here with `Regime::Fast` (the slow version
    /// "restores the program counter" — `inner.next` — and continues).
    fn frame_loop(&mut self, frame: Arc<Frame<P>>, regime: Regime) {
        loop {
            let next = {
                let mut g = frame.inner.lock();
                if g.next >= g.choices.len() {
                    None
                } else {
                    let c = g.choices[g.next];
                    g.next += 1;
                    g.outstanding += 1;
                    // After the last spawn the continuation holds nothing
                    // stealable (only the sync), so its entry is elided —
                    // otherwise chain-shaped trees fill deques with dead
                    // continuations that satisfy thieves without feeding
                    // them.
                    Some((c, g.next < g.choices.len()))
                }
            };
            let Some((choice, stealable)) = next else {
                break;
            };
            // Workspace copy for the spawned child (taskprivate), taken
            // outside the lock: thieves contending for this frame only need
            // the lock briefly.
            let mut child_state = {
                let g = frame.inner.lock();
                let src = g.state.as_ref().expect("regular frames own a workspace");
                self.clone_state(src)
            };
            self.problem().apply(&mut child_state, choice);
            self.stats.tasks_created += 1;
            let pushed = stealable && self.push_entry(Arc::clone(&frame), false);
            self.exec_node(
                child_state,
                frame.logical + 1,
                frame.depth + 1,
                Parent::Frame(Arc::clone(&frame)),
                regime,
            );
            if pushed {
                match self.my_deque().pop() {
                    Some(_) => {
                        self.stats.deque_pops += 1;
                    }
                    None => {
                        // Continuation stolen: a thief now runs this frame's
                        // remaining children; unwind to the steal loop.
                        self.stats.pop_conflicts += 1;
                        return;
                    }
                }
            }
        }
        if let Some(out) = frame.finish_continuation() {
            // Completed synchronously: the workspace buffer and the frame
            // itself are dead; both go back to this worker's pools.
            let parent = frame.parent.clone();
            self.retire_frame(frame);
            deliver(&parent, out);
        }
    }

    /// The sequence version: plain recursion, no tasks, no copies, no polls.
    fn sequence(&mut self, state: &mut P::State, logical: u32, choices: Vec<P::Choice>) -> P::Out {
        self.stats.fake_tasks += 1;
        let mut acc = P::Out::identity();
        for c in choices {
            self.problem().apply(state, c);
            self.stats.nodes += 1;
            match self.problem().expand(state, logical + 1) {
                Expansion::Leaf(out) => acc.combine(out),
                Expansion::Children(cs) => acc.combine(self.sequence(state, logical + 1, cs)),
            }
            self.problem().undo(state, c);
        }
        acc
    }

    /// The Cutoff-library sequential region: recursion that still pays a
    /// workspace copy per child (the library cannot know the subtree is
    /// sequential, so taskprivate semantics force the copy).
    fn sequence_copy(&mut self, state: &P::State, logical: u32, choices: Vec<P::Choice>) -> P::Out {
        self.stats.fake_tasks += 1;
        let mut acc = P::Out::identity();
        for c in choices {
            let mut child = self.clone_state(state);
            self.problem().apply(&mut child, c);
            self.stats.nodes += 1;
            match self.problem().expand(&child, logical + 1) {
                Expansion::Leaf(out) => acc.combine(out),
                Expansion::Children(cs) => acc.combine(self.sequence_copy(&child, logical + 1, cs)),
            }
            self.recycle(child);
        }
        acc
    }

    /// The check version: fake tasks that poll `need_task` once per node and
    /// transition through a special task when another thread is starving
    /// (Appendix C: the `!need_task` branch recurses into the check version
    /// at every depth).
    fn check(&mut self, state: &mut P::State, logical: u32, choices: Vec<P::Choice>) -> P::Out {
        self.stats.polls += 1;
        if fsm::after_poll(self.my_signal().needs_task()) == fsm::Version::Check {
            self.stats.fake_tasks += 1;
            let mut acc = P::Out::identity();
            for c in choices {
                self.problem().apply(state, c);
                self.stats.nodes += 1;
                match self.problem().expand(state, logical + 1) {
                    Expansion::Leaf(out) => acc.combine(out),
                    Expansion::Children(cs) => acc.combine(self.check(state, logical + 1, cs)),
                }
                self.problem().undo(state, c);
            }
            acc
        } else {
            self.special_section(state, logical, choices)
        }
    }

    /// Transition from fake tasks back to tasks: create a special task, run
    /// every child through the fast_2 version with its task depth reset to
    /// 0, and wait for stolen children at the end (`sync_specialtask`).
    fn special_section(
        &mut self,
        state: &mut P::State,
        logical: u32,
        choices: Vec<P::Choice>,
    ) -> P::Out {
        self.stats.special_tasks += 1;
        self.my_signal().acknowledge();
        let waiter: Arc<OutCell<P::Out>> = OutCell::new();
        let special = self.make_frame(
            Parent::Cell(Arc::clone(&waiter)),
            None,
            Vec::new(),
            logical,
            0,
        );
        for c in choices {
            {
                special.inner.lock().outstanding += 1;
            }
            let mut child = self.clone_state(state);
            self.problem().apply(&mut child, c);
            self.stats.tasks_created += 1;
            let pushed = self.push_entry(Arc::clone(&special), true);
            self.exec_node(
                child,
                logical + 1,
                0,
                Parent::Frame(Arc::clone(&special)),
                Regime::Fast2,
            );
            if pushed {
                match self.my_deque().pop_special() {
                    PopSpecial::Reclaimed(_) => {
                        self.stats.deque_pops += 1;
                    }
                    PopSpecial::ChildStolen => {
                        self.stats.pop_conflicts += 1;
                    }
                }
            }
        }
        // sync_specialtask: the special task cannot be suspended — wait for
        // every child to deliver before resuming the fake task.
        if let Some(out) = special.finish_continuation() {
            self.retire_frame(special);
            return out;
        }
        self.stats.suspensions += 1;
        let t0 = now_if(self.shared.timing);
        let out = waiter.wait();
        lap(&mut self.stats.time.wait_children_ns, t0);
        // The last child completed the frame; if its thief has unwound
        // already, the shell is unique again and can be pooled.
        self.retire_frame(special);
        out
    }

    /// Steal until the root result is ready.
    ///
    /// Idle thieves back off exponentially: after the k-th consecutive
    /// failed round a thief spins `2^k` pause hints (capped at
    /// `2^BACKOFF_SPIN_LIMIT`), then starts yielding the CPU between
    /// attempts. Any success resets the back-off, so a thief that finds
    /// work is immediately aggressive again.
    fn steal_loop(&mut self) {
        let n = self.shared.deques.len();
        if n == 1 {
            return;
        }
        let mut idle_since = now_if(self.shared.timing);
        let mut backoff = 0u32;
        while !self.shared.root.is_done() {
            let victim = {
                let mut v = self.rng.below_usize(n - 1);
                if v >= self.id {
                    v += 1;
                }
                v
            };
            match self.shared.deques[victim].steal() {
                StealOutcome::Stolen(frame) => {
                    self.shared.signals[victim].record_steal_success();
                    self.stats.steals_ok += 1;
                    backoff = 0;
                    lap(&mut self.stats.time.steal_wait_ns, idle_since.take());
                    // The slow version: resume the stolen continuation under
                    // fast/check rules.
                    self.frame_loop(frame, Regime::Fast);
                    idle_since = now_if(self.shared.timing);
                }
                StealOutcome::Empty => {
                    self.shared.signals[victim].record_steal_failure();
                    self.stats.steals_failed += 1;
                    if backoff < BACKOFF_SPIN_LIMIT {
                        for _ in 0..(1u32 << backoff) {
                            std::hint::spin_loop();
                        }
                        backoff += 1;
                    } else {
                        std::thread::yield_now();
                    }
                    self.stats.steal_backoffs += 1;
                }
            }
        }
        lap(&mut self.stats.time.steal_wait_ns, idle_since.take());
    }
}

/// Run `problem` under `mode` with the given configuration.
///
/// The deque substrate is chosen by [`Config::backend`]; every mode runs on
/// every backend (the Chase-Lev and pool deques support the special-task
/// protocol `Mode::Adaptive` needs).
///
/// Returns the reduced result and a [`RunReport`] with per-worker
/// statistics.
///
/// # Errors
///
/// Returns [`adaptivetc_core::SchedulerError::Config`] for invalid
/// configurations and `WorkerPanicked` if a worker thread panics. Deque
/// overflow is tolerated (the child runs inline, unstealable) and surfaced
/// via `RunStats::deque_overflows`.
pub fn run<P: Problem>(
    problem: &P,
    cfg: &Config,
    mode: Mode,
) -> Result<(P::Out, RunReport), adaptivetc_core::SchedulerError> {
    match cfg.backend {
        DequeBackend::The => run_on::<P, TheDeque<Arc<Frame<P>>>>(problem, cfg, mode),
        DequeBackend::ChaseLev => run_on::<P, ChaseLevDeque<Arc<Frame<P>>>>(problem, cfg, mode),
        DequeBackend::Pool => run_on::<P, PoolDeque<Arc<Frame<P>>>>(problem, cfg, mode),
    }
}

/// The engine, monomorphized over one deque backend.
fn run_on<P: Problem, D: WsDeque<Arc<Frame<P>>>>(
    problem: &P,
    cfg: &Config,
    mode: Mode,
) -> Result<(P::Out, RunReport), adaptivetc_core::SchedulerError> {
    cfg.validate()?;
    let threads = cfg.threads;
    let shared = Shared {
        problem,
        deques: (0..threads)
            .map(|_| D::with_capacity(cfg.deque_capacity))
            .collect(),
        signals: (0..threads)
            .map(|_| NeedTask::new(cfg.max_stolen_num))
            .collect(),
        root: OutCell::new(),
        mode,
        cutoff: cfg.cutoff_depth().max(1),
        timing: cfg.timing,
    };
    let mut seeder = XorShift64::new(cfg.seed);
    let seeds: Vec<XorShift64> = (0..threads).map(|_| seeder.split()).collect();

    let start = Instant::now();
    let per_worker = std::thread::scope(|s| {
        let mut handles = Vec::with_capacity(threads);
        for (id, rng) in seeds.into_iter().enumerate() {
            let shared = &shared;
            handles.push(s.spawn(move || {
                let mut w = Worker::new(shared, id, rng);
                if id == 0 {
                    let root_state = shared.problem.root();
                    w.stats.tasks_created += 1; // the root task
                    w.exec_node(
                        root_state,
                        0,
                        0,
                        Parent::Cell(Arc::clone(&shared.root)),
                        Regime::Fast,
                    );
                }
                w.steal_loop();
                w.stats
            }));
        }
        handles
            .into_iter()
            .enumerate()
            .map(|(id, h)| {
                h.join()
                    .map_err(|_| adaptivetc_core::SchedulerError::WorkerPanicked(id))
            })
            .collect::<Result<Vec<_>, _>>()
    })?;
    let wall_ns = start.elapsed().as_nanos() as u64;
    let out = shared.root.wait();
    Ok((out, RunReport::from_workers(per_worker, wall_ns)))
}
