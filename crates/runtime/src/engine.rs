//! The shared deque-based execution engine.
//!
//! One engine implements four scheduling policies as [`Mode`]s, because they
//! are all points on the same design axis — *when does a spawn create a
//! task?*:
//!
//! * [`Mode::Cilk`] — always (the work-first Cilk 5 policy): every spawn
//!   pushes the parent continuation and copies the child's taskprivate
//!   workspace.
//! * [`Mode::CilkSynched`] — as Cilk, but workspace buffers are recycled
//!   through a per-worker free list (the `SYNCHED` idiom: allocations drop,
//!   copies remain).
//! * [`Mode::CutoffSequence`] / [`Mode::CutoffCopy`] — tasks only above a
//!   fixed cut-off depth; below it, plain recursion. The *programmer*
//!   variant knows the subtree is sequential and skips workspace copies; the
//!   *library* variant cannot and still copies per child (Figure 9).
//! * [`Mode::Adaptive`] — the paper's AdaptiveTC: tasks above `⌈log₂ N⌉`
//!   (the **fast** version), then fake tasks that poll `need_task` (the
//!   **check** version), transitioning through a **special task** into
//!   **fast_2** (doubled cut-off, task depth reset to 0) and finally the
//!   **sequence** version. Stolen tasks resume in the **slow** version
//!   (fast/check rules).
//!
//! The engine tracks two depths: the *logical* depth (distance from the root
//! node, passed to [`Problem::expand`]) and the *task* depth (the paper's
//! cut-off counter, reset to 0 under a special task).
//!
//! The engine uses continuation stealing over any
//! [`WsDeque`] backend (selected by
//! [`Config::backend`](adaptivetc_core::Config)): a spawn pushes the parent
//! frame, the worker dives into the child, and the matched pop detects theft
//! (the THE race, or the Chase-Lev bottom CAS). Results flow through the
//! asynchronous delivery chain in [`crate::frame`].
//!
//! # Hot-path object pools
//!
//! Each worker privately recycles the two allocations the hot path would
//! otherwise make per task:
//!
//! * **workspace buffers** — every mode that copies except the faithful
//!   [`Mode::Cilk`] baseline (which must allocate per spawn to reproduce
//!   the paper's Cilk numbers) draws from a [`Pool`] of dead buffers and
//!   overwrites them with `clone_from`; `RunStats::state_reuse` counts the
//!   hits.
//! * **frames** — a completed frame whose `Arc` has become unique again is
//!   scrubbed and parked in a frame pool; the next spawn reuses the
//!   allocation (`RunStats::frame_reuse`). Frames that complete
//!   asynchronously (delivered by a thief's last child) bypass the pool and
//!   simply drop.
//!
//! # Copy-on-steal workspaces
//!
//! Under [`WorkspacePolicy::CopyOnSteal`] (the default for every mode
//! except the faithful `Cilk`/`CilkSynched` baselines) a spawn does **not**
//! clone the taskprivate workspace. The worker executes children *in
//! place* — `apply`, recurse, `undo` on one live workspace, exactly like
//! the sequence version — and the pushed frame merely borrows it: the
//! frame's `inner.state` stays `None` and the owner records the frame on a
//! **spine** alongside a mark into a **trail** of every choice currently
//! applied to the live workspace. An owner pop reuses the workspace
//! directly (`RunStats::workspace_copies_saved`); only when a thief
//! actually steals such a frame is an isolated clone **materialised**:
//!
//! 1. the thief flags the frame (`ws_requested`) and raises the owner's
//!    padded `ws_hint`, then spins;
//! 2. the owner, at its poll points (every spawn iteration, every check
//!    poll, sequence entry, the special task's sync wait), clones the live
//!    workspace and unwinds the trail suffix past the frame's mark, which
//!    reconstructs the frame-pristine workspace, and deposits it
//!    (`ws_ready`);
//! 3. as a backstop, a pop conflict — the owner discovering the theft, at
//!    which point the live workspace *is* frame-pristine — deposits
//!    unconditionally before unwinding, so a waiting thief never starves.
//!
//! The thief then runs the stolen continuation in place on the deposit, so
//! stolen-task semantics are bit-identical to the eager scheme while the
//! ~never-stolen majority of spawns pay no copy at all. Special-task
//! children still clone eagerly (they run detached from the live
//! workspace), each such clone seeding a fresh in-place region.

use crate::frame::{deliver, Frame, OutCell, Parent};
use crate::fsm;
use crate::pool::Pool;
use crate::submit::CancelToken;
use crate::sync::{AtomicBool, AtomicUsize, Ordering};
use crate::trace::{tev, worker_tracer, TracerRef, WorkerTracer};
use adaptivetc_core::{
    Config, DequeBackend, Expansion, Problem, Reduce, RunReport, RunStats, VictimPolicy,
    WorkspacePolicy, XorShift64,
};
use adaptivetc_deque::{
    ChaseLevDeque, FenceFreeDeque, NeedTask, PoolDeque, PopSpecial, StealOutcome, TheDeque, WsDeque,
};
use adaptivetc_strategy::{WorkerStrategy, HARD_STEAL_STREAK};
#[cfg(feature = "trace")]
use adaptivetc_trace::{EventKind as Ev, FsmState as Fs};
use crossbeam_utils::CachePadded;
use std::marker::PhantomData;
use std::sync::{Arc, Weak};
use std::time::{Duration, Instant};

/// Objects each worker's pools retain at most (dead workspace buffers and
/// scrubbed frames). Bounds the steady-state footprint while covering the
/// spawn working set of every paper workload.
const POOL_CAP: usize = 128;

/// Failed steals after which a spinning thief starts yielding the CPU
/// (2^6 = 64 spin-hint rounds of exponential back-off first).
const BACKOFF_SPIN_LIMIT: u32 = 6;

/// How long a special task's sync wait sleeps between servicing rounds of
/// pending copy-on-steal workspace requests.
const WS_SERVICE_WAIT: Duration = Duration::from_micros(50);

/// Which scheduling policy the engine runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mode {
    /// Work-first Cilk: every spawn is a task with a workspace copy.
    Cilk,
    /// Cilk with `SYNCHED`-style workspace buffer reuse.
    CilkSynched,
    /// Fixed cut-off, sequential (copy-free) recursion below it
    /// ("Cutoff-programmer").
    CutoffSequence,
    /// Fixed cut-off, but workspace copies at every node below it
    /// ("Cutoff-library").
    CutoffCopy,
    /// The AdaptiveTC five-version state machine.
    Adaptive,
}

/// How a frame travels through a deque backend.
///
/// Exactly-once backends carry strong [`Arc<Frame>`] handles and a claim
/// is infallible — the pop/steal race itself decides who runs the frame,
/// and a strong handle is required so an entry that loses the race on an
/// unwinding owner cannot drop the last reference to a continuation a
/// thief is about to resume. Multiplicity backends
/// ([`WsDeque::CAN_DUPLICATE`]) may hand the *same* logical entry to both
/// the owner's pop and a thief's steal, so their entries carry a weak
/// handle stamped with the frame's claim epoch, and [`claim`] performs
/// the dedup-at-extraction CAS: exactly one extraction of an entry wins
/// the right to run the frame, every duplicate gets `None` (counted in
/// `RunStats::dup_extractions`).
///
/// [`claim`]: DequeEntry::claim
pub(crate) trait DequeEntry<P: Problem>: Send + Sync + Sized {
    /// Build the entry pushed for `frame`.
    fn make(frame: &Arc<Frame<P>>) -> Self;

    /// Claim the right to run the referenced frame; `None` means another
    /// extraction already claimed this entry (a duplicate) or the frame
    /// is gone.
    fn claim(self) -> Option<Arc<Frame<P>>>;
}

impl<P: Problem> DequeEntry<P> for Arc<Frame<P>> {
    #[inline]
    fn make(frame: &Arc<Frame<P>>) -> Self {
        Arc::clone(frame)
    }

    #[inline]
    fn claim(self) -> Option<Arc<Frame<P>>> {
        Some(self)
    }
}

/// Entry type for the fence-free (multiplicity) backend: a weak frame
/// handle plus the claim epoch snapshotted at push time. Weak, because
/// duplicate extractions outlive the frame's synchronous lifecycle and a
/// strong handle would keep retired shells (and their whole parent
/// chains) alive from dead log slots; the epoch CAS in `claim` also makes
/// a stale entry harmless after the shell is pooled and reused, since
/// `Frame::claim_seq` is never reset.
pub(crate) struct FfEntry<P: Problem> {
    frame: Weak<Frame<P>>,
    epoch: u64,
}

impl<P: Problem> Clone for FfEntry<P> {
    fn clone(&self) -> Self {
        FfEntry {
            frame: Weak::clone(&self.frame),
            epoch: self.epoch,
        }
    }
}

impl<P: Problem> DequeEntry<P> for FfEntry<P> {
    fn make(frame: &Arc<Frame<P>>) -> Self {
        // Relaxed: the owner is the only writer of its frames' epochs
        // between push and claim, and the push's Release publication
        // orders the snapshot for thieves.
        FfEntry {
            frame: Arc::downgrade(frame),
            epoch: frame.claim_seq.load(Ordering::Relaxed),
        }
    }

    fn claim(self) -> Option<Arc<Frame<P>>> {
        let frame = self.frame.upgrade()?;
        // AcqRel success: the winner's claim synchronizes with whatever
        // the loser does next. Acquire on *failure* is load-bearing: a
        // losing owner pop must observe the winning thief's prior deque
        // cursor CAS, so the owner's subsequent `pop_special` reliably
        // reports `ChildStolen` for the special the thief passed.
        frame
            .claim_seq
            .compare_exchange(
                self.epoch,
                self.epoch + 1,
                Ordering::AcqRel,
                Ordering::Acquire,
            )
            .ok()?;
        Some(frame)
    }
}

/// The code-version regime a frame's children are spawned under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Regime {
    /// fast / slow versions: cut-off = `cutoff`; beyond it, the check
    /// version.
    Fast,
    /// fast_2 version: cut-off = `2 * cutoff`; beyond it, the sequence
    /// version.
    Fast2,
}

/// How the engine's shared state holds the problem: borrowed for the
/// one-shot [`run`] entry points (the problem outlives the scoped worker
/// threads), owned for [`crate::server`] jobs (the job context must be
/// `'static` to be shared across long-lived pool workers).
pub(crate) enum ProblemRef<'p, P> {
    /// Borrowed from the caller (`Scheduler::run`).
    Borrowed(&'p P),
    /// Owned by the job context (`JobServer` submissions).
    Owned(Arc<P>),
}

impl<P> ProblemRef<'_, P> {
    #[inline]
    fn get(&self) -> &P {
        match self {
            ProblemRef::Borrowed(p) => p,
            ProblemRef::Owned(p) => p,
        }
    }
}

pub(crate) struct Shared<'p, P: Problem, D> {
    pub(crate) problem: ProblemRef<'p, P>,
    pub(crate) deques: Vec<D>,
    /// Per-worker `need_task` signals. Padded: a thief hammering one
    /// worker's signal must not invalidate its neighbours' lines.
    signals: Vec<CachePadded<NeedTask>>,
    /// Relaxed per-worker d-e-que occupancy hints, published by the owner
    /// after every push/pop so `VictimPolicy::BestOfTwo` thieves can
    /// compare victims without touching the deques' hot head/tail lines.
    occupancy: Vec<CachePadded<AtomicUsize>>,
    /// Per-worker copy-on-steal doorbells: a thief waiting for a workspace
    /// deposit raises the owner's hint; the owner checks it at poll points.
    ws_hints: Vec<CachePadded<AtomicBool>>,
    pub(crate) root: Arc<OutCell<P::Out>>,
    mode: Mode,
    cutoff: u32,
    /// Prototype strategy bundle each worker clones privately. Built
    /// from the config's strategy axes only under [`Mode::Adaptive`];
    /// every other mode pins the paper-default baseline so the
    /// Cilk/cutoff comparison arms are never perturbed by strategy
    /// overrides.
    strategy: WorkerStrategy,
    victim: VictimPolicy,
    /// Copy-on-steal active (policy says so and the mode is not a
    /// faithful eager-copy Cilk baseline).
    pub(crate) cos: bool,
    timing: bool,
    /// Cooperative cancellation for `JobServer` jobs: when raised, the
    /// poll points below prune remaining expansions to identity leaves so
    /// the delivery chain still completes the root cell. `None` (the
    /// one-shot entry points) compiles to a single branch per node.
    cancel: Option<CancelToken>,
}

impl<'p, P: Problem, D> Shared<'p, P, D> {
    /// Build the engine's shared state for `slots` worker slots.
    ///
    /// `slots` may be smaller than `cfg.threads` (a server job clamped to
    /// the pool size); the cut-off still derives from `cfg.threads`, so a
    /// job's task-creation frontier is a function of its own configuration
    /// only, never of pool occupancy.
    pub(crate) fn new<E>(
        problem: ProblemRef<'p, P>,
        cfg: &Config,
        mode: Mode,
        slots: usize,
        cancel: Option<CancelToken>,
    ) -> Self
    where
        E: Send,
        D: WsDeque<E>,
    {
        let cos = cfg.workspace == WorkspacePolicy::CopyOnSteal
            && !matches!(mode, Mode::Cilk | Mode::CilkSynched);
        let cutoff = cfg.cutoff_depth().max(1);
        let strategy = if matches!(mode, Mode::Adaptive) {
            WorkerStrategy::from_config(cfg, cutoff)
        } else {
            WorkerStrategy::baseline(cutoff, cfg.max_stolen_num)
        };
        Shared {
            problem,
            deques: (0..slots)
                .map(|_| D::with_capacity(cfg.deque_capacity))
                .collect(),
            signals: (0..slots)
                .map(|_| CachePadded::new(NeedTask::new(cfg.max_stolen_num)))
                .collect(),
            occupancy: (0..slots)
                .map(|_| CachePadded::new(AtomicUsize::new(0)))
                .collect(),
            ws_hints: (0..slots)
                .map(|_| CachePadded::new(AtomicBool::new(false)))
                .collect(),
            root: OutCell::new(),
            mode,
            cutoff,
            strategy,
            victim: cfg.victim,
            cos,
            timing: cfg.timing,
            cancel,
        }
    }

    /// The per-slot deterministic RNG streams `cfg.seed` expands to —
    /// shared by [`run_on`] and the job server so a job's slot `i` sees
    /// exactly the stream worker `i` of a solo run would.
    pub(crate) fn seeds(cfg: &Config, slots: usize) -> Vec<XorShift64> {
        let mut seeder = XorShift64::new(cfg.seed);
        (0..slots).map(|_| seeder.split()).collect()
    }
}

/// Per-op timing probe. Compiled down to a constant `None` without the
/// `trace` feature so untraced builds carry zero clock reads on the hot
/// path even when `Config::timing` is (uselessly) set.
#[cfg(feature = "trace")]
#[inline]
fn now_if(enabled: bool) -> Option<Instant> {
    enabled.then(Instant::now)
}

#[cfg(not(feature = "trace"))]
#[inline]
fn now_if(_enabled: bool) -> Option<Instant> {
    None
}

#[inline]
fn lap(field: &mut u64, start: Option<Instant>) {
    if let Some(t0) = start {
        *field += t0.elapsed().as_nanos() as u64;
    }
}

/// One in-place frame on a worker's copy-on-steal spine.
struct SpineSlot<P: Problem> {
    frame: Arc<Frame<P>>,
    /// Trail length at frame entry: undoing `trail[mark..]` on a clone of
    /// the live workspace reconstructs this frame's pristine workspace.
    mark: usize,
    /// Whether the frame's deque entry for the child currently executing
    /// is outstanding (pushed and not yet popped back). Only such frames
    /// can be stolen, so only they need deposits when the region is sealed.
    live_entry: bool,
}

pub(crate) struct Worker<'s, 'p, P: Problem, E: DequeEntry<P>, D: WsDeque<E>> {
    shared: &'s Shared<'p, P, D>,
    id: usize,
    stats: RunStats,
    rng: XorShift64,
    /// This worker's private strategy state (cloned from the shared
    /// prototype): creation cutoff controller, extraction batch rule,
    /// threshold controller. Mutating it never touches shared memory —
    /// publishing a threshold retune is one relaxed store into this
    /// worker's own `NeedTask` signal.
    strategy: WorkerStrategy,
    /// Recycled workspace buffers (all copying modes except `Cilk`).
    freelist: Pool<P::State>,
    /// Recycled frame shells whose `Arc` became unique after a synchronous
    /// completion.
    frames: Pool<Arc<Frame<P>>>,
    /// Sink parent installed into pooled frames so they hold no live
    /// references while parked.
    dummy: Arc<OutCell<P::Out>>,
    /// Copy-on-steal bookkeeping: every choice currently applied to the
    /// live in-place workspace, in application order.
    trail: Vec<P::Choice>,
    /// The in-place frames whose continuations are on this worker's call
    /// stack, oldest first.
    spine: Vec<SpineSlot<P>>,
    /// Start of the *current* in-place region on the spine. Detached
    /// workspaces (special-task children, materialised thief clones) run
    /// as nested regions; only current-region frames can be serviced from
    /// the current live workspace.
    region_base: usize,
    /// Event-trace recording endpoint (`()` when the `trace` feature is
    /// compiled out; `None` when `Config::trace` is off).
    #[cfg_attr(not(feature = "trace"), allow(dead_code))]
    tr: WorkerTracer<'s>,
    /// The deque-entry representation this engine instantiation uses.
    _entry: PhantomData<E>,
}

impl<'s, 'p, P: Problem, E: DequeEntry<P>, D: WsDeque<E>> Worker<'s, 'p, P, E, D> {
    fn new(shared: &'s Shared<'p, P, D>, id: usize, rng: XorShift64, tr: WorkerTracer<'s>) -> Self {
        Worker {
            strategy: shared.strategy.clone(),
            shared,
            id,
            stats: RunStats::default(),
            rng,
            freelist: Pool::new(POOL_CAP),
            frames: Pool::new(POOL_CAP),
            dummy: OutCell::new(),
            trail: Vec::new(),
            spine: Vec::new(),
            region_base: 0,
            tr,
            _entry: PhantomData,
        }
    }

    #[inline]
    fn problem(&self) -> &P {
        self.shared.problem.get()
    }

    /// Whether this worker's job has been cancelled. Pruning is purely
    /// cooperative: the node that observes the raised token delivers an
    /// identity leaf instead of expanding, so the result-delivery chain
    /// (and with it every waiting sync and the root cell) still completes
    /// normally — cancellation never bypasses the deposit handshake or
    /// the outstanding-children accounting.
    #[inline]
    fn cancelled(&self) -> bool {
        match &self.shared.cancel {
            Some(token) => token.get(),
            None => false,
        }
    }

    #[inline]
    fn my_deque(&self) -> &D {
        &self.shared.deques[self.id]
    }

    #[inline]
    fn my_signal(&self) -> &NeedTask {
        &self.shared.signals[self.id]
    }

    #[inline]
    fn my_ws_hint(&self) -> &AtomicBool {
        &self.shared.ws_hints[self.id]
    }

    #[inline]
    fn cos(&self) -> bool {
        self.shared.cos
    }

    /// Publish this worker's d-e-que occupancy for `BestOfTwo` thieves.
    #[inline]
    fn publish_occupancy(&self) {
        self.shared.occupancy[self.id].store(self.my_deque().len(), Ordering::Relaxed);
    }

    /// Does this mode recycle workspace buffers? `Cilk` stays
    /// allocate-per-spawn (the paper's work-first baseline); every other
    /// copying mode draws from the pool.
    #[inline]
    fn pools_state(&self) -> bool {
        self.shared.mode != Mode::Cilk
    }

    /// The paper's taskprivate copy: allocate (or recycle) and memcpy.
    fn clone_state(&mut self, src: &P::State) -> P::State {
        let t0 = now_if(self.shared.timing);
        let state = if self.pools_state() {
            match self.freelist.take() {
                Some(mut buf) => {
                    buf.clone_from(src);
                    self.stats.state_reuse += 1;
                    buf
                }
                None => {
                    self.stats.allocations += 1;
                    src.clone()
                }
            }
        } else {
            self.stats.allocations += 1;
            src.clone()
        };
        self.stats.copies += 1;
        self.stats.copy_bytes += self.problem().state_bytes(src) as u64;
        lap(&mut self.stats.time.copy_ns, t0);
        state
    }

    /// Return a dead workspace buffer to the free list.
    fn recycle(&mut self, state: P::State) {
        if self.pools_state() {
            self.freelist.put(state);
        }
    }

    /// Create (or revive from the frame pool) a frame for a node whose
    /// continuation is about to run.
    fn make_frame(
        &mut self,
        parent: Parent<P>,
        state: Option<P::State>,
        choices: Vec<P::Choice>,
        logical: u32,
        depth: u32,
    ) -> Arc<Frame<P>> {
        let arc = match self.frames.take() {
            Some(mut arc) => {
                let f = Arc::get_mut(&mut arc).expect("pooled frames hold the only reference");
                f.parent = parent;
                f.depth = depth;
                f.logical = logical;
                // New incarnation of the shell: any thief still observing
                // the old generation across a steal handshake is a bug
                // (checked in debug builds on the thief side).
                f.generation.fetch_add(1, Ordering::Relaxed);
                f.ws_requested.store(false, Ordering::Relaxed);
                f.ws_ready.store(false, Ordering::Relaxed);
                let inner = f.inner.get_mut();
                inner.state = state;
                inner.choices = choices;
                inner.next = 0;
                inner.acc = P::Out::identity();
                inner.outstanding = 1; // the continuation itself
                self.stats.frame_reuse += 1;
                arc
            }
            None => Frame::new(parent, state, choices, logical, depth),
        };
        arc.owner.store(self.id, Ordering::Release);
        arc
    }

    /// Park a completed frame for reuse if this worker holds the only
    /// reference; otherwise let it drop (a thief or late child still holds
    /// it).
    fn retire_frame(&mut self, mut frame: Arc<Frame<P>>) {
        if Arc::get_mut(&mut frame).is_none() {
            // Multiplicity backends keep a `Weak` per log entry for the
            // whole run, so `get_mut` (which demands weak_count == 0) never
            // succeeds there and shells are freed instead of pooled. Still
            // recycle the workspace buffer — that is the allocation that
            // actually matters — when no other strong holder remains.
            // A stale entry may `upgrade` concurrently, but it only reads
            // `claim_seq` (and loses the CAS), never the inner state.
            if Arc::strong_count(&frame) == 1 {
                if let Some(state) = frame.inner.lock().state.take() {
                    self.recycle(state);
                }
            }
            return;
        }
        if let Some(f) = Arc::get_mut(&mut frame) {
            // Scrub every live reference so the parked frame keeps nothing
            // alive: the parent chain, leftover choices, the workspace.
            f.parent = Parent::Cell(Arc::clone(&self.dummy));
            let inner = f.inner.get_mut();
            if let Some(state) = inner.state.take() {
                self.recycle(state);
            }
            inner.choices.clear();
            inner.next = 0;
            inner.acc = P::Out::identity();
            inner.outstanding = 0;
            self.frames.put(frame);
        }
    }

    /// Push a continuation entry, tolerating overflow by leaving the child
    /// unstealable (executed inline); returns whether the entry was pushed.
    fn push_entry(&mut self, frame: &Arc<Frame<P>>, special: bool) -> bool {
        let entry = E::make(frame);
        let result = if special {
            self.my_deque().push_special(entry)
        } else {
            self.my_deque().push(entry)
        };
        match result {
            Ok(()) => {
                self.stats.deque_pushes += 1;
                self.stats.deque_peak = self.stats.deque_peak.max(self.my_deque().len() as u64);
                self.publish_occupancy();
                tev!(
                    self,
                    Deque,
                    if special { Ev::SpecialPush } else { Ev::Push }
                );
                true
            }
            Err(_) => {
                self.stats.deque_overflows += 1;
                false
            }
        }
    }

    /// Pop back the entry the owner pushed for the child it just ran and
    /// claim it. Returns whether the owner still owns the continuation:
    /// `false` means the frame was stolen — either the pop itself lost
    /// the race (exact backends) or the popped entry lost the claim CAS
    /// to a thief (multiplicity backends, a duplicate extraction).
    fn pop_back(&mut self) -> bool {
        let claimed = match self.my_deque().pop() {
            Some(entry) => match entry.claim() {
                Some(_frame) => true,
                None => {
                    self.stats.dup_extractions += 1;
                    false
                }
            },
            None => false,
        };
        self.publish_occupancy();
        if claimed {
            self.stats.deque_pops += 1;
            tev!(self, Deque, Ev::Pop);
        } else {
            self.stats.pop_conflicts += 1;
            tev!(self, Deque, Ev::PopConflict);
        }
        claimed
    }

    /// Does a child at task depth `tdepth` run as a task (with a frame)?
    fn task_mode(&self, tdepth: u32, regime: Regime) -> bool {
        match self.shared.mode {
            Mode::Cilk | Mode::CilkSynched => true,
            Mode::CutoffSequence | Mode::CutoffCopy => tdepth < self.shared.cutoff,
            // The creation policy: with the default adaptive policy at
            // rest this is exactly `fsm::task_mode` on the base cutoff;
            // under pressure the worker's controller may have raised it.
            Mode::Adaptive => {
                self.strategy
                    .creation
                    .real_task(tdepth, matches!(regime, Regime::Fast2), || {
                        self.my_deque().len()
                    })
            }
        }
    }

    /// Execute a node given an owned workspace, delivering its subtree
    /// result to `parent`.
    fn exec_node(
        &mut self,
        mut state: P::State,
        logical: u32,
        tdepth: u32,
        parent: Parent<P>,
        regime: Regime,
    ) {
        if self.cancelled() {
            // Prune: deliver an identity leaf so the chain completes.
            self.recycle(state);
            deliver(&parent, P::Out::identity());
            return;
        }
        self.stats.nodes += 1;
        match self.problem().expand(&state, logical) {
            Expansion::Leaf(out) => {
                self.recycle(state);
                deliver(&parent, out);
            }
            Expansion::Children(choices) => {
                if self.task_mode(tdepth, regime) {
                    let frame = self.make_frame(parent, Some(state), choices, logical, tdepth);
                    self.frame_loop(frame, regime);
                } else {
                    let out = match (self.shared.mode, regime) {
                        (Mode::CutoffSequence, _) => self.sequence(&mut state, logical, choices),
                        (Mode::CutoffCopy, _) => self.sequence_copy(&state, logical, choices),
                        // Appendix C: the check version recurses into the
                        // check version at every depth; only fast_2 falls
                        // through to the sequence version.
                        (Mode::Adaptive, Regime::Fast) => {
                            tev!(
                                self,
                                Fsm,
                                Ev::Fsm {
                                    from: Fs::Fast,
                                    to: Fs::Check,
                                    depth: tdepth,
                                }
                            );
                            self.check(&mut state, logical, choices)
                        }
                        (Mode::Adaptive, Regime::Fast2) => {
                            tev!(
                                self,
                                Fsm,
                                Ev::Fsm {
                                    from: Fs::Fast2,
                                    to: Fs::Sequence,
                                    depth: tdepth,
                                }
                            );
                            self.sequence(&mut state, logical, choices)
                        }
                        (Mode::Cilk | Mode::CilkSynched, _) => unreachable!("always task mode"),
                    };
                    self.recycle(state);
                    deliver(&parent, out);
                }
            }
        }
    }

    /// Run a frame's continuation: spawn each remaining child as a task.
    ///
    /// This is the loop body shared by the fast, fast_2 and slow versions;
    /// stolen frames enter here with `Regime::Fast` (the slow version
    /// "restores the program counter" — `inner.next` — and continues).
    fn frame_loop(&mut self, frame: Arc<Frame<P>>, regime: Regime) {
        loop {
            let next = if self.cancelled() {
                // Cancellation poll: stop spawning; already-spawned
                // children still deliver, completing the frame normally.
                None
            } else {
                let mut g = frame.inner.lock();
                if g.next >= g.choices.len() {
                    None
                } else {
                    let c = g.choices[g.next];
                    g.next += 1;
                    g.outstanding += 1;
                    // After the last spawn the continuation holds nothing
                    // stealable (only the sync), so its entry is elided —
                    // otherwise chain-shaped trees fill deques with dead
                    // continuations that satisfy thieves without feeding
                    // them.
                    Some((c, g.next < g.choices.len()))
                }
            };
            let Some((choice, stealable)) = next else {
                break;
            };
            // Workspace copy for the spawned child (taskprivate), taken
            // outside the lock: thieves contending for this frame only need
            // the lock briefly.
            let mut child_state = {
                let g = frame.inner.lock();
                let src = g.state.as_ref().expect("regular frames own a workspace");
                self.clone_state(src)
            };
            self.problem().apply(&mut child_state, choice);
            self.stats.tasks_created += 1;
            tev!(
                self,
                Spawn,
                Ev::Spawn {
                    depth: frame.depth + 1
                }
            );
            let pushed = stealable && self.push_entry(&frame, false);
            self.exec_node(
                child_state,
                frame.logical + 1,
                frame.depth + 1,
                Parent::Frame(Arc::clone(&frame)),
                regime,
            );
            if pushed && !self.pop_back() {
                // Continuation stolen: a thief now runs this frame's
                // remaining children; unwind to the steal loop.
                return;
            }
        }
        if let Some(out) = frame.finish_continuation() {
            // Completed synchronously: the workspace buffer and the frame
            // itself are dead; both go back to this worker's pools.
            let parent = frame.parent.clone();
            self.retire_frame(frame);
            deliver(&parent, out);
        }
    }

    /// Service pending copy-on-steal workspace requests for frames of the
    /// *current* in-place region. `live` must be exactly the region's live
    /// workspace, consistent with the trail (called between an apply/undo
    /// pair, never mid-operation). Requests against frames of outer,
    /// paused regions stay pending — their thieves keep re-raising the
    /// hint and are guaranteed a deposit at the owner's pop conflict at
    /// the latest.
    fn service_ws(&mut self, live: &P::State) {
        if !self.my_ws_hint().swap(false, Ordering::AcqRel) {
            return;
        }
        let spine = std::mem::take(&mut self.spine);
        for slot in &spine[self.region_base..] {
            if slot.frame.ws_requested.load(Ordering::Acquire) {
                let snap = self.materialise(live, slot.mark);
                slot.frame.deposit_ws(snap);
                tev!(self, Workspace, Ev::WsDeposit);
            }
        }
        self.spine = spine;
    }

    /// Materialise a frame-pristine workspace: clone the live one and
    /// unwind the trail suffix applied since frame entry.
    fn materialise(&mut self, live: &P::State, mark: usize) -> P::State {
        let mut snap = self.clone_state(live);
        for &c in self.trail[mark..].iter().rev() {
            self.problem().undo(&mut snap, c);
        }
        snap
    }

    /// Publish deposits for *every* stealable entry of the current region.
    ///
    /// Called before the region is paused by a special section: while the
    /// special children run as nested regions, this region's live workspace
    /// is unreachable, so a thief stealing one of these entries could not
    /// be serviced and would spin for the whole pause — long enough to
    /// close a wait cycle across owners that are themselves blocked at
    /// special syncs. Sealing up front keeps every possible request
    /// targeted at a *current* region, which its owner always services.
    fn seal_region(&mut self, live: &P::State) {
        let spine = std::mem::take(&mut self.spine);
        for slot in &spine[self.region_base..] {
            if slot.live_entry && !slot.frame.ws_ready.load(Ordering::Acquire) {
                let snap = self.materialise(live, slot.mark);
                slot.frame.deposit_ws(snap);
                tev!(self, Workspace, Ev::WsDeposit);
            }
        }
        self.spine = spine;
    }

    /// Run a node on an *owned* workspace as a fresh in-place region (the
    /// root task, a special-task child, or any other detached workspace).
    /// The buffer is recycled when the region completes or unwinds.
    fn run_region(
        &mut self,
        mut state: P::State,
        logical: u32,
        tdepth: u32,
        parent: Parent<P>,
        regime: Regime,
    ) {
        let saved_base = self.region_base;
        self.region_base = self.spine.len();
        let trail_mark = self.trail.len();
        self.exec_node_inplace(&mut state, logical, tdepth, parent, regime);
        debug_assert_eq!(
            self.spine.len(),
            self.region_base,
            "region left spine entries"
        );
        debug_assert_eq!(self.trail.len(), trail_mark, "region left trail entries");
        self.region_base = saved_base;
        self.recycle(state);
    }

    /// Copy-on-steal counterpart of [`Worker::exec_node`]: execute a node
    /// on the borrowed live workspace (choice already applied by the
    /// caller). On return — normal completion *or* theft-driven unwind —
    /// the workspace is restored to its value at entry.
    fn exec_node_inplace(
        &mut self,
        state: &mut P::State,
        logical: u32,
        tdepth: u32,
        parent: Parent<P>,
        regime: Regime,
    ) {
        if self.cancelled() {
            deliver(&parent, P::Out::identity());
            return;
        }
        self.stats.nodes += 1;
        match self.problem().expand(state, logical) {
            Expansion::Leaf(out) => deliver(&parent, out),
            Expansion::Children(choices) => {
                if self.task_mode(tdepth, regime) {
                    let frame = self.make_frame(parent, None, choices, logical, tdepth);
                    self.frame_loop_inplace(frame, state, regime);
                } else {
                    let out = match (self.shared.mode, regime) {
                        (Mode::CutoffSequence, _) => self.sequence(state, logical, choices),
                        (Mode::CutoffCopy, _) => self.sequence_copy(state, logical, choices),
                        (Mode::Adaptive, Regime::Fast) => {
                            tev!(
                                self,
                                Fsm,
                                Ev::Fsm {
                                    from: Fs::Fast,
                                    to: Fs::Check,
                                    depth: tdepth,
                                }
                            );
                            self.check(state, logical, choices)
                        }
                        (Mode::Adaptive, Regime::Fast2) => {
                            tev!(
                                self,
                                Fsm,
                                Ev::Fsm {
                                    from: Fs::Fast2,
                                    to: Fs::Sequence,
                                    depth: tdepth,
                                }
                            );
                            self.sequence(state, logical, choices)
                        }
                        (Mode::Cilk | Mode::CilkSynched, _) => {
                            unreachable!("Cilk modes never run copy-on-steal")
                        }
                    };
                    deliver(&parent, out);
                }
            }
        }
    }

    /// Copy-on-steal counterpart of [`Worker::frame_loop`]: spawn each
    /// remaining child as a task *without* cloning the workspace — apply
    /// the choice to the live workspace, dive in, undo on return. A pop
    /// conflict deposits the (now frame-pristine) workspace for the thief
    /// before unwinding.
    fn frame_loop_inplace(&mut self, frame: Arc<Frame<P>>, state: &mut P::State, regime: Regime) {
        frame.owner.store(self.id, Ordering::Release);
        self.spine.push(SpineSlot {
            frame: Arc::clone(&frame),
            mark: self.trail.len(),
            live_entry: false,
        });
        loop {
            self.service_ws(state);
            let next = if self.cancelled() {
                // Cancellation poll, co-located with the copy-on-steal
                // service point: no new spawns after the token is raised.
                None
            } else {
                let mut g = frame.inner.lock();
                if g.next >= g.choices.len() {
                    None
                } else {
                    let c = g.choices[g.next];
                    g.next += 1;
                    g.outstanding += 1;
                    // Last-spawn elision, as in the eager loop.
                    Some((c, g.next < g.choices.len()))
                }
            };
            let Some((choice, stealable)) = next else {
                break;
            };
            self.problem().apply(state, choice);
            self.trail.push(choice);
            self.stats.tasks_created += 1;
            tev!(
                self,
                Spawn,
                Ev::Spawn {
                    depth: frame.depth + 1
                }
            );
            // The spawn that eager copying would have paid a clone for.
            self.stats.workspace_copies_saved += 1;
            tev!(self, Workspace, Ev::CopySaved);
            let pushed = stealable && self.push_entry(&frame, false);
            if let Some(slot) = self.spine.last_mut() {
                slot.live_entry = pushed;
            }
            self.exec_node_inplace(
                state,
                frame.logical + 1,
                frame.depth + 1,
                Parent::Frame(Arc::clone(&frame)),
                regime,
            );
            self.problem().undo(state, choice);
            self.trail.pop();
            if pushed {
                if self.pop_back() {
                    if let Some(slot) = self.spine.last_mut() {
                        slot.live_entry = false;
                    }
                } else {
                    // Continuation stolen. The live workspace is
                    // frame-pristine right now (the child's choice was
                    // just undone): deposit a clone for the thief
                    // unless a seal or service round already did.
                    if !frame.ws_ready.load(Ordering::Acquire) {
                        let snap = self.clone_state(state);
                        frame.deposit_ws(snap);
                        tev!(self, Workspace, Ev::WsDeposit);
                    }
                    self.spine.pop();
                    return;
                }
            }
        }
        self.spine.pop();
        if let Some(out) = frame.finish_continuation() {
            let parent = frame.parent.clone();
            self.retire_frame(frame);
            deliver(&parent, out);
        }
    }

    /// Run a stolen continuation (the slow version). Under copy-on-steal
    /// the thief first obtains an isolated workspace: it takes a deposit if
    /// one is already published, otherwise it requests one from the owner
    /// and spins — re-raising the owner's doorbell periodically, since the
    /// owner may consume a hint while a different region is current — and
    /// then runs the continuation in place on the materialised clone.
    fn run_stolen(&mut self, frame: Arc<Frame<P>>) {
        tev!(
            self,
            Fsm,
            Ev::Fsm {
                from: Fs::Idle,
                to: Fs::Slow,
                depth: frame.depth,
            }
        );
        if !self.cos() {
            self.frame_loop(frame, Regime::Fast);
            tev!(
                self,
                Fsm,
                Ev::Fsm {
                    from: Fs::Slow,
                    to: Fs::Idle,
                    depth: 0,
                }
            );
            return;
        }
        #[cfg(debug_assertions)]
        let generation = frame.generation.load(Ordering::Acquire);
        let state = match frame.try_take_ws() {
            Some(s) => s,
            None => {
                frame.ws_requested.store(true, Ordering::Release);
                let owner = frame.owner.load(Ordering::Acquire);
                self.shared.ws_hints[owner].store(true, Ordering::Release);
                tev!(
                    self,
                    Workspace,
                    Ev::WsRequest {
                        owner: owner as u32
                    }
                );
                let mut spins: u32 = 0;
                loop {
                    if let Some(s) = frame.try_take_ws() {
                        break s;
                    }
                    spins = spins.wrapping_add(1);
                    if spins & 0x3F == 0 {
                        self.shared.ws_hints[frame.owner.load(Ordering::Acquire)]
                            .store(true, Ordering::Release);
                        std::thread::yield_now();
                    } else {
                        std::hint::spin_loop();
                    }
                }
            }
        };
        tev!(self, Workspace, Ev::WsTake);
        #[cfg(debug_assertions)]
        debug_assert_eq!(
            frame.generation.load(Ordering::Acquire),
            generation,
            "frame shell recycled during a steal handshake"
        );
        let saved_base = self.region_base;
        self.region_base = self.spine.len();
        let mut ws = state;
        self.frame_loop_inplace(frame, &mut ws, Regime::Fast);
        self.region_base = saved_base;
        self.recycle(ws);
        tev!(
            self,
            Fsm,
            Ev::Fsm {
                from: Fs::Slow,
                to: Fs::Idle,
                depth: 0,
            }
        );
    }

    /// The sequence version: plain recursion, no tasks, no copies, no polls
    /// (under copy-on-steal it still services workspace requests once per
    /// node, so thieves waiting on ancestor frames are fed promptly).
    fn sequence(&mut self, state: &mut P::State, logical: u32, choices: Vec<P::Choice>) -> P::Out {
        if self.cos() {
            self.service_ws(state);
        }
        if self.cancelled() {
            // One cancellation poll per sequence node, matching the
            // copy-on-steal service cadence of the recursion.
            return P::Out::identity();
        }
        self.stats.fake_tasks += 1;
        tev!(self, Fake, Ev::FakeTask { depth: logical });
        let mut acc = P::Out::identity();
        for c in choices {
            self.problem().apply(state, c);
            if self.cos() {
                self.trail.push(c);
            }
            self.stats.nodes += 1;
            match self.problem().expand(state, logical + 1) {
                Expansion::Leaf(out) => acc.combine(out),
                Expansion::Children(cs) => acc.combine(self.sequence(state, logical + 1, cs)),
            }
            self.problem().undo(state, c);
            if self.cos() {
                self.trail.pop();
            }
        }
        acc
    }

    /// The Cutoff-library sequential region: recursion that still pays a
    /// workspace copy per child (the library cannot know the subtree is
    /// sequential, so taskprivate semantics force the copy).
    fn sequence_copy(&mut self, state: &P::State, logical: u32, choices: Vec<P::Choice>) -> P::Out {
        if self.cancelled() {
            return P::Out::identity();
        }
        self.stats.fake_tasks += 1;
        tev!(self, Fake, Ev::FakeTask { depth: logical });
        let mut acc = P::Out::identity();
        for c in choices {
            let mut child = self.clone_state(state);
            self.problem().apply(&mut child, c);
            self.stats.nodes += 1;
            match self.problem().expand(&child, logical + 1) {
                Expansion::Leaf(out) => acc.combine(out),
                Expansion::Children(cs) => acc.combine(self.sequence_copy(&child, logical + 1, cs)),
            }
            self.recycle(child);
        }
        acc
    }

    /// Close the strategy feedback loops at a `need_task` poll. Every
    /// input is a value this worker already owns or reads relaxed on the
    /// existing poll path — no new fences. A pressured poll is a raise
    /// signal for the cutoff controller; a calm poll feeds both decay
    /// loops (the occupancy read happens only while the cutoff is
    /// actually boosted). Threshold retunes publish with one relaxed
    /// store into this worker's own signal.
    fn strategy_poll(&mut self, pressured: bool) {
        let shared = self.shared;
        let id = self.id;
        if pressured {
            if let Some(eff) = self.strategy.creation.on_pressure() {
                self.stats.cutoff_adjustments += 1;
                tev!(self, Strategy, Ev::CutoffTune { eff, up: true });
            }
        } else {
            if let Some(eff) = self
                .strategy
                .creation
                .on_calm_poll(|| shared.deques[id].len())
            {
                self.stats.cutoff_adjustments += 1;
                tev!(self, Strategy, Ev::CutoffTune { eff, up: false });
            }
            if let Some(threshold) = self.strategy.threshold.retune_on_quiet() {
                shared.signals[id].set_threshold(threshold);
                self.stats.threshold_adjustments += 1;
                tev!(self, Strategy, Ev::ThresholdTune { threshold });
            }
        }
    }

    /// The check version: fake tasks that poll `need_task` once per node and
    /// transition through a special task when another thread is starving
    /// (Appendix C: the `!need_task` branch recurses into the check version
    /// at every depth).
    fn check(&mut self, state: &mut P::State, logical: u32, choices: Vec<P::Choice>) -> P::Out {
        self.stats.polls += 1;
        if self.cos() {
            // The need_task poll is also the copy-on-steal service point.
            self.service_ws(state);
        }
        if self.cancelled() {
            // The need_task poll doubles as the cancellation poll.
            return P::Out::identity();
        }
        let pressured = self.my_signal().needs_task();
        self.strategy_poll(pressured);
        // Only a creation policy that responds to `need_task` diverts a
        // raised poll into the special transition; the static and hybrid
        // arms stay in the check version regardless.
        let respond = pressured && self.strategy.creation.responds_to_need_task();
        if fsm::after_poll(respond) == fsm::Version::Check {
            self.stats.fake_tasks += 1;
            tev!(self, Fake, Ev::FakeTask { depth: logical });
            let mut acc = P::Out::identity();
            for c in choices {
                self.problem().apply(state, c);
                if self.cos() {
                    self.trail.push(c);
                }
                self.stats.nodes += 1;
                match self.problem().expand(state, logical + 1) {
                    Expansion::Leaf(out) => acc.combine(out),
                    Expansion::Children(cs) => acc.combine(self.check(state, logical + 1, cs)),
                }
                self.problem().undo(state, c);
                if self.cos() {
                    self.trail.pop();
                }
            }
            acc
        } else {
            tev!(
                self,
                Fsm,
                Ev::Fsm {
                    from: Fs::Check,
                    to: Fs::Special,
                    depth: logical,
                }
            );
            self.special_section(state, logical, choices)
        }
    }

    /// Transition from fake tasks back to tasks: create a special task, run
    /// every child through the fast_2 version with its task depth reset to
    /// 0, and wait for stolen children at the end (`sync_specialtask`).
    fn special_section(
        &mut self,
        state: &mut P::State,
        logical: u32,
        choices: Vec<P::Choice>,
    ) -> P::Out {
        self.stats.special_tasks += 1;
        tev!(self, Special, Ev::SpecialBegin { depth: logical });
        self.my_signal().acknowledge();
        tev!(self, Signal, Ev::NeedTaskAck);
        // Adaptive threshold back-off: the burst this special is about to
        // spawn should not immediately re-trigger another special.
        if let Some(threshold) = self.strategy.threshold.retune_on_ack() {
            self.my_signal().set_threshold(threshold);
            self.stats.threshold_adjustments += 1;
            tev!(self, Strategy, Ev::ThresholdTune { threshold });
        }
        if self.cos() {
            self.seal_region(state);
        }
        // The paper's special-task re-entry: the fake task's children run
        // as tasks again in fast_2 with the cut-off doubled and depth 0.
        tev!(
            self,
            Fsm,
            Ev::Fsm {
                from: Fs::Special,
                to: Fs::Fast2,
                depth: logical,
            }
        );
        let waiter: Arc<OutCell<P::Out>> = OutCell::new();
        let special = self.make_frame(
            Parent::Cell(Arc::clone(&waiter)),
            None,
            Vec::new(),
            logical,
            0,
        );
        for c in choices {
            if self.cancelled() {
                // Stop spawning special children; the ones already in
                // flight deliver into `special` and the sync below still
                // resolves.
                break;
            }
            {
                special.inner.lock().outstanding += 1;
            }
            // Special children always clone eagerly: they run detached from
            // the live workspace while the special loop keeps using it.
            // Under copy-on-steal the clone seeds a fresh in-place region,
            // so the fast_2 subtree below it is copy-free again.
            let mut child = self.clone_state(state);
            self.problem().apply(&mut child, c);
            self.stats.tasks_created += 1;
            tev!(self, Spawn, Ev::Spawn { depth: 0 });
            let pushed = self.push_entry(&special, true);
            let parent = Parent::Frame(Arc::clone(&special));
            if self.cos() {
                self.run_region(child, logical + 1, 0, parent, Regime::Fast2);
            } else {
                self.exec_node(child, logical + 1, 0, parent, Regime::Fast2);
            }
            if pushed {
                match self.my_deque().pop_special() {
                    PopSpecial::Reclaimed(_) => {
                        self.stats.deque_pops += 1;
                        tev!(self, Deque, Ev::SpecialConsume { reclaimed: true });
                    }
                    PopSpecial::ChildStolen => {
                        self.stats.pop_conflicts += 1;
                        tev!(self, Deque, Ev::SpecialConsume { reclaimed: false });
                    }
                }
                self.publish_occupancy();
            }
        }
        // sync_specialtask: the special task cannot be suspended — wait for
        // every child to deliver before resuming the fake task.
        if let Some(out) = special.finish_continuation() {
            self.retire_frame(special);
            tev!(self, Special, Ev::SpecialEnd);
            return out;
        }
        self.stats.suspensions += 1;
        tev!(self, Sync, Ev::SyncSuspend);
        let t0 = now_if(self.shared.timing);
        let out = if self.cos() {
            // Keep servicing workspace requests while blocked: a thief that
            // stole an ancestor frame of this special section must not wait
            // out the whole sync for its deposit.
            loop {
                self.service_ws(state);
                if let Some(out) = waiter.wait_timeout(WS_SERVICE_WAIT) {
                    break out;
                }
            }
        } else {
            waiter.wait()
        };
        lap(&mut self.stats.time.wait_children_ns, t0);
        tev!(self, Sync, Ev::SyncResume);
        // The last child completed the frame; if its thief has unwound
        // already, the shell is unique again and can be pooled.
        self.retire_frame(special);
        tev!(self, Special, Ev::SpecialEnd);
        out
    }

    /// Pick a victim uniformly at random, never this worker itself and —
    /// when at least three workers exist, so a choice remains — never
    /// `avoid` (the victim that just reported an empty deque).
    fn random_victim(&mut self, n: usize, avoid: Option<usize>) -> usize {
        match avoid {
            Some(av) if n >= 3 && av != self.id => {
                let mut v = self.rng.below_usize(n - 2);
                // Remap over the two excluded ids in ascending order.
                let (lo, hi) = (self.id.min(av), self.id.max(av));
                if v >= lo {
                    v += 1;
                }
                if v >= hi {
                    v += 1;
                }
                v
            }
            _ => {
                let mut v = self.rng.below_usize(n - 1);
                if v >= self.id {
                    v += 1;
                }
                v
            }
        }
    }

    /// Choose the next victim under the configured [`VictimPolicy`].
    fn pick_victim(
        &mut self,
        n: usize,
        last_victim: Option<usize>,
        last_empty: Option<usize>,
    ) -> usize {
        match self.shared.victim {
            VictimPolicy::Uniform => self.random_victim(n, last_empty),
            VictimPolicy::LastVictim => match last_victim {
                // Steal affinity: return to the last productive victim.
                Some(v) => v,
                None => self.random_victim(n, last_empty),
            },
            VictimPolicy::BestOfTwo => {
                let a = self.random_victim(n, last_empty);
                let b = self.random_victim(n, last_empty);
                if a == b {
                    a
                } else {
                    // Probe whichever hint reports the longer deque; ties
                    // go to the first draw.
                    let occ = &self.shared.occupancy;
                    if occ[a].load(Ordering::Relaxed) >= occ[b].load(Ordering::Relaxed) {
                        a
                    } else {
                        b
                    }
                }
            }
        }
    }

    /// Steal until the root result is ready.
    ///
    /// Idle thieves back off exponentially: after the k-th consecutive
    /// failed round a thief spins `2^k` pause hints (capped at
    /// `2^BACKOFF_SPIN_LIMIT`), then starts yielding the CPU between
    /// attempts. Any success resets the back-off, so a thief that finds
    /// work is immediately aggressive again. A victim that just reported
    /// an empty deque is never re-probed on the immediately following
    /// attempt (a wasted probe that would also inflate the idle victim's
    /// `stolen_num`).
    ///
    /// `abandon` is the job-server joiner hook: a worker that volunteered
    /// into another job's free slot consults it after every *failed* round
    /// and leaves the loop early when it returns `true` (e.g. new jobs are
    /// queued). Abandoning between tasks is safe — at the loop head the
    /// worker's own deque is empty and it holds no frames — and the job
    /// does not depend on the deserter: the lead worker alone always
    /// completes the job. One-shot runs pass `None` and exit only on root
    /// completion.
    fn steal_loop(&mut self, abandon: Option<&dyn Fn() -> bool>) {
        let n = self.shared.deques.len();
        if n == 1 {
            return;
        }
        let mut idle_since = now_if(self.shared.timing);
        let mut backoff = 0u32;
        let mut last_victim: Option<usize> = None;
        let mut last_empty: Option<usize> = None;
        // Consecutive failed probes since the last success: a steal that
        // lands only after a long streak is a task-scarcity signal for
        // the cutoff controller.
        let mut fail_streak = 0u32;
        // Extra frames a steal-half probe looted beyond the first. Always
        // empty at the loop head (drained inside the success arm), so the
        // abandon and root-done exits never strand claimed work.
        let mut loot: Vec<Arc<Frame<P>>> = Vec::new();
        while !self.shared.root.is_done() {
            let victim = self.pick_victim(n, last_victim, last_empty);
            tev!(
                self,
                Steal,
                Ev::StealAttempt {
                    victim: victim as u32,
                }
            );
            match self.shared.deques[victim].steal() {
                StealOutcome::Stolen(entry) => {
                    let Some(frame) = entry.claim() else {
                        // A duplicate of an entry some other extraction
                        // already claimed (multiplicity backends only).
                        // Not a failed steal: the victim's deque was not
                        // empty, so neither the back-off nor the victim
                        // signal should react — just retry.
                        self.stats.dup_extractions += 1;
                        tev!(
                            self,
                            Steal,
                            Ev::StealDup {
                                victim: victim as u32
                            }
                        );
                        continue;
                    };
                    self.shared.signals[victim].record_steal_success();
                    self.stats.steals_ok += 1;
                    tev!(
                        self,
                        Steal,
                        Ev::StealOk {
                            victim: victim as u32
                        }
                    );
                    if fail_streak >= HARD_STEAL_STREAK {
                        if let Some(eff) = self.strategy.creation.on_hard_steal() {
                            self.stats.cutoff_adjustments += 1;
                            tev!(self, Strategy, Ev::CutoffTune { eff, up: true });
                        }
                    }
                    fail_streak = 0;
                    backoff = 0;
                    last_victim = Some(victim);
                    last_empty = None;
                    lap(&mut self.stats.time.steal_wait_ns, idle_since.take());
                    // Steal-half extraction: the first frame paid for the
                    // probe; loot up to `batch − 1` more from the same
                    // victim before running anything. A dry victim simply
                    // ends the loot round — no failure is recorded and no
                    // signal touched, the probe as a whole succeeded.
                    if !self.strategy.extraction.is_unit() {
                        let batch = self
                            .strategy
                            .extraction
                            .batch(self.shared.occupancy[victim].load(Ordering::Relaxed));
                        while loot.len() + 1 < batch {
                            tev!(
                                self,
                                Steal,
                                Ev::StealAttempt {
                                    victim: victim as u32,
                                }
                            );
                            match self.shared.deques[victim].steal() {
                                StealOutcome::Stolen(entry) => match entry.claim() {
                                    Some(f) => {
                                        self.shared.signals[victim].record_steal_success();
                                        self.stats.steals_ok += 1;
                                        tev!(
                                            self,
                                            Steal,
                                            Ev::StealOk {
                                                victim: victim as u32
                                            }
                                        );
                                        loot.push(f);
                                    }
                                    None => {
                                        self.stats.dup_extractions += 1;
                                        tev!(
                                            self,
                                            Steal,
                                            Ev::StealDup {
                                                victim: victim as u32
                                            }
                                        );
                                    }
                                },
                                StealOutcome::Empty => break,
                            }
                        }
                    }
                    // The slow version: resume the stolen continuation under
                    // fast/check rules, then drain the loot (newest first —
                    // the deepest frames, closest to this thief's cache).
                    self.run_stolen(frame);
                    while let Some(f) = loot.pop() {
                        self.run_stolen(f);
                    }
                    idle_since = now_if(self.shared.timing);
                }
                StealOutcome::Empty => {
                    let raised = self.shared.signals[victim].record_steal_failure();
                    if raised {
                        tev!(
                            self,
                            Signal,
                            Ev::NeedTaskSignal {
                                victim: victim as u32,
                            }
                        );
                    }
                    self.stats.steals_failed += 1;
                    tev!(
                        self,
                        Steal,
                        Ev::StealEmpty {
                            victim: victim as u32
                        }
                    );
                    fail_streak = fail_streak.saturating_add(1);
                    if last_victim == Some(victim) {
                        last_victim = None; // the affinity victim ran dry
                    }
                    last_empty = Some(victim);
                    if backoff < BACKOFF_SPIN_LIMIT {
                        for _ in 0..(1u32 << backoff) {
                            std::hint::spin_loop();
                        }
                        backoff += 1;
                    } else {
                        std::thread::yield_now();
                    }
                    self.stats.steal_backoffs += 1;
                    if let Some(quit) = abandon {
                        if quit() {
                            break;
                        }
                    }
                }
            }
        }
        lap(&mut self.stats.time.steal_wait_ns, idle_since.take());
    }
}

/// One worker's whole participation in a run: execute the root task when
/// `lead` (slot 0), then steal until the root completes (or `abandon`
/// fires, see [`Worker::steal_loop`]). This is the body both [`run_on`]
/// workers and `JobServer` participants execute — keeping them the same
/// code path is what makes a single-slot server job bit-identical in
/// counters to a solo single-thread run.
pub(crate) fn participate<'s, 'p, P, E, D>(
    shared: &'s Shared<'p, P, D>,
    slot: usize,
    rng: XorShift64,
    tr: WorkerTracer<'s>,
    lead: bool,
    abandon: Option<&dyn Fn() -> bool>,
) -> RunStats
where
    P: Problem,
    E: DequeEntry<P>,
    D: WsDeque<E>,
{
    let mut w = Worker::<P, E, D>::new(shared, slot, rng, tr);
    if lead {
        let root_state = shared.problem.get().root();
        w.stats.tasks_created += 1; // the root task
        tev!(w, Spawn, Ev::Spawn { depth: 0 });
        let parent = Parent::Cell(Arc::clone(&shared.root));
        if shared.cos {
            w.run_region(root_state, 0, 0, parent, Regime::Fast);
        } else {
            w.exec_node(root_state, 0, 0, parent, Regime::Fast);
        }
    }
    w.steal_loop(abandon);
    w.stats
}

/// Run `problem` under `mode` with the given configuration.
///
/// The deque substrate is chosen by [`Config::backend`]; every mode runs on
/// every backend (the Chase-Lev and pool deques support the special-task
/// protocol `Mode::Adaptive` needs).
///
/// Returns the reduced result and a [`RunReport`] with per-worker
/// statistics.
///
/// # Errors
///
/// Returns [`adaptivetc_core::SchedulerError::Config`] for invalid
/// configurations and `WorkerPanicked` if a worker thread panics. Deque
/// overflow is tolerated (the child runs inline, unstealable) and surfaced
/// via `RunStats::deque_overflows`.
pub fn run<P: Problem>(
    problem: &P,
    cfg: &Config,
    mode: Mode,
) -> Result<(P::Out, RunReport), adaptivetc_core::SchedulerError> {
    #[cfg(feature = "trace")]
    {
        run_traced(problem, cfg, mode).map(|(out, report, _trace)| (out, report))
    }
    #[cfg(not(feature = "trace"))]
    {
        dispatch(problem, cfg, mode, ())
    }
}

/// As [`run`], but additionally returns the drained event trace when
/// `cfg.trace` is set (and `None` when it is not).
#[cfg(feature = "trace")]
pub fn run_traced<P: Problem>(
    problem: &P,
    cfg: &Config,
    mode: Mode,
) -> Result<(P::Out, RunReport, Option<adaptivetc_trace::Trace>), adaptivetc_core::SchedulerError> {
    cfg.validate()?;
    let collector = cfg.trace.then(|| {
        adaptivetc_trace::TraceCollector::with_options(
            cfg.threads,
            cfg.trace_capacity,
            cfg.trace_filter,
            cfg.trace_sample,
        )
    });
    let (out, report) = dispatch(problem, cfg, mode, collector.as_ref())?;
    Ok((out, report, collector.map(|c| c.finish())))
}

/// Select the deque backend and run.
fn dispatch<'a, P: Problem>(
    problem: &'a P,
    cfg: &Config,
    mode: Mode,
    tracer: TracerRef<'a>,
) -> Result<(P::Out, RunReport), adaptivetc_core::SchedulerError> {
    match cfg.backend {
        DequeBackend::The => {
            run_on::<P, Arc<Frame<P>>, TheDeque<Arc<Frame<P>>>>(problem, cfg, mode, tracer)
        }
        DequeBackend::ChaseLev => {
            run_on::<P, Arc<Frame<P>>, ChaseLevDeque<Arc<Frame<P>>>>(problem, cfg, mode, tracer)
        }
        DequeBackend::Pool => {
            run_on::<P, Arc<Frame<P>>, PoolDeque<Arc<Frame<P>>>>(problem, cfg, mode, tracer)
        }
        // The multiplicity backend stores (weak-ref, epoch) entries so that
        // duplicate extractions can be rejected by the claim layer instead
        // of running a task twice.
        DequeBackend::FenceFree => {
            run_on::<P, FfEntry<P>, FenceFreeDeque<FfEntry<P>>>(problem, cfg, mode, tracer)
        }
    }
}

/// The engine, monomorphized over one deque backend and its entry type.
fn run_on<'a, P: Problem, E: DequeEntry<P>, D: WsDeque<E>>(
    problem: &'a P,
    cfg: &Config,
    mode: Mode,
    tracer: TracerRef<'a>,
) -> Result<(P::Out, RunReport), adaptivetc_core::SchedulerError> {
    cfg.validate()?;
    let threads = cfg.threads;
    let shared = Shared::new::<E>(ProblemRef::Borrowed(problem), cfg, mode, threads, None);
    let seeds = Shared::<P, D>::seeds(cfg, threads);

    let start = Instant::now();
    let per_worker = std::thread::scope(|s| {
        let mut handles = Vec::with_capacity(threads);
        for (id, rng) in seeds.into_iter().enumerate() {
            let shared = &shared;
            // Collapses to a unit binding when tracing is compiled out.
            #[cfg_attr(not(feature = "trace"), allow(clippy::let_unit_value))]
            let tr = worker_tracer(tracer, id);
            handles
                .push(s.spawn(move || participate::<P, E, D>(shared, id, rng, tr, id == 0, None)));
        }
        handles
            .into_iter()
            .enumerate()
            .map(|(id, h)| {
                h.join()
                    .map_err(|_| adaptivetc_core::SchedulerError::WorkerPanicked(id))
            })
            .collect::<Result<Vec<_>, _>>()
    })?;
    let wall_ns = start.elapsed().as_nanos() as u64;
    let out = shared.root.wait();
    Ok((out, RunReport::from_workers(per_worker, wall_ns)))
}
