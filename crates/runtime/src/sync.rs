//! Synchronization facade for the runtime crate.
//!
//! Every lock and atomic the schedulers use is imported through this one
//! module, mirroring `adaptivetc_deque::sync`. The runtime is not compiled
//! against the shim-sync model (only the deque protocols are), so there is
//! no `adaptivetc_check` branch here — the facade exists so that
//! `adaptivetc-lint`'s facade-integrity rule can prove at a glance that no
//! scheduler file reaches for `std::sync::atomic` or `parking_lot`
//! directly, and so a model-checked variant could be swapped in later by
//! editing a single file.

pub use parking_lot::{Condvar, Mutex};
pub use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
