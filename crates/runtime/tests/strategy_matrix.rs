//! Property and pin tests for the pluggable scheduling-strategy engine:
//! every (creation, extraction, threshold, backend) combination must
//! preserve exactly-once execution and coherent run statistics, and the
//! non-adaptive schedulers must ignore strategy overrides entirely.

use adaptivetc_core::{
    Config, CreationPolicy, DequeBackend, Expansion, ExtractionPolicy, Problem, RunStats,
    ThresholdPolicy,
};
use adaptivetc_runtime::Scheduler;
use proptest::prelude::*;

/// A bushy tree whose leaf values derive from the path, so any lost,
/// duplicated or misrouted node changes the reduced sum.
struct Checked {
    height: u32,
    fanout: u8,
}

impl Problem for Checked {
    type State = Vec<u64>;
    type Choice = u8;
    type Out = u64;
    fn root(&self) -> Vec<u64> {
        Vec::new()
    }
    fn expand(&self, path: &Vec<u64>, depth: u32) -> Expansion<u8, u64> {
        assert_eq!(path.len() as u32, depth, "workspace desynchronised");
        if depth == self.height {
            Expansion::Leaf(
                path.iter()
                    .fold(1u64, |a, &h| a.wrapping_mul(31).wrapping_add(h))
                    % 97,
            )
        } else {
            Expansion::Children((0..self.fanout).collect())
        }
    }
    fn apply(&self, path: &mut Vec<u64>, c: u8) {
        path.push(u64::from(c) + 1);
    }
    fn undo(&self, path: &mut Vec<u64>, _c: u8) {
        path.pop();
    }
    fn state_bytes(&self, path: &Vec<u64>) -> usize {
        path.len() * 8
    }
}

/// The coherence contract every strategy combination must keep.
fn assert_coherent(stats: &RunStats, cfg: &Config, serial_nodes: u64) {
    assert_eq!(stats.nodes, serial_nodes, "a node ran zero or two times");
    assert!(
        stats.steals_ok <= stats.tasks_created,
        "stole more tasks than were ever created ({} > {})",
        stats.steals_ok,
        stats.tasks_created
    );
    if cfg.backend != DequeBackend::FenceFree {
        assert_eq!(
            stats.dup_extractions,
            0,
            "exact backend {} reported duplicate extractions",
            cfg.backend.name()
        );
    }
    if cfg.creation == CreationPolicy::Static {
        assert_eq!(
            stats.cutoff_adjustments, 0,
            "the static creation policy must never retune the cutoff"
        );
    }
    if cfg.threshold == ThresholdPolicy::Fixed {
        assert_eq!(
            stats.threshold_adjustments, 0,
            "the fixed threshold policy must never retune"
        );
    }
    if cfg.threads == 1 {
        assert_eq!(
            stats.cutoff_adjustments, 0,
            "no thieves, no pressure: 1-thread runs never retune the cutoff"
        );
        assert_eq!(
            stats.steals_ok, 0,
            "1-thread runs have nobody to steal from"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // Exactly-once execution and stats coherence across the full
    // strategy matrix, at 1, 2 and 4 threads.
    #[test]
    fn strategy_matrix_preserves_exactly_once(
        creation_ix in 0usize..CreationPolicy::ALL.len(),
        extraction_ix in 0usize..ExtractionPolicy::ALL.len(),
        threshold_ix in 0usize..ThresholdPolicy::ALL.len(),
        backend_ix in 0usize..DequeBackend::ALL.len(),
        threads_ix in 0usize..3,
        height in 6u32..9,
        seed in 0u64..1 << 20,
    ) {
        let creation = CreationPolicy::ALL[creation_ix];
        let extraction = ExtractionPolicy::ALL[extraction_ix];
        let threshold = ThresholdPolicy::ALL[threshold_ix];
        let backend = DequeBackend::ALL[backend_ix];
        let threads = [1usize, 2, 4][threads_ix];
        let p = Checked { height, fanout: 3 };
        let (want, serial) = adaptivetc_core::serial::run(&p);
        let cfg = Config::new(threads)
            .creation(creation)
            .extraction(extraction)
            .threshold(threshold)
            .backend(backend)
            .max_stolen_num(1) // aggressive signalling exercises the controllers
            .seed(seed);
        let (got, report) = Scheduler::AdaptiveTc.run(&p, &cfg).expect("runs");
        prop_assert_eq!(
            got, want,
            "{}/{}/{} on {} with {} threads",
            creation.name(), extraction.name(), threshold.name(),
            backend.name(), threads
        );
        assert_coherent(&report.stats, &cfg, serial.nodes);
    }
}

/// The full matrix once, deterministically, so a combination that
/// proptest happens to skip still runs on every CI pass.
#[test]
fn strategy_matrix_exhaustive_single_seed() {
    let p = Checked {
        height: 7,
        fanout: 3,
    };
    let (want, serial) = adaptivetc_core::serial::run(&p);
    for creation in CreationPolicy::ALL {
        for extraction in ExtractionPolicy::ALL {
            for threshold in ThresholdPolicy::ALL {
                for backend in DequeBackend::ALL {
                    for threads in [1, 2, 4] {
                        let cfg = Config::new(threads)
                            .creation(creation)
                            .extraction(extraction)
                            .threshold(threshold)
                            .backend(backend)
                            .max_stolen_num(1)
                            .seed(17);
                        let (got, report) = Scheduler::AdaptiveTc.run(&p, &cfg).expect("runs");
                        assert_eq!(
                            got,
                            want,
                            "{}/{}/{} on {} with {threads} threads",
                            creation.name(),
                            extraction.name(),
                            threshold.name(),
                            backend.name()
                        );
                        assert_coherent(&report.stats, &cfg, serial.nodes);
                    }
                }
            }
        }
    }
}

/// The paper's fixed-cutoff baselines and the Cilk family run under
/// `WorkerStrategy::baseline`, so strategy overrides in the config must
/// not change a single counter: same tree, same seed, overridden vs
/// default configs, bit-identical single-thread stats and zero retunes
/// at any thread count.
#[test]
fn non_adaptive_schedulers_ignore_strategy_overrides() {
    let p = Checked {
        height: 7,
        fanout: 3,
    };
    let want = adaptivetc_core::serial::run(&p).0;
    let overridden = |threads: usize| {
        Config::new(threads)
            .creation(CreationPolicy::Hybrid)
            .extraction(ExtractionPolicy::StealHalf)
            .threshold(ThresholdPolicy::Adaptive)
            .seed(23)
    };
    for scheduler in [
        Scheduler::Cilk,
        Scheduler::CilkSynched,
        Scheduler::CutoffProgrammer(3),
        Scheduler::CutoffLibrary,
        Scheduler::Tascell,
    ] {
        // Single thread is deterministic: the full stat blocks must be
        // bit-identical with and without the overrides.
        let (got_a, base) = scheduler.run(&p, &Config::new(1).seed(23)).expect("runs");
        let (got_b, over) = scheduler.run(&p, &overridden(1)).expect("runs");
        assert_eq!(got_a, want, "{scheduler}");
        assert_eq!(got_b, want, "{scheduler}");
        assert_eq!(
            base.stats, over.stats,
            "{scheduler}: strategy overrides leaked into a non-adaptive mode"
        );
        // Multi-thread runs are timing-dependent, but the controllers must
        // stay silent regardless.
        let (got, report) = scheduler.run(&p, &overridden(4)).expect("runs");
        assert_eq!(got, want, "{scheduler}");
        assert_eq!(
            report.stats.cutoff_adjustments, 0,
            "{scheduler} retuned a cutoff it does not own"
        );
        assert_eq!(
            report.stats.threshold_adjustments, 0,
            "{scheduler} retuned a threshold it does not own"
        );
    }
}
