//! Stress and edge-case tests for the threaded runtime.

use adaptivetc_core::{Config, CutoffPolicy, DequeBackend, Expansion, Problem, WorkspacePolicy};
use adaptivetc_runtime::Scheduler;

/// A bushy tree with a payload that checks apply/undo pairing at every
/// node (any workspace corruption changes the result).
struct Checked {
    height: u32,
    fanout: u8,
}

impl Problem for Checked {
    type State = Vec<u64>; // path of choice hashes
    type Choice = u8;
    type Out = u64;
    fn root(&self) -> Vec<u64> {
        Vec::new()
    }
    fn expand(&self, path: &Vec<u64>, depth: u32) -> Expansion<u8, u64> {
        assert_eq!(path.len() as u32, depth, "workspace desynchronised");
        if depth == self.height {
            // Leaf value derives from the path so misrouted workspaces
            // change the sum.
            Expansion::Leaf(
                path.iter()
                    .fold(1u64, |a, &h| a.wrapping_mul(31).wrapping_add(h))
                    % 97,
            )
        } else {
            Expansion::Children((0..self.fanout).collect())
        }
    }
    fn apply(&self, path: &mut Vec<u64>, c: u8) {
        path.push(u64::from(c) + 1);
    }
    fn undo(&self, path: &mut Vec<u64>, _c: u8) {
        path.pop();
    }
    fn state_bytes(&self, path: &Vec<u64>) -> usize {
        path.len() * 8
    }
}

fn expected(p: &Checked) -> u64 {
    adaptivetc_core::serial::run(p).0
}

#[test]
fn adaptive_stress_with_aggressive_signalling() {
    // A tiny max_stolen_num forces many special-task transitions.
    let p = Checked {
        height: 9,
        fanout: 3,
    };
    let want = expected(&p);
    for seed in 0..5 {
        let cfg = Config::new(4).max_stolen_num(1).seed(seed);
        let (got, report) = Scheduler::AdaptiveTc.run(&p, &cfg).expect("runs");
        assert_eq!(got, want, "seed {seed}");
        assert_eq!(report.stats.nodes, adaptivetc_core::serial::run(&p).1.nodes);
    }
}

#[test]
fn cilk_stress_many_threads_small_deques() {
    let p = Checked {
        height: 8,
        fanout: 3,
    };
    let want = expected(&p);
    // Capacity 2 forces constant overflow fallback; correctness must hold.
    let cfg = Config::new(8).deque_capacity(2).seed(3);
    let (got, report) = Scheduler::Cilk.run(&p, &cfg).expect("runs");
    assert_eq!(got, want);
    assert!(
        report.stats.deque_overflows > 0,
        "tiny deques must overflow"
    );
}

#[test]
fn adaptive_with_deep_cutoff_degenerates_to_cilk_behaviour() {
    let p = Checked {
        height: 7,
        fanout: 3,
    };
    let want = expected(&p);
    let cfg = Config::new(2).cutoff(CutoffPolicy::Fixed(100));
    let (got, report) = Scheduler::AdaptiveTc.run(&p, &cfg).expect("runs");
    assert_eq!(got, want);
    // Cut-off deeper than the tree: every node is a task, like Cilk.
    assert_eq!(report.stats.tasks_created, report.stats.nodes);
    assert_eq!(report.stats.fake_tasks, 0);
}

#[test]
fn every_scheduler_on_every_backend_matches_serial() {
    // Mixed-backend sweep: every scheduler × deque backend × {2,4,8}
    // threads must return the serial answer. This is the cross-product the
    // pluggable-substrate refactor has to keep correct.
    let p = Checked {
        height: 8,
        fanout: 3,
    };
    let want = expected(&p);
    for backend in DequeBackend::ALL {
        for scheduler in [
            Scheduler::Cilk,
            Scheduler::CilkSynched,
            Scheduler::CutoffProgrammer(3),
            Scheduler::CutoffLibrary,
            Scheduler::AdaptiveTc,
        ] {
            for threads in [2, 4, 8] {
                let cfg = Config::new(threads).backend(backend).seed(7);
                let (got, report) = scheduler.run(&p, &cfg).expect("runs");
                assert_eq!(
                    got,
                    want,
                    "{scheduler} on {} with {threads} threads",
                    backend.name()
                );
                assert_eq!(report.threads, threads);
            }
        }
    }
}

#[test]
fn adaptive_stress_on_chase_lev_with_aggressive_signalling() {
    // The special-task path on the lock-free backend, forced hot: a tiny
    // max_stolen_num raises need_task constantly, so pop_special races
    // steal_specialtask (including the benign owner-won-the-child race the
    // Chase-Lev decomposition admits).
    let p = Checked {
        height: 9,
        fanout: 3,
    };
    let want = expected(&p);
    for seed in 0..5 {
        let cfg = Config::new(4)
            .backend(DequeBackend::ChaseLev)
            .max_stolen_num(1)
            .seed(seed);
        let (got, report) = Scheduler::AdaptiveTc.run(&p, &cfg).expect("runs");
        assert_eq!(got, want, "seed {seed}");
        assert_eq!(report.stats.nodes, adaptivetc_core::serial::run(&p).1.nodes);
        assert_eq!(report.stats.deque_overflows, 0, "chase-lev never overflows");
    }
}

#[test]
fn pools_report_reuse_on_all_backends() {
    let p = Checked {
        height: 8,
        fanout: 3,
    };
    let want = expected(&p);
    for backend in DequeBackend::ALL {
        // Pin the eager-copy policy: this test is about the pools, and
        // copy-on-steal (the default) removes almost every copy the pools
        // would recycle.
        let cfg = Config::new(2)
            .backend(backend)
            .workspace(WorkspacePolicy::EagerCopy)
            .seed(11);
        let (got, report) = Scheduler::AdaptiveTc.run(&p, &cfg).expect("runs");
        assert_eq!(got, want, "{}", backend.name());
        assert!(
            report.stats.state_reuse > 0,
            "{}: adaptive runs recycle workspace buffers",
            backend.name()
        );
        let (got, report) = Scheduler::CilkSynched.run(&p, &cfg).expect("runs");
        assert_eq!(got, want, "{}", backend.name());
        if backend == DequeBackend::FenceFree {
            // The multiplicity backend keeps a `Weak` per log entry for the
            // whole run, which pins every shell's weak count and blocks
            // `Arc::get_mut` pooling: shells are freed, not reused. The
            // workspace buffers (the expensive allocation) must still
            // recycle through the retire fallback.
            assert_eq!(
                report.stats.frame_reuse, 0,
                "fence-free cannot pool shells while log entries hold weaks"
            );
        } else {
            assert!(
                report.stats.frame_reuse > 0,
                "{}: frame-per-node schedulers recycle frames",
                backend.name()
            );
        }
        assert!(report.stats.state_reuse > 0, "{}", backend.name());
        // The faithful Cilk baseline must keep allocating.
        let (_, report) = Scheduler::Cilk.run(&p, &cfg).expect("runs");
        assert_eq!(report.stats.state_reuse, 0, "{}", backend.name());
    }
}

#[test]
fn idle_thieves_back_off() {
    // A serial chain gives thieves nothing to steal; they must record
    // back-off escalations rather than spin flat out until the root
    // resolves.
    struct Chain;
    impl Problem for Chain {
        type State = ();
        type Choice = u8;
        type Out = u64;
        fn root(&self) {}
        fn expand(&self, _: &(), depth: u32) -> Expansion<u8, u64> {
            // Busy work per node keeps the owner occupied for several
            // milliseconds in total, so thieves get many failed rounds;
            // the depth stays shallow enough for the check version's
            // recursion in debug builds.
            let mut h = u64::from(depth);
            for i in 0..4_000u64 {
                h = std::hint::black_box(h.wrapping_mul(0x9e3779b97f4a7c15) ^ i);
            }
            std::hint::black_box(h);
            if depth == 1_000 {
                Expansion::Leaf(1)
            } else {
                Expansion::Children(vec![0])
            }
        }
        fn apply(&self, _: &mut (), _: u8) {}
        fn undo(&self, _: &mut (), _: u8) {}
    }
    let cfg = Config::new(4).cutoff(CutoffPolicy::Fixed(1));
    let (got, report) = Scheduler::AdaptiveTc.run(&Chain, &cfg).expect("runs");
    assert_eq!(got, 1);
    assert!(
        report.stats.steal_backoffs > 0,
        "starved thieves must escalate back-off (failed={})",
        report.stats.steals_failed
    );
    assert!(report.stats.steal_backoffs <= report.stats.steals_failed);
}

#[test]
fn tascell_stress_repeated_splits() {
    let p = Checked {
        height: 9,
        fanout: 3,
    };
    let want = expected(&p);
    for seed in 0..5 {
        let cfg = Config::new(4).seed(seed);
        let (got, _) = Scheduler::Tascell.run(&p, &cfg).expect("runs");
        assert_eq!(got, want, "seed {seed}");
    }
}

#[test]
fn timing_instrumentation_does_not_change_results() {
    let p = Checked {
        height: 8,
        fanout: 3,
    };
    let want = expected(&p);
    for s in [Scheduler::Cilk, Scheduler::Tascell, Scheduler::AdaptiveTc] {
        let (got, report) = s.run(&p, &Config::new(2).timing(true)).expect("runs");
        assert_eq!(got, want, "{s}");
        // With timing on, the copy clock must tick for copying schedulers.
        if matches!(s, Scheduler::Cilk) {
            assert!(report.stats.time.copy_ns > 0);
        }
    }
}

#[test]
fn single_node_problem() {
    struct One;
    impl Problem for One {
        type State = ();
        type Choice = u8;
        type Out = u64;
        fn root(&self) {}
        fn expand(&self, _: &(), _: u32) -> Expansion<u8, u64> {
            Expansion::Leaf(7)
        }
        fn apply(&self, _: &mut (), _: u8) {}
        fn undo(&self, _: &mut (), _: u8) {}
    }
    for s in [
        Scheduler::Serial,
        Scheduler::Cilk,
        Scheduler::Tascell,
        Scheduler::AdaptiveTc,
    ] {
        let (got, _) = s.run(&One, &Config::new(4)).expect("runs");
        assert_eq!(got, 7, "{s}");
    }
}

#[test]
fn dead_end_heavy_problem() {
    // Interior nodes whose candidate lists are empty (failed backtracking
    // branches) must reduce to the identity without hanging any scheduler.
    struct DeadEnds;
    impl Problem for DeadEnds {
        type State = u32;
        type Choice = u8;
        type Out = u64;
        fn root(&self) -> u32 {
            0
        }
        fn expand(&self, st: &u32, depth: u32) -> Expansion<u8, u64> {
            if depth == 6 {
                Expansion::Leaf(1)
            } else if st % 3 == 2 {
                Expansion::Children(vec![]) // dead end
            } else {
                Expansion::Children(vec![0, 1, 2])
            }
        }
        fn apply(&self, st: &mut u32, c: u8) {
            *st = *st * 4 + u32::from(c) + 1;
        }
        fn undo(&self, st: &mut u32, c: u8) {
            *st = (*st - u32::from(c) - 1) / 4;
        }
    }
    let want = adaptivetc_core::serial::run(&DeadEnds).0;
    for s in [Scheduler::Cilk, Scheduler::Tascell, Scheduler::AdaptiveTc] {
        let (got, _) = s.run(&DeadEnds, &Config::new(3)).expect("runs");
        assert_eq!(got, want, "{s}");
    }
}
