//! Model-based property tests for the per-worker object pool: arbitrary
//! take/put sequences against a bounded-stack reference model.

use adaptivetc_runtime::pool::Pool;
use proptest::prelude::*;

#[derive(Debug, Clone, Copy)]
enum Op {
    Put(u32),
    Take,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![(0u32..1000).prop_map(Op::Put), Just(Op::Take)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn pool_matches_bounded_stack(
        cap in 0usize..16,
        ops in proptest::collection::vec(op_strategy(), 1..200),
    ) {
        let mut pool: Pool<u32> = Pool::new(cap);
        let mut model: Vec<u32> = Vec::new();
        for op in ops {
            match op {
                Op::Put(v) => {
                    let accepted = pool.put(v);
                    prop_assert_eq!(accepted, model.len() < cap);
                    if accepted {
                        model.push(v);
                    }
                }
                Op::Take => {
                    prop_assert_eq!(pool.take(), model.pop());
                }
            }
            prop_assert_eq!(pool.len(), model.len());
            prop_assert_eq!(pool.is_empty(), model.is_empty());
            prop_assert!(pool.len() <= cap, "bound violated");
            prop_assert_eq!(pool.capacity(), cap);
        }
    }

    #[test]
    fn pool_never_loses_or_duplicates_items(
        puts in proptest::collection::vec(0u32..1000, 1..64),
    ) {
        // Everything accepted must come back exactly once, in LIFO order.
        let mut pool: Pool<u32> = Pool::new(usize::MAX);
        for &v in &puts {
            prop_assert!(pool.put(v));
        }
        let mut drained = Vec::new();
        while let Some(v) = pool.take() {
            drained.push(v);
        }
        drained.reverse();
        prop_assert_eq!(drained, puts);
    }
}
