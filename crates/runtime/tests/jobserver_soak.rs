//! Job-server soak: a randomized stream of jobs with mixed priorities,
//! thread counts, backends and mid-flight cancellations, run against a
//! single long-lived pool.
//!
//! The default run is sized to stay inside the normal test budget (and
//! the heavily-instrumented miri/tsan CI lanes); set `JOBSERVER_SOAK_MS`
//! to a wall-clock budget in milliseconds to keep submitting until it
//! expires (e.g. `JOBSERVER_SOAK_MS=30000` for a real soak).
//!
//! Invariants checked on every configuration:
//!
//! * every handle reaches a terminal state (`wait` returns);
//! * every completed job reduced the exact serial value for its tree;
//! * a job cancelled before it ran carries no report, and one cancelled
//!   mid-flight reports fewer nodes than the full tree;
//! * the server's counters are coherent at shutdown:
//!   `submitted == completed + cancelled` with nothing left queued.

use adaptivetc_core::{serial, Config, CutoffPolicy, DequeBackend, Expansion, Problem};
use adaptivetc_runtime::{JobOutcome, JobServer, Mode, Priority, ServerConfig};
use std::time::{Duration, Instant};

/// Bushy tree whose leaves hash the root path (misrouted or duplicated
/// frames change the sum).
#[derive(Debug, Clone)]
struct Tern {
    height: u32,
}

impl Problem for Tern {
    type State = Vec<u8>;
    type Choice = u8;
    type Out = u64;
    fn root(&self) -> Vec<u8> {
        Vec::new()
    }
    fn expand(&self, path: &Vec<u8>, depth: u32) -> Expansion<u8, u64> {
        if depth == self.height {
            Expansion::Leaf(
                path.iter()
                    .fold(1u64, |a, &c| a.wrapping_mul(31).wrapping_add(u64::from(c)))
                    % 97,
            )
        } else {
            Expansion::Children(vec![0, 1, 2])
        }
    }
    fn apply(&self, path: &mut Vec<u8>, c: u8) {
        path.push(c);
    }
    fn undo(&self, path: &mut Vec<u8>, _c: u8) {
        path.pop();
    }
}

fn nodes_of(height: u32) -> u64 {
    // Ternary tree: (3^(h+1) - 1) / 2 nodes.
    (3u64.pow(height + 1) - 1) / 2
}

struct XorShift64(u64);

impl XorShift64 {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
}

/// One submitted job plus everything needed to judge its outcome.
struct Flight {
    handle: adaptivetc_runtime::JobHandle<u64>,
    height: u32,
    /// Whether the client requested cancellation at any point.
    cancelled: bool,
}

#[test]
fn randomized_job_stream_with_cancellations() {
    let budget = std::env::var("JOBSERVER_SOAK_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .map(Duration::from_millis);
    // Without a wall-clock budget, run a fixed small number of rounds so
    // the test stays cheap under miri/tsan instrumentation.
    let min_rounds = if budget.is_some() { usize::MAX } else { 6 };
    let heights = [2u32, 4, 6, 8];
    let expected: Vec<u64> = heights
        .iter()
        .map(|&h| serial::run(&Tern { height: h }).0)
        .collect();

    let server = JobServer::new(ServerConfig::new(3).queue_capacity(32).work_sharing(true));
    let mut rng = XorShift64(0x5eed_0a5e);
    let start = Instant::now();
    let mut in_flight: Vec<Flight> = Vec::new();
    let mut judged = 0u64;
    let mut completed_seen = 0u64;
    let mut cancelled_seen = 0u64;

    let judge = |f: Flight, completed_seen: &mut u64, cancelled_seen: &mut u64| {
        let hi = heights.iter().position(|&h| h == f.height).unwrap();
        match f.handle.wait() {
            JobOutcome::Completed { out, report } => {
                assert_eq!(out, expected[hi], "height {} reduced wrong", f.height);
                assert_eq!(report.stats.nodes, nodes_of(f.height));
                *completed_seen += 1;
            }
            JobOutcome::Cancelled { report } => {
                if let Some(report) = report {
                    // A mid-flight prune never visits the whole tree twice:
                    // partial counters stay within the tree's node count.
                    assert!(
                        report.stats.nodes <= nodes_of(f.height),
                        "pruned job expanded phantom nodes"
                    );
                } else {
                    assert!(f.cancelled, "job lost its report without a client cancel");
                }
                *cancelled_seen += 1;
            }
        }
    };

    let mut round = 0usize;
    loop {
        let done_by_rounds = round >= min_rounds;
        let done_by_budget = budget.is_some_and(|b| start.elapsed() >= b);
        if done_by_rounds || done_by_budget {
            break;
        }
        round += 1;
        // Submit a burst with randomized shape. Low-priority heavies are
        // submitted first so later high-priority jobs overtake them in the
        // queue (the priority-inversion pattern the lanes must absorb).
        for burst in 0..4 {
            let r = rng.next();
            let height = heights[(r % heights.len() as u64) as usize];
            let threads = 1 + (r >> 8) as usize % 3;
            let backend = DequeBackend::ALL[(r >> 16) as usize % DequeBackend::ALL.len()];
            let priority = match burst {
                0 => Priority::Low,
                1 | 2 => Priority::Normal,
                _ => Priority::High,
            };
            let cfg = Config::new(threads)
                .backend(backend)
                .cutoff(CutoffPolicy::Auto)
                .seed(r);
            match server.submit(Tern { height }, cfg, Mode::Adaptive, priority) {
                Ok(handle) => {
                    // Cancel two thirds of the jobs: half of those
                    // immediately (often still queued), half after a beat
                    // (often mid-flight, sometimes already complete).
                    let cancelled = r % 3 != 2;
                    if r.is_multiple_of(3) {
                        handle.cancel();
                    } else if r % 3 == 1 {
                        std::thread::yield_now();
                        handle.cancel();
                    }
                    in_flight.push(Flight {
                        handle,
                        height,
                        cancelled,
                    });
                }
                Err(e) => {
                    // Admission control pushed back; drain some flights
                    // and keep going.
                    assert!(
                        !in_flight.is_empty(),
                        "empty server rejected a submission: {e}"
                    );
                }
            }
        }
        // Periodically judge the oldest half so the stream overlaps jobs
        // in every lifecycle stage.
        if in_flight.len() >= 8 {
            let rest = in_flight.split_off(4);
            for f in in_flight {
                judge(f, &mut completed_seen, &mut cancelled_seen);
                judged += 1;
            }
            in_flight = rest;
        }
    }
    for f in in_flight {
        judge(f, &mut completed_seen, &mut cancelled_seen);
        judged += 1;
    }
    let stats = server.shutdown().stats;
    assert_eq!(stats.queue_depth, 0, "shutdown left jobs queued");
    assert_eq!(stats.active_jobs, 0, "shutdown left jobs active");
    assert_eq!(
        stats.submitted,
        stats.completed + stats.cancelled,
        "server counters incoherent: {stats:?}"
    );
    assert_eq!(stats.submitted, judged, "a handle was never judged");
    assert_eq!(stats.completed, completed_seen);
    assert_eq!(stats.cancelled, cancelled_seen);
    assert!(completed_seen > 0, "soak never completed a job");
}
