//! Model-based property tests: single-threaded op sequences against a
//! reference double-ended queue model.

use adaptivetc_deque::{PoolDeque, PopSpecial, StealOutcome, TheDeque};
use proptest::prelude::*;
use std::collections::VecDeque;

#[derive(Debug, Clone, Copy)]
enum Op {
    Push(u32),
    PushSpecial(u32),
    Pop,
    PopSpecial,
    Steal,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u32..1000).prop_map(Op::Push),
        (0u32..1000).prop_map(Op::PushSpecial),
        Just(Op::Pop),
        Just(Op::Steal),
        Just(Op::PopSpecial),
    ]
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Task,
    Special,
}

/// Reference model mirroring the documented THE semantics.
#[derive(Default)]
struct Model {
    items: VecDeque<(Kind, u32)>,
}

impl Model {
    fn push(&mut self, v: u32, k: Kind) {
        self.items.push_back((k, v));
    }
    fn pop(&mut self) -> Option<u32> {
        match self.items.back() {
            Some((Kind::Task, _)) => self.items.pop_back().map(|(_, v)| v),
            _ => None,
        }
    }
    fn pop_special(&mut self) -> Option<u32> {
        match self.items.back() {
            Some((Kind::Special, _)) => self.items.pop_back().map(|(_, v)| v),
            _ => None,
        }
    }
    fn steal(&mut self) -> Option<u32> {
        match self.items.front() {
            Some((Kind::Task, _)) => self.items.pop_front().map(|(_, v)| v),
            Some((Kind::Special, _)) => match self.items.get(1) {
                Some((Kind::Task, _)) => {
                    self.items.pop_front();
                    self.items.pop_front().map(|(_, v)| v)
                }
                _ => None,
            },
            None => None,
        }
    }
}

/// Only apply ops that respect the matched push/pop discipline the deques
/// document; unmatched pops are filtered by consulting the model first.
fn valid_pop(model: &Model) -> bool {
    matches!(model.items.back(), Some((Kind::Task, _)) | None)
}
fn valid_pop_special(model: &Model) -> bool {
    matches!(model.items.back(), Some((Kind::Special, _)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn pool_deque_matches_model(ops in proptest::collection::vec(op_strategy(), 1..200)) {
        let dq: PoolDeque<u32> = PoolDeque::new();
        let mut model = Model::default();
        for op in ops {
            match op {
                Op::Push(v) => { dq.push(v); model.push(v, Kind::Task); }
                Op::PushSpecial(v) => { dq.push_special(v); model.push(v, Kind::Special); }
                Op::Pop => {
                    if valid_pop(&model) {
                        prop_assert_eq!(dq.pop(), model.pop());
                    }
                }
                Op::PopSpecial => {
                    if valid_pop_special(&model) {
                        let expect = model.pop_special().map(PopSpecial::Reclaimed)
                            .unwrap_or(PopSpecial::ChildStolen);
                        prop_assert_eq!(dq.pop_special(), expect);
                    }
                }
                Op::Steal => {
                    let expect = model.steal().map(StealOutcome::Stolen)
                        .unwrap_or(StealOutcome::Empty);
                    prop_assert_eq!(dq.steal(), expect);
                }
            }
            prop_assert_eq!(dq.len(), model.items.len());
        }
    }

    #[test]
    fn the_deque_matches_model(ops in proptest::collection::vec(op_strategy(), 1..200)) {
        let dq: TheDeque<u32> = TheDeque::new(512);
        let mut model = Model::default();
        for op in ops {
            match op {
                Op::Push(v) => { dq.push(v).unwrap(); model.push(v, Kind::Task); }
                Op::PushSpecial(v) => { dq.push_special(v).unwrap(); model.push(v, Kind::Special); }
                Op::Pop => {
                    if valid_pop(&model) {
                        prop_assert_eq!(dq.pop(), model.pop());
                    }
                }
                Op::PopSpecial => {
                    if valid_pop_special(&model) {
                        let expect = model.pop_special().map(PopSpecial::Reclaimed)
                            .unwrap_or(PopSpecial::ChildStolen);
                        prop_assert_eq!(dq.pop_special(), expect);
                    }
                }
                Op::Steal => {
                    let expect = model.steal().map(StealOutcome::Stolen)
                        .unwrap_or(StealOutcome::Empty);
                    prop_assert_eq!(dq.steal(), expect);
                }
            }
        }
    }

    #[test]
    fn the_deque_overflow_boundary(cap in 2usize..64, extra in 1usize..10) {
        let dq: TheDeque<usize> = TheDeque::new(cap);
        for i in 0..cap {
            prop_assert!(dq.push(i).is_ok());
        }
        for _ in 0..extra {
            prop_assert!(dq.push(0).is_err());
        }
        // Freeing one slot admits exactly one more push.
        prop_assert!(dq.pop().is_some());
        prop_assert!(dq.push(99).is_ok());
        prop_assert!(dq.push(100).is_err());
    }
}

/// The same single-threaded model, driven through the [`WsDeque`] trait so
/// every backend — including the Chase-Lev special-task extension — is
/// checked against identical reference semantics. Sequences stay below the
/// THE deque's fixed capacity so `push` never overflows.
mod backend_model {
    use super::{op_strategy, valid_pop, valid_pop_special, Kind, Model, Op};
    use adaptivetc_deque::{ChaseLevDeque, PoolDeque, PopSpecial, StealOutcome, TheDeque, WsDeque};
    use proptest::prelude::*;

    fn run_ops<D: WsDeque<u32>>(ops: &[Op]) -> Result<(), TestCaseError> {
        let dq = D::with_capacity(512);
        let mut model = Model::default();
        for &op in ops {
            match op {
                Op::Push(v) => {
                    prop_assert!(dq.push(v).is_ok());
                    model.push(v, Kind::Task);
                }
                Op::PushSpecial(v) => {
                    prop_assert!(dq.push_special(v).is_ok());
                    model.push(v, Kind::Special);
                }
                Op::Pop => {
                    if valid_pop(&model) {
                        prop_assert_eq!(dq.pop(), model.pop());
                    }
                }
                Op::PopSpecial => {
                    if valid_pop_special(&model) {
                        let expect = model
                            .pop_special()
                            .map(PopSpecial::Reclaimed)
                            .unwrap_or(PopSpecial::ChildStolen);
                        prop_assert_eq!(dq.pop_special(), expect);
                    }
                }
                Op::Steal => {
                    let expect = model
                        .steal()
                        .map(StealOutcome::Stolen)
                        .unwrap_or(StealOutcome::Empty);
                    prop_assert_eq!(dq.steal(), expect);
                }
            }
            prop_assert_eq!(dq.len(), model.items.len());
        }
        Ok(())
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        #[test]
        fn the_backend_matches_model(ops in proptest::collection::vec(op_strategy(), 1..200)) {
            run_ops::<TheDeque<u32>>(&ops)?;
        }

        #[test]
        fn chase_lev_backend_matches_model(ops in proptest::collection::vec(op_strategy(), 1..200)) {
            run_ops::<ChaseLevDeque<u32>>(&ops)?;
        }

        #[test]
        fn pool_backend_matches_model(ops in proptest::collection::vec(op_strategy(), 1..200)) {
            run_ops::<PoolDeque<u32>>(&ops)?;
        }
    }
}

mod chase_lev_model {
    use adaptivetc_deque::{ChaseLevDeque, ClSteal};
    use proptest::prelude::*;
    use std::collections::VecDeque;

    #[derive(Debug, Clone, Copy)]
    enum Op {
        Push(u32),
        Pop,
        Steal,
    }

    fn ops() -> impl Strategy<Value = Op> {
        prop_oneof![
            (0u32..1000).prop_map(Op::Push),
            Just(Op::Pop),
            Just(Op::Steal),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        #[test]
        fn chase_lev_matches_model(ops in proptest::collection::vec(ops(), 1..300)) {
            let dq: ChaseLevDeque<u32> = ChaseLevDeque::new();
            let mut model: VecDeque<u32> = VecDeque::new();
            for op in ops {
                match op {
                    Op::Push(v) => { dq.push(v); model.push_back(v); }
                    Op::Pop => prop_assert_eq!(dq.pop(), model.pop_back()),
                    Op::Steal => {
                        let expect = model.pop_front().map(ClSteal::Stolen)
                            .unwrap_or(ClSteal::Empty);
                        prop_assert_eq!(dq.steal(), expect);
                    }
                }
                prop_assert_eq!(dq.len(), model.len());
            }
        }
    }
}
