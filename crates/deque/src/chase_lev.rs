//! A dynamic circular work-stealing deque (Chase & Lev, SPAA 2005),
//! extended with AdaptiveTC's special-task operations.
//!
//! The paper cites this design as the established fix for the overflow
//! proneness of Cilk's fixed arrays: the owner grows the circular buffer
//! on demand, thieves synchronise with a single CAS on the head index, and
//! no lock is ever taken. Unlike the THE deque there is no per-deque thief
//! lock, so concurrent thieves scale, at the cost of `Retry` outcomes when
//! a CAS is lost.
//!
//! # Special tasks without a lock
//!
//! Entries carry a special/regular tag. The THE deque's
//! `steal_specialtask` (retire the special entry, take its child) is a
//! single locked step; here it decomposes into two independent CAS claims:
//! a thief that finds a *special* entry at the top — and sees at least one
//! entry above it — claims the special with a CAS, **drops** it (a special
//! is never executed by a thief), and loops to claim the entry above,
//! which by then is the new top. Every CAS claims exactly one slot, so the
//! standard Chase-Lev safety argument applies unchanged to each step.
//!
//! The decomposition admits one benign race the locked protocol cannot
//! produce: between the two claims the owner may pop the child, so the
//! special is retired yet nothing was stolen. The owner's
//! [`pop_special`](ChaseLevDeque::pop_special) then reports
//! [`PopSpecial::ChildStolen`] conservatively; the runtime already treats
//! `ChildStolen` as "drop the handle and rely on the delivery chain",
//! which is correct in both cases (completion is tracked by child
//! delivery counts, never by deque occupancy — see
//! `adaptivetc-runtime`'s frame module).
//!
//! Retired buffers are kept alive until the deque is dropped (a thief may
//! still be reading a stale buffer pointer); for the scheduler workloads
//! here the deque holds `Arc` handles, so the memory overhead is a few
//! machine words per growth step.

use crate::sync::{fence, AtomicI64, AtomicPtr, Mutex, Ordering, RaceCell};
use crate::the::PopSpecial;
use crossbeam_utils::CachePadded;
use std::fmt;
use std::mem::MaybeUninit;

/// A tagged deque entry: special (transition) tasks are never handed to
/// thieves.
struct Entry<T> {
    special: bool,
    value: T,
}

struct Buffer<T> {
    /// Capacity, always a power of two.
    cap: usize,
    /// Plain cells; owner-side accesses are race-checked under
    /// `cfg(adaptivetc_check)`, thief reads go through the unchecked
    /// [`RaceCell::speculative`] escape hatch (see [`Buffer::read_speculative`]).
    slots: Box<[RaceCell<MaybeUninit<Entry<T>>>]>,
}

impl<T> Buffer<T> {
    fn alloc(cap: usize) -> *mut Buffer<T> {
        let slots = (0..cap)
            .map(|_| RaceCell::new(MaybeUninit::uninit()))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Box::into_raw(Box::new(Buffer { cap, slots }))
    }

    /// Owner-side read (pop, grow, drop): exclusive or read-read only.
    ///
    /// # Safety
    ///
    /// The caller must guarantee `index` was initialised by a prior
    /// `write` and not yet retired. A caller that loses the claiming CAS
    /// must `mem::forget` the value so the true owner's copy is the only
    /// one dropped.
    unsafe fn read(&self, index: i64) -> Entry<T> {
        let slot = &self.slots[(index as usize) & (self.cap - 1)];
        // SAFETY: initialisation of the slot is the caller's contract
        // (above); the `& (cap - 1)` mask keeps the access in bounds for
        // the power-of-two buffer.
        unsafe { (*slot.read()).assume_init_read() }
    }

    /// Thief-side read: deliberately *speculative*, Chase-Lev's one benign
    /// race. A thief that loses its claiming CAS may have read a slot the
    /// owner was concurrently recycling; the torn value is forgotten, and
    /// the winning claim's CAS (SeqCst success, observed by the owner's
    /// Acquire load of `top` in the push capacity check) is what orders
    /// the recycling write after the *winner's* read. The race detector
    /// cannot express "losers discard", so this path bypasses it; kept
    /// separate from [`Buffer::read`] so every checked call site stays
    /// checked.
    ///
    /// # Safety
    ///
    /// Same contract as [`Buffer::read`].
    unsafe fn read_speculative(&self, index: i64) -> Entry<T> {
        let slot = &self.slots[(index as usize) & (self.cap - 1)];
        // SAFETY: initialisation per the caller's contract; masked index
        // is in bounds.
        unsafe { (*slot.speculative()).assume_init_read() }
    }

    /// # Safety
    ///
    /// Only the owner may call this, and only for an index in the open
    /// region `[top, bottom]` of the buffer that no concurrent reader can
    /// observe as initialised yet (bottom is published only after the
    /// write).
    unsafe fn write(&self, index: i64, entry: Entry<T>) {
        let slot = &self.slots[(index as usize) & (self.cap - 1)];
        // SAFETY: exclusive owner access per the contract above; masked
        // index is in bounds.
        unsafe {
            (*slot.write()).write(entry);
        }
    }
}

/// Result of [`ChaseLevDeque::steal`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClSteal<T> {
    /// A task was stolen (for a special top entry, this is its child).
    Stolen(T),
    /// The deque was empty or held only an unstealable special entry.
    Empty,
    /// Lost a race with another thief or the owner; try again.
    Retry,
}

/// A lock-free growable work-stealing deque with special-task support.
///
/// The owner calls [`push`](ChaseLevDeque::push),
/// [`pop`](ChaseLevDeque::pop), [`push_special`](ChaseLevDeque::push_special)
/// and [`pop_special`](ChaseLevDeque::pop_special); any thread may call
/// [`steal`](ChaseLevDeque::steal). Pops must match pushes in LIFO order
/// by the same owner (the structured spawn discipline of Cilk-style
/// runtimes).
///
/// # Examples
///
/// ```
/// use adaptivetc_deque::{ChaseLevDeque, ClSteal, PopSpecial};
///
/// let dq: ChaseLevDeque<u32> = ChaseLevDeque::new();
/// for i in 0..1_000 { dq.push(i); }            // grows, never overflows
/// assert_eq!(dq.steal(), ClSteal::Stolen(0));  // FIFO for thieves
/// assert_eq!(dq.pop(), Some(999));             // LIFO for the owner
///
/// let dq: ChaseLevDeque<u32> = ChaseLevDeque::new();
/// dq.push_special(100);                         // the transition task
/// dq.push(1);                                   // its child
/// assert_eq!(dq.steal(), ClSteal::Stolen(1));   // thief gets the child
/// assert_eq!(dq.pop_special(), PopSpecial::ChildStolen);
/// ```
pub struct ChaseLevDeque<T> {
    top: CachePadded<AtomicI64>,
    bottom: CachePadded<AtomicI64>,
    buffer: AtomicPtr<Buffer<T>>,
    /// Buffers retired by growth, freed on drop.
    retired: Mutex<Vec<*mut Buffer<T>>>,
}

// SAFETY: the Chase-Lev protocol guarantees each index is claimed by
// exactly one party; retired buffers are only freed with exclusive access.
unsafe impl<T: Send> Send for ChaseLevDeque<T> {}
unsafe impl<T: Send> Sync for ChaseLevDeque<T> {}

const MIN_CAP: usize = 16;

impl<T> ChaseLevDeque<T> {
    /// Create an empty deque with the minimum capacity.
    pub fn new() -> Self {
        Self::with_capacity(MIN_CAP)
    }

    /// Create an empty deque with at least `capacity` initial slots
    /// (rounded up to a power of two, minimum 16). The deque still grows
    /// beyond this on demand.
    pub fn with_capacity(capacity: usize) -> Self {
        let cap = capacity.next_power_of_two().max(MIN_CAP);
        ChaseLevDeque {
            top: CachePadded::new(AtomicI64::new(0)),
            bottom: CachePadded::new(AtomicI64::new(0)),
            buffer: AtomicPtr::new(Buffer::alloc(cap)),
            retired: Mutex::new(Vec::new()),
        }
    }

    /// Entries currently present (racy; for statistics).
    pub fn len(&self) -> usize {
        let b = self.bottom.load(Ordering::Relaxed);
        let t = self.top.load(Ordering::Relaxed);
        (b - t).max(0) as usize
    }

    /// Whether the deque currently appears empty (racy).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Current buffer capacity (for the growth tests).
    pub fn capacity(&self) -> usize {
        // SAFETY: `buffer` always points to a live allocation — buffers
        // are only retired in `drop`, which has `&mut self`, so no
        // concurrent call can observe a dangling pointer.
        unsafe { (*self.buffer.load(Ordering::Relaxed)).cap }
    }

    fn push_entry(&self, entry: Entry<T>) {
        let b = self.bottom.load(Ordering::Relaxed);
        let t = self.top.load(Ordering::Acquire);
        let mut buf = self.buffer.load(Ordering::Relaxed);
        // SAFETY: the owner is the only mutator of `buffer`.
        unsafe {
            if (b - t) as usize >= (*buf).cap {
                buf = self.grow(b, t, buf);
            }
            (*buf).write(b, entry);
        }
        self.bottom.store(b + 1, Ordering::Release);
    }

    /// Owner: push a regular task at the bottom, growing the buffer if
    /// full.
    pub fn push(&self, value: T) {
        self.push_entry(Entry {
            special: false,
            value,
        });
    }

    /// Owner: push a special (transition) task at the bottom. Thieves will
    /// never receive this entry from [`steal`](ChaseLevDeque::steal); they
    /// take the entry above it instead.
    pub fn push_special(&self, value: T) {
        self.push_entry(Entry {
            special: true,
            value,
        });
    }

    /// Double the buffer, copying live entries. Owner only.
    unsafe fn grow(&self, b: i64, t: i64, old: *mut Buffer<T>) -> *mut Buffer<T> {
        // SAFETY (whole fn): owner-exclusive; thieves read the old buffer
        // only for indices they have claimed via CAS, and raw slot moves do
        // not drop.
        unsafe {
            let new = Buffer::alloc((*old).cap * 2);
            let mut i = t;
            while i < b {
                let v = (*old).read(i);
                (*new).write(i, v);
                i += 1;
            }
            self.buffer.store(new, Ordering::Release);
            self.retired.lock().push(old);
            new
        }
    }

    /// The standard Chase-Lev bottom pop, returning the raw tagged entry.
    fn pop_entry(&self) -> Option<Entry<T>> {
        let b = self.bottom.load(Ordering::Relaxed) - 1;
        let buf = self.buffer.load(Ordering::Relaxed);
        self.bottom.store(b, Ordering::Relaxed);
        fence(Ordering::SeqCst);
        let t = self.top.load(Ordering::Relaxed);
        if t > b {
            // Empty: restore the canonical shape.
            self.bottom.store(b + 1, Ordering::Relaxed);
            return None;
        }
        // SAFETY: index b is below the published bottom; contention on the
        // last element is resolved by the CAS below.
        let entry = unsafe { (*buf).read(b) };
        if t == b {
            // Last element: race thieves for it.
            if self
                .top
                .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
                .is_err()
            {
                // Lost: a thief took it; forget our read (the thief owns it).
                std::mem::forget(entry);
                self.bottom.store(b + 1, Ordering::Relaxed);
                return None;
            }
            self.bottom.store(b + 1, Ordering::Relaxed);
            return Some(entry);
        }
        Some(entry)
    }

    /// Owner: pop a regular task from the bottom; `None` if it was stolen.
    pub fn pop(&self) -> Option<T> {
        let entry = self.pop_entry()?;
        debug_assert!(
            !entry.special,
            "pop must match a regular push (LIFO discipline violated)"
        );
        Some(entry.value)
    }

    /// Owner: pop a special entry, detecting whether a thief consumed it.
    ///
    /// Unlike [`TheDeque::pop_special`](crate::TheDeque::pop_special), a
    /// `ChildStolen` outcome here may also cover the benign race where the
    /// special was retired by a thief that then lost its child to this
    /// owner's earlier [`pop`](ChaseLevDeque::pop) (see the module
    /// documentation); callers must treat `ChildStolen` as "handle gone",
    /// not as a guarantee that a child task is running elsewhere.
    pub fn pop_special(&self) -> PopSpecial<T> {
        match self.pop_entry() {
            Some(entry) => {
                debug_assert!(
                    entry.special,
                    "pop_special must match a push_special (LIFO discipline violated)"
                );
                PopSpecial::Reclaimed(entry.value)
            }
            None => PopSpecial::ChildStolen,
        }
    }

    /// Thief: steal from the top.
    ///
    /// A special entry at the top is retired (claimed and dropped) and the
    /// entry above it is taken instead; a special with nothing above it is
    /// left in place and reported as [`ClSteal::Empty`].
    pub fn steal(&self) -> ClSteal<T> {
        loop {
            let t = self.top.load(Ordering::Acquire);
            fence(Ordering::SeqCst);
            let b = self.bottom.load(Ordering::Acquire);
            if t >= b {
                return ClSteal::Empty;
            }
            let buf = self.buffer.load(Ordering::Acquire);
            // SAFETY: speculative read of index `t`, which `t < b` proved
            // initialised; the claim is validated by the CAS below, and on
            // failure the value is forgotten (another party owns the
            // slot), so no double drop can occur.
            let entry = unsafe { (*buf).read_speculative(t) };
            if entry.special {
                if t + 1 >= b {
                    // A lone special is unstealable: leave it to the owner.
                    std::mem::forget(entry);
                    return ClSteal::Empty;
                }
                // Peek the child's tag before claiming anything: two
                // adjacent specials cannot arise from the five-version FSM,
                // so refuse defensively rather than retire a chain of
                // specials (mirrors the THE deque's behaviour).
                // SAFETY: speculative read like the top read — `t + 1 < b`
                // proved the index initialised, index t+1 cannot be
                // reclaimed before index t (which the CAS below
                // validates), and the value is forgotten immediately so it
                // is never dropped here.
                let above = unsafe { (*buf).read_speculative(t + 1) };
                let above_is_special = above.special;
                std::mem::forget(above);
                if above_is_special {
                    std::mem::forget(entry);
                    return ClSteal::Empty;
                }
                if self
                    .top
                    .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
                    .is_ok()
                {
                    // steal_specialtask, step 1: the special entry is
                    // retired — dropped, never executed. Its child is now
                    // the top; loop to claim it.
                    drop(entry);
                    continue;
                }
                std::mem::forget(entry);
                return ClSteal::Retry;
            }
            if self
                .top
                .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
                .is_ok()
            {
                return ClSteal::Stolen(entry.value);
            }
            std::mem::forget(entry);
            return ClSteal::Retry;
        }
    }
}

impl<T> Default for ChaseLevDeque<T> {
    fn default() -> Self {
        ChaseLevDeque::new()
    }
}

impl<T> Drop for ChaseLevDeque<T> {
    fn drop(&mut self) {
        // Drain live entries.
        let t = self.top.load(Ordering::Relaxed);
        let b = self.bottom.load(Ordering::Relaxed);
        let buf = self.buffer.load(Ordering::Relaxed);
        let mut i = t;
        while i < b {
            // SAFETY: exclusive access in Drop.
            unsafe { drop((*buf).read(i)) };
            i += 1;
        }
        // SAFETY: reconstruct and drop the boxes.
        unsafe {
            drop(Box::from_raw(buf));
            for old in self.retired.lock().drain(..) {
                drop(Box::from_raw(old));
            }
        }
    }
}

impl<T> fmt::Debug for ChaseLevDeque<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ChaseLevDeque")
            .field("top", &self.top.load(Ordering::Relaxed))
            .field("bottom", &self.bottom.load(Ordering::Relaxed))
            .field("capacity", &self.capacity())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::Arc;

    #[test]
    fn lifo_owner_fifo_thief() {
        let d: ChaseLevDeque<u32> = ChaseLevDeque::new();
        d.push(1);
        d.push(2);
        d.push(3);
        assert_eq!(d.steal(), ClSteal::Stolen(1));
        assert_eq!(d.pop(), Some(3));
        assert_eq!(d.steal(), ClSteal::Stolen(2));
        assert_eq!(d.pop(), None);
        assert_eq!(d.steal(), ClSteal::Empty);
    }

    #[test]
    fn grows_past_initial_capacity() {
        let d: ChaseLevDeque<usize> = ChaseLevDeque::new();
        let initial = d.capacity();
        for i in 0..10 * initial {
            d.push(i);
        }
        assert!(d.capacity() > initial);
        assert_eq!(d.len(), 10 * initial);
        // Everything still pops in LIFO order.
        for i in (0..10 * initial).rev() {
            assert_eq!(d.pop(), Some(i));
        }
    }

    #[test]
    fn with_capacity_rounds_up() {
        let d: ChaseLevDeque<u32> = ChaseLevDeque::with_capacity(100);
        assert_eq!(d.capacity(), 128);
        let d: ChaseLevDeque<u32> = ChaseLevDeque::with_capacity(0);
        assert_eq!(d.capacity(), 16);
    }

    #[test]
    fn pop_empty_repeatedly_is_safe() {
        let d: ChaseLevDeque<u32> = ChaseLevDeque::new();
        for _ in 0..10 {
            assert_eq!(d.pop(), None);
        }
        d.push(5);
        assert_eq!(d.pop(), Some(5));
    }

    #[test]
    fn special_is_never_stolen_alone() {
        let d: ChaseLevDeque<u32> = ChaseLevDeque::new();
        d.push_special(42);
        assert_eq!(d.steal(), ClSteal::Empty);
        assert_eq!(d.pop_special(), PopSpecial::Reclaimed(42));
    }

    #[test]
    fn steal_special_takes_child_and_pop_special_detects() {
        let d: ChaseLevDeque<u32> = ChaseLevDeque::new();
        d.push_special(42);
        d.push(7);
        assert_eq!(d.steal(), ClSteal::Stolen(7));
        assert_eq!(d.pop_special(), PopSpecial::ChildStolen);
        // Deque is now canonically empty and reusable.
        assert!(d.is_empty());
        d.push_special(43);
        d.push(8);
        assert_eq!(d.pop(), Some(8));
        assert_eq!(d.pop_special(), PopSpecial::Reclaimed(43));
    }

    #[test]
    fn adjacent_specials_are_refused() {
        // Cannot arise from the FSM; the deque refuses defensively, as the
        // THE implementation does.
        let d: ChaseLevDeque<u32> = ChaseLevDeque::new();
        d.push_special(1);
        d.push_special(2);
        assert_eq!(d.steal(), ClSteal::Empty);
        assert_eq!(d.pop_special(), PopSpecial::Reclaimed(2));
        assert_eq!(d.pop_special(), PopSpecial::Reclaimed(1));
    }

    #[test]
    fn regular_tasks_below_special_are_stolen_first() {
        let d: ChaseLevDeque<u32> = ChaseLevDeque::new();
        d.push(1);
        d.push_special(42);
        d.push(2);
        assert_eq!(d.steal(), ClSteal::Stolen(1));
        assert_eq!(d.steal(), ClSteal::Stolen(2)); // via the special
        assert_eq!(d.pop_special(), PopSpecial::ChildStolen);
        assert!(d.is_empty());
    }

    #[test]
    fn check_version_loop_shape() {
        // Mirrors the paper's check version: the special is re-pushed per
        // child; some children are stolen, some are not.
        let d: ChaseLevDeque<u32> = ChaseLevDeque::new();
        for (i, stolen_by_thief) in [(0u32, false), (1, true), (2, false)] {
            d.push_special(99);
            d.push(i);
            if stolen_by_thief {
                assert_eq!(d.steal(), ClSteal::Stolen(i));
                assert_eq!(d.pop_special(), PopSpecial::ChildStolen);
            } else {
                assert_eq!(d.pop(), Some(i));
                assert_eq!(d.pop_special(), PopSpecial::Reclaimed(99));
            }
        }
        assert!(d.is_empty());
    }

    #[test]
    fn growth_preserves_special_tags() {
        let d: ChaseLevDeque<u32> = ChaseLevDeque::with_capacity(16);
        d.push_special(1000);
        for i in 0..100 {
            d.push(i); // forces growth with the special live at the head
        }
        assert!(d.capacity() > 16);
        assert_eq!(d.steal(), ClSteal::Stolen(0)); // child via the special
        for i in 1..100 {
            assert_eq!(d.steal(), ClSteal::Stolen(i));
        }
        assert_eq!(d.pop_special(), PopSpecial::ChildStolen);
    }

    #[test]
    fn drop_releases_entries_and_buffers() {
        static DROPS: AtomicU64 = AtomicU64::new(0);
        struct Token;
        impl Drop for Token {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }
        {
            let d: ChaseLevDeque<Token> = ChaseLevDeque::new();
            d.push_special(Token);
            for _ in 0..100 {
                d.push(Token); // forces growth with live entries
            }
            for _ in 0..40 {
                drop(d.pop());
            }
        }
        assert_eq!(DROPS.load(Ordering::SeqCst), 101);
    }

    #[test]
    fn concurrent_conservation() {
        const ROUNDS: u64 = 30_000;
        let d: Arc<ChaseLevDeque<u64>> = Arc::new(ChaseLevDeque::new());
        let stolen = Arc::new(AtomicU64::new(0));
        let popped = Arc::new(AtomicU64::new(0));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        std::thread::scope(|s| {
            for _ in 0..2 {
                let d = Arc::clone(&d);
                let stolen = Arc::clone(&stolen);
                let stop = Arc::clone(&stop);
                s.spawn(move || loop {
                    match d.steal() {
                        ClSteal::Stolen(v) => {
                            stolen.fetch_add(v, Ordering::Relaxed);
                        }
                        ClSteal::Retry => std::hint::spin_loop(),
                        ClSteal::Empty => {
                            if stop.load(Ordering::Relaxed) {
                                break;
                            }
                            std::hint::spin_loop();
                        }
                    }
                });
            }
            for i in 1..=ROUNDS {
                d.push(i);
                if i % 2 == 0 {
                    if let Some(v) = d.pop() {
                        popped.fetch_add(v, Ordering::Relaxed);
                    }
                }
            }
            while let Some(v) = d.pop() {
                popped.fetch_add(v, Ordering::Relaxed);
            }
            stop.store(true, Ordering::Relaxed);
        });
        assert_eq!(
            stolen.load(Ordering::SeqCst) + popped.load(Ordering::SeqCst),
            ROUNDS * (ROUNDS + 1) / 2
        );
    }

    #[test]
    fn concurrent_special_children_conserved() {
        // Owner repeatedly runs the check-version loop while thieves poach
        // children through the special entry. Every regular value must be
        // claimed exactly once; special entries are retired, never stolen.
        const ROUNDS: u64 = 10_000;
        const SPECIAL: u64 = u64::MAX; // sentinel: must never be claimed
        let d: Arc<ChaseLevDeque<u64>> = Arc::new(ChaseLevDeque::new());
        let claimed = Arc::new(AtomicU64::new(0));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));

        std::thread::scope(|s| {
            for _ in 0..2 {
                let d = Arc::clone(&d);
                let claimed = Arc::clone(&claimed);
                let stop = Arc::clone(&stop);
                s.spawn(move || loop {
                    match d.steal() {
                        ClSteal::Stolen(v) => {
                            assert_ne!(v, SPECIAL, "a special entry was stolen");
                            claimed.fetch_add(v, Ordering::Relaxed);
                        }
                        ClSteal::Retry => std::hint::spin_loop(),
                        ClSteal::Empty => {
                            if stop.load(Ordering::Relaxed) {
                                break;
                            }
                            std::hint::spin_loop();
                        }
                    }
                });
            }
            for i in 1..=ROUNDS {
                d.push_special(SPECIAL);
                d.push(i);
                match d.pop() {
                    Some(v) => {
                        claimed.fetch_add(v, Ordering::Relaxed);
                        // The special may have been retired concurrently
                        // (benign race): either outcome is legal here.
                        match d.pop_special() {
                            PopSpecial::Reclaimed(s) => assert_eq!(s, SPECIAL),
                            PopSpecial::ChildStolen => {}
                        }
                    }
                    None => {
                        assert!(matches!(d.pop_special(), PopSpecial::ChildStolen));
                    }
                }
            }
            stop.store(true, Ordering::Relaxed);
        });

        assert_eq!(claimed.load(Ordering::SeqCst), ROUNDS * (ROUNDS + 1) / 2);
    }
}
