//! A dynamic circular work-stealing deque (Chase & Lev, SPAA 2005).
//!
//! The paper cites this design as the established fix for the overflow
//! proneness of Cilk's fixed arrays: the owner grows the circular buffer
//! on demand, thieves synchronise with a single CAS on the head index, and
//! no lock is ever taken. It is provided as a third backing store (next to
//! [`TheDeque`](crate::TheDeque) and [`PoolDeque`](crate::PoolDeque)) and
//! exercised by the deque ablation benchmarks.
//!
//! Retired buffers are kept alive until the deque is dropped (a thief may
//! still be reading a stale buffer pointer); for the scheduler workloads
//! here the deque holds `Arc` handles, so the memory overhead is a few
//! machine words per growth step.

use crossbeam_utils::CachePadded;
use parking_lot::Mutex;
use std::cell::UnsafeCell;
use std::fmt;
use std::mem::MaybeUninit;
use std::sync::atomic::{fence, AtomicI64, AtomicPtr, Ordering};

struct Buffer<T> {
    /// Capacity, always a power of two.
    cap: usize,
    slots: Box<[UnsafeCell<MaybeUninit<T>>]>,
}

impl<T> Buffer<T> {
    fn alloc(cap: usize) -> *mut Buffer<T> {
        let slots = (0..cap)
            .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Box::into_raw(Box::new(Buffer { cap, slots }))
    }

    unsafe fn read(&self, index: i64) -> T {
        let slot = &self.slots[(index as usize) & (self.cap - 1)];
        unsafe { (*slot.get()).assume_init_read() }
    }

    unsafe fn write(&self, index: i64, value: T) {
        let slot = &self.slots[(index as usize) & (self.cap - 1)];
        unsafe {
            (*slot.get()).write(value);
        }
    }
}

/// Result of [`ChaseLevDeque::steal`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClSteal<T> {
    /// A task was stolen.
    Stolen(T),
    /// The deque was empty.
    Empty,
    /// Lost a race with another thief or the owner; try again.
    Retry,
}

/// A lock-free growable work-stealing deque.
///
/// The owner calls [`push`](ChaseLevDeque::push) and
/// [`pop`](ChaseLevDeque::pop); any thread may call
/// [`steal`](ChaseLevDeque::steal). Unlike the THE deque there is no
/// special-task support — this is the general-purpose substrate the paper
/// compares against, not the AdaptiveTC-specific one.
///
/// # Examples
///
/// ```
/// use adaptivetc_deque::{ChaseLevDeque, ClSteal};
///
/// let dq: ChaseLevDeque<u32> = ChaseLevDeque::new();
/// for i in 0..1_000 { dq.push(i); }            // grows, never overflows
/// assert_eq!(dq.steal(), ClSteal::Stolen(0));  // FIFO for thieves
/// assert_eq!(dq.pop(), Some(999));             // LIFO for the owner
/// ```
pub struct ChaseLevDeque<T> {
    top: CachePadded<AtomicI64>,
    bottom: CachePadded<AtomicI64>,
    buffer: AtomicPtr<Buffer<T>>,
    /// Buffers retired by growth, freed on drop.
    retired: Mutex<Vec<*mut Buffer<T>>>,
}

// SAFETY: the Chase-Lev protocol guarantees each index is claimed by
// exactly one party; retired buffers are only freed with exclusive access.
unsafe impl<T: Send> Send for ChaseLevDeque<T> {}
unsafe impl<T: Send> Sync for ChaseLevDeque<T> {}

const MIN_CAP: usize = 16;

impl<T> ChaseLevDeque<T> {
    /// Create an empty deque with the minimum capacity.
    pub fn new() -> Self {
        ChaseLevDeque {
            top: CachePadded::new(AtomicI64::new(0)),
            bottom: CachePadded::new(AtomicI64::new(0)),
            buffer: AtomicPtr::new(Buffer::alloc(MIN_CAP)),
            retired: Mutex::new(Vec::new()),
        }
    }

    /// Entries currently present (racy; for statistics).
    pub fn len(&self) -> usize {
        let b = self.bottom.load(Ordering::Relaxed);
        let t = self.top.load(Ordering::Relaxed);
        (b - t).max(0) as usize
    }

    /// Whether the deque currently appears empty (racy).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Current buffer capacity (for the growth tests).
    pub fn capacity(&self) -> usize {
        unsafe { (*self.buffer.load(Ordering::Relaxed)).cap }
    }

    /// Owner: push at the bottom, growing the buffer if full.
    pub fn push(&self, value: T) {
        let b = self.bottom.load(Ordering::Relaxed);
        let t = self.top.load(Ordering::Acquire);
        let mut buf = self.buffer.load(Ordering::Relaxed);
        // SAFETY: the owner is the only mutator of `buffer`.
        unsafe {
            if (b - t) as usize >= (*buf).cap {
                buf = self.grow(b, t, buf);
            }
            (*buf).write(b, value);
        }
        self.bottom.store(b + 1, Ordering::Release);
    }

    /// Double the buffer, copying live entries. Owner only.
    unsafe fn grow(&self, b: i64, t: i64, old: *mut Buffer<T>) -> *mut Buffer<T> {
        // SAFETY (whole fn): owner-exclusive; thieves read the old buffer
        // only for indices they have claimed via CAS, and raw slot moves do
        // not drop.
        unsafe {
            let new = Buffer::alloc((*old).cap * 2);
            let mut i = t;
            while i < b {
                let v = (*old).read(i);
                (*new).write(i, v);
                i += 1;
            }
            self.buffer.store(new, Ordering::Release);
            self.retired.lock().push(old);
            new
        }
    }

    /// Owner: pop from the bottom.
    pub fn pop(&self) -> Option<T> {
        let b = self.bottom.load(Ordering::Relaxed) - 1;
        let buf = self.buffer.load(Ordering::Relaxed);
        self.bottom.store(b, Ordering::Relaxed);
        fence(Ordering::SeqCst);
        let t = self.top.load(Ordering::Relaxed);
        if t > b {
            // Empty: restore the canonical shape.
            self.bottom.store(b + 1, Ordering::Relaxed);
            return None;
        }
        // SAFETY: index b is below the published bottom; contention on the
        // last element is resolved by the CAS below.
        let value = unsafe { (*buf).read(b) };
        if t == b {
            // Last element: race thieves for it.
            if self
                .top
                .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
                .is_err()
            {
                // Lost: a thief took it; forget our read (the thief owns it).
                std::mem::forget(value);
                self.bottom.store(b + 1, Ordering::Relaxed);
                return None;
            }
            self.bottom.store(b + 1, Ordering::Relaxed);
            return Some(value);
        }
        Some(value)
    }

    /// Thief: steal from the top.
    pub fn steal(&self) -> ClSteal<T> {
        let t = self.top.load(Ordering::Acquire);
        fence(Ordering::SeqCst);
        let b = self.bottom.load(Ordering::Acquire);
        if t >= b {
            return ClSteal::Empty;
        }
        let buf = self.buffer.load(Ordering::Acquire);
        // Speculatively read, then claim with a CAS; on failure the value
        // must be forgotten (another party owns the slot).
        let value = unsafe { (*buf).read(t) };
        if self
            .top
            .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
            .is_err()
        {
            std::mem::forget(value);
            return ClSteal::Retry;
        }
        ClSteal::Stolen(value)
    }
}

impl<T> Default for ChaseLevDeque<T> {
    fn default() -> Self {
        ChaseLevDeque::new()
    }
}

impl<T> Drop for ChaseLevDeque<T> {
    fn drop(&mut self) {
        // Drain live entries.
        let t = self.top.load(Ordering::Relaxed);
        let b = self.bottom.load(Ordering::Relaxed);
        let buf = self.buffer.load(Ordering::Relaxed);
        let mut i = t;
        while i < b {
            // SAFETY: exclusive access in Drop.
            unsafe { drop((*buf).read(i)) };
            i += 1;
        }
        // SAFETY: reconstruct and drop the boxes.
        unsafe {
            drop(Box::from_raw(buf));
            for old in self.retired.lock().drain(..) {
                drop(Box::from_raw(old));
            }
        }
    }
}

impl<T> fmt::Debug for ChaseLevDeque<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ChaseLevDeque")
            .field("top", &self.top.load(Ordering::Relaxed))
            .field("bottom", &self.bottom.load(Ordering::Relaxed))
            .field("capacity", &self.capacity())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::Arc;

    #[test]
    fn lifo_owner_fifo_thief() {
        let d: ChaseLevDeque<u32> = ChaseLevDeque::new();
        d.push(1);
        d.push(2);
        d.push(3);
        assert_eq!(d.steal(), ClSteal::Stolen(1));
        assert_eq!(d.pop(), Some(3));
        assert_eq!(d.steal(), ClSteal::Stolen(2));
        assert_eq!(d.pop(), None);
        assert_eq!(d.steal(), ClSteal::Empty);
    }

    #[test]
    fn grows_past_initial_capacity() {
        let d: ChaseLevDeque<usize> = ChaseLevDeque::new();
        let initial = d.capacity();
        for i in 0..10 * initial {
            d.push(i);
        }
        assert!(d.capacity() > initial);
        assert_eq!(d.len(), 10 * initial);
        // Everything still pops in LIFO order.
        for i in (0..10 * initial).rev() {
            assert_eq!(d.pop(), Some(i));
        }
    }

    #[test]
    fn pop_empty_repeatedly_is_safe() {
        let d: ChaseLevDeque<u32> = ChaseLevDeque::new();
        for _ in 0..10 {
            assert_eq!(d.pop(), None);
        }
        d.push(5);
        assert_eq!(d.pop(), Some(5));
    }

    #[test]
    fn drop_releases_entries_and_buffers() {
        static DROPS: AtomicU64 = AtomicU64::new(0);
        struct Token;
        impl Drop for Token {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }
        {
            let d: ChaseLevDeque<Token> = ChaseLevDeque::new();
            for _ in 0..100 {
                d.push(Token); // forces growth with live entries
            }
            for _ in 0..40 {
                drop(d.pop());
            }
        }
        assert_eq!(DROPS.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn concurrent_conservation() {
        const ROUNDS: u64 = 30_000;
        let d: Arc<ChaseLevDeque<u64>> = Arc::new(ChaseLevDeque::new());
        let stolen = Arc::new(AtomicU64::new(0));
        let popped = Arc::new(AtomicU64::new(0));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        std::thread::scope(|s| {
            for _ in 0..2 {
                let d = Arc::clone(&d);
                let stolen = Arc::clone(&stolen);
                let stop = Arc::clone(&stop);
                s.spawn(move || loop {
                    match d.steal() {
                        ClSteal::Stolen(v) => {
                            stolen.fetch_add(v, Ordering::Relaxed);
                        }
                        ClSteal::Retry => std::hint::spin_loop(),
                        ClSteal::Empty => {
                            if stop.load(Ordering::Relaxed) {
                                break;
                            }
                            std::hint::spin_loop();
                        }
                    }
                });
            }
            for i in 1..=ROUNDS {
                d.push(i);
                if i % 2 == 0 {
                    if let Some(v) = d.pop() {
                        popped.fetch_add(v, Ordering::Relaxed);
                    }
                }
            }
            while let Some(v) = d.pop() {
                popped.fetch_add(v, Ordering::Relaxed);
            }
            stop.store(true, Ordering::Relaxed);
        });
        assert_eq!(
            stolen.load(Ordering::SeqCst) + popped.load(Ordering::SeqCst),
            ROUNDS * (ROUNDS + 1) / 2
        );
    }
}
