//! A fully read/write fence-free work-stealing deque with multiplicity,
//! after Castañeda & Piña (PPoPP 2021 / TPDS 2023).
//!
//! The THE and Chase-Lev protocols buy *exactly-once* extraction with a
//! store-load fence (or SeqCst RMW) on the owner's pop path — the very
//! cost the paper's Table 2 charges to every serialised task. This
//! backend removes it by **relaxing exactness to multiplicity**: a task
//! may be *extracted* more than once (at most once per thief, at most
//! twice overall in practice), and a claim layer above the deque —
//! `adaptivetc-runtime`'s epoch CAS on the frame, see
//! `RunStats::dup_extractions` — arbitrates which extraction gets to
//! *execute*. The owner's push and pop then perform **zero fences, zero
//! SeqCst operations and zero RMWs**:
//!
//! * the log is append-only: `tail` and `head` are monotone counters that
//!   are never decremented, and every slot is written exactly once by the
//!   owner before being published by one `Release` store of `tail`;
//! * the owner keeps a thread-local stack of the indices it pushed; `pop`
//!   is a stack pop plus a plain clone of the slot — it never reads or
//!   writes `head`, so there is nothing to fence against;
//! * thieves advance the `head` cursor with a `Relaxed` CAS *after*
//!   cloning the slot; the CAS only arbitrates the cursor between
//!   thieves, not ownership of the value — extraction is duplicated
//!   exactly when the owner pops an entry the cursor also passes.
//!
//! # Contract relaxation
//!
//! Property (1) of the [`WsDeque`](crate::WsDeque) protocol contract
//! ("claimed by exactly one party") is weakened to **at least one party**;
//! [`pop`](FenceFreeDeque::pop) always offers the entry it matched, even
//! if a thief's cursor already passed it. Likewise
//! [`pop_special`](FenceFreeDeque::pop_special) decides `ChildStolen` by
//! a `Relaxed` read of the cursor: it may report `Reclaimed` while a
//! thief is still racing for the child. Both are sound **only** under a
//! claim layer that (a) gates every execution behind an epoch CAS and
//! (b) runs the owner's claim *before* acting on `Reclaimed` — which the
//! engine does; see DESIGN.md §6. The raw deque is not a drop-in
//! exactly-once substrate, which is why
//! [`WsDeque::CAN_DUPLICATE`](crate::WsDeque::CAN_DUPLICATE) is `true`
//! here and the engine only enables the claim path for such backends.
//!
//! # Space
//!
//! Slots are never reused (reuse would let a lagging thief clone a
//! recycled value); memory grows with the *total* number of pushes, in
//! doubling segments reachable from a fixed directory so published slots
//! never move. The paper's adaptive strategy pushes orders of magnitude
//! fewer tasks than Cilk-style always-spawn, which is what makes this
//! trade acceptable here.

use crate::sync::{AtomicPtr, AtomicU64, Ordering, RaceCell};
use crate::the::{PopSpecial, StealOutcome};
use crossbeam_utils::CachePadded;
use std::fmt;
use std::mem::MaybeUninit;
use std::ptr;

const KIND_TASK: u8 = 1;
const KIND_SPECIAL: u8 = 2;

/// Directory entries; segment `s` holds `base << s` slots, so 48 entries
/// address ~2^48 * base total pushes — unreachable in practice.
const DIR_ENTRIES: usize = 48;

/// One write-once slot of the publication log. Plain (non-atomic) cells:
/// the owner's single write happens-before every reader via the `Release`
/// store of `tail` / `Acquire` load by the thief, and the value is only
/// ever *cloned* through a shared reference after that, never mutated.
/// Unlike the recycling backends, every access here is fully race-checked
/// under `cfg(adaptivetc_check)` — write-once publication needs no
/// speculative escape hatch (DESIGN.md §16).
struct Slot<T> {
    kind: RaceCell<u8>,
    value: RaceCell<MaybeUninit<T>>,
}

struct Segment<T> {
    slots: Box<[Slot<T>]>,
}

impl<T> Segment<T> {
    fn alloc(len: usize) -> *mut Segment<T> {
        let slots = (0..len)
            .map(|_| Slot {
                kind: RaceCell::new(0),
                value: RaceCell::new(MaybeUninit::uninit()),
            })
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Box::into_raw(Box::new(Segment { slots }))
    }
}

/// Owner-local bookkeeping; only the owner thread touches it.
struct OwnerState {
    /// Next log index to write (mirror of `tail`, kept local so a push
    /// does not even need a `Relaxed` load).
    next: u64,
    /// Indices of the owner's live (pushed, not yet popped) entries, in
    /// push order — the LIFO the owner pops from.
    stack: Vec<u64>,
}

/// The fence-free work-stealing deque with multiplicity.
///
/// Owner operations ([`push`](FenceFreeDeque::push),
/// [`pop`](FenceFreeDeque::pop),
/// [`push_special`](FenceFreeDeque::push_special),
/// [`pop_special`](FenceFreeDeque::pop_special)) must all come from one
/// thread, like every backend in this crate; any thread may call
/// [`steal`](FenceFreeDeque::steal). Entries must be `Clone` because
/// extraction never moves a value out of the log (a duplicate extraction
/// of a moved-out slot would be a use-after-move) — the engine stores
/// cheap `Weak`-handle entries.
///
/// # Examples
///
/// ```
/// use adaptivetc_deque::{FenceFreeDeque, StealOutcome};
///
/// let dq: FenceFreeDeque<u32> = FenceFreeDeque::with_capacity(8);
/// dq.push(1);
/// dq.push(2);
/// assert_eq!(dq.steal(), StealOutcome::Stolen(1)); // thieves take the oldest
/// assert_eq!(dq.pop(), Some(2));                   // the owner the newest
/// // Multiplicity: the owner still *offers* the entry the thief took —
/// // the runtime's claim layer is what rejects the duplicate.
/// assert_eq!(dq.pop(), Some(1));
/// assert_eq!(dq.pop(), None);
/// ```
pub struct FenceFreeDeque<T> {
    /// Thief cursor: first index not yet passed by a steal. Monotone;
    /// advanced only by thieves' CAS.
    head: CachePadded<AtomicU64>,
    /// Publication count: slots `[0, tail)` are written and immutable.
    /// Monotone; stored only by the owner (`Release`).
    tail: CachePadded<AtomicU64>,
    /// Owner's live-entry count (its stack depth), mirrored with plain
    /// `Relaxed` stores so `len` does not count owner-popped log entries
    /// the thief cursor has not passed. Over-counts only by entries
    /// stolen but not yet duplicate-popped by the owner.
    live: CachePadded<AtomicU64>,
    /// Segment directory. Entry `s` (capacity `base << s`) is allocated
    /// by the owner on first use and never moved or freed until `Drop`.
    dir: [AtomicPtr<Segment<T>>; DIR_ENTRIES],
    /// `log2` of segment 0's capacity.
    base_shift: u32,
    /// Owner-only by the protocol contract; a [`RaceCell`] so the model
    /// checker can *verify* the single-owner contract rather than assume it.
    owner: RaceCell<OwnerState>,
}

// SAFETY: slots are write-once (owner, pre-publication) and cloned
// concurrently afterwards through `&T`, so `T: Sync` is required in
// addition to `Send`; the owner state is single-threaded by the protocol
// contract (as for the other backends in this crate).
unsafe impl<T: Send + Sync> Send for FenceFreeDeque<T> {}
unsafe impl<T: Send + Sync> Sync for FenceFreeDeque<T> {}

impl<T> FenceFreeDeque<T> {
    /// Create a deque whose first segment holds at least `capacity`
    /// entries (rounded up to a power of two, minimum 16). The log grows
    /// by doubling segments and never rejects a push.
    pub fn with_capacity(capacity: usize) -> Self {
        let base = capacity.next_power_of_two().max(16);
        FenceFreeDeque {
            head: CachePadded::new(AtomicU64::new(0)),
            tail: CachePadded::new(AtomicU64::new(0)),
            live: CachePadded::new(AtomicU64::new(0)),
            dir: std::array::from_fn(|_| AtomicPtr::new(ptr::null_mut())),
            base_shift: base.trailing_zeros(),
            owner: RaceCell::new(OwnerState {
                next: 0,
                stack: Vec::with_capacity(base),
            }),
        }
    }

    /// Log index -> (directory entry, offset). Segment `s` covers
    /// `[(2^s - 1) * base, (2^(s+1) - 1) * base)`.
    #[inline]
    fn locate(&self, idx: u64) -> (usize, usize) {
        let n = (idx >> self.base_shift) + 1;
        let s = 63 - n.leading_zeros();
        let start = ((1u64 << s) - 1) << self.base_shift;
        (s as usize, (idx - start) as usize)
    }

    /// Thief-side slot access: `idx` must be below an `Acquire`-loaded
    /// `tail`, which makes both the directory entry and the slot write
    /// visible.
    #[inline]
    fn slot(&self, idx: u64, owner: bool) -> &Slot<T> {
        let (s, off) = self.locate(idx);
        let order = if owner {
            // The owner reads back its own directory stores.
            Ordering::Relaxed
        } else {
            Ordering::Acquire
        };
        let seg = self.dir[s].load(order);
        debug_assert!(!seg.is_null(), "slot {idx} read before publication");
        // SAFETY: segments are allocated before any index inside them is
        // published and are only freed in `Drop` (exclusive access).
        unsafe { &(*seg).slots[off] }
    }

    /// Entries currently live. Racy over-estimate: the minimum of the
    /// cursor window `T - H` (which still counts owner-popped middle
    /// entries) and the owner's stack depth (which still counts stolen
    /// entries the owner has not duplicate-popped yet); for statistics
    /// and the adaptive policy's emptiness signal only.
    pub fn len(&self) -> usize {
        let t = self.tail.load(Ordering::Relaxed);
        let h = self.head.load(Ordering::Relaxed);
        let window = t.saturating_sub(h);
        window.min(self.live.load(Ordering::Relaxed)) as usize
    }

    /// Whether the deque currently appears empty (racy; for statistics).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn push_kind(&self, value: T, kind: u8) {
        // SAFETY: owner-only method (protocol contract).
        let st = unsafe { &mut *self.owner.write() };
        let idx = st.next;
        let (s, off) = self.locate(idx);
        let mut seg = self.dir[s].load(Ordering::Relaxed);
        if seg.is_null() {
            seg = Segment::alloc(1usize << (self.base_shift + s as u32));
            // Publish the segment before any index inside it: paired with
            // the thief's `Acquire` directory load.
            self.dir[s].store(seg, Ordering::Release);
        }
        // SAFETY: slot `idx` has never been written (the log is
        // append-only and `idx == tail`), and no reader can observe it
        // until the `Release` store of `tail` below.
        unsafe {
            let slot = &(*seg).slots[off];
            *slot.kind.write() = kind;
            (*slot.value.write()).write(value);
        }
        st.stack.push(idx);
        st.next = idx + 1;
        self.live.store(st.stack.len() as u64, Ordering::Relaxed);
        // The owner's whole push: two plain stores. No fence, no RMW,
        // no SeqCst — the `Release` store of `tail` publishes the slot.
        self.tail.store(idx + 1, Ordering::Release);
    }

    /// Owner: push a regular task at the tail. Never fails (the log
    /// grows by doubling segments).
    pub fn push(&self, value: T) {
        self.push_kind(value, KIND_TASK);
    }

    /// Owner: push a special (transition) task at the tail. Thieves never
    /// return a special from [`steal`](FenceFreeDeque::steal); they take
    /// the entry above it instead.
    pub fn push_special(&self, value: T) {
        self.push_kind(value, KIND_SPECIAL);
    }
}

impl<T: Clone> FenceFreeDeque<T> {
    /// Owner: pop the entry it pushed most recently — by *offering* it,
    /// whether or not a thief's cursor already passed it (multiplicity;
    /// see the module docs). `None` only when the owner has no live
    /// entries. The owner's whole pop touches no atomics at all.
    pub fn pop(&self) -> Option<T> {
        // SAFETY: owner-only method (protocol contract).
        let st = unsafe { &mut *self.owner.write() };
        let idx = st.stack.pop()?;
        self.live.store(st.stack.len() as u64, Ordering::Relaxed);
        let slot = self.slot(idx, true);
        // SAFETY: write-once slot published by this same thread.
        unsafe {
            debug_assert_eq!(
                *slot.kind.read(),
                KIND_TASK,
                "pop must match a regular push (LIFO discipline violated)"
            );
            Some((*slot.value.read()).assume_init_ref().clone())
        }
    }

    /// Owner: pop a special entry.
    ///
    /// Reports [`PopSpecial::ChildStolen`] when the thief cursor has
    /// passed the special (a thief retired it while claiming its child).
    /// The cursor read is `Relaxed` and may lag: `Reclaimed` can be
    /// returned while a thief still races for the child. That is sound
    /// only under the claim layer (the owner claimed the child *before*
    /// reaching this pop, so a racing thief's claim loses); see the
    /// module docs.
    pub fn pop_special(&self) -> PopSpecial<T> {
        // SAFETY: owner-only method (protocol contract).
        let st = unsafe { &mut *self.owner.write() };
        let mut idx = st
            .stack
            .pop()
            .expect("pop_special without a matching push_special");
        let mut slot = self.slot(idx, true);
        // SAFETY (slot reads below): write-once slots published by this
        // same thread.
        if unsafe { *slot.kind.read() } == KIND_TASK {
            // The caller skipped popping the special's child because a
            // thief took it (the other backends consumed its slot; our
            // log kept it). Discard the dead offer and pop the special
            // beneath — the thief's cursor CAS already passed it.
            idx = st
                .stack
                .pop()
                .expect("pop_special found a task with no special beneath");
            slot = self.slot(idx, true);
            debug_assert!(self.head.load(Ordering::Relaxed) > idx);
        }
        self.live.store(st.stack.len() as u64, Ordering::Relaxed);
        // SAFETY: write-once slot published by this same thread's push.
        unsafe {
            debug_assert_eq!(
                *slot.kind.read(),
                KIND_SPECIAL,
                "pop_special must match a push_special (LIFO discipline violated)"
            );
            if self.head.load(Ordering::Relaxed) > idx {
                PopSpecial::ChildStolen
            } else {
                PopSpecial::Reclaimed((*slot.value.read()).assume_init_ref().clone())
            }
        }
    }

    /// Thief: steal the oldest entry the cursor has not passed.
    ///
    /// A special entry at the cursor is skipped together with its child
    /// (one CAS advances the cursor by 2, retiring the special and
    /// extracting the child), exactly like `steal_specialtask`; a lone
    /// special (or a defensive adjacent-special pair) is unstealable.
    /// The value is cloned *before* the CAS; losing the CAS drops the
    /// clone and retries, so thieves never duplicate *each other* — only
    /// the owner's pop can duplicate an extraction.
    pub fn steal(&self) -> StealOutcome<T> {
        loop {
            let t = self.tail.load(Ordering::Acquire);
            let h = self.head.load(Ordering::Relaxed);
            if h >= t {
                return StealOutcome::Empty;
            }
            let slot = self.slot(h, false);
            // SAFETY: h < t, which the Acquire load of `tail` proved
            // published; slots are write-once, so the read cannot race.
            if unsafe { *slot.kind.read() } == KIND_SPECIAL {
                if h + 1 >= t {
                    // A lone special is unstealable: leave it to the owner.
                    return StealOutcome::Empty;
                }
                let child = self.slot(h + 1, false);
                // SAFETY: h + 1 < t per the bound check above; write-once.
                if unsafe { *child.kind.read() } == KIND_SPECIAL {
                    // A *live* special always has its task child directly
                    // above it (the five-version FSM pushes them as a
                    // pair), so adjacent specials mean the one at the
                    // cursor is dead — already reclaimed by the owner,
                    // whose pops never advance the cursor. Skip it so a
                    // dead special can never wall off live entries.
                    let _ =
                        self.head
                            .compare_exchange(h, h + 1, Ordering::Relaxed, Ordering::Relaxed);
                    continue;
                }
                // SAFETY: slot h + 1 < t is published (Acquire `tail`) and
                // write-once initialised; cloning by shared ref never
                // conflicts with other readers.
                let v = unsafe { (*child.value.read()).assume_init_ref().clone() };
                // Relaxed suffices: the CAS only arbitrates the cursor
                // between thieves — the clone above was already made safe
                // by the Acquire load of `tail`, and exactly-once
                // *execution* is the claim layer's job, not the cursor's.
                if self
                    .head
                    .compare_exchange(h, h + 2, Ordering::Relaxed, Ordering::Relaxed)
                    .is_ok()
                {
                    return StealOutcome::Stolen(v);
                }
            } else {
                // SAFETY: slot h < t is published (Acquire `tail`) and
                // write-once initialised; cloning by shared ref is safe.
                let v = unsafe { (*slot.value.read()).assume_init_ref().clone() };
                if self
                    .head
                    .compare_exchange(h, h + 1, Ordering::Relaxed, Ordering::Relaxed)
                    .is_ok()
                {
                    return StealOutcome::Stolen(v);
                }
            }
            // Lost the cursor race to another thief; retry from the top.
        }
    }
}

impl<T> Default for FenceFreeDeque<T> {
    fn default() -> Self {
        FenceFreeDeque::with_capacity(16)
    }
}

impl<T> Drop for FenceFreeDeque<T> {
    fn drop(&mut self) {
        // Extraction clones and never moves out, so every written slot
        // `[0, tail)` still owns a live value: drop each exactly once,
        // then free the segments.
        let t = self.tail.load(Ordering::Relaxed);
        for idx in 0..t {
            let (s, off) = self.locate(idx);
            let seg = self.dir[s].load(Ordering::Relaxed);
            // SAFETY: exclusive access in Drop; slots [0, t) are
            // initialised and segments live until freed below.
            unsafe {
                (*(*seg).slots[off].value.write()).assume_init_drop();
            }
        }
        for d in &self.dir {
            let seg = d.load(Ordering::Relaxed);
            if !seg.is_null() {
                // SAFETY: allocated via Box::into_raw, freed exactly once.
                unsafe { drop(Box::from_raw(seg)) };
            }
        }
    }
}

impl<T> fmt::Debug for FenceFreeDeque<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FenceFreeDeque")
            .field("head", &self.head.load(Ordering::Relaxed))
            .field("tail", &self.tail.load(Ordering::Relaxed))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool as StdBool, AtomicU64 as TestCounter};
    use std::sync::Arc;

    #[test]
    fn lifo_owner_fifo_thief_with_multiplicity() {
        let d: FenceFreeDeque<u32> = FenceFreeDeque::with_capacity(8);
        d.push(1);
        d.push(2);
        d.push(3);
        assert_eq!(d.len(), 3);
        assert_eq!(d.steal(), StealOutcome::Stolen(1));
        assert_eq!(d.pop(), Some(3));
        assert_eq!(d.steal(), StealOutcome::Stolen(2));
        // Multiplicity: the owner's pop *offers* 2 and 1 again even
        // though the cursor passed them — the claim layer's job to drop.
        assert_eq!(d.pop(), Some(2));
        assert_eq!(d.pop(), Some(1));
        assert_eq!(d.pop(), None);
        // … and symmetrically the cursor re-offers the owner-popped 3.
        assert_eq!(d.steal(), StealOutcome::Stolen(3));
        assert_eq!(d.steal(), StealOutcome::Empty);
    }

    #[test]
    fn special_is_never_stolen_alone() {
        let d: FenceFreeDeque<u32> = FenceFreeDeque::with_capacity(8);
        d.push_special(42);
        assert_eq!(d.steal(), StealOutcome::Empty);
        assert_eq!(d.pop_special(), PopSpecial::Reclaimed(42));
    }

    #[test]
    fn steal_special_takes_child_and_pop_special_detects() {
        let d: FenceFreeDeque<u32> = FenceFreeDeque::with_capacity(8);
        d.push_special(42);
        d.push(7);
        assert_eq!(d.steal(), StealOutcome::Stolen(7));
        // The cursor passed the special: the owner sees ChildStolen for
        // both the (duplicate-offered) child pop and the special.
        assert_eq!(d.pop(), Some(7), "duplicate offer of the stolen child");
        assert_eq!(d.pop_special(), PopSpecial::ChildStolen);
    }

    #[test]
    fn special_reclaimed_when_child_popped_by_owner() {
        let d: FenceFreeDeque<u32> = FenceFreeDeque::with_capacity(8);
        d.push_special(42);
        d.push(7);
        assert_eq!(d.pop(), Some(7));
        assert_eq!(d.pop_special(), PopSpecial::Reclaimed(42));
    }

    #[test]
    fn dead_special_at_cursor_is_skipped_not_a_wall() {
        let d: FenceFreeDeque<u32> = FenceFreeDeque::with_capacity(8);
        // A reclaimed special stays in the log at the cursor …
        d.push_special(1);
        assert_eq!(d.pop_special(), PopSpecial::Reclaimed(1));
        // … and must not block a later special+child pair from thieves.
        d.push_special(2);
        d.push(7);
        assert_eq!(d.steal(), StealOutcome::Stolen(7));
        assert_eq!(d.pop(), Some(7), "duplicate offer of the stolen child");
        assert_eq!(d.pop_special(), PopSpecial::ChildStolen);
    }

    #[test]
    fn check_version_loop_shape() {
        let d: FenceFreeDeque<u32> = FenceFreeDeque::with_capacity(8);
        // Steal first: dead log entries left by reclaimed rounds would
        // otherwise be (harmlessly) re-offered to the thief.
        for (i, stolen_by_thief) in [(10u32, true), (11, false), (12, false)] {
            d.push_special(99);
            d.push(i);
            if stolen_by_thief {
                assert_eq!(d.steal(), StealOutcome::Stolen(i));
                assert_eq!(d.pop(), Some(i), "duplicate offer");
                assert_eq!(d.pop_special(), PopSpecial::ChildStolen);
            } else {
                assert_eq!(d.pop(), Some(i));
                assert_eq!(d.pop_special(), PopSpecial::Reclaimed(99));
            }
        }
    }

    #[test]
    fn log_grows_across_segments() {
        let d: FenceFreeDeque<usize> = FenceFreeDeque::with_capacity(16);
        // Far past the first segment (16 + 32 + 64 + ...).
        let n = if cfg!(miri) { 200 } else { 5_000 };
        for i in 0..n {
            d.push(i);
        }
        for i in 0..n / 2 {
            assert_eq!(d.steal(), StealOutcome::Stolen(i));
        }
        for i in (n / 2..n).rev() {
            assert_eq!(d.pop(), Some(i));
        }
    }

    #[test]
    fn drop_releases_log_entries_exactly_once() {
        static DROPS: TestCounter = TestCounter::new(0);
        #[derive(Clone)]
        struct Token;
        impl Drop for Token {
            fn drop(&mut self) {
                DROPS.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            }
        }
        {
            let d: FenceFreeDeque<Token> = FenceFreeDeque::with_capacity(4);
            for _ in 0..40 {
                d.push(Token);
            }
            // 10 extraction clones dropped by us; 40 originals in Drop.
            for _ in 0..10 {
                drop(d.pop());
            }
        }
        assert_eq!(DROPS.load(std::sync::atomic::Ordering::SeqCst), 50);
    }

    /// The multiplicity stress test: raw extractions may duplicate, but
    /// with the claim layer emulated on top (one CAS-guarded claim per
    /// value, as the engine does per frame epoch) every value is claimed
    /// exactly once and duplicates are observable as claim rejections.
    #[test]
    fn concurrent_extractions_claim_each_value_exactly_once() {
        const ROUNDS: u64 = if cfg!(miri) { 100 } else { 20_000 };
        let d: Arc<FenceFreeDeque<u64>> = Arc::new(FenceFreeDeque::with_capacity(64));
        let claims: Arc<Vec<StdBool>> =
            Arc::new((0..=ROUNDS).map(|_| StdBool::new(false)).collect());
        let claimed_sum = Arc::new(TestCounter::new(0));
        let dup_extractions = Arc::new(TestCounter::new(0));
        let stop = Arc::new(StdBool::new(false));
        use std::sync::atomic::Ordering as O;

        let claim = |claims: &[StdBool], sums: &TestCounter, dups: &TestCounter, v: u64| {
            if claims[v as usize]
                .compare_exchange(false, true, O::SeqCst, O::SeqCst)
                .is_ok()
            {
                sums.fetch_add(v, O::Relaxed);
            } else {
                dups.fetch_add(1, O::Relaxed);
            }
        };

        std::thread::scope(|s| {
            for _ in 0..2 {
                let d = Arc::clone(&d);
                let claims = Arc::clone(&claims);
                let sums = Arc::clone(&claimed_sum);
                let dups = Arc::clone(&dup_extractions);
                let stop = Arc::clone(&stop);
                s.spawn(move || {
                    while !stop.load(O::Relaxed) {
                        if let StealOutcome::Stolen(v) = d.steal() {
                            claim(&claims, &sums, &dups, v);
                        }
                        std::hint::spin_loop();
                    }
                });
            }
            // Owner: push one, sometimes pop one — every offer goes
            // through the claim table, exactly like the engine.
            for i in 1..=ROUNDS {
                d.push(i);
                if i % 2 == 0 {
                    if let Some(v) = d.pop() {
                        claim(&claims, &claimed_sum, &dup_extractions, v);
                    }
                }
            }
            while let Some(v) = d.pop() {
                claim(&claims, &claimed_sum, &dup_extractions, v);
            }
            stop.store(true, O::Relaxed);
        });

        assert_eq!(
            claimed_sum.load(O::SeqCst),
            ROUNDS * (ROUNDS + 1) / 2,
            "every value claimed exactly once ({} duplicate extractions rejected)",
            dup_extractions.load(O::SeqCst)
        );
    }

    #[test]
    fn concurrent_special_children_conserved_via_claims() {
        const ROUNDS: u64 = if cfg!(miri) { 100 } else { 10_000 };
        let d: Arc<FenceFreeDeque<u64>> = Arc::new(FenceFreeDeque::with_capacity(16));
        let claims: Arc<Vec<StdBool>> =
            Arc::new((0..=ROUNDS).map(|_| StdBool::new(false)).collect());
        let claimed_sum = Arc::new(TestCounter::new(0));
        let stop = Arc::new(StdBool::new(false));
        use std::sync::atomic::Ordering as O;

        std::thread::scope(|s| {
            for _ in 0..2 {
                let d = Arc::clone(&d);
                let claims = Arc::clone(&claims);
                let sums = Arc::clone(&claimed_sum);
                let stop = Arc::clone(&stop);
                s.spawn(move || {
                    while !stop.load(O::Relaxed) {
                        if let StealOutcome::Stolen(v) = d.steal() {
                            assert_ne!(v, 0, "a special entry was stolen");
                            if claims[v as usize]
                                .compare_exchange(false, true, O::SeqCst, O::SeqCst)
                                .is_ok()
                            {
                                sums.fetch_add(v, O::Relaxed);
                            }
                        }
                        std::hint::spin_loop();
                    }
                });
            }
            for i in 1..=ROUNDS {
                d.push_special(0);
                d.push(i);
                if let Some(v) = d.pop() {
                    let won = claims[v as usize]
                        .compare_exchange(false, true, O::SeqCst, O::SeqCst)
                        .is_ok();
                    if won {
                        claimed_sum.fetch_add(v, O::Relaxed);
                    }
                    // Claim-winner semantics mirror the engine: a lost
                    // claim means the child ran elsewhere, and the
                    // cursor must already have passed the special (the
                    // thief's CAS precedes its claim win).
                    match d.pop_special() {
                        PopSpecial::Reclaimed(s) => assert_eq!(s, 0),
                        PopSpecial::ChildStolen => {}
                    }
                }
            }
            stop.store(true, O::Relaxed);
        });

        assert_eq!(claimed_sum.load(O::SeqCst), ROUNDS * (ROUNDS + 1) / 2);
    }
}
