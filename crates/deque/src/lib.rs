//! Work-stealing deques for the AdaptiveTC reproduction.
//!
//! This crate implements the paper's *d-e-que* substrate:
//!
//! * [`TheDeque`] — a faithful implementation of the simplified **THE
//!   protocol** of Figure 3 (Frigo et al.'s Dijkstra-like mutual-exclusion
//!   protocol as adapted by AdaptiveTC), including the special-task
//!   operations `pop_specialtask` and `steal_specialtask` and honest
//!   fixed-capacity overflow reporting;
//! * [`PoolDeque`] — a growable variant (the buffer-pool style deque the
//!   paper cites as the fix for overflow) with the same interface;
//! * [`ChaseLevDeque`] — the lock-free dynamic circular deque of Chase &
//!   Lev (SPAA 2005), the paper's reference \[6\];
//! * [`FenceFreeDeque`] — the fully read/write fence-free deque with
//!   multiplicity of Castañeda & Piña: zero fences/RMWs on the owner
//!   path, at the price that an entry may be *extracted* more than once
//!   (the runtime's claim layer restores exactly-once *execution*);
//! * [`NeedTask`] — the `stolen_num` / `need_task` back-pressure signal a
//!   thief raises on its victim after repeated failed steals.
//!
//! # Which end is which
//!
//! The owner pushes and pops at the **tail** (`T`); thieves steal from the
//! **head** (`H`). Indices grow from head to tail, so `T >= H` whenever the
//! deque is quiescent. A **special task** entry can never be stolen: a thief
//! that finds one at the head steals the entry just above it (the special
//! task's child) instead, exactly as in the paper's `steal_specialtask`.
//!
//! # Examples
//!
//! ```
//! use adaptivetc_deque::{TheDeque, StealOutcome};
//!
//! let dq: TheDeque<&'static str> = TheDeque::new(8);
//! dq.push("a").unwrap();
//! dq.push("b").unwrap();
//! assert_eq!(dq.steal(), StealOutcome::Stolen("a")); // thieves take the oldest
//! assert_eq!(dq.pop(), Some("b"));                   // the owner takes the newest
//! assert_eq!(dq.pop(), None);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod backend;
mod chase_lev;
mod fence_free;
mod pool;
mod signal;
mod sync;
mod the;

pub use backend::WsDeque;
pub use chase_lev::{ChaseLevDeque, ClSteal};
pub use fence_free::FenceFreeDeque;
pub use pool::PoolDeque;
pub use signal::NeedTask;
#[cfg(feature = "count-sync")]
pub use sync::sync_counts;
pub use the::{PopSpecial, StealOutcome, TheDeque};

use std::error::Error;
use std::fmt;

/// A fixed-capacity deque rejected a push.
///
/// Carries the capacity that was exceeded. The paper highlights that Cilk's
/// fixed-size array deques are "prone to overflow" while AdaptiveTC, pushing
/// far fewer tasks, is not; reproducing that contrast requires overflow to be
/// observable rather than fatal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Overflow(pub usize);

impl fmt::Display for Overflow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deque overflowed its fixed capacity of {}", self.0)
    }
}

impl Error for Overflow {}
