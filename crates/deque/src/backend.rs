//! The pluggable deque-backend abstraction.
//!
//! Every substrate in this crate exposes the same owner/thief protocol —
//! LIFO push/pop at the tail for the owner, FIFO steal at the head for
//! thieves, plus AdaptiveTC's special-task operations. [`WsDeque`] captures
//! that protocol so the runtime engine can be instantiated over any
//! backend ([`TheDeque`], [`ChaseLevDeque`], [`PoolDeque`],
//! [`FenceFreeDeque`]) and the ablation harness can compare them under
//! identical workloads.
//!
//! # Protocol contract
//!
//! Implementations must uphold, for a single owner thread and any number
//! of concurrent thieves:
//!
//! 1. every pushed entry is claimed by **exactly one** party (the owner's
//!    matching pop, or one thief's steal);
//! 2. a special entry is **never returned by [`steal`](WsDeque::steal)**:
//!    a thief that finds one at the head retires it and takes the entry
//!    above it (the special task's child) instead;
//! 3. [`pop_special`](WsDeque::pop_special) returns
//!    [`PopSpecial::Reclaimed`] only when the matching special entry is
//!    still present; once any thief has consumed the special's slot it
//!    returns [`PopSpecial::ChildStolen`].
//!
//! Lock-free backends may additionally report `ChildStolen` in a benign
//! race where the special entry was retired but its child was reclaimed
//! by the owner first; the runtime treats `ChildStolen` as "do not reuse
//! the handle", which is safe in both cases.
//!
//! Backends that set [`CAN_DUPLICATE`](WsDeque::CAN_DUPLICATE) weaken
//! property (1) to **at least one** party: the owner's pop may *offer* an
//! entry a thief already took (and `pop_special` may report `Reclaimed`
//! while a thief still races for the child). Such backends are only sound
//! under the engine's claim layer, which gates every execution behind a
//! per-frame epoch CAS so exactly-once *execution* still holds; the
//! copy-on-steal deposit handshake then keys off the claim winner instead
//! of the pop/steal race. See [`FenceFreeDeque`] and DESIGN.md §6.
//!
//! Backends carry opaque entries and know nothing about taskprivate
//! workspaces. Under the runtime's copy-on-steal policy a stolen entry
//! may reference a workspace the owner is still mutating in place; the
//! *engine's* steal path materialises an isolated clone via the frame's
//! deposit handshake before the stolen frame runs, so the same protocol
//! holds on every backend with no per-backend code (property (1) is what
//! makes the handshake sound: exactly one of {owner pop, thief steal}
//! claims the entry, and the loser's side of the pop/steal race is the
//! deposit trigger).

use crate::{
    ChaseLevDeque, ClSteal, FenceFreeDeque, Overflow, PoolDeque, PopSpecial, StealOutcome, TheDeque,
};

/// A work-stealing deque usable as the engine's task substrate.
///
/// See the [module documentation](self) for the protocol contract.
///
/// # Examples
///
/// ```
/// use adaptivetc_deque::{StealOutcome, WsDeque};
///
/// fn drain_oldest<D: WsDeque<u32>>(dq: &D) -> Vec<u32> {
///     let mut out = Vec::new();
///     while let StealOutcome::Stolen(v) = dq.steal() {
///         out.push(v);
///     }
///     out
/// }
///
/// let dq = adaptivetc_deque::ChaseLevDeque::with_capacity(8);
/// WsDeque::push(&dq, 1).unwrap(); // inherent `push` returns (), the trait's returns Result
/// WsDeque::push(&dq, 2).unwrap();
/// assert_eq!(drain_oldest(&dq), vec![1, 2]);
/// ```
pub trait WsDeque<T: Send>: Send + Sync {
    /// Short name for reports and benchmark labels.
    const NAME: &'static str;

    /// Whether an entry may be extracted more than once (multiplicity).
    ///
    /// `false` for exactly-once backends. When `true`, the engine must
    /// run its claim layer (per-frame epoch CAS) over every extraction;
    /// see the [module documentation](self).
    const CAN_DUPLICATE: bool = false;

    /// Create a deque able to hold at least `capacity` entries before a
    /// push can fail (growable backends never fail and treat `capacity`
    /// as the initial allocation).
    fn with_capacity(capacity: usize) -> Self
    where
        Self: Sized;

    /// Owner: push a regular task at the tail.
    ///
    /// # Errors
    ///
    /// Returns [`Overflow`] when a fixed capacity is exhausted.
    fn push(&self, value: T) -> Result<(), Overflow>;

    /// Owner: push a special (transition) task at the tail.
    ///
    /// # Errors
    ///
    /// Returns [`Overflow`] when a fixed capacity is exhausted.
    fn push_special(&self, value: T) -> Result<(), Overflow>;

    /// Owner: pop the entry it pushed most recently; `None` if stolen.
    fn pop(&self) -> Option<T>;

    /// Owner: pop a special entry, detecting whether a thief consumed it.
    fn pop_special(&self) -> PopSpecial<T>;

    /// Thief: steal the oldest stealable entry. Blocks only for bounded
    /// internal retries; returns [`StealOutcome::Empty`] when nothing is
    /// stealable.
    fn steal(&self) -> StealOutcome<T>;

    /// Thief: steal up to `max` entries in one probe (multi-pop for
    /// steal-half extraction), appending them to `out` oldest-first and
    /// returning how many were taken. The default repeats
    /// [`steal`](WsDeque::steal) and stops at the first empty outcome,
    /// which every backend supports; backends with a cheaper batched
    /// head CAS may override it. Partial batches are normal — the
    /// caller gets whatever was stealable, never an error.
    fn steal_many(&self, max: usize, out: &mut Vec<T>) -> usize {
        let mut taken = 0;
        while taken < max {
            match self.steal() {
                StealOutcome::Stolen(v) => {
                    out.push(v);
                    taken += 1;
                }
                StealOutcome::Empty => break,
            }
        }
        taken
    }

    /// Entries currently present (racy; for statistics).
    fn len(&self) -> usize;

    /// Whether the deque currently appears empty (racy; for statistics).
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T: Send> WsDeque<T> for TheDeque<T> {
    const NAME: &'static str = "the";

    fn with_capacity(capacity: usize) -> Self {
        TheDeque::new(capacity)
    }

    fn push(&self, value: T) -> Result<(), Overflow> {
        TheDeque::push(self, value)
    }

    fn push_special(&self, value: T) -> Result<(), Overflow> {
        TheDeque::push_special(self, value)
    }

    fn pop(&self) -> Option<T> {
        TheDeque::pop(self)
    }

    fn pop_special(&self) -> PopSpecial<T> {
        TheDeque::pop_special(self)
    }

    fn steal(&self) -> StealOutcome<T> {
        TheDeque::steal(self)
    }

    fn len(&self) -> usize {
        TheDeque::len(self)
    }
}

impl<T: Send> WsDeque<T> for ChaseLevDeque<T> {
    const NAME: &'static str = "chase-lev";

    fn with_capacity(capacity: usize) -> Self {
        ChaseLevDeque::with_capacity(capacity)
    }

    fn push(&self, value: T) -> Result<(), Overflow> {
        ChaseLevDeque::push(self, value);
        Ok(())
    }

    fn push_special(&self, value: T) -> Result<(), Overflow> {
        ChaseLevDeque::push_special(self, value);
        Ok(())
    }

    fn pop(&self) -> Option<T> {
        ChaseLevDeque::pop(self)
    }

    fn pop_special(&self) -> PopSpecial<T> {
        ChaseLevDeque::pop_special(self)
    }

    fn steal(&self) -> StealOutcome<T> {
        // `Retry` means another party's CAS succeeded between our read and
        // our claim, so spinning here is globally lock-free.
        loop {
            match ChaseLevDeque::steal(self) {
                ClSteal::Stolen(v) => return StealOutcome::Stolen(v),
                ClSteal::Empty => return StealOutcome::Empty,
                ClSteal::Retry => std::hint::spin_loop(),
            }
        }
    }

    fn len(&self) -> usize {
        ChaseLevDeque::len(self)
    }
}

impl<T: Send> WsDeque<T> for PoolDeque<T> {
    const NAME: &'static str = "pool";

    fn with_capacity(_capacity: usize) -> Self {
        PoolDeque::new()
    }

    fn push(&self, value: T) -> Result<(), Overflow> {
        PoolDeque::push(self, value);
        Ok(())
    }

    fn push_special(&self, value: T) -> Result<(), Overflow> {
        PoolDeque::push_special(self, value);
        Ok(())
    }

    fn pop(&self) -> Option<T> {
        PoolDeque::pop(self)
    }

    fn pop_special(&self) -> PopSpecial<T> {
        PoolDeque::pop_special(self)
    }

    fn steal(&self) -> StealOutcome<T> {
        PoolDeque::steal(self)
    }

    fn len(&self) -> usize {
        PoolDeque::len(self)
    }
}

impl<T: Send + Sync + Clone> WsDeque<T> for FenceFreeDeque<T> {
    const NAME: &'static str = "fence-free";
    const CAN_DUPLICATE: bool = true;

    fn with_capacity(capacity: usize) -> Self {
        FenceFreeDeque::with_capacity(capacity)
    }

    fn push(&self, value: T) -> Result<(), Overflow> {
        FenceFreeDeque::push(self, value);
        Ok(())
    }

    fn push_special(&self, value: T) -> Result<(), Overflow> {
        FenceFreeDeque::push_special(self, value);
        Ok(())
    }

    fn pop(&self) -> Option<T> {
        FenceFreeDeque::pop(self)
    }

    fn pop_special(&self) -> PopSpecial<T> {
        FenceFreeDeque::pop_special(self)
    }

    fn steal(&self) -> StealOutcome<T> {
        FenceFreeDeque::steal(self)
    }

    fn len(&self) -> usize {
        FenceFreeDeque::len(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The generic protocol smoke test every backend must pass.
    fn protocol_smoke<D: WsDeque<u32>>() {
        let d = D::with_capacity(16);
        // LIFO owner, FIFO thief.
        d.push(1).unwrap();
        d.push(2).unwrap();
        d.push(3).unwrap();
        assert_eq!(d.len(), 3);
        assert_eq!(d.steal(), StealOutcome::Stolen(1));
        assert_eq!(d.pop(), Some(3));
        assert_eq!(d.steal(), StealOutcome::Stolen(2));
        assert_eq!(d.pop(), None);
        assert_eq!(d.steal(), StealOutcome::Empty);
        assert!(d.is_empty());

        // Special-task protocol: a lone special is unstealable …
        d.push_special(42).unwrap();
        assert_eq!(d.steal(), StealOutcome::Empty);
        assert_eq!(d.pop_special(), PopSpecial::Reclaimed(42));
        // … a special with a child yields the child and is retired …
        d.push_special(43).unwrap();
        d.push(7).unwrap();
        assert_eq!(d.steal(), StealOutcome::Stolen(7));
        assert_eq!(d.pop_special(), PopSpecial::ChildStolen);
        // … and the owner reclaims it when the child was not stolen.
        d.push_special(44).unwrap();
        d.push(8).unwrap();
        assert_eq!(d.pop(), Some(8));
        assert_eq!(d.pop_special(), PopSpecial::Reclaimed(44));
        assert!(d.is_empty());
    }

    #[test]
    fn the_deque_satisfies_protocol() {
        protocol_smoke::<TheDeque<u32>>();
    }

    #[test]
    fn chase_lev_satisfies_protocol() {
        protocol_smoke::<ChaseLevDeque<u32>>();
    }

    #[test]
    fn pool_deque_satisfies_protocol() {
        protocol_smoke::<PoolDeque<u32>>();
    }

    /// The fence-free backend's multiplicity-adjusted smoke test: same
    /// protocol shape as [`protocol_smoke`], but property (1) is
    /// at-least-once — pops *offer* stolen entries (the claim layer's
    /// job to reject) — and `len` is a racy over-estimate after steals.
    #[test]
    fn fence_free_satisfies_relaxed_protocol() {
        type D = FenceFreeDeque<u32>;
        const { assert!(<D as WsDeque<u32>>::CAN_DUPLICATE) };
        let d = <D as WsDeque<u32>>::with_capacity(16);
        WsDeque::push(&d, 1).unwrap();
        WsDeque::push(&d, 2).unwrap();
        WsDeque::push(&d, 3).unwrap();
        assert_eq!(WsDeque::len(&d), 3);
        assert_eq!(WsDeque::steal(&d), StealOutcome::Stolen(1));
        assert_eq!(WsDeque::pop(&d), Some(3));
        assert_eq!(WsDeque::steal(&d), StealOutcome::Stolen(2));
        assert_eq!(WsDeque::pop(&d), Some(2), "duplicate offer of stolen 2");
        assert_eq!(WsDeque::pop(&d), Some(1), "duplicate offer of stolen 1");
        assert_eq!(WsDeque::pop(&d), None);
        assert_eq!(
            WsDeque::steal(&d),
            StealOutcome::Stolen(3),
            "cursor re-offers the owner-popped 3"
        );
        assert_eq!(WsDeque::steal(&d), StealOutcome::Empty);

        // Special-task protocol: identical to the exact backends, except
        // that the stolen child's dead offer is discarded internally when
        // pop_special is called without popping the child first.
        WsDeque::push_special(&d, 42).unwrap();
        assert_eq!(WsDeque::steal(&d), StealOutcome::Empty);
        assert_eq!(WsDeque::pop_special(&d), PopSpecial::Reclaimed(42));
        WsDeque::push_special(&d, 43).unwrap();
        WsDeque::push(&d, 7).unwrap();
        assert_eq!(WsDeque::steal(&d), StealOutcome::Stolen(7));
        assert_eq!(WsDeque::pop_special(&d), PopSpecial::ChildStolen);
        WsDeque::push_special(&d, 44).unwrap();
        WsDeque::push(&d, 8).unwrap();
        assert_eq!(WsDeque::pop(&d), Some(8));
        assert_eq!(WsDeque::pop_special(&d), PopSpecial::Reclaimed(44));
    }

    #[test]
    fn steal_many_takes_oldest_first_and_stops_at_empty() {
        fn check<D: WsDeque<u32>>() {
            let d = D::with_capacity(16);
            for v in 1..=5u32 {
                WsDeque::push(&d, v).unwrap();
            }
            let mut out = Vec::new();
            assert_eq!(d.steal_many(3, &mut out), 3);
            assert_eq!(out, vec![1, 2, 3]);
            // Asking for more than remains takes what is there.
            assert_eq!(d.steal_many(10, &mut out), 2);
            assert_eq!(out, vec![1, 2, 3, 4, 5]);
            assert_eq!(d.steal_many(4, &mut out), 0);
        }
        check::<TheDeque<u32>>();
        check::<ChaseLevDeque<u32>>();
        check::<PoolDeque<u32>>();
        check::<FenceFreeDeque<u32>>();
    }

    #[test]
    fn backend_names_are_distinct() {
        let names = [
            <TheDeque<u32> as WsDeque<u32>>::NAME,
            <ChaseLevDeque<u32> as WsDeque<u32>>::NAME,
            <PoolDeque<u32> as WsDeque<u32>>::NAME,
            <FenceFreeDeque<u32> as WsDeque<u32>>::NAME,
        ];
        assert_eq!(names, ["the", "chase-lev", "pool", "fence-free"]);
        const {
            assert!(!<TheDeque<u32> as WsDeque<u32>>::CAN_DUPLICATE);
            assert!(!<ChaseLevDeque<u32> as WsDeque<u32>>::CAN_DUPLICATE);
            assert!(!<PoolDeque<u32> as WsDeque<u32>>::CAN_DUPLICATE);
        }
    }
}
