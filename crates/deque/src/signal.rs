//! The `stolen_num` / `need_task` back-pressure signal.

use crate::sync::{AtomicBool, AtomicU32, Ordering};

/// Per-worker signal through which thieves ask a busy victim for tasks.
///
/// Reproduces the bottom half of the paper's Figure 3: a thief that fails to
/// steal from a victim increments the victim's `stolen_num`; once it exceeds
/// `max_stolen_num` the victim's `need_task` flag is raised. A successful
/// steal clears both. The victim's *check version* polls
/// [`needs_task`](NeedTask::needs_task) and responds by pushing a special
/// task.
///
/// # Examples
///
/// ```
/// use adaptivetc_deque::NeedTask;
///
/// let sig = NeedTask::new(3);
/// for _ in 0..3 { sig.record_steal_failure(); }
/// assert!(!sig.needs_task());     // threshold not yet exceeded
/// sig.record_steal_failure();
/// assert!(sig.needs_task());      // stolen_num > max_stolen_num
/// sig.record_steal_success();
/// assert!(!sig.needs_task());
/// ```
#[derive(Debug)]
pub struct NeedTask {
    stolen_num: AtomicU32,
    need_task: AtomicBool,
    /// The threshold. Atomic so an adaptive owner can retune it mid-run
    /// ([`set_threshold`](NeedTask::set_threshold)); fixed-threshold
    /// runs never store to it after construction.
    max_stolen_num: AtomicU32,
}

impl NeedTask {
    /// Create a signal with the given `max_stolen_num` threshold (the
    /// paper's runtime defaults to 20).
    pub fn new(max_stolen_num: u32) -> Self {
        NeedTask {
            stolen_num: AtomicU32::new(0),
            need_task: AtomicBool::new(false),
            max_stolen_num: AtomicU32::new(max_stolen_num),
        }
    }

    /// A thief failed to steal from this victim. Returns `true` when this
    /// failure is the one that crossed the threshold and raised the
    /// victim's `need_task` flag (so callers can attribute the signal to a
    /// specific thief, e.g. in an event trace).
    pub fn record_steal_failure(&self) -> bool {
        let n = self.stolen_num.fetch_add(1, Ordering::Relaxed) + 1;
        // Relaxed: the threshold is a tuning knob, not a synchronization
        // edge — a thief observing the owner's retune a few failures
        // late merely shifts *when* the flag rises.
        if n > self.max_stolen_num.load(Ordering::Relaxed) {
            // swap, not store: the return value tells exactly one caller
            // that its failure performed the lowered→raised transition.
            !self.need_task.swap(true, Ordering::Relaxed)
        } else {
            false
        }
    }

    /// A thief successfully stole from this victim: clear the signal.
    pub fn record_steal_success(&self) {
        self.stolen_num.store(0, Ordering::Relaxed);
        self.need_task.store(false, Ordering::Relaxed);
    }

    /// Polled by the victim's check version.
    pub fn needs_task(&self) -> bool {
        self.need_task.load(Ordering::Relaxed)
    }

    /// Acknowledge the signal after pushing a special task, so one request
    /// produces one transition.
    pub fn acknowledge(&self) {
        self.stolen_num.store(0, Ordering::Relaxed);
        self.need_task.store(false, Ordering::Relaxed);
    }

    /// Current consecutive-failure count (for statistics).
    pub fn stolen_num(&self) -> u32 {
        self.stolen_num.load(Ordering::Relaxed)
    }

    /// The current threshold.
    pub fn max_stolen_num(&self) -> u32 {
        self.max_stolen_num.load(Ordering::Relaxed)
    }

    /// Retune the threshold (adaptive threshold policy). Called only by
    /// the owning worker; `Relaxed` because the new value only shifts
    /// when future failures raise the flag (see
    /// [`record_steal_failure`](NeedTask::record_steal_failure)).
    pub fn set_threshold(&self, max_stolen_num: u32) {
        self.max_stolen_num.store(max_stolen_num, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threshold_is_strict() {
        let s = NeedTask::new(2);
        assert!(!s.record_steal_failure());
        assert!(!s.record_steal_failure());
        assert!(
            !s.needs_task(),
            "need_task raised at, not above, the threshold"
        );
        assert!(s.record_steal_failure());
        assert!(s.needs_task());
    }

    #[test]
    fn only_the_raising_failure_reports_true() {
        let s = NeedTask::new(1);
        assert!(!s.record_steal_failure());
        assert!(s.record_steal_failure(), "threshold crossing must report");
        assert!(
            !s.record_steal_failure(),
            "already-raised flag must not re-report"
        );
        s.record_steal_success();
        assert!(!s.record_steal_failure());
        assert!(
            s.record_steal_failure(),
            "re-raise after clear reports again"
        );
    }

    #[test]
    fn success_clears() {
        let s = NeedTask::new(1);
        s.record_steal_failure();
        s.record_steal_failure();
        assert!(s.needs_task());
        s.record_steal_success();
        assert!(!s.needs_task());
        assert_eq!(s.stolen_num(), 0);
    }

    #[test]
    fn acknowledge_clears() {
        let s = NeedTask::new(1);
        s.record_steal_failure();
        s.record_steal_failure();
        s.acknowledge();
        assert!(!s.needs_task());
    }

    #[test]
    fn exposes_threshold() {
        assert_eq!(NeedTask::new(20).max_stolen_num(), 20);
    }

    #[test]
    fn retuned_threshold_governs_future_failures() {
        let s = NeedTask::new(1);
        s.set_threshold(3);
        assert_eq!(s.max_stolen_num(), 3);
        for _ in 0..3 {
            assert!(!s.record_steal_failure());
        }
        assert!(!s.needs_task(), "raised threshold delays the signal");
        assert!(s.record_steal_failure());
        assert!(s.needs_task());
    }
}
