//! A growable deque with THE-protocol-compatible semantics.

use crate::sync::Mutex;
use crate::the::{PopSpecial, StealOutcome};
use std::collections::VecDeque;
use std::fmt;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Task,
    Special,
}

struct Inner<T> {
    items: VecDeque<(Kind, T)>,
    peak: usize,
}

/// A growable work-stealing deque with the same observable semantics as
/// [`TheDeque`](crate::TheDeque), including the special-task rules.
///
/// The paper cites buffer-pool / growable deques as the remedy for the
/// overflow-proneness of Cilk's fixed-size arrays. This implementation
/// favours simplicity over speed: one mutex guards all operations, and the
/// backing store grows without bound. It exists for the overflow ablation
/// and as a drop-in alternative backing store; the measured experiments use
/// [`TheDeque`](crate::TheDeque).
///
/// Semantics parity holds because thieves always consume a prefix of the
/// logical index range and the owner a suffix, so "front" and "back" of a
/// `VecDeque` coincide with the THE head and tail.
///
/// # Examples
///
/// ```
/// use adaptivetc_deque::{PoolDeque, StealOutcome, PopSpecial};
///
/// let dq: PoolDeque<u32> = PoolDeque::new();
/// for i in 0..10_000 { dq.push(i); } // never overflows
/// assert_eq!(dq.steal(), StealOutcome::Stolen(0));
/// assert_eq!(dq.pop(), Some(9_999));
/// ```
pub struct PoolDeque<T> {
    inner: Mutex<Inner<T>>,
}

impl<T> PoolDeque<T> {
    /// Create an empty deque.
    pub fn new() -> Self {
        PoolDeque {
            inner: Mutex::new(Inner {
                items: VecDeque::new(),
                peak: 0,
            }),
        }
    }

    /// Owner: push a regular task at the tail. Never fails.
    pub fn push(&self, value: T) {
        let mut g = self.inner.lock();
        g.items.push_back((Kind::Task, value));
        g.peak = g.peak.max(g.items.len());
    }

    /// Owner: push a special (transition) task at the tail. Never fails.
    pub fn push_special(&self, value: T) {
        let mut g = self.inner.lock();
        g.items.push_back((Kind::Special, value));
        g.peak = g.peak.max(g.items.len());
    }

    /// Owner: pop its most recent push; `None` if it was stolen.
    pub fn pop(&self) -> Option<T> {
        let mut g = self.inner.lock();
        match g.items.back() {
            Some((Kind::Task, _)) => g.items.pop_back().map(|(_, v)| v),
            _ => None,
        }
    }

    /// Owner: pop a special entry, detecting whether its child was stolen.
    pub fn pop_special(&self) -> PopSpecial<T> {
        let mut g = self.inner.lock();
        match g.items.back() {
            Some((Kind::Special, _)) => {
                let (_, v) = g.items.pop_back().expect("just observed");
                PopSpecial::Reclaimed(v)
            }
            _ => PopSpecial::ChildStolen,
        }
    }

    /// Thief: steal the oldest stealable entry. A special entry at the head
    /// yields its child (the entry above it) and is retired.
    pub fn steal(&self) -> StealOutcome<T> {
        let mut g = self.inner.lock();
        match g.items.front() {
            None => StealOutcome::Empty,
            Some((Kind::Task, _)) => {
                let (_, v) = g.items.pop_front().expect("just observed");
                StealOutcome::Stolen(v)
            }
            Some((Kind::Special, _)) => match g.items.get(1) {
                Some((Kind::Task, _)) => {
                    // steal_specialtask: retire the special, take its child.
                    g.items.pop_front();
                    let (_, v) = g.items.pop_front().expect("just observed");
                    StealOutcome::Stolen(v)
                }
                _ => StealOutcome::Empty,
            },
        }
    }

    /// Current number of entries (exact, taken under the lock).
    pub fn len(&self) -> usize {
        self.inner.lock().items.len()
    }

    /// Whether the deque is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Peak occupancy observed since creation.
    pub fn peak(&self) -> usize {
        self.inner.lock().peak
    }
}

impl<T> Default for PoolDeque<T> {
    fn default() -> Self {
        PoolDeque::new()
    }
}

impl<T> fmt::Debug for PoolDeque<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let g = self.inner.lock();
        f.debug_struct("PoolDeque")
            .field("len", &g.items.len())
            .field("peak", &g.peak)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifo_owner_fifo_thief() {
        let d: PoolDeque<u32> = PoolDeque::new();
        d.push(1);
        d.push(2);
        d.push(3);
        assert_eq!(d.steal(), StealOutcome::Stolen(1));
        assert_eq!(d.pop(), Some(3));
        assert_eq!(d.steal(), StealOutcome::Stolen(2));
        assert_eq!(d.pop(), None);
    }

    #[test]
    fn grows_without_overflow() {
        let d: PoolDeque<usize> = PoolDeque::new();
        for i in 0..100_000 {
            d.push(i);
        }
        assert_eq!(d.len(), 100_000);
        assert_eq!(d.peak(), 100_000);
    }

    #[test]
    fn special_semantics_match_the_deque() {
        let d: PoolDeque<u32> = PoolDeque::new();
        d.push_special(42);
        assert_eq!(d.steal(), StealOutcome::Empty);
        d.push(7);
        assert_eq!(d.steal(), StealOutcome::Stolen(7));
        assert_eq!(d.pop_special(), PopSpecial::ChildStolen);

        d.push_special(43);
        d.push(8);
        assert_eq!(d.pop(), Some(8));
        assert_eq!(d.pop_special(), PopSpecial::Reclaimed(43));
    }

    #[test]
    fn frames_above_special_child_are_stealable() {
        let d: PoolDeque<u32> = PoolDeque::new();
        d.push_special(99);
        d.push(1); // the special's child
        d.push(2); // a frame pushed by the child's execution
        assert_eq!(d.steal(), StealOutcome::Stolen(1));
        assert_eq!(d.steal(), StealOutcome::Stolen(2));
        assert_eq!(d.pop(), None);
        assert_eq!(d.pop_special(), PopSpecial::ChildStolen);
        assert!(d.is_empty());
    }
}
