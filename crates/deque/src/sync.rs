//! Synchronization facade for the deque protocols.
//!
//! Release and test builds re-export the real primitives
//! (`std::sync::atomic` plus `parking_lot::Mutex`), so the hot path pays
//! nothing for the abstraction. Building with `--cfg adaptivetc_check`
//! (RUSTFLAGS) swaps in the model primitives from `shim-sync`, whose every
//! operation is a yield point of the bounded schedule explorer. The
//! `adaptivetc-check` crate also compiles these sources directly against
//! the model types via `#[path]` includes, so `cargo test -p
//! adaptivetc-check` explores schedules with no special flags.

#[cfg(not(adaptivetc_check))]
pub use parking_lot::Mutex;
#[cfg(not(adaptivetc_check))]
pub use std::sync::atomic::{
    fence, AtomicBool, AtomicI64, AtomicPtr, AtomicU32, AtomicU64, AtomicU8, Ordering,
};

#[cfg(adaptivetc_check)]
pub use shim_sync::sync::{
    fence, AtomicBool, AtomicI64, AtomicPtr, AtomicU32, AtomicU64, AtomicU8, Mutex, Ordering,
};
