//! Synchronization facade for the deque protocols.
//!
//! Release and test builds re-export the real primitives
//! (`std::sync::atomic` plus `parking_lot::Mutex`), so the hot path pays
//! nothing for the abstraction. Building with `--cfg adaptivetc_check`
//! (RUSTFLAGS) swaps in the model primitives from `shim-sync`, whose every
//! operation is a yield point of the bounded schedule explorer. The
//! `adaptivetc-check` crate also compiles these sources directly against
//! the model types via `#[path]` includes, so `cargo test -p
//! adaptivetc-check` explores schedules with no special flags.
//!
//! A third arm, behind the `count-sync` cargo feature, wraps the real
//! primitives in counting shims so the ablation harness can report *how
//! many* fences, SeqCst operations and RMWs each backend performs per
//! push/pop (the Table-2 cost the fence-free backend eliminates). The
//! counters are process-global `Relaxed` statics — cheap, but still a
//! perturbation, so `count-sync` builds are for op-counting runs only,
//! never timing runs; see [`sync_counts`].

#[cfg(all(not(adaptivetc_check), not(feature = "count-sync")))]
pub use parking_lot::Mutex;
#[cfg(all(not(adaptivetc_check), not(feature = "count-sync")))]
pub use std::sync::atomic::{
    fence, AtomicBool, AtomicI64, AtomicPtr, AtomicU32, AtomicU64, AtomicU8, Ordering,
};

#[cfg(adaptivetc_check)]
pub use shim_sync::sync::{
    fence, AtomicBool, AtomicI64, AtomicPtr, AtomicU32, AtomicU64, AtomicU8, Mutex, Ordering,
    RaceCell,
};

#[cfg(all(not(adaptivetc_check), feature = "count-sync"))]
pub use counting::{
    fence, AtomicBool, AtomicI64, AtomicPtr, AtomicU32, AtomicU64, AtomicU8, Mutex, Ordering,
};

#[cfg(not(adaptivetc_check))]
pub use plain::RaceCell;

/// Plain-cell arm of the facade for real and `count-sync` builds: a
/// transparent `UnsafeCell` with the checked-access API shape of
/// `shim_sync::sync::RaceCell`. The model checker's race detector is the
/// only consumer that distinguishes `read`/`write`/`speculative`; here
/// they all compile to `UnsafeCell::get`.
#[cfg(not(adaptivetc_check))]
mod plain {
    use std::cell::UnsafeCell;

    /// A plain, non-atomic cell race-checked under the model checker and
    /// zero-cost everywhere else. Pointers returned by the accessors
    /// carry the usual `UnsafeCell` obligations: the surrounding
    /// protocol, not this type, justifies each dereference.
    #[derive(Debug, Default)]
    #[repr(transparent)]
    pub struct RaceCell<T> {
        inner: UnsafeCell<T>,
    }

    // SAFETY: same contract as `UnsafeCell` — the owning protocol
    // synchronizes all shared accesses (and the adaptivetc_check arm of
    // this facade model-checks exactly that claim).
    unsafe impl<T: Send> Send for RaceCell<T> {}
    // SAFETY: see the `Send` impl above.
    unsafe impl<T: Send> Sync for RaceCell<T> {}

    impl<T> RaceCell<T> {
        /// Create a new cell holding `t`.
        pub const fn new(t: T) -> Self {
            Self {
                inner: UnsafeCell::new(t),
            }
        }

        /// A checked plain read under the model checker; here, a raw
        /// pointer to the contents.
        #[inline(always)]
        pub fn read(&self) -> *const T {
            self.inner.get()
        }

        /// A checked plain write under the model checker; here, a raw
        /// pointer to the contents.
        #[inline(always)]
        pub fn write(&self) -> *mut T {
            self.inner.get()
        }

        /// An *unchecked* read for by-design benign races (validated
        /// out-of-band, e.g. by a subsequent CAS).
        #[inline(always)]
        pub fn speculative(&self) -> *const T {
            self.inner.get()
        }

        /// Exclusive access through a unique reference.
        #[allow(dead_code)] // API parity with the model-checked arm
        #[inline(always)]
        pub fn get_mut(&mut self) -> &mut T {
            self.inner.get_mut()
        }
    }
}

/// Process-global operation counters for `count-sync` builds.
#[cfg(all(not(adaptivetc_check), feature = "count-sync"))]
pub mod sync_counts {
    use std::sync::atomic::{AtomicU64, Ordering};

    pub(super) static FENCES: AtomicU64 = AtomicU64::new(0);
    pub(super) static SEQCST_OPS: AtomicU64 = AtomicU64::new(0);
    pub(super) static RMW_OPS: AtomicU64 = AtomicU64::new(0);
    pub(super) static SEQCST_RMW_OPS: AtomicU64 = AtomicU64::new(0);

    /// A snapshot of the global synchronization-operation counters.
    #[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
    pub struct Counts {
        /// `fence()` calls of any ordering.
        pub fences: u64,
        /// Operations (loads, stores, RMWs, fences) at `SeqCst`.
        pub seqcst_ops: u64,
        /// Read-modify-write operations of any ordering (swap, fetch_*,
        /// compare-exchange attempts, and `Mutex::lock`, which is a CAS).
        pub rmw_ops: u64,
        /// The intersection: RMWs at `SeqCst`.
        pub seqcst_rmw_ops: u64,
    }

    impl Counts {
        /// Difference since an earlier snapshot.
        #[must_use]
        pub fn since(self, earlier: Counts) -> Counts {
            Counts {
                fences: self.fences - earlier.fences,
                seqcst_ops: self.seqcst_ops - earlier.seqcst_ops,
                rmw_ops: self.rmw_ops - earlier.rmw_ops,
                seqcst_rmw_ops: self.seqcst_rmw_ops - earlier.seqcst_rmw_ops,
            }
        }
    }

    /// Read the current counter values.
    pub fn snapshot() -> Counts {
        Counts {
            fences: FENCES.load(Ordering::Relaxed),
            seqcst_ops: SEQCST_OPS.load(Ordering::Relaxed),
            rmw_ops: RMW_OPS.load(Ordering::Relaxed),
            seqcst_rmw_ops: SEQCST_RMW_OPS.load(Ordering::Relaxed),
        }
    }

    /// Zero all counters (single-threaded phases of the harness only).
    pub fn reset() {
        FENCES.store(0, Ordering::Relaxed);
        SEQCST_OPS.store(0, Ordering::Relaxed);
        RMW_OPS.store(0, Ordering::Relaxed);
        SEQCST_RMW_OPS.store(0, Ordering::Relaxed);
    }
}

#[cfg(all(not(adaptivetc_check), feature = "count-sync"))]
#[allow(dead_code)] // wrappers mirror the full facade; not every op is used yet
mod counting {
    //! API-compatible wrappers over the real primitives that bump the
    //! [`super::sync_counts`] counters. Only the operations the deque
    //! sources use are provided.

    use super::sync_counts::{FENCES, RMW_OPS, SEQCST_OPS, SEQCST_RMW_OPS};
    use std::sync::atomic::Ordering as Real;
    pub use std::sync::atomic::Ordering;

    #[inline]
    fn note(o: Ordering, rmw: bool) {
        if o == Ordering::SeqCst {
            SEQCST_OPS.fetch_add(1, Real::Relaxed);
            if rmw {
                SEQCST_RMW_OPS.fetch_add(1, Real::Relaxed);
            }
        }
        if rmw {
            RMW_OPS.fetch_add(1, Real::Relaxed);
        }
    }

    /// Counting replacement for [`std::sync::atomic::fence`].
    pub fn fence(o: Ordering) {
        FENCES.fetch_add(1, Real::Relaxed);
        if o == Ordering::SeqCst {
            SEQCST_OPS.fetch_add(1, Real::Relaxed);
        }
        std::sync::atomic::fence(o);
    }

    macro_rules! counting_int_atomic {
        ($name:ident, $real:ident, $prim:ty) => {
            /// Counting wrapper over the identically named std atomic.
            #[derive(Debug, Default)]
            pub struct $name {
                inner: std::sync::atomic::$real,
            }

            impl $name {
                /// Create a new atomic with the given initial value.
                pub const fn new(v: $prim) -> Self {
                    Self {
                        inner: std::sync::atomic::$real::new(v),
                    }
                }

                /// Counting `load`.
                pub fn load(&self, o: Ordering) -> $prim {
                    note(o, false);
                    self.inner.load(o)
                }

                /// Counting `store`.
                pub fn store(&self, v: $prim, o: Ordering) {
                    note(o, false);
                    self.inner.store(v, o);
                }

                /// Counting `swap`.
                pub fn swap(&self, v: $prim, o: Ordering) -> $prim {
                    note(o, true);
                    self.inner.swap(v, o)
                }

                /// Counting `fetch_add`.
                pub fn fetch_add(&self, v: $prim, o: Ordering) -> $prim {
                    note(o, true);
                    self.inner.fetch_add(v, o)
                }

                /// Counting `fetch_sub`.
                pub fn fetch_sub(&self, v: $prim, o: Ordering) -> $prim {
                    note(o, true);
                    self.inner.fetch_sub(v, o)
                }

                /// Counting `compare_exchange` (one RMW per attempt).
                pub fn compare_exchange(
                    &self,
                    cur: $prim,
                    new: $prim,
                    ok: Ordering,
                    err: Ordering,
                ) -> Result<$prim, $prim> {
                    note(ok, true);
                    self.inner.compare_exchange(cur, new, ok, err)
                }

                /// Counting `compare_exchange_weak` (one RMW per attempt).
                pub fn compare_exchange_weak(
                    &self,
                    cur: $prim,
                    new: $prim,
                    ok: Ordering,
                    err: Ordering,
                ) -> Result<$prim, $prim> {
                    note(ok, true);
                    self.inner.compare_exchange_weak(cur, new, ok, err)
                }
            }
        };
    }

    counting_int_atomic!(AtomicU64, AtomicU64, u64);
    counting_int_atomic!(AtomicU32, AtomicU32, u32);
    counting_int_atomic!(AtomicU8, AtomicU8, u8);
    counting_int_atomic!(AtomicI64, AtomicI64, i64);

    /// Counting wrapper over [`std::sync::atomic::AtomicBool`].
    #[derive(Debug, Default)]
    pub struct AtomicBool {
        inner: std::sync::atomic::AtomicBool,
    }

    impl AtomicBool {
        /// Create a new atomic with the given initial value.
        pub const fn new(v: bool) -> Self {
            Self {
                inner: std::sync::atomic::AtomicBool::new(v),
            }
        }

        /// Counting `load`.
        pub fn load(&self, o: Ordering) -> bool {
            note(o, false);
            self.inner.load(o)
        }

        /// Counting `store`.
        pub fn store(&self, v: bool, o: Ordering) {
            note(o, false);
            self.inner.store(v, o);
        }

        /// Counting `swap`.
        pub fn swap(&self, v: bool, o: Ordering) -> bool {
            note(o, true);
            self.inner.swap(v, o)
        }
    }

    /// Counting wrapper over [`std::sync::atomic::AtomicPtr`].
    #[derive(Debug)]
    pub struct AtomicPtr<T> {
        inner: std::sync::atomic::AtomicPtr<T>,
    }

    impl<T> AtomicPtr<T> {
        /// Create a new atomic with the given initial pointer.
        pub const fn new(p: *mut T) -> Self {
            Self {
                inner: std::sync::atomic::AtomicPtr::new(p),
            }
        }

        /// Counting `load`.
        pub fn load(&self, o: Ordering) -> *mut T {
            note(o, false);
            self.inner.load(o)
        }

        /// Counting `store`.
        pub fn store(&self, p: *mut T, o: Ordering) {
            note(o, false);
            self.inner.store(p, o);
        }

        /// Counting `swap`.
        pub fn swap(&self, p: *mut T, o: Ordering) -> *mut T {
            note(o, true);
            self.inner.swap(p, o)
        }
    }

    /// Counting wrapper over [`parking_lot::Mutex`]: `lock` is one RMW
    /// (parking_lot's fast path is an Acquire CAS).
    #[derive(Debug, Default)]
    pub struct Mutex<T> {
        inner: parking_lot::Mutex<T>,
    }

    impl<T> Mutex<T> {
        /// Create a new mutex guarding `v`.
        pub const fn new(v: T) -> Self {
            Self {
                inner: parking_lot::Mutex::new(v),
            }
        }

        /// Counting `lock`.
        pub fn lock(&self) -> parking_lot::MutexGuard<'_, T> {
            RMW_OPS.fetch_add(1, Real::Relaxed);
            self.inner.lock()
        }
    }
}
