//! The simplified THE protocol of the paper's Figure 3.
//!
//! The owner manipulates the tail index `T`; thieves manipulate the head
//! index `H` under a per-deque lock (only one thief at a time, as in the
//! paper). The Dijkstra-style race between `pop` and `steal` on the last
//! element is resolved exactly as in Cilk-5: both sides optimistically move
//! their index, fence, then re-check against the other index, falling back
//! to the lock when they might have collided.
//!
//! Two operations extend the classic protocol for AdaptiveTC's special
//! tasks:
//!
//! * [`TheDeque::steal`] — when the head entry is a special task, the thief
//!   steals the entry *above* it (the special task's child) by advancing `H`
//!   by 2, discarding the special entry from the stealable region
//!   (`steal_specialtask` in the paper);
//! * [`TheDeque::pop_special`] — the owner's matching pop: if the child was
//!   stolen (`H > T` after decrementing), `H` is reset to `T` so the special
//!   task remains conceptually at the head (`pop_specialtask`).
//!
//! Beyond the paper, a *completion cursor* `C` (`cleaned`) tracks the
//! highest index whose claimed slot has been fully read; the owner's push
//! checks capacity against `C` rather than `H` so that recycling a
//! physical slot is ordered after the steal that last read it (see the
//! field docs — `H` alone provides no such happens-before edge).

use crate::sync::{fence, AtomicU64, AtomicU8, Mutex, Ordering, RaceCell};
use crate::Overflow;
use crossbeam_utils::CachePadded;
use std::fmt;
use std::mem::MaybeUninit;

/// Result of a steal attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StealOutcome<T> {
    /// A task was stolen (for a special head entry, this is its child).
    Stolen(T),
    /// Nothing stealable: the deque is empty, holds only a special task with
    /// no child yet, or the thief lost the race on the last element.
    Empty,
}

/// Result of [`TheDeque::pop_special`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PopSpecial<T> {
    /// No child of the special task was stolen; the special entry itself is
    /// handed back.
    Reclaimed(T),
    /// A thief took the special task's child (and with it the special entry's
    /// slot); the owner must eventually wait for that child
    /// (`sync_specialtask`). `H` has been reset to `T`.
    ChildStolen,
}

const KIND_EMPTY: u8 = 0;
const KIND_TASK: u8 = 1;
const KIND_SPECIAL: u8 = 2;

/// Logical indices start here rather than at 0 so that the transient
/// one-below-empty dip of `T` during a pop of an empty deque cannot wrap
/// below zero (a wrapped `T` would look like a huge full deque to a thief).
const INDEX_BASE: u64 = 1 << 32;

struct Slot<T> {
    kind: AtomicU8,
    /// Plain (non-atomic) cell; accesses are checked for data races under
    /// `cfg(adaptivetc_check)` with `check_races` on (DESIGN.md §16).
    value: RaceCell<MaybeUninit<T>>,
}

/// A fixed-capacity THE-protocol work-stealing deque.
///
/// The owner thread calls [`push`](TheDeque::push), [`pop`](TheDeque::pop),
/// [`push_special`](TheDeque::push_special) and
/// [`pop_special`](TheDeque::pop_special); any other thread may call
/// [`steal`](TheDeque::steal). Pops must match pushes in LIFO order by the
/// same owner (the structured spawn discipline of Cilk-style runtimes); it
/// is a logic error (checked by a debug assertion on the entry kind) to pop
/// an entry of the wrong kind.
///
/// # Examples
///
/// ```
/// use adaptivetc_deque::{TheDeque, StealOutcome, PopSpecial};
///
/// let dq: TheDeque<u32> = TheDeque::new(16);
/// dq.push_special(100).unwrap(); // the special (transition) task
/// dq.push(1).unwrap();           // its child
/// // A thief never steals the special entry itself — it gets the child:
/// assert_eq!(dq.steal(), StealOutcome::Stolen(1));
/// // The owner discovers the child is gone and must wait for it:
/// assert_eq!(dq.pop_special(), PopSpecial::ChildStolen);
/// ```
pub struct TheDeque<T> {
    /// Head `H`: first stealable entry. Increased by thieves under the lock;
    /// moved down only by the owner's `pop_special` reset (also under the
    /// lock).
    head: CachePadded<AtomicU64>,
    /// Tail `T`: first unused slot. Modified only by the owner.
    tail: CachePadded<AtomicU64>,
    /// Completion cursor `C`: every physical slot backing an index below
    /// `C` has been fully read by the party that claimed it through the
    /// lock. Written only under the THE lock (steal success and the
    /// `pop_special` head reset); the owner's push reads it (`Acquire`)
    /// to prove a recycled slot's last reader finished. `head` alone
    /// cannot prove that: thieves raise `head` with a `Relaxed` store
    /// *before* reading the slot value, so an `Acquire` load of `head`
    /// carries no happens-before edge to the thief's value read — a real
    /// C11 wraparound race at `T = H + capacity`, found by the
    /// `check_races` lane (DESIGN.md §16).
    cleaned: CachePadded<AtomicU64>,
    /// The THE lock: serialises thieves against each other and against the
    /// owner's slow paths.
    lock: Mutex<()>,
    slots: Box<[Slot<T>]>,
}

// SAFETY: the THE protocol guarantees each logical index is claimed by
// exactly one party (owner pop or locked thief steal), and slot contents are
// published by the owner's Release store of `tail` before any claim can
// observe the index as live. `T: Send` suffices because values only move
// between threads, never get aliased.
unsafe impl<T: Send> Send for TheDeque<T> {}
unsafe impl<T: Send> Sync for TheDeque<T> {}

impl<T> TheDeque<T> {
    /// Create a deque with a fixed capacity (rounded up to 2).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(2);
        let slots = (0..capacity)
            .map(|_| Slot {
                kind: AtomicU8::new(KIND_EMPTY),
                value: RaceCell::new(MaybeUninit::uninit()),
            })
            .collect::<Vec<_>>()
            .into_boxed_slice();
        TheDeque {
            head: CachePadded::new(AtomicU64::new(INDEX_BASE)),
            tail: CachePadded::new(AtomicU64::new(INDEX_BASE)),
            cleaned: CachePadded::new(AtomicU64::new(INDEX_BASE)),
            lock: Mutex::new(()),
            slots,
        }
    }

    /// Capacity of the backing array.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Entries currently in `[H, T)`. Racy by nature; for statistics only.
    pub fn len(&self) -> usize {
        let t = self.tail.load(Ordering::Relaxed);
        let h = self.head.load(Ordering::Relaxed);
        t.saturating_sub(h) as usize
    }

    /// Whether the deque currently appears empty (racy; for statistics).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    #[inline]
    fn slot(&self, index: u64) -> &Slot<T> {
        &self.slots[(index % self.slots.len() as u64) as usize]
    }

    fn push_kind(&self, value: T, kind: u8) -> Result<(), Overflow> {
        let t = self.tail.load(Ordering::Relaxed);
        // `cleaned` is a lower bound on consumed indices (it only grows at
        // quiescence), so `t - c` over-estimates occupancy: conservative,
        // never overwrites a slot whose last reader has not finished.
        // Acquire (KEPT): pairs with the thief's Release store of `cleaned`
        // after its value reads — reusing the physical slot of index
        // `t - capacity` is safe only once that steal's read is ordered
        // before this push's write. (`head` cannot stand in: thieves raise
        // it Relaxed *before* reading the slot.)
        let c = self.cleaned.load(Ordering::Acquire);
        if t.wrapping_sub(c) >= self.slots.len() as u64 {
            return Err(Overflow(self.slots.len()));
        }
        let slot = self.slot(t);
        // SAFETY: slot `t` is outside the live region `[h, t)` and its
        // previous occupant (index `t - capacity`, if any) was consumed —
        // `cleaned > t - capacity` per the check above — so no other party
        // may access it until `tail` is advanced below.
        unsafe {
            (*slot.value.write()).write(value);
        }
        slot.kind.store(kind, Ordering::Relaxed);
        self.tail.store(t + 1, Ordering::Release);
        Ok(())
    }

    /// Owner: push a regular task at the tail.
    ///
    /// # Errors
    ///
    /// Returns [`Overflow`] when the fixed capacity is exhausted; the entry
    /// is handed back to the caller via the error only conceptually — the
    /// value is dropped with the error. Use [`PoolDeque`](crate::PoolDeque)
    /// for unbounded growth.
    pub fn push(&self, value: T) -> Result<(), Overflow> {
        self.push_kind(value, KIND_TASK)
    }

    /// Owner: push a special (transition) task at the tail.
    ///
    /// # Errors
    ///
    /// Returns [`Overflow`] when the fixed capacity is exhausted.
    pub fn push_special(&self, value: T) -> Result<(), Overflow> {
        self.push_kind(value, KIND_SPECIAL)
    }

    /// Owner: pop the entry it pushed most recently.
    ///
    /// Returns `None` if that entry was stolen (or the deque is empty). This
    /// is the paper's `pop()`: on failure the tail is restored to the
    /// canonical empty position `T = H` (as in Cilk-5's THE protocol; the
    /// paper's condensed pseudo-code leaves `T` decremented, which would
    /// corrupt the next push).
    pub fn pop(&self) -> Option<T> {
        let t = self.tail.load(Ordering::Relaxed) - 1;
        // Relaxed: the SeqCst fence below globally orders this store
        // against the subsequent `head` read — the Dekker arbitration
        // needs the store→fence→load *shape*, not a SeqCst store.
        self.tail.store(t, Ordering::Relaxed);
        fence(Ordering::SeqCst);
        // Relaxed: ordered by the fence above. A stale (lower) `head` only
        // sends the owner into the locked slow path — conservative.
        let h = self.head.load(Ordering::Relaxed);
        if h > t {
            // Possible conflict with a thief on the last entry (or pop of an
            // empty deque): arbitrate under the lock.
            let _guard = self.lock.lock();
            // Relaxed: `head` is only written under this lock, whose
            // acquire synchronises with the writing thief's release.
            let h = self.head.load(Ordering::Relaxed);
            if h > t {
                // Lost: the entry was stolen. Restore the canonical empty
                // shape. Relaxed: thieves read `tail` only after the lock
                // hand-off or behind their own SeqCst fence.
                self.tail.store(h, Ordering::Relaxed);
                return None;
            }
            // Won the race while a thief backed off.
        }
        let slot = self.slot(t);
        debug_assert_eq!(slot.kind.load(Ordering::Relaxed), KIND_TASK);
        // SAFETY: index `t` is now exclusively claimed by the owner.
        Some(unsafe { (*slot.value.read()).assume_init_read() })
    }

    /// Owner: pop a special entry, detecting whether its child was stolen
    /// (`pop_specialtask` in Figure 3).
    /// # Panics
    ///
    /// Panics in debug builds if called without a matching
    /// [`push_special`](TheDeque::push_special) (unmatched pops corrupt the
    /// protocol).
    pub fn pop_special(&self) -> PopSpecial<T> {
        // The whole operation runs under the THE lock, so every access
        // below is Relaxed: `head` is lock-protected, and `tail` is
        // owner-written (this thread) and read by thieves only after the
        // lock hand-off or behind their own SeqCst fence.
        let _guard = self.lock.lock();
        debug_assert!(
            self.tail.load(Ordering::Relaxed) > INDEX_BASE,
            "pop_special without a matching push_special"
        );
        let t = self.tail.load(Ordering::Relaxed) - 1;
        self.tail.store(t, Ordering::Relaxed);
        let h = self.head.load(Ordering::Relaxed);
        if h > t {
            // The thief consumed the special entry's slot together with the
            // child it stole. Reset H = T so the (re-pushed) special task
            // stays at the head, and lower `cleaned` with it so the
            // `cleaned <= head` invariant holds (a stale-high `cleaned`
            // would make the next push's occupancy check wrap). Relaxed:
            // only this owner thread reads the lowered value back (via the
            // push Acquire load) before the next locked steal overwrites
            // it, and that steal is ordered after this store by the lock.
            self.head.store(t, Ordering::Relaxed);
            self.cleaned.store(t, Ordering::Relaxed);
            return PopSpecial::ChildStolen;
        }
        let slot = self.slot(t);
        debug_assert_eq!(slot.kind.load(Ordering::Relaxed), KIND_SPECIAL);
        // SAFETY: index `t` is exclusively claimed (no thief passed it: h <= t).
        PopSpecial::Reclaimed(unsafe { (*slot.value.read()).assume_init_read() })
    }

    /// Thief: steal the oldest stealable entry.
    ///
    /// If the head entry is a special task, the entry above it (the special
    /// task's child) is stolen instead and the special entry is retired from
    /// the stealable region (`steal_specialtask`). Special entries are
    /// dropped by the thief in that case.
    pub fn steal(&self) -> StealOutcome<T> {
        let _guard = self.lock.lock();
        // Relaxed: `head` is only written under this lock (mutual
        // exclusion gives the thief the latest value).
        let h = self.head.load(Ordering::Relaxed);
        // SeqCst (KEPT): pairs with the owner's unlocked pop — a weaker
        // load here could miss the owner's tail decrement and let the
        // thief claim an entry the owner already took. The Dekker
        // re-validation below depends on this anchor.
        let t = self.tail.load(Ordering::SeqCst);
        if h >= t {
            return StealOutcome::Empty;
        }
        let head_kind = self.slot(h).kind.load(Ordering::Relaxed);
        if head_kind == KIND_SPECIAL {
            // steal_specialtask: claim the special entry and its child.
            // Relaxed: the SeqCst fence below orders this store before
            // the tail re-read; the owner's pop fence does the dual.
            self.head.store(h + 2, Ordering::Relaxed);
            fence(Ordering::SeqCst);
            // SeqCst (KEPT): the Dekker re-validation against the owner's
            // unlocked tail decrement.
            let t = self.tail.load(Ordering::SeqCst);
            if h + 2 > t {
                // No child present (yet): back off entirely. Relaxed: the
                // restore only lowers `head` back — the owner reading the
                // transient raised value merely takes its lock slow path.
                self.head.store(h, Ordering::Relaxed);
                return StealOutcome::Empty;
            }
            let child = self.slot(h + 1);
            if child.kind.load(Ordering::Relaxed) == KIND_SPECIAL {
                // Two adjacent specials cannot arise from the five-version
                // FSM; refuse defensively rather than steal a special.
                self.head.store(h, Ordering::Relaxed);
                return StealOutcome::Empty;
            }
            // SAFETY: indices h and h+1 are exclusively claimed by this
            // thief. The special entry's handle is dropped here; the owner
            // learns about the theft via `pop_special`.
            let stolen = unsafe {
                drop((*self.slot(h).value.read()).assume_init_read());
                (*child.value.read()).assume_init_read()
            };
            // Release (KEPT): publishes the value reads above to the
            // owner's push (`cleaned` Acquire load) before the physical
            // slots can be recycled at indices h + capacity, h + 1 +
            // capacity. Still under the lock, so thieves stay serialised.
            self.cleaned.store(h + 2, Ordering::Release);
            StealOutcome::Stolen(stolen)
        } else {
            // Relaxed: ordered by the SeqCst fence below (see the
            // special-path store above for the argument).
            self.head.store(h + 1, Ordering::Relaxed);
            fence(Ordering::SeqCst);
            // SeqCst (KEPT): Dekker re-validation anchor.
            let t = self.tail.load(Ordering::SeqCst);
            if h + 1 > t {
                // Lost the race against the owner's pop of the last entry.
                // Relaxed: restore only lowers `head` back (conservative).
                self.head.store(h, Ordering::Relaxed);
                return StealOutcome::Empty;
            }
            // SAFETY: index h is exclusively claimed by this thief.
            let stolen = unsafe { (*self.slot(h).value.read()).assume_init_read() };
            // Release (KEPT): publishes the value read above to the owner's
            // push (`cleaned` Acquire load) before the physical slot can be
            // recycled at index h + capacity. Still under the lock.
            self.cleaned.store(h + 1, Ordering::Release);
            StealOutcome::Stolen(stolen)
        }
    }
}

impl<T> Drop for TheDeque<T> {
    fn drop(&mut self) {
        // At rest every index in [H, T) holds a live value.
        let h = self.head.load(Ordering::Relaxed);
        let t = self.tail.load(Ordering::Relaxed);
        let mut i = h;
        while i < t {
            let slot = self.slot(i);
            // SAFETY: exclusive access in Drop; [h, t) entries are live.
            unsafe {
                (*slot.value.write()).assume_init_drop();
            }
            i += 1;
        }
    }
}

impl<T> fmt::Debug for TheDeque<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TheDeque")
            .field("head", &self.head.load(Ordering::Relaxed))
            .field("tail", &self.tail.load(Ordering::Relaxed))
            .field("capacity", &self.slots.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64 as TestCounter;
    use std::sync::Arc;

    #[test]
    fn lifo_for_owner_fifo_for_thief() {
        let d: TheDeque<u32> = TheDeque::new(8);
        d.push(1).unwrap();
        d.push(2).unwrap();
        d.push(3).unwrap();
        assert_eq!(d.steal(), StealOutcome::Stolen(1));
        assert_eq!(d.pop(), Some(3));
        assert_eq!(d.steal(), StealOutcome::Stolen(2));
        assert_eq!(d.pop(), None);
        assert_eq!(d.steal(), StealOutcome::Empty);
    }

    #[test]
    fn pop_empty_is_none_and_reusable() {
        let d: TheDeque<u32> = TheDeque::new(4);
        assert_eq!(d.pop(), None);
        d.push(9).unwrap();
        assert_eq!(d.pop(), Some(9));
        assert_eq!(d.pop(), None);
        assert_eq!(d.pop(), None);
        d.push(10).unwrap();
        assert_eq!(d.steal(), StealOutcome::Stolen(10));
    }

    #[test]
    fn overflow_reported() {
        let d: TheDeque<u32> = TheDeque::new(2);
        d.push(1).unwrap();
        d.push(2).unwrap();
        assert_eq!(d.push(3), Err(Overflow(2)));
        // Draining makes room again.
        assert_eq!(d.pop(), Some(2));
        d.push(3).unwrap();
    }

    #[test]
    fn special_is_never_stolen_alone() {
        let d: TheDeque<u32> = TheDeque::new(8);
        d.push_special(42).unwrap();
        // Only the special present: thieves get nothing.
        assert_eq!(d.steal(), StealOutcome::Empty);
        assert_eq!(d.pop_special(), PopSpecial::Reclaimed(42));
    }

    #[test]
    fn steal_special_takes_child_and_pop_special_detects() {
        let d: TheDeque<u32> = TheDeque::new(8);
        d.push_special(42).unwrap();
        d.push(7).unwrap();
        assert_eq!(d.steal(), StealOutcome::Stolen(7));
        assert_eq!(d.pop_special(), PopSpecial::ChildStolen);
        // Deque is now canonically empty and reusable.
        assert!(d.is_empty());
        d.push_special(43).unwrap();
        d.push(8).unwrap();
        assert_eq!(d.pop(), Some(8));
        assert_eq!(d.pop_special(), PopSpecial::Reclaimed(43));
    }

    #[test]
    fn special_reclaimed_when_child_popped_by_owner() {
        let d: TheDeque<u32> = TheDeque::new(8);
        d.push_special(42).unwrap();
        d.push(7).unwrap();
        assert_eq!(d.pop(), Some(7));
        assert_eq!(d.pop_special(), PopSpecial::Reclaimed(42));
    }

    #[test]
    fn regular_tasks_below_special_are_stolen_first() {
        let d: TheDeque<u32> = TheDeque::new(8);
        d.push(1).unwrap();
        d.push_special(42).unwrap();
        d.push(2).unwrap();
        assert_eq!(d.steal(), StealOutcome::Stolen(1));
        assert_eq!(d.steal(), StealOutcome::Stolen(2)); // via the special
        assert_eq!(d.pop_special(), PopSpecial::ChildStolen);
    }

    #[test]
    fn check_version_loop_shape() {
        // Mirrors the paper's check version: the special is re-pushed per
        // child; some children are stolen, some are not.
        let d: TheDeque<u32> = TheDeque::new(8);
        for (i, stolen_by_thief) in [(0u32, false), (1, true), (2, false)] {
            d.push_special(99).unwrap();
            d.push(i).unwrap();
            if stolen_by_thief {
                assert_eq!(d.steal(), StealOutcome::Stolen(i));
                assert_eq!(d.pop_special(), PopSpecial::ChildStolen);
            } else {
                assert_eq!(d.pop(), Some(i));
                assert_eq!(d.pop_special(), PopSpecial::Reclaimed(99));
            }
        }
        assert!(d.is_empty());
    }

    #[test]
    fn wraparound_reuses_slots() {
        let d: TheDeque<u32> = TheDeque::new(4);
        for round in 0..100u32 {
            d.push(round).unwrap();
            d.push(round + 1000).unwrap();
            assert_eq!(d.steal(), StealOutcome::Stolen(round));
            assert_eq!(d.pop(), Some(round + 1000));
        }
    }

    #[test]
    fn drop_releases_remaining_entries() {
        static DROPS: TestCounter = TestCounter::new(0);
        struct Token;
        impl Drop for Token {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }
        {
            let d: TheDeque<Token> = TheDeque::new(8);
            d.push(Token).unwrap();
            d.push(Token).unwrap();
            d.push_special(Token).unwrap();
        }
        assert_eq!(DROPS.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn concurrent_owner_and_thieves_conserve_items() {
        // Stress the THE race: every pushed value is claimed exactly once.
        const ROUNDS: u64 = 20_000;
        let d: Arc<TheDeque<u64>> = Arc::new(TheDeque::new(64));
        let popped = Arc::new(TestCounter::new(0));
        let stolen = Arc::new(TestCounter::new(0));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));

        std::thread::scope(|s| {
            for _ in 0..2 {
                let d = Arc::clone(&d);
                let stolen = Arc::clone(&stolen);
                let stop = Arc::clone(&stop);
                s.spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        if let StealOutcome::Stolen(v) = d.steal() {
                            stolen.fetch_add(v, Ordering::Relaxed);
                        }
                        std::hint::spin_loop();
                    }
                });
            }
            // Owner: push one, pop one — the classic last-element race.
            for i in 1..=ROUNDS {
                while d.push(i).is_err() {
                    if let Some(v) = d.pop() {
                        popped.fetch_add(v, Ordering::Relaxed);
                    }
                }
                if let Some(v) = d.pop() {
                    popped.fetch_add(v, Ordering::Relaxed);
                }
            }
            // Drain what is left.
            while let Some(v) = d.pop() {
                popped.fetch_add(v, Ordering::Relaxed);
            }
            stop.store(true, Ordering::Relaxed);
        });

        let total = popped.load(Ordering::SeqCst) + stolen.load(Ordering::SeqCst);
        assert_eq!(total, ROUNDS * (ROUNDS + 1) / 2);
    }

    #[test]
    fn concurrent_special_children_conserved() {
        // Owner repeatedly runs the check-version loop while thieves poach
        // children through the special entry.
        const ROUNDS: u64 = 10_000;
        let d: Arc<TheDeque<u64>> = Arc::new(TheDeque::new(16));
        let claimed = Arc::new(TestCounter::new(0));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));

        std::thread::scope(|s| {
            for _ in 0..2 {
                let d = Arc::clone(&d);
                let claimed = Arc::clone(&claimed);
                let stop = Arc::clone(&stop);
                s.spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        if let StealOutcome::Stolen(v) = d.steal() {
                            claimed.fetch_add(v, Ordering::Relaxed);
                        }
                        std::hint::spin_loop();
                    }
                });
            }
            for i in 1..=ROUNDS {
                d.push_special(0).unwrap();
                d.push(i).unwrap();
                match d.pop() {
                    Some(v) => {
                        claimed.fetch_add(v, Ordering::Relaxed);
                        assert!(matches!(d.pop_special(), PopSpecial::Reclaimed(0)));
                    }
                    None => {
                        assert!(matches!(d.pop_special(), PopSpecial::ChildStolen));
                    }
                }
            }
            stop.store(true, Ordering::Relaxed);
        });

        assert_eq!(claimed.load(Ordering::SeqCst), ROUNDS * (ROUNDS + 1) / 2);
    }
}
