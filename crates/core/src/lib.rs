//! Core abstractions for the AdaptiveTC work-stealing reproduction.
//!
//! This crate defines the *problem model* shared by every scheduler in the
//! suite — the threaded runtime in `adaptivetc-runtime` and the deterministic
//! simulator in `adaptivetc-sim` — together with run statistics,
//! configuration, a seeded PRNG and a serial reference executor.
//!
//! # The problem model
//!
//! The paper (Wang et al., CGO 2010) targets backtracking search,
//! branch-and-bound and game-tree workloads written in an extended Cilk. Each
//! task body looks like:
//!
//! ```text
//! for each choice c at this node {
//!     apply c to the workspace;
//!     result += spawn child(workspace);   // taskprivate workspace
//!     undo c;
//! }
//! sync;
//! ```
//!
//! [`Problem`] captures exactly that shape: [`Problem::expand`] lists the
//! choices at a node (or yields a leaf value), [`Problem::apply`] /
//! [`Problem::undo`] mutate the *taskprivate* workspace in place, and cloning
//! the workspace is the paper's `alloc + memcpy` workspace copy. A scheduler
//! that executes a child as a **fake task** runs `apply → recurse → undo` on
//! the shared workspace with no copy; a scheduler that creates a **task**
//! clones the workspace for the child.
//!
//! # Quick start
//!
//! ```
//! use adaptivetc_core::{Problem, Expansion, serial};
//!
//! /// Count leaves of a complete binary tree of the given height.
//! struct Bintree { height: u32 }
//!
//! impl Problem for Bintree {
//!     type State = ();
//!     type Choice = u8;
//!     type Out = u64;
//!     fn root(&self) -> () {}
//!     fn expand(&self, _: &(), depth: u32) -> Expansion<u8, u64> {
//!         if depth == self.height { Expansion::Leaf(1) } else { Expansion::Children(vec![0, 1]) }
//!     }
//!     fn apply(&self, _: &mut (), _: u8) {}
//!     fn undo(&self, _: &mut (), _: u8) {}
//! }
//!
//! let (leaves, report) = serial::run(&Bintree { height: 10 });
//! assert_eq!(leaves, 1024);
//! assert_eq!(report.nodes, 2047);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod config;
pub mod error;
pub mod problem;
pub mod reduce;
pub mod rng;
pub mod serial;
pub mod stats;
pub mod treeinfo;

pub use config::{
    Config, CreationPolicy, CutoffPolicy, DequeBackend, ExtractionPolicy, ThresholdPolicy,
    VictimPolicy, WorkspacePolicy,
};
pub use error::{ConfigError, SchedulerError};
pub use problem::{Expansion, Problem};
pub use reduce::Reduce;
pub use rng::XorShift64;
pub use stats::{RunReport, RunStats, TimeBreakdown};
