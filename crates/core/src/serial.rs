//! The serial reference executor.
//!
//! This is the paper's "sequential C program" baseline: a plain recursive
//! traversal with in-place `apply`/`undo`, no task creation and no workspace
//! copying. Every parallel scheduler must produce the same result as
//! [`run`]; the speedup figures all use its execution time as denominator.

use crate::problem::{Expansion, Problem};
use crate::reduce::Reduce;
use std::time::Instant;

/// Statistics from a serial run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SerialReport {
    /// Tree nodes visited (leaves + interior).
    pub nodes: u64,
    /// Leaf nodes visited.
    pub leaves: u64,
    /// Maximum depth reached (root = 0).
    pub max_depth: u32,
    /// Total virtual work units (`Problem::node_work` summed over nodes).
    pub work_units: u64,
    /// Wall-clock duration in nanoseconds.
    pub wall_ns: u64,
}

/// Execute a problem serially, returning the result and traversal metrics.
///
/// # Examples
///
/// ```
/// use adaptivetc_core::{Problem, Expansion, serial};
///
/// struct Countdown;
/// impl Problem for Countdown {
///     type State = u32;
///     type Choice = ();
///     type Out = u64;
///     fn root(&self) -> u32 { 5 }
///     fn expand(&self, n: &u32, _: u32) -> Expansion<(), u64> {
///         if *n == 0 { Expansion::Leaf(1) } else { Expansion::Children(vec![()]) }
///     }
///     fn apply(&self, n: &mut u32, _: ()) { *n -= 1; }
///     fn undo(&self, n: &mut u32, _: ()) { *n += 1; }
/// }
///
/// let (ones, report) = serial::run(&Countdown);
/// assert_eq!(ones, 1);
/// assert_eq!(report.nodes, 6);
/// assert_eq!(report.max_depth, 5);
/// ```
pub fn run<P: Problem>(problem: &P) -> (P::Out, SerialReport) {
    let start = Instant::now();
    let mut state = problem.root();
    let mut report = SerialReport::default();
    let out = visit(problem, &mut state, 0, &mut report);
    report.wall_ns = start.elapsed().as_nanos() as u64;
    (out, report)
}

fn visit<P: Problem>(
    problem: &P,
    state: &mut P::State,
    depth: u32,
    report: &mut SerialReport,
) -> P::Out {
    report.nodes += 1;
    report.max_depth = report.max_depth.max(depth);
    report.work_units += problem.node_work(state, depth);
    match problem.expand(state, depth) {
        Expansion::Leaf(out) => {
            report.leaves += 1;
            out
        }
        Expansion::Children(choices) => {
            let mut acc = P::Out::identity();
            if choices.is_empty() {
                // A dead end: an interior node with no legal moves counts as
                // a leaf contributing the identity (a failed backtracking
                // branch).
                report.leaves += 1;
                return acc;
            }
            for c in choices {
                problem.apply(state, c);
                acc.combine(visit(problem, state, depth + 1, report));
                problem.undo(state, c);
            }
            acc
        }
    }
}

/// Execute a problem serially from a caller-provided state and depth.
///
/// Used by schedulers to run fully-sequential subtrees (the paper's
/// *sequence version*) while accounting nodes themselves; returns only the
/// result.
pub fn run_subtree<P: Problem>(
    problem: &P,
    state: &mut P::State,
    depth: u32,
    nodes: &mut u64,
) -> P::Out {
    *nodes += 1;
    match problem.expand(state, depth) {
        Expansion::Leaf(out) => out,
        Expansion::Children(choices) => {
            let mut acc = P::Out::identity();
            for c in choices {
                problem.apply(state, c);
                acc.combine(run_subtree(problem, state, depth + 1, nodes));
                problem.undo(state, c);
            }
            acc
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A fixed ternary tree of the given height; each leaf contributes 1.
    struct Ternary(u32);

    impl Problem for Ternary {
        type State = u32; // current depth, redundantly tracked to exercise apply/undo
        type Choice = u8;
        type Out = u64;
        fn root(&self) -> u32 {
            0
        }
        fn expand(&self, st: &u32, depth: u32) -> Expansion<u8, u64> {
            assert_eq!(*st, depth, "apply/undo bookkeeping must match depth");
            if depth == self.0 {
                Expansion::Leaf(1)
            } else {
                Expansion::Children(vec![0, 1, 2])
            }
        }
        fn apply(&self, st: &mut u32, _: u8) {
            *st += 1;
        }
        fn undo(&self, st: &mut u32, _: u8) {
            *st -= 1;
        }
    }

    #[test]
    fn counts_ternary_leaves() {
        let (out, r) = run(&Ternary(4));
        assert_eq!(out, 81);
        assert_eq!(r.leaves, 81);
        assert_eq!(r.nodes, 1 + 3 + 9 + 27 + 81);
        assert_eq!(r.max_depth, 4);
    }

    #[test]
    fn work_units_default_to_node_count() {
        let (_, r) = run(&Ternary(3));
        assert_eq!(r.work_units, r.nodes);
    }

    /// Interior nodes with zero legal choices are dead ends, not errors.
    struct DeadEnd;
    impl Problem for DeadEnd {
        type State = ();
        type Choice = u8;
        type Out = u64;
        fn root(&self) {}
        fn expand(&self, _: &(), depth: u32) -> Expansion<u8, u64> {
            if depth == 0 {
                Expansion::Children(vec![])
            } else {
                Expansion::Leaf(1)
            }
        }
        fn apply(&self, _: &mut (), _: u8) {}
        fn undo(&self, _: &mut (), _: u8) {}
    }

    #[test]
    fn empty_choice_list_is_identity() {
        let (out, r) = run(&DeadEnd);
        assert_eq!(out, 0);
        assert_eq!(r.nodes, 1);
        assert_eq!(r.leaves, 1);
    }

    #[test]
    fn run_subtree_matches_run() {
        let p = Ternary(4);
        let mut st = p.root();
        let mut nodes = 0;
        let out = run_subtree(&p, &mut st, 0, &mut nodes);
        let (expected, r) = run(&p);
        assert_eq!(out, expected);
        assert_eq!(nodes, r.nodes);
    }
}
