//! The [`Problem`] trait: the task body shared by every scheduler.

use crate::reduce::Reduce;

/// What a node of the computation tree expands to.
///
/// A node is either a *leaf* carrying a result contribution, or an interior
/// node with an ordered list of choices (one child per choice).
///
/// # Examples
///
/// ```
/// use adaptivetc_core::Expansion;
///
/// let leaf: Expansion<u8, u64> = Expansion::Leaf(1);
/// assert!(leaf.is_leaf());
/// let node: Expansion<u8, u64> = Expansion::Children(vec![0, 1, 2]);
/// assert_eq!(node.child_count(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expansion<C, O> {
    /// A terminal node contributing `O` to the result.
    Leaf(O),
    /// An interior node whose children are produced by applying each choice
    /// in order.
    Children(Vec<C>),
}

impl<C, O> Expansion<C, O> {
    /// Returns `true` if this expansion is a leaf.
    pub fn is_leaf(&self) -> bool {
        matches!(self, Expansion::Leaf(_))
    }

    /// Number of children (zero for a leaf).
    pub fn child_count(&self) -> usize {
        match self {
            Expansion::Leaf(_) => 0,
            Expansion::Children(cs) => cs.len(),
        }
    }
}

/// A backtracking-search or divide-and-conquer computation.
///
/// This is the library-level equivalent of the paper's extended-Cilk task
/// body. The associated `State` is the **taskprivate workspace**: schedulers
/// clone it exactly where the paper would `Cilk_alloca + memcpy` (task
/// creation), and mutate it in place via [`apply`](Problem::apply) /
/// [`undo`](Problem::undo) where the paper
/// runs a *fake task* (plain recursive call).
///
/// # Contract
///
/// * `expand(st, d)` must be a pure function of the workspace contents (and
///   depth), so that every scheduler — and any interleaving of steals —
///   observes the same tree.
/// * `undo(st, c)` must exactly invert `apply(st, c)`.
/// * `Out` is a commutative monoid ([`Reduce`]); children contributions may
///   be combined in any order. All of the paper's workloads reduce with `+`
///   over solution counts.
///
/// # Examples
///
/// Computing Fibonacci numbers recursively (the paper's `Fib(n)` benchmark,
/// which has *no* taskprivate variables — its state is an empty marker and
/// the "choices" select the `n-1` / `n-2` branch):
///
/// ```
/// use adaptivetc_core::{Problem, Expansion, serial};
///
/// struct Fib;
///
/// impl Problem for Fib {
///     type State = u32;          // the current argument n
///     type Choice = u32;         // subtract 1 or 2
///     type Out = u64;
///     fn root(&self) -> u32 { 20 }
///     fn expand(&self, n: &u32, _depth: u32) -> Expansion<u32, u64> {
///         if *n < 2 { Expansion::Leaf(u64::from(*n)) } else { Expansion::Children(vec![1, 2]) }
///     }
///     fn apply(&self, n: &mut u32, d: u32) { *n -= d; }
///     fn undo(&self, n: &mut u32, d: u32) { *n += d; }
/// }
///
/// let (fib20, _) = serial::run(&Fib);
/// assert_eq!(fib20, 6765);
/// ```
/// `Send + Sync` because workers share the problem by reference during a
/// run, and the job server additionally moves owned problem instances into
/// its long-lived pool threads.
pub trait Problem: Send + Sync {
    /// The taskprivate workspace. Cloning it is the paper's workspace copy.
    type State: Clone + Send;
    /// One branch out of an interior node.
    type Choice: Copy + Send + 'static;
    /// The result monoid (solution counts in all paper workloads).
    type Out: Reduce;

    /// The workspace of the root task.
    fn root(&self) -> Self::State;

    /// Expand the node reached by the current workspace at `depth`.
    fn expand(&self, st: &Self::State, depth: u32) -> Expansion<Self::Choice, Self::Out>;

    /// Apply a choice to the workspace in place (descend one level).
    fn apply(&self, st: &mut Self::State, c: Self::Choice);

    /// Exactly invert [`apply`](Problem::apply) (backtrack one level).
    fn undo(&self, st: &mut Self::State, c: Self::Choice);

    /// Heap bytes copied when `State` is cloned, for statistics.
    ///
    /// Workloads without taskprivate variables (`Fib`, `Comp`) report 0 so
    /// that workspace-copy accounting matches the paper.
    fn state_bytes(&self, st: &Self::State) -> usize {
        let _ = st;
        std::mem::size_of::<Self::State>()
    }

    /// Virtual work units performed at this node, used by the simulator's
    /// cost model. Real workloads default to 1 unit per node; the synthetic
    /// unbalanced trees report their configured per-node work.
    fn node_work(&self, st: &Self::State, depth: u32) -> u64 {
        let _ = (st, depth);
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expansion_leaf_reports_no_children() {
        let e: Expansion<u8, u32> = Expansion::Leaf(7);
        assert!(e.is_leaf());
        assert_eq!(e.child_count(), 0);
    }

    #[test]
    fn expansion_children_counts() {
        let e: Expansion<u8, u32> = Expansion::Children(vec![1, 2, 3, 4]);
        assert!(!e.is_leaf());
        assert_eq!(e.child_count(), 4);
    }

    #[test]
    fn expansion_equality() {
        let a: Expansion<u8, u32> = Expansion::Children(vec![1]);
        let b = a.clone();
        assert_eq!(a, b);
    }
}
