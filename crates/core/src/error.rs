//! Error types.

use std::error::Error;
use std::fmt;

/// An invalid [`Config`](crate::Config) value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum ConfigError {
    /// `threads` was zero.
    ZeroThreads,
    /// `deque_capacity` was below the minimum of 2 (stores the given value).
    DequeTooSmall(usize),
    /// `max_stolen_num` was zero (the `need_task` signal would never fire).
    ZeroMaxStolen,
    /// Tracing was enabled with a `trace_capacity` below the ring minimum
    /// of 16 (stores the given value).
    TraceCapacityTooSmall(usize),
    /// Tracing was enabled with `trace_sample == 0` (1 records every
    /// event; 0 would record none and make the differential vacuous).
    ZeroTraceSample,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::ZeroThreads => write!(f, "thread count must be nonzero"),
            ConfigError::DequeTooSmall(n) => {
                write!(f, "deque capacity {n} is below the minimum of 2")
            }
            ConfigError::ZeroMaxStolen => write!(f, "max_stolen_num must be nonzero"),
            ConfigError::TraceCapacityTooSmall(n) => {
                write!(f, "trace ring capacity {n} is below the minimum of 16")
            }
            ConfigError::ZeroTraceSample => {
                write!(
                    f,
                    "trace sampling rate must be nonzero (1 records everything)"
                )
            }
        }
    }
}

impl Error for ConfigError {}

/// A failure while running a scheduler.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SchedulerError {
    /// The configuration was invalid.
    Config(ConfigError),
    /// A fixed-capacity d-e-que overflowed (stores the capacity).
    ///
    /// The paper notes Cilk's fixed-size array deques are "prone to
    /// overflow"; this error reproduces that failure mode honestly instead
    /// of aborting.
    DequeOverflow(usize),
    /// A worker thread panicked.
    WorkerPanicked(usize),
}

impl fmt::Display for SchedulerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchedulerError::Config(e) => write!(f, "invalid configuration: {e}"),
            SchedulerError::DequeOverflow(cap) => {
                write!(f, "work deque overflowed its fixed capacity of {cap}")
            }
            SchedulerError::WorkerPanicked(id) => write!(f, "worker thread {id} panicked"),
        }
    }
}

impl Error for SchedulerError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SchedulerError::Config(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ConfigError> for SchedulerError {
    fn from(e: ConfigError) -> Self {
        SchedulerError::Config(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_without_trailing_punctuation() {
        for msg in [
            ConfigError::ZeroThreads.to_string(),
            ConfigError::DequeTooSmall(1).to_string(),
            ConfigError::TraceCapacityTooSmall(4).to_string(),
            SchedulerError::DequeOverflow(64).to_string(),
            SchedulerError::WorkerPanicked(3).to_string(),
        ] {
            assert!(!msg.ends_with('.'), "{msg:?} ends with a period");
            assert!(msg.chars().next().unwrap().is_lowercase() || msg.starts_with("deque"));
        }
    }

    #[test]
    fn scheduler_error_sources_config() {
        let e = SchedulerError::from(ConfigError::ZeroThreads);
        assert!(e.source().is_some());
        assert!(SchedulerError::DequeOverflow(2).source().is_none());
    }

    #[test]
    fn errors_are_send_sync() {
        fn assert_bounds<T: Send + Sync + 'static>() {}
        assert_bounds::<ConfigError>();
        assert_bounds::<SchedulerError>();
    }
}
