//! Scheduler configuration.

use crate::error::ConfigError;

/// How the task-creation cut-off depth is chosen.
///
/// The paper's runtime sets the AdaptiveTC cut-off to `⌈log₂ N⌉` for `N`
/// threads ([`CutoffPolicy::Auto`]); the fixed-cut-off baselines of Figure 9
/// use a programmer- or library-chosen constant ([`CutoffPolicy::Fixed`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CutoffPolicy {
    /// `⌈log₂ threads⌉`, minimum 1 — the paper's default.
    Auto,
    /// A fixed depth.
    Fixed(u32),
}

impl CutoffPolicy {
    /// Resolve the policy to a depth for a given worker count.
    ///
    /// # Examples
    ///
    /// ```
    /// use adaptivetc_core::CutoffPolicy;
    ///
    /// assert_eq!(CutoffPolicy::Auto.depth_for(8), 3);
    /// assert_eq!(CutoffPolicy::Auto.depth_for(5), 3);
    /// assert_eq!(CutoffPolicy::Auto.depth_for(1), 1);
    /// assert_eq!(CutoffPolicy::Fixed(7).depth_for(8), 7);
    /// ```
    pub fn depth_for(&self, threads: usize) -> u32 {
        match *self {
            CutoffPolicy::Fixed(d) => d,
            CutoffPolicy::Auto => {
                let t = threads.max(1) as u32;
                let lg = 32 - (t - 1).leading_zeros(); // ceil(log2 t), 0 for t=1
                lg.max(1)
            }
        }
    }
}

/// Which work-stealing deque substrate the threaded runtime uses.
///
/// All backends expose the same owner/thief protocol (including the
/// special-task operations AdaptiveTC needs), so every [`Config`] ×
/// scheduler combination is valid; they differ in synchronization cost and
/// overflow behaviour, which is exactly what the `ablation_backend` harness
/// measures.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum DequeBackend {
    /// The simplified THE protocol of Frigo et al. (fixed capacity,
    /// per-deque thief lock) — the paper's substrate and the default.
    #[default]
    The,
    /// The lock-free dynamic circular deque of Chase & Lev (grows on
    /// demand, single-CAS thief synchronization).
    ChaseLev,
    /// The growable locked buffer-pool deque (overflow-free reference).
    Pool,
    /// The fully read/write fence-free deque with multiplicity of
    /// Castañeda & Piña: zero fences/RMWs on the owner path; a task may
    /// be extracted more than once, and the runtime's per-frame epoch
    /// claim layer restores exactly-once execution (duplicates are
    /// counted in `RunStats::dup_extractions`).
    FenceFree,
}

impl DequeBackend {
    /// Short name for reports and benchmark labels.
    pub fn name(&self) -> &'static str {
        match self {
            DequeBackend::The => "the",
            DequeBackend::ChaseLev => "chase-lev",
            DequeBackend::Pool => "pool",
            DequeBackend::FenceFree => "fence-free",
        }
    }

    /// All backends, for ablation sweeps.
    pub const ALL: [DequeBackend; 4] = [
        DequeBackend::The,
        DequeBackend::ChaseLev,
        DequeBackend::Pool,
        DequeBackend::FenceFree,
    ];
}

/// When the taskprivate workspace of a pushed task is cloned.
///
/// Under the work-first principle the overwhelming majority of pushed
/// tasks are popped back by their owner, so an eager clone at every spawn
/// is almost always wasted. [`WorkspacePolicy::CopyOnSteal`] defers the
/// clone to the moment of a successful steal: the pushed frame borrows the
/// owner's in-place workspace, an owner pop reuses it directly (counted in
/// `workspace_copies_saved`), and the steal path materialises an isolated
/// clone for the thief so stolen-task semantics are bit-identical.
/// `Mode::Cilk`/`Mode::CilkSynched` always copy eagerly regardless of this
/// setting — they are the faithful per-spawn-allocation baselines.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum WorkspacePolicy {
    /// Clone the workspace at every spawn (the paper's literal scheme).
    EagerCopy,
    /// Defer the clone until a thief actually steals the task — the
    /// default.
    #[default]
    CopyOnSteal,
}

impl WorkspacePolicy {
    /// Short name for reports and benchmark labels.
    pub fn name(&self) -> &'static str {
        match self {
            WorkspacePolicy::EagerCopy => "eager",
            WorkspacePolicy::CopyOnSteal => "copy-on-steal",
        }
    }

    /// All policies, for ablation sweeps.
    pub const ALL: [WorkspacePolicy; 2] =
        [WorkspacePolicy::EagerCopy, WorkspacePolicy::CopyOnSteal];
}

/// How a thief picks its next victim.
///
/// The paper steals from a uniformly random other worker; the
/// alternatives here are the classic locality/occupancy refinements
/// surveyed in *Configurable Strategies for Work-stealing* (Wimmer et
/// al.). All policies skip the thief itself and avoid immediately
/// re-probing the victim that just reported an empty deque.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum VictimPolicy {
    /// Uniformly random victim — the paper's scheme and the default.
    #[default]
    Uniform,
    /// Return to the victim of the last successful steal first (steal
    /// affinity); fall back to uniform when it runs dry.
    LastVictim,
    /// Sample two distinct candidates and probe the one whose relaxed
    /// occupancy hint reports the longer deque.
    BestOfTwo,
}

impl VictimPolicy {
    /// Short name for reports and benchmark labels.
    pub fn name(&self) -> &'static str {
        match self {
            VictimPolicy::Uniform => "uniform",
            VictimPolicy::LastVictim => "last-victim",
            VictimPolicy::BestOfTwo => "best-of-two",
        }
    }

    /// All policies, for ablation sweeps.
    pub const ALL: [VictimPolicy; 3] = [
        VictimPolicy::Uniform,
        VictimPolicy::LastVictim,
        VictimPolicy::BestOfTwo,
    ];
}

/// When a spawn becomes a real (stealable) task instead of an inlined
/// fake-task frame.
///
/// Under `Mode::Adaptive` this selects the task-creation strategy; the
/// Cilk baselines ignore it (they create a task at every spawn, exactly
/// as they ignore the victim and workspace policies). The fixed-cut-off
/// baseline modes always behave like [`CreationPolicy::Static`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum CreationPolicy {
    /// `depth < cutoff`, constant for the whole run: the Figure 9
    /// fixed-cut-off frontier. No `need_task` response, no fast_2
    /// doubling — what you set is what you get.
    Static,
    /// Depth plus own-deque occupancy: `depth < cutoff`, extended to
    /// `depth < 2 × cutoff` while the worker's own deque is nearly
    /// empty. A cheap feedback rule with no cross-worker signals.
    Hybrid,
    /// The paper's adaptive strategy (fake tasks polling `need_task`,
    /// special-task re-entry, fast_2 doubling), with the effective
    /// cut-off additionally auto-tuned per worker by the online
    /// controller (`adaptivetc-strategy`) — the default.
    #[default]
    Adaptive,
}

impl CreationPolicy {
    /// Short name for reports and benchmark labels.
    pub fn name(&self) -> &'static str {
        match self {
            CreationPolicy::Static => "static",
            CreationPolicy::Hybrid => "hybrid",
            CreationPolicy::Adaptive => "adaptive",
        }
    }

    /// All policies, for ablation sweeps.
    pub const ALL: [CreationPolicy; 3] = [
        CreationPolicy::Static,
        CreationPolicy::Hybrid,
        CreationPolicy::Adaptive,
    ];
}

/// How much work a successful steal extracts from the victim.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum ExtractionPolicy {
    /// Take the single oldest entry — the paper's scheme and the
    /// default.
    #[default]
    StealOne,
    /// Take up to half of the victim's visible backlog in one visit
    /// (bounded multi-pop through `WsDeque::steal_many`); the thief runs
    /// the extra loot before probing new victims.
    StealHalf,
}

impl ExtractionPolicy {
    /// Short name for reports and benchmark labels.
    pub fn name(&self) -> &'static str {
        match self {
            ExtractionPolicy::StealOne => "steal-one",
            ExtractionPolicy::StealHalf => "steal-half",
        }
    }

    /// All policies, for ablation sweeps.
    pub const ALL: [ExtractionPolicy; 2] =
        [ExtractionPolicy::StealOne, ExtractionPolicy::StealHalf];
}

/// How the `need_task` trigger threshold behaves over the run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum ThresholdPolicy {
    /// [`Config::max_stolen_num`] for the whole run — the paper's
    /// fixed threshold and the default.
    #[default]
    Fixed,
    /// Each owner retunes its own trigger from live special-task
    /// pressure: frequent acknowledgements raise the threshold (serving
    /// is thrashing), quiet stretches decay it back toward the
    /// configured base. Bounded to `[max(1, base/2), base × 8]`.
    Adaptive,
}

impl ThresholdPolicy {
    /// Short name for reports and benchmark labels.
    pub fn name(&self) -> &'static str {
        match self {
            ThresholdPolicy::Fixed => "fixed",
            ThresholdPolicy::Adaptive => "adaptive",
        }
    }

    /// All policies, for ablation sweeps.
    pub const ALL: [ThresholdPolicy; 2] = [ThresholdPolicy::Fixed, ThresholdPolicy::Adaptive];
}

/// Configuration shared by all schedulers.
///
/// Use the builder-style setters; [`Config::validate`] is called by the
/// schedulers before running.
///
/// # Examples
///
/// ```
/// use adaptivetc_core::{Config, CutoffPolicy, DequeBackend};
///
/// let cfg = Config::new(8)
///     .cutoff(CutoffPolicy::Auto)
///     .max_stolen_num(20)
///     .backend(DequeBackend::ChaseLev)
///     .seed(1);
/// assert_eq!(cfg.threads, 8);
/// assert!(cfg.validate().is_ok());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Config {
    /// Number of worker threads (virtual workers in the simulator).
    pub threads: usize,
    /// Task-creation cut-off policy.
    pub cutoff: CutoffPolicy,
    /// Failed-steal threshold before a victim's `need_task` flag is raised
    /// (the paper's default is 20).
    pub max_stolen_num: u32,
    /// Capacity of each fixed-size d-e-que (initial capacity for growable
    /// backends).
    pub deque_capacity: usize,
    /// Which deque substrate the threaded runtime uses (the simulator
    /// models the THE protocol only).
    pub backend: DequeBackend,
    /// When the taskprivate workspace of a pushed task is cloned (the
    /// threaded runtime and the simulator both honour this; the Cilk
    /// baselines always copy eagerly).
    pub workspace: WorkspacePolicy,
    /// How thieves pick their victims.
    pub victim: VictimPolicy,
    /// When a spawn becomes a real task under `Mode::Adaptive` (the
    /// Cilk baselines ignore this, like `victim` and `workspace`).
    pub creation: CreationPolicy,
    /// How much work a successful steal extracts.
    pub extraction: ExtractionPolicy,
    /// Whether the `need_task` trigger threshold is fixed at
    /// `max_stolen_num` or retuned online per owner.
    pub threshold: ThresholdPolicy,
    /// Seed for all scheduler-internal randomness.
    pub seed: u64,
    /// Measure per-activity times (adds instrumentation overhead to the
    /// threaded runtime; the simulator always reports exact virtual times).
    pub timing: bool,
    /// Record per-worker event traces (spawns, deque traffic, steals, FSM
    /// transitions, workspace handshake). Works in every mode, including
    /// the Cilk baselines. Requires the runtime's `trace` cargo feature;
    /// with the feature compiled out this flag is ignored.
    pub trace: bool,
    /// Per-worker event-ring capacity (events, rounded up to a power of
    /// two). Full rings drop their oldest events and count the loss.
    pub trace_capacity: usize,
    /// Category bitmask selecting which event categories are recorded
    /// (bit layout defined by `adaptivetc_trace::Category`; this is a
    /// raw `u64` so the core crate carries no trace dependency). The
    /// default records everything; the collector additionally clamps to
    /// the categories compiled into the build and always keeps
    /// job-epoch markers.
    pub trace_filter: u64,
    /// Record only 1 in N events of the high-frequency categories (deque
    /// traffic, fake tasks, spawns). The default of 16 keeps traced-on
    /// overhead in low single digits (production flight-recorder mode);
    /// set `1` to record everything — required when a consumer needs
    /// exhaustive streams, e.g. the trace-vs-sim diff. `RunStats` keeps
    /// exact counts regardless, so the trace/stats differential stays
    /// meaningful — sampled categories are checked as bounds.
    pub trace_sample: u32,
}

impl Config {
    /// A configuration with the paper's defaults for `threads` workers.
    pub fn new(threads: usize) -> Self {
        Config {
            threads,
            cutoff: CutoffPolicy::Auto,
            max_stolen_num: 20,
            deque_capacity: 4096,
            backend: DequeBackend::The,
            workspace: WorkspacePolicy::CopyOnSteal,
            victim: VictimPolicy::Uniform,
            creation: CreationPolicy::Adaptive,
            extraction: ExtractionPolicy::StealOne,
            threshold: ThresholdPolicy::Fixed,
            seed: 0x5EED,
            timing: false,
            trace: false,
            trace_capacity: 1 << 16,
            trace_filter: u64::MAX,
            trace_sample: 16,
        }
    }

    /// Set the cut-off policy.
    pub fn cutoff(mut self, cutoff: CutoffPolicy) -> Self {
        self.cutoff = cutoff;
        self
    }

    /// Set the failed-steal threshold that raises `need_task`.
    pub fn max_stolen_num(mut self, n: u32) -> Self {
        self.max_stolen_num = n;
        self
    }

    /// Set the fixed d-e-que capacity.
    pub fn deque_capacity(mut self, cap: usize) -> Self {
        self.deque_capacity = cap;
        self
    }

    /// Set the deque backend.
    pub fn backend(mut self, backend: DequeBackend) -> Self {
        self.backend = backend;
        self
    }

    /// Set the workspace-cloning policy.
    pub fn workspace(mut self, workspace: WorkspacePolicy) -> Self {
        self.workspace = workspace;
        self
    }

    /// Set the victim-selection policy.
    pub fn victim(mut self, victim: VictimPolicy) -> Self {
        self.victim = victim;
        self
    }

    /// Set the task-creation policy.
    pub fn creation(mut self, creation: CreationPolicy) -> Self {
        self.creation = creation;
        self
    }

    /// Set the steal-extraction policy.
    pub fn extraction(mut self, extraction: ExtractionPolicy) -> Self {
        self.extraction = extraction;
        self
    }

    /// Set the `need_task` threshold policy.
    pub fn threshold(mut self, threshold: ThresholdPolicy) -> Self {
        self.threshold = threshold;
        self
    }

    /// Set the random seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Enable or disable time instrumentation.
    pub fn timing(mut self, timing: bool) -> Self {
        self.timing = timing;
        self
    }

    /// Enable or disable event tracing.
    pub fn trace(mut self, trace: bool) -> Self {
        self.trace = trace;
        self
    }

    /// Set the per-worker event-ring capacity.
    pub fn trace_capacity(mut self, capacity: usize) -> Self {
        self.trace_capacity = capacity;
        self
    }

    /// Set the trace category filter mask.
    pub fn trace_filter(mut self, mask: u64) -> Self {
        self.trace_filter = mask;
        self
    }

    /// Set the 1-in-N sampling rate for high-frequency trace categories.
    pub fn trace_sample(mut self, n: u32) -> Self {
        self.trace_sample = n;
        self
    }

    /// The resolved cut-off depth for this configuration.
    pub fn cutoff_depth(&self) -> u32 {
        self.cutoff.depth_for(self.threads)
    }

    /// Check the configuration for nonsensical values.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if `threads == 0`, `deque_capacity < 2`,
    /// `max_stolen_num == 0`, or tracing is enabled with
    /// `trace_capacity < 16` or `trace_sample == 0`.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.threads == 0 {
            return Err(ConfigError::ZeroThreads);
        }
        if self.deque_capacity < 2 {
            return Err(ConfigError::DequeTooSmall(self.deque_capacity));
        }
        if self.max_stolen_num == 0 {
            return Err(ConfigError::ZeroMaxStolen);
        }
        if self.trace && self.trace_capacity < 16 {
            return Err(ConfigError::TraceCapacityTooSmall(self.trace_capacity));
        }
        if self.trace && self.trace_sample == 0 {
            return Err(ConfigError::ZeroTraceSample);
        }
        Ok(())
    }
}

impl Default for Config {
    fn default() -> Self {
        Config::new(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn auto_cutoff_is_ceil_log2() {
        assert_eq!(CutoffPolicy::Auto.depth_for(1), 1);
        assert_eq!(CutoffPolicy::Auto.depth_for(2), 1);
        assert_eq!(CutoffPolicy::Auto.depth_for(3), 2);
        assert_eq!(CutoffPolicy::Auto.depth_for(4), 2);
        assert_eq!(CutoffPolicy::Auto.depth_for(8), 3);
        assert_eq!(CutoffPolicy::Auto.depth_for(9), 4);
        assert_eq!(CutoffPolicy::Auto.depth_for(16), 4);
    }

    #[test]
    fn fixed_cutoff_ignores_threads() {
        assert_eq!(CutoffPolicy::Fixed(5).depth_for(1), 5);
        assert_eq!(CutoffPolicy::Fixed(5).depth_for(64), 5);
    }

    #[test]
    fn validate_rejects_zero_threads() {
        assert!(Config::new(0).validate().is_err());
    }

    #[test]
    fn validate_rejects_tiny_deque() {
        assert!(Config::new(1).deque_capacity(1).validate().is_err());
    }

    #[test]
    fn validate_rejects_zero_max_stolen() {
        assert!(Config::new(1).max_stolen_num(0).validate().is_err());
    }

    #[test]
    fn builder_roundtrip() {
        let cfg = Config::new(4)
            .cutoff(CutoffPolicy::Fixed(9))
            .max_stolen_num(3)
            .deque_capacity(64)
            .backend(DequeBackend::ChaseLev)
            .workspace(WorkspacePolicy::EagerCopy)
            .victim(VictimPolicy::BestOfTwo)
            .creation(CreationPolicy::Hybrid)
            .extraction(ExtractionPolicy::StealHalf)
            .threshold(ThresholdPolicy::Adaptive)
            .seed(77)
            .timing(true)
            .trace(true)
            .trace_capacity(1 << 10)
            .trace_filter(0b1010)
            .trace_sample(8);
        assert_eq!(cfg.cutoff_depth(), 9);
        assert_eq!(cfg.max_stolen_num, 3);
        assert_eq!(cfg.deque_capacity, 64);
        assert_eq!(cfg.backend, DequeBackend::ChaseLev);
        assert_eq!(cfg.workspace, WorkspacePolicy::EagerCopy);
        assert_eq!(cfg.victim, VictimPolicy::BestOfTwo);
        assert_eq!(cfg.creation, CreationPolicy::Hybrid);
        assert_eq!(cfg.extraction, ExtractionPolicy::StealHalf);
        assert_eq!(cfg.threshold, ThresholdPolicy::Adaptive);
        assert_eq!(cfg.seed, 77);
        assert!(cfg.timing);
        assert!(cfg.trace);
        assert_eq!(cfg.trace_capacity, 1 << 10);
        assert_eq!(cfg.trace_filter, 0b1010);
        assert_eq!(cfg.trace_sample, 8);
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn validate_rejects_zero_trace_sample_only_when_tracing() {
        assert!(Config::new(1).trace_sample(0).validate().is_ok());
        let err = Config::new(1)
            .trace(true)
            .trace_sample(0)
            .validate()
            .unwrap_err();
        assert_eq!(err, crate::ConfigError::ZeroTraceSample);
        // The defaults record every category, hot ones sampled 1-in-16
        // (flight-recorder mode); exhaustive recording is opt-in.
        let cfg = Config::new(1);
        assert_eq!(cfg.trace_filter, u64::MAX);
        assert_eq!(cfg.trace_sample, 16);
    }

    #[test]
    fn validate_rejects_tiny_trace_ring_only_when_tracing() {
        // A tiny capacity is fine while tracing is off...
        assert!(Config::new(1).trace_capacity(1).validate().is_ok());
        // ...and rejected once tracing is requested.
        let err = Config::new(1)
            .trace(true)
            .trace_capacity(1)
            .validate()
            .unwrap_err();
        assert_eq!(err, crate::ConfigError::TraceCapacityTooSmall(1));
        assert!(Config::new(1).trace(true).validate().is_ok());
    }

    #[test]
    fn backend_names_are_distinct() {
        let mut names: Vec<_> = DequeBackend::ALL.iter().map(|b| b.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), DequeBackend::ALL.len());
        assert_eq!(DequeBackend::default(), DequeBackend::The);
    }

    #[test]
    fn default_is_single_threaded_and_valid() {
        let cfg = Config::default();
        assert_eq!(cfg.threads, 1);
        assert!(cfg.validate().is_ok());
        assert_eq!(cfg.workspace, WorkspacePolicy::CopyOnSteal);
        assert_eq!(cfg.victim, VictimPolicy::Uniform);
    }

    #[test]
    fn policy_names_are_distinct() {
        let mut names: Vec<_> = VictimPolicy::ALL.iter().map(|v| v.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), VictimPolicy::ALL.len());
        let mut ws_names: Vec<_> = WorkspacePolicy::ALL.iter().map(|w| w.name()).collect();
        ws_names.sort_unstable();
        ws_names.dedup();
        assert_eq!(ws_names.len(), WorkspacePolicy::ALL.len());
    }

    // Every config axis must expose the same surface: an `ALL` sweep
    // constant covering each variant, distinct `name()`s, and a default
    // that appears in the sweep. This is what keeps the ablation benches
    // and EXPERIMENTS.md's axis tables honest as axes are added.
    #[test]
    fn config_axes_are_uniform() {
        fn axis<T: Copy + PartialEq + std::fmt::Debug + Default>(
            all: &[T],
            name: impl Fn(&T) -> &'static str,
        ) {
            let mut names: Vec<_> = all.iter().map(&name).collect();
            names.sort_unstable();
            names.dedup();
            assert_eq!(names.len(), all.len(), "duplicate names in {all:?}");
            assert!(
                all.contains(&T::default()),
                "default of {all:?} missing from ALL"
            );
        }
        axis(&DequeBackend::ALL, DequeBackend::name);
        axis(&WorkspacePolicy::ALL, WorkspacePolicy::name);
        axis(&VictimPolicy::ALL, VictimPolicy::name);
        axis(&CreationPolicy::ALL, CreationPolicy::name);
        axis(&ExtractionPolicy::ALL, ExtractionPolicy::name);
        axis(&ThresholdPolicy::ALL, ThresholdPolicy::name);
    }

    #[test]
    fn strategy_defaults_preserve_the_paper_policy() {
        let cfg = Config::new(4);
        assert_eq!(cfg.creation, CreationPolicy::Adaptive);
        assert_eq!(cfg.extraction, ExtractionPolicy::StealOne);
        assert_eq!(cfg.threshold, ThresholdPolicy::Fixed);
    }
}
