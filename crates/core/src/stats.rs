//! Run statistics: the quantities the paper's evaluation measures.
//!
//! Every scheduler (threaded or simulated) fills in a [`RunStats`] per
//! worker; [`RunReport`] aggregates them. These counters drive the
//! reproduction of Table 2 (relative one-thread overhead), Figure 6/7
//! (overhead breakdowns) and the task-count comparisons of Figure 1.

/// Wall-clock / virtual-clock time split by activity, in nanoseconds.
///
/// For the threaded runtime these are measured times (only when timing is
/// enabled in [`Config`](crate::Config)); for the simulator they are exact
/// virtual durations.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TimeBreakdown {
    /// Time spent executing user work (`expand`/`apply`/`undo`/leaf work).
    pub busy_ns: u64,
    /// Time spent allocating and copying taskprivate workspaces.
    pub copy_ns: u64,
    /// Time spent blocked waiting for child tasks to complete (Tascell's
    /// dominant overhead; AdaptiveTC pays it only inside special tasks).
    pub wait_children_ns: u64,
    /// Time spent idle attempting to steal (includes failed attempts and
    /// back-off).
    pub steal_wait_ns: u64,
    /// Time spent polling for steal requests / `need_task` flags.
    pub poll_ns: u64,
    /// Time spent on task creation and d-e-que management (Tascell: nested
    /// function bookkeeping).
    pub deque_ns: u64,
}

impl TimeBreakdown {
    /// Sum of all categories.
    pub fn total_ns(&self) -> u64 {
        self.busy_ns
            + self.copy_ns
            + self.wait_children_ns
            + self.steal_wait_ns
            + self.poll_ns
            + self.deque_ns
    }

    /// Accumulate another breakdown into this one.
    pub fn merge(&mut self, other: &TimeBreakdown) {
        self.busy_ns += other.busy_ns;
        self.copy_ns += other.copy_ns;
        self.wait_children_ns += other.wait_children_ns;
        self.steal_wait_ns += other.steal_wait_ns;
        self.poll_ns += other.poll_ns;
        self.deque_ns += other.deque_ns;
    }

    /// Fraction of total time spent in a category, `0.0` if nothing was
    /// recorded.
    pub fn fraction(&self, category_ns: u64) -> f64 {
        let total = self.total_ns();
        if total == 0 {
            0.0
        } else {
            category_ns as f64 / total as f64
        }
    }
}

/// Event counters for one run (or one worker of a run).
///
/// # Examples
///
/// ```
/// use adaptivetc_core::RunStats;
///
/// let mut a = RunStats::default();
/// a.tasks_created = 3;
/// let mut b = RunStats::default();
/// b.tasks_created = 4;
/// a.merge(&b);
/// assert_eq!(a.tasks_created, 7);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Tree nodes executed (leaves + interior).
    pub nodes: u64,
    /// Real tasks created (pushed to a d-e-que or packaged for a requester).
    pub tasks_created: u64,
    /// Nodes executed as fake tasks (plain calls, no d-e-que traffic).
    pub fake_tasks: u64,
    /// Special tasks created (AdaptiveTC only).
    pub special_tasks: u64,
    /// d-e-que push operations.
    pub deque_pushes: u64,
    /// d-e-que pop operations that returned a task.
    pub deque_pops: u64,
    /// Pop attempts that lost the THE race (task had been stolen).
    pub pop_conflicts: u64,
    /// Extractions rejected by the claim layer because another party had
    /// already claimed the frame's epoch (multiplicity backends only;
    /// always zero for exactly-once backends).
    pub dup_extractions: u64,
    /// Successful steals.
    pub steals_ok: u64,
    /// Failed steal attempts.
    pub steals_failed: u64,
    /// Steal requests sent (Tascell-style request/respond protocols).
    pub steal_requests: u64,
    /// Steal requests answered with a task (Tascell victims).
    pub steal_responses: u64,
    /// Taskprivate workspace copies performed.
    pub copies: u64,
    /// Bytes copied for taskprivate workspaces.
    pub copy_bytes: u64,
    /// Workspace allocations (Cilk-SYNCHED reuses buffers: copies stay,
    /// allocations drop).
    pub allocations: u64,
    /// Spawns that would have paid an eager workspace clone but did not,
    /// because copy-on-steal let the owner reuse the in-place workspace.
    /// Thieves still pay a clone (counted in `copies`) when they actually
    /// steal such a task.
    pub workspace_copies_saved: u64,
    /// Frame shells recycled from a worker's frame pool instead of being
    /// allocated fresh.
    pub frame_reuse: u64,
    /// Workspace buffers recycled from a worker's state pool instead of
    /// being allocated fresh.
    pub state_reuse: u64,
    /// Times an idle thief escalated its back-off (finished a spin round or
    /// yielded) during the steal loop.
    pub steal_backoffs: u64,
    /// `need_task` / request-flag polls executed.
    pub polls: u64,
    /// Tasks suspended at a synchronization point.
    pub suspensions: u64,
    /// Online retunes of a worker's effective task-creation cut-off
    /// (`CreationPolicy::Adaptive`'s controller; zero when the cut-off
    /// never moved).
    pub cutoff_adjustments: u64,
    /// Online retunes of an owner's `need_task` trigger threshold
    /// (`ThresholdPolicy::Adaptive`; zero under the fixed threshold).
    pub threshold_adjustments: u64,
    /// Peak d-e-que occupancy observed.
    pub deque_peak: u64,
    /// d-e-que overflow events (fixed-capacity deques only).
    pub deque_overflows: u64,
    /// Time breakdown (zeroes when timing is disabled).
    pub time: TimeBreakdown,
}

impl RunStats {
    /// Accumulate another worker's statistics into this one.
    ///
    /// `deque_peak` merges with `max`, everything else with `+`.
    pub fn merge(&mut self, other: &RunStats) {
        self.nodes += other.nodes;
        self.tasks_created += other.tasks_created;
        self.fake_tasks += other.fake_tasks;
        self.special_tasks += other.special_tasks;
        self.deque_pushes += other.deque_pushes;
        self.deque_pops += other.deque_pops;
        self.pop_conflicts += other.pop_conflicts;
        self.dup_extractions += other.dup_extractions;
        self.steals_ok += other.steals_ok;
        self.steals_failed += other.steals_failed;
        self.steal_requests += other.steal_requests;
        self.steal_responses += other.steal_responses;
        self.copies += other.copies;
        self.copy_bytes += other.copy_bytes;
        self.allocations += other.allocations;
        self.workspace_copies_saved += other.workspace_copies_saved;
        self.frame_reuse += other.frame_reuse;
        self.state_reuse += other.state_reuse;
        self.steal_backoffs += other.steal_backoffs;
        self.polls += other.polls;
        self.suspensions += other.suspensions;
        self.cutoff_adjustments += other.cutoff_adjustments;
        self.threshold_adjustments += other.threshold_adjustments;
        self.deque_peak = self.deque_peak.max(other.deque_peak);
        self.deque_overflows += other.deque_overflows;
        self.time.merge(&other.time);
    }
}

/// The result of a parallel run: aggregated and per-worker statistics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RunReport {
    /// Statistics summed over all workers.
    pub stats: RunStats,
    /// Per-worker statistics, indexed by worker id.
    pub per_worker: Vec<RunStats>,
    /// Wall-clock (threaded) or virtual (simulated) duration in ns.
    pub wall_ns: u64,
    /// Number of workers used.
    pub threads: usize,
}

impl RunReport {
    /// Build a report by aggregating per-worker statistics.
    pub fn from_workers(per_worker: Vec<RunStats>, wall_ns: u64) -> Self {
        let mut stats = RunStats::default();
        for w in &per_worker {
            stats.merge(w);
        }
        let threads = per_worker.len();
        RunReport {
            stats,
            per_worker,
            wall_ns,
            threads,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_total_sums_categories() {
        let t = TimeBreakdown {
            busy_ns: 1,
            copy_ns: 2,
            wait_children_ns: 3,
            steal_wait_ns: 4,
            poll_ns: 5,
            deque_ns: 6,
        };
        assert_eq!(t.total_ns(), 21);
    }

    #[test]
    fn breakdown_fraction_handles_empty() {
        let t = TimeBreakdown::default();
        assert_eq!(t.fraction(0), 0.0);
    }

    #[test]
    fn breakdown_fraction() {
        let t = TimeBreakdown {
            busy_ns: 75,
            wait_children_ns: 25,
            ..Default::default()
        };
        assert!((t.fraction(t.wait_children_ns) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn merge_takes_max_peak() {
        let mut a = RunStats {
            deque_peak: 4,
            ..Default::default()
        };
        let b = RunStats {
            deque_peak: 9,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.deque_peak, 9);
    }

    #[test]
    fn merge_sums_copy_on_steal_fields() {
        let mut a = RunStats {
            workspace_copies_saved: 10,
            steal_backoffs: 3,
            ..Default::default()
        };
        let b = RunStats {
            workspace_copies_saved: 7,
            steal_backoffs: 4,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.workspace_copies_saved, 17);
        assert_eq!(a.steal_backoffs, 7);
    }

    #[test]
    fn merge_sums_pool_reuse_fields() {
        let mut a = RunStats {
            frame_reuse: 5,
            state_reuse: 2,
            allocations: 9,
            ..Default::default()
        };
        let b = RunStats {
            frame_reuse: 1,
            state_reuse: 8,
            allocations: 1,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.frame_reuse, 6);
        assert_eq!(a.state_reuse, 10);
        assert_eq!(a.allocations, 10);
    }

    // Guard against `merge` silently lagging the struct again: set every
    // additive counter to 1 on both sides and demand 2 everywhere after a
    // merge (deque_peak, the lone max-merged field, stays 1).
    #[test]
    fn merge_covers_every_counter() {
        let ones = RunStats {
            nodes: 1,
            tasks_created: 1,
            fake_tasks: 1,
            special_tasks: 1,
            deque_pushes: 1,
            deque_pops: 1,
            pop_conflicts: 1,
            dup_extractions: 1,
            steals_ok: 1,
            steals_failed: 1,
            steal_requests: 1,
            steal_responses: 1,
            copies: 1,
            copy_bytes: 1,
            allocations: 1,
            workspace_copies_saved: 1,
            frame_reuse: 1,
            state_reuse: 1,
            steal_backoffs: 1,
            polls: 1,
            suspensions: 1,
            cutoff_adjustments: 1,
            threshold_adjustments: 1,
            deque_peak: 1,
            deque_overflows: 1,
            time: TimeBreakdown {
                busy_ns: 1,
                copy_ns: 1,
                wait_children_ns: 1,
                steal_wait_ns: 1,
                poll_ns: 1,
                deque_ns: 1,
            },
        };
        let mut merged = ones.clone();
        merged.merge(&ones);
        let expect = |v: u64, field: &str| assert_eq!(v, 2, "{field} not merged additively");
        expect(merged.nodes, "nodes");
        expect(merged.tasks_created, "tasks_created");
        expect(merged.fake_tasks, "fake_tasks");
        expect(merged.special_tasks, "special_tasks");
        expect(merged.deque_pushes, "deque_pushes");
        expect(merged.deque_pops, "deque_pops");
        expect(merged.pop_conflicts, "pop_conflicts");
        expect(merged.dup_extractions, "dup_extractions");
        expect(merged.steals_ok, "steals_ok");
        expect(merged.steals_failed, "steals_failed");
        expect(merged.steal_requests, "steal_requests");
        expect(merged.steal_responses, "steal_responses");
        expect(merged.copies, "copies");
        expect(merged.copy_bytes, "copy_bytes");
        expect(merged.allocations, "allocations");
        expect(merged.workspace_copies_saved, "workspace_copies_saved");
        expect(merged.frame_reuse, "frame_reuse");
        expect(merged.state_reuse, "state_reuse");
        expect(merged.steal_backoffs, "steal_backoffs");
        expect(merged.polls, "polls");
        expect(merged.suspensions, "suspensions");
        expect(merged.cutoff_adjustments, "cutoff_adjustments");
        expect(merged.threshold_adjustments, "threshold_adjustments");
        expect(merged.deque_overflows, "deque_overflows");
        assert_eq!(merged.time.total_ns(), 12, "time categories not merged");
        assert_eq!(merged.deque_peak, 1, "deque_peak must merge with max");
    }

    #[test]
    fn report_aggregates_pr3_fields_across_workers() {
        let w0 = RunStats {
            workspace_copies_saved: 4,
            frame_reuse: 2,
            steal_backoffs: 1,
            ..Default::default()
        };
        let w1 = RunStats {
            workspace_copies_saved: 6,
            state_reuse: 3,
            steal_backoffs: 2,
            ..Default::default()
        };
        let r = RunReport::from_workers(vec![w0, w1], 10);
        assert_eq!(r.stats.workspace_copies_saved, 10);
        assert_eq!(r.stats.frame_reuse, 2);
        assert_eq!(r.stats.state_reuse, 3);
        assert_eq!(r.stats.steal_backoffs, 3);
    }

    #[test]
    fn report_aggregates_workers() {
        let w0 = RunStats {
            steals_ok: 2,
            ..Default::default()
        };
        let w1 = RunStats {
            steals_ok: 3,
            ..Default::default()
        };
        let r = RunReport::from_workers(vec![w0, w1], 1000);
        assert_eq!(r.stats.steals_ok, 5);
        assert_eq!(r.threads, 2);
        assert_eq!(r.wall_ns, 1000);
    }
}
