//! Seeded pseudo-random number generation.
//!
//! All scheduler-internal randomness (victim selection, simulator tie
//! breaking) flows through [`XorShift64`] so that every run is reproducible
//! from its configured seed. The synthetic unbalanced trees additionally use
//! the paper's own linear congruential recipe (implemented in
//! `adaptivetc-workloads`).

/// An xorshift64* pseudo-random number generator.
///
/// Small, fast and deterministic; not cryptographically secure.
///
/// # Examples
///
/// ```
/// use adaptivetc_core::XorShift64;
///
/// let mut a = XorShift64::new(42);
/// let mut b = XorShift64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // same seed, same stream
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    /// Creates a generator from a seed. A zero seed is remapped to a fixed
    /// nonzero constant (xorshift has an all-zero fixed point).
    pub fn new(seed: u64) -> Self {
        XorShift64 {
            state: if seed == 0 {
                0x9E37_79B9_7F4A_7C15
            } else {
                seed
            },
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value in `0..bound`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below() requires a nonzero bound");
        // Multiplicative range reduction; bias is negligible for the small
        // bounds (worker counts, child counts) used here.
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Uniform `usize` in `0..bound`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn below_usize(&mut self, bound: usize) -> usize {
        self.below(bound as u64) as usize
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Derive an independent generator (for per-worker streams).
    pub fn split(&mut self) -> XorShift64 {
        XorShift64::new(self.next_u64() | 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = XorShift64::new(7);
        let mut b = XorShift64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut r = XorShift64::new(0);
        let x = r.next_u64();
        let y = r.next_u64();
        assert_ne!(x, y);
        assert_ne!(x, 0);
    }

    #[test]
    fn below_respects_bound() {
        let mut r = XorShift64::new(123);
        for _ in 0..1000 {
            assert!(r.below(10) < 10);
        }
    }

    #[test]
    fn below_hits_all_residues() {
        let mut r = XorShift64::new(9);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[r.below_usize(4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut r = XorShift64::new(55);
        for _ in 0..1000 {
            let f = r.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn split_streams_differ() {
        let mut r = XorShift64::new(1);
        let mut a = r.split();
        let mut b = r.split();
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    #[should_panic(expected = "nonzero bound")]
    fn below_zero_bound_panics() {
        XorShift64::new(1).below(0);
    }
}
