//! The [`Reduce`] result monoid.

/// A commutative monoid used to combine child-task results.
///
/// Work-stealing schedulers complete children in nondeterministic order, so
/// the combination must be associative **and commutative** with an identity.
/// Every workload in the paper reduces solution counts with `+`.
///
/// # Examples
///
/// ```
/// use adaptivetc_core::Reduce;
///
/// let mut acc = u64::identity();
/// acc.combine(3);
/// acc.combine(4);
/// assert_eq!(acc, 7);
/// ```
pub trait Reduce: Send + 'static {
    /// The identity element (`0` for sums).
    fn identity() -> Self;
    /// Fold another value into `self`.
    fn combine(&mut self, other: Self);
}

macro_rules! impl_reduce_sum {
    ($($t:ty),*) => {
        $(
            impl Reduce for $t {
                fn identity() -> Self { 0 }
                fn combine(&mut self, other: Self) { *self += other; }
            }
        )*
    };
}

impl_reduce_sum!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

impl Reduce for () {
    fn identity() -> Self {}
    fn combine(&mut self, _other: Self) {}
}

impl Reduce for f64 {
    fn identity() -> Self {
        0.0
    }
    fn combine(&mut self, other: Self) {
        *self += other;
    }
}

impl<A: Reduce, B: Reduce> Reduce for (A, B) {
    fn identity() -> Self {
        (A::identity(), B::identity())
    }
    fn combine(&mut self, other: Self) {
        self.0.combine(other.0);
        self.1.combine(other.1);
    }
}

/// A maximum-reduction wrapper.
///
/// Useful for branch-and-bound style results (best score found).
///
/// # Examples
///
/// ```
/// use adaptivetc_core::Reduce;
/// use adaptivetc_core::reduce::Max;
///
/// let mut best = Max::identity();
/// best.combine(Max(3));
/// best.combine(Max(9));
/// best.combine(Max(5));
/// assert_eq!(best.0, 9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Max<T>(pub T);

impl<T: Ord + Default + Send + 'static> Reduce for Max<T> {
    fn identity() -> Self {
        Max(T::default())
    }
    fn combine(&mut self, other: Self) {
        if other.0 > self.0 {
            self.0 = other.0;
        }
    }
}

/// A minimum-reduction wrapper over `Option` (empty = identity).
///
/// # Examples
///
/// ```
/// use adaptivetc_core::Reduce;
/// use adaptivetc_core::reduce::Min;
///
/// let mut best: Min<u32> = Min::identity();
/// best.combine(Min(Some(4)));
/// best.combine(Min(Some(2)));
/// assert_eq!(best.0, Some(2));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Min<T>(pub Option<T>);

impl<T: Ord + Send + 'static> Reduce for Min<T> {
    fn identity() -> Self {
        Min(None)
    }
    fn combine(&mut self, other: Self) {
        match (&mut self.0, other.0) {
            (_, None) => {}
            (slot @ None, Some(v)) => *slot = Some(v),
            (Some(cur), Some(v)) => {
                if v < *cur {
                    *cur = v;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sum_identity_is_zero() {
        assert_eq!(u64::identity(), 0);
        assert_eq!(i32::identity(), 0);
    }

    #[test]
    fn sum_combines() {
        let mut a = 5u32;
        a.combine(7);
        assert_eq!(a, 12);
    }

    #[test]
    fn unit_reduce_is_noop() {
        <() as Reduce>::identity();
        ().combine(());
    }

    #[test]
    fn pair_reduces_componentwise() {
        let mut p = <(u64, u64)>::identity();
        p.combine((1, 10));
        p.combine((2, 20));
        assert_eq!(p, (3, 30));
    }

    #[test]
    fn max_takes_larger() {
        let mut m = Max(1u32);
        m.combine(Max(5));
        m.combine(Max(3));
        assert_eq!(m.0, 5);
    }

    #[test]
    fn min_ignores_identity() {
        let mut m: Min<u32> = Min::identity();
        m.combine(Min::identity());
        assert_eq!(m.0, None);
        m.combine(Min(Some(9)));
        m.combine(Min::identity());
        assert_eq!(m.0, Some(9));
    }
}
