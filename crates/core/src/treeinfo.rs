//! Computation-tree metrics (Table 3 / Figure 8 of the paper).
//!
//! The paper characterises its unbalanced inputs by total size, leaf count,
//! depth and the percentage of the tree under each depth-1 subtree. This
//! module computes those metrics for any [`Problem`] by traversal.

use crate::problem::{Expansion, Problem};

/// Shape metrics of a computation tree.
///
/// # Examples
///
/// ```
/// use adaptivetc_core::{Problem, Expansion};
/// use adaptivetc_core::treeinfo::TreeInfo;
///
/// struct Two;
/// impl Problem for Two {
///     type State = u32;
///     type Choice = u8;
///     type Out = u64;
///     fn root(&self) -> u32 { 0 }
///     fn expand(&self, d: &u32, _: u32) -> Expansion<u8, u64> {
///         if *d == 2 { Expansion::Leaf(1) } else { Expansion::Children(vec![0, 1]) }
///     }
///     fn apply(&self, d: &mut u32, _: u8) { *d += 1; }
///     fn undo(&self, d: &mut u32, _: u8) { *d -= 1; }
/// }
///
/// let info = TreeInfo::measure(&Two);
/// assert_eq!(info.size, 7);
/// assert_eq!(info.leaves, 4);
/// assert_eq!(info.depth, 2);
/// assert_eq!(info.depth1_shares, vec![3, 3]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TreeInfo {
    /// Total node count.
    pub size: u64,
    /// Leaf node count (includes dead-end interior nodes with no choices).
    pub leaves: u64,
    /// Maximum depth (root = 0).
    pub depth: u32,
    /// Node count of each depth-1 subtree, in child order.
    pub depth1_shares: Vec<u64>,
}

impl TreeInfo {
    /// Traverse the problem's full tree and measure it.
    ///
    /// Cost is one serial traversal; intended for input characterisation,
    /// not for the timed experiments.
    pub fn measure<P: Problem>(problem: &P) -> TreeInfo {
        let mut state = problem.root();
        let mut info = TreeInfo::default();
        match problem.expand(&state, 0) {
            Expansion::Leaf(_) => {
                info.size = 1;
                info.leaves = 1;
            }
            Expansion::Children(choices) => {
                info.size = 1;
                if choices.is_empty() {
                    info.leaves = 1;
                }
                for c in choices {
                    problem.apply(&mut state, c);
                    let (sz, lv, dp) = subtree(problem, &mut state, 1);
                    problem.undo(&mut state, c);
                    info.depth1_shares.push(sz);
                    info.size += sz;
                    info.leaves += lv;
                    info.depth = info.depth.max(dp);
                }
            }
        }
        info
    }

    /// Depth-1 subtree sizes as percentages of the whole tree, mirroring the
    /// "percent numbers" column of Table 3.
    pub fn depth1_percent(&self) -> Vec<f64> {
        self.depth1_shares
            .iter()
            .map(|&s| 100.0 * s as f64 / self.size as f64)
            .collect()
    }

    /// A skew measure in `[0, 1]`: largest depth-1 share minus the share an
    /// even split would give. 0 for a perfectly balanced first level.
    pub fn depth1_skew(&self) -> f64 {
        if self.depth1_shares.is_empty() || self.size <= 1 {
            return 0.0;
        }
        let max = *self.depth1_shares.iter().max().unwrap() as f64;
        let below = (self.size - 1) as f64;
        let even = below / self.depth1_shares.len() as f64;
        ((max - even) / below).max(0.0)
    }
}

fn subtree<P: Problem>(problem: &P, state: &mut P::State, depth: u32) -> (u64, u64, u32) {
    match problem.expand(state, depth) {
        Expansion::Leaf(_) => (1, 1, depth),
        Expansion::Children(choices) => {
            if choices.is_empty() {
                return (1, 1, depth);
            }
            let mut size = 1;
            let mut leaves = 0;
            let mut max_depth = depth;
            for c in choices {
                problem.apply(state, c);
                let (sz, lv, dp) = subtree(problem, state, depth + 1);
                problem.undo(state, c);
                size += sz;
                leaves += lv;
                max_depth = max_depth.max(dp);
            }
            (size, leaves, max_depth)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Skewed;
    impl Problem for Skewed {
        // state: path of choices taken
        type State = Vec<u8>;
        type Choice = u8;
        type Out = u64;
        fn root(&self) -> Vec<u8> {
            Vec::new()
        }
        fn expand(&self, st: &Vec<u8>, _depth: u32) -> Expansion<u8, u64> {
            // Left spine of length 5; right children are leaves.
            if st.len() >= 5 || st.contains(&1) {
                Expansion::Leaf(1)
            } else {
                Expansion::Children(vec![0, 1])
            }
        }
        fn apply(&self, st: &mut Vec<u8>, c: u8) {
            st.push(c);
        }
        fn undo(&self, st: &mut Vec<u8>, _c: u8) {
            st.pop();
        }
    }

    #[test]
    fn measures_skewed_tree() {
        let info = TreeInfo::measure(&Skewed);
        // Root + 5 levels of (left, right-leaf): nodes = 1 + 2*5 = 11.
        assert_eq!(info.size, 11);
        assert_eq!(info.depth, 5);
        assert_eq!(info.depth1_shares.len(), 2);
        assert!(info.depth1_shares[0] > info.depth1_shares[1]);
        assert!(info.depth1_skew() > 0.0);
    }

    #[test]
    fn percentages_sum_to_children_share() {
        let info = TreeInfo::measure(&Skewed);
        let sum: f64 = info.depth1_percent().iter().sum();
        let expected = 100.0 * (info.size - 1) as f64 / info.size as f64;
        assert!((sum - expected).abs() < 1e-9);
    }

    struct SingleLeaf;
    impl Problem for SingleLeaf {
        type State = ();
        type Choice = u8;
        type Out = u64;
        fn root(&self) {}
        fn expand(&self, _: &(), _: u32) -> Expansion<u8, u64> {
            Expansion::Leaf(1)
        }
        fn apply(&self, _: &mut (), _: u8) {}
        fn undo(&self, _: &mut (), _: u8) {}
    }

    #[test]
    fn single_leaf_tree() {
        let info = TreeInfo::measure(&SingleLeaf);
        assert_eq!(info.size, 1);
        assert_eq!(info.leaves, 1);
        assert_eq!(info.depth, 0);
        assert!(info.depth1_shares.is_empty());
        assert_eq!(info.depth1_skew(), 0.0);
    }
}
