//! Shared harness for regenerating every table and figure of the AdaptiveTC
//! paper.
//!
//! The binaries in `src/bin/` each regenerate one exhibit (see DESIGN.md's
//! experiment index). They share this library's benchmark registry
//! ([`PaperBench`]) with instance sizes scaled to a single development
//! machine, and a calibration routine that derives the simulator's
//! per-workload node cost from a real serial run — so the simulated
//! overhead *ratios* (copy vs work vs steal) reflect this machine's real
//! measurements.

#![warn(missing_docs)]

use adaptivetc_core::serial::{self, SerialReport};
use adaptivetc_core::{Config, RunReport, SchedulerError};
use adaptivetc_runtime::Scheduler;
use adaptivetc_sim::{CostModel, SimTree};
use adaptivetc_workloads::comp::Comp;
use adaptivetc_workloads::fib::Fib;
use adaptivetc_workloads::knights::KnightsTour;
use adaptivetc_workloads::nqueens::{NqueensArray, NqueensCompute};
use adaptivetc_workloads::pentomino::Pentomino;
use adaptivetc_workloads::strimko::Strimko;
use adaptivetc_workloads::sudoku::Sudoku;

/// The eight benchmarks of the paper's Table 1, at sizes scaled for a
/// laptop-class machine (the paper's sizes are noted per variant).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PaperBench {
    /// `Nqueen-array(n)` — paper: 16; here: 11.
    NqueenArray,
    /// `Nqueen-compute(n)` — paper: 16; here: 11.
    NqueenCompute,
    /// `Strimko` (7×7).
    Strimko,
    /// `Knight's Tour` — paper: 6×6; here: 5×5 (the 6×6 enumeration ran for
    /// 1300 s even in the paper's C baseline).
    Knights,
    /// `Sudoku` (balance-tree input).
    Sudoku,
    /// `Pentomino(n)` — paper: 13; here: 8 pieces on 5×8.
    Pentomino,
    /// `Fib(n)` — paper: 45; here: 26.
    Fib,
    /// `Comp(n)` — paper: 60000; here: 1024 with leaf 4.
    Comp,
}

impl PaperBench {
    /// All benchmarks in the paper's presentation order.
    pub fn all() -> [PaperBench; 8] {
        [
            PaperBench::NqueenArray,
            PaperBench::NqueenCompute,
            PaperBench::Strimko,
            PaperBench::Knights,
            PaperBench::Sudoku,
            PaperBench::Pentomino,
            PaperBench::Fib,
            PaperBench::Comp,
        ]
    }

    /// Display name matching the paper (with the scaled size).
    pub fn name(&self) -> &'static str {
        match self {
            PaperBench::NqueenArray => "Nqueen-array(11)",
            PaperBench::NqueenCompute => "Nqueen-compute(11)",
            PaperBench::Strimko => "Strimko",
            PaperBench::Knights => "Knights-Tour(5x5)",
            PaperBench::Sudoku => "Sudoku(balance)",
            PaperBench::Pentomino => "Pentomino(8)",
            PaperBench::Fib => "Fib(26)",
            PaperBench::Comp => "Comp(1024)",
        }
    }

    /// Whether the workload has taskprivate variables (Fib and Comp do
    /// not, so the paper omits Cilk-SYNCHED for them).
    pub fn has_taskprivate(&self) -> bool {
        !matches!(self, PaperBench::Fib | PaperBench::Comp)
    }

    /// Run the scaled instance under a threaded scheduler.
    ///
    /// # Errors
    ///
    /// Propagates [`SchedulerError`] from the runtime.
    pub fn run_real(
        &self,
        scheduler: Scheduler,
        cfg: &Config,
    ) -> Result<(u64, RunReport), SchedulerError> {
        match self {
            PaperBench::NqueenArray => scheduler.run(&NqueensArray::new(11), cfg),
            PaperBench::NqueenCompute => scheduler.run(&NqueensCompute::new(11), cfg),
            PaperBench::Strimko => scheduler.run(&Strimko::paper_default(), cfg),
            PaperBench::Knights => scheduler.run(&KnightsTour::new(5, 0, 0), cfg),
            PaperBench::Sudoku => scheduler.run(&Sudoku::balanced_tree(), cfg),
            PaperBench::Pentomino => scheduler.run(&Pentomino::with_board(8, 5, 8), cfg),
            PaperBench::Fib => scheduler.run(&Fib::new(26), cfg),
            PaperBench::Comp => scheduler.run(&Comp::new(1024, 7).leaf_size(4), cfg),
        }
    }

    /// Serial baseline of the scaled instance (result + traversal metrics).
    pub fn run_serial(&self) -> (u64, SerialReport) {
        match self {
            PaperBench::NqueenArray => serial::run(&NqueensArray::new(11)),
            PaperBench::NqueenCompute => serial::run(&NqueensCompute::new(11)),
            PaperBench::Strimko => serial::run(&Strimko::paper_default()),
            PaperBench::Knights => serial::run(&KnightsTour::new(5, 0, 0)),
            PaperBench::Sudoku => serial::run(&Sudoku::balanced_tree()),
            PaperBench::Pentomino => serial::run(&Pentomino::with_board(8, 5, 8)),
            PaperBench::Fib => serial::run(&Fib::new(26)),
            PaperBench::Comp => serial::run(&Comp::new(1024, 7).leaf_size(4)),
        }
    }

    /// Flatten the scaled instance for simulation.
    pub fn sim_tree(&self) -> SimTree {
        match self {
            PaperBench::NqueenArray => SimTree::from_problem(&NqueensArray::new(11)),
            PaperBench::NqueenCompute => SimTree::from_problem(&NqueensCompute::new(11)),
            PaperBench::Strimko => SimTree::from_problem(&Strimko::paper_default()),
            PaperBench::Knights => SimTree::from_problem(&KnightsTour::new(5, 0, 0)),
            PaperBench::Sudoku => SimTree::from_problem(&Sudoku::balanced_tree()),
            PaperBench::Pentomino => SimTree::from_problem(&Pentomino::with_board(8, 5, 8)),
            PaperBench::Fib => SimTree::from_problem(&Fib::new(26)),
            PaperBench::Comp => SimTree::from_problem(&Comp::new(1024, 7).leaf_size(4)),
        }
    }

    /// A cost model whose per-node work is calibrated from a real serial
    /// run of this workload on the current machine, so simulated overhead
    /// ratios match reality (this is what makes Fib's task-management share
    /// explode, reproducing the paper's one AdaptiveTC loss).
    pub fn calibrated_cost(&self) -> CostModel {
        let (_, report) = self.run_serial();
        let mut cost = CostModel::calibrated();
        if let Some(per_node) = report.wall_ns.checked_div(report.nodes) {
            cost.node_ns = per_node.clamp(5, 100_000);
        }
        cost
    }
}

/// Render one speedup series as an aligned text row.
pub fn speedup_row(label: &str, series: &[f64]) -> String {
    let mut row = format!("{label:<22}");
    for s in series {
        row.push_str(&format!(" {s:>6.2}"));
    }
    row
}

/// The thread counts swept by the paper's figures.
pub const THREADS: [usize; 8] = [1, 2, 3, 4, 5, 6, 7, 8];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_bench_has_a_consistent_scaled_instance() {
        for b in PaperBench::all() {
            let (out, report) = b.run_serial();
            assert!(report.nodes > 1_000, "{}: tree too small", b.name());
            let tree = b.sim_tree();
            assert_eq!(tree.len() as u64, report.nodes, "{}", b.name());
            assert_eq!(tree.leaf_count(), report.leaves, "{}", b.name());
            // Sanity: the tree must terminate with a well-defined result.
            let (out2, _) = b.run_serial();
            assert_eq!(out, out2);
        }
    }

    #[test]
    fn real_runs_match_serial() {
        for b in [PaperBench::Fib, PaperBench::Sudoku] {
            let (expected, _) = b.run_serial();
            let (got, _) = b
                .run_real(Scheduler::AdaptiveTc, &Config::new(2))
                .expect("scheduler runs");
            assert_eq!(got, expected, "{}", b.name());
        }
    }

    #[test]
    fn calibration_produces_sane_node_costs() {
        let fib = PaperBench::Fib.calibrated_cost();
        assert!(fib.node_ns >= 5);
        assert!(fib.node_ns < 10_000, "fib nodes are tiny: {}", fib.node_ns);
    }

    #[test]
    fn taskprivate_flags_match_paper() {
        assert!(!PaperBench::Fib.has_taskprivate());
        assert!(!PaperBench::Comp.has_taskprivate());
        assert!(PaperBench::Sudoku.has_taskprivate());
    }
}
