//! Figure 4: speedup vs. thread count (1–8) for Cilk, Cilk-SYNCHED,
//! Tascell and AdaptiveTC on the eight Table 1 benchmarks.
//!
//! Multi-worker points come from the deterministic simulator with a cost
//! model calibrated per workload against a real serial run (this machine
//! has one core; see DESIGN.md). Speedup baseline: pure node work (the
//! "sequential C program").
//!
//! ```text
//! cargo run --release -p adaptivetc-bench --bin fig4
//! ```

use adaptivetc_bench::{speedup_row, PaperBench, THREADS};
use adaptivetc_core::Config;
use adaptivetc_sim::{serial_wall_ns, simulate, Policy};

fn main() {
    println!("Figure 4: speedup vs threads (simulated, per-workload calibrated costs)");
    println!("columns: threads = {THREADS:?}\n");
    for bench in PaperBench::all() {
        let cost = bench.calibrated_cost();
        let tree = bench.sim_tree();
        let serial = serial_wall_ns(&tree, &cost) as f64;
        println!(
            "({}) nodes={} node_ns={} leaf_count={}",
            bench.name(),
            tree.len(),
            cost.node_ns,
            tree.leaf_count()
        );
        let mut policies = vec![Policy::Cilk];
        if bench.has_taskprivate() {
            policies.push(Policy::CilkSynched);
        }
        policies.push(Policy::Tascell);
        policies.push(Policy::AdaptiveTc);
        for policy in policies {
            let series: Vec<f64> = THREADS
                .iter()
                .map(|&t| {
                    let out = simulate(&tree, policy, &Config::new(t), cost);
                    assert_eq!(out.leaves, tree.leaf_count(), "work conservation");
                    serial / out.wall_ns as f64
                })
                .collect();
            println!("{}", speedup_row(policy.name(), &series));
        }
        println!();
    }
}
