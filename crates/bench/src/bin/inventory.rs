//! Print the scaled benchmark instances: tree size, leaves, result and
//! serial time — the data behind the "nodes=" annotations of the figure
//! harnesses.
//!
//! ```text
//! cargo run --release -p adaptivetc-bench --bin inventory
//! ```

use adaptivetc_bench::PaperBench;

fn main() {
    println!(
        "{:<22} {:>10} {:>10} {:>10} {:>11} {:>8}",
        "benchmark", "nodes", "leaves", "result", "serial ms", "ns/node"
    );
    for b in PaperBench::all() {
        let (out, r) = b.run_serial();
        println!(
            "{:<22} {:>10} {:>10} {:>10} {:>11.1} {:>8}",
            b.name(),
            r.nodes,
            r.leaves,
            out,
            r.wall_ns as f64 / 1e6,
            r.wall_ns / r.nodes.max(1)
        );
    }
}
