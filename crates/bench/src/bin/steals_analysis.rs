//! The paper's declared future work (§5.3.2, last paragraph): "compare the
//! number of steals in Cilk, the number of steals in AdaptiveTC and the
//! number of responding requests in Tascell to analyze and evaluate the
//! dynamic load balancing."
//!
//! This binary does exactly that, over the Table 3 trees and the Figure 8
//! tree at 8 workers, from the simulator's statistics.
//!
//! ```text
//! cargo run --release -p adaptivetc-bench --bin steals_analysis [nodes]
//! ```

use adaptivetc_core::Config;
use adaptivetc_sim::{simulate, CostModel, Policy, SimTree};
use adaptivetc_workloads::tree::UnbalancedTree;

fn main() {
    let total: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(300_000);
    let cost = CostModel::calibrated();
    let cfg = Config::new(8);

    println!("Steal-traffic analysis at 8 workers ({total}-node trees)\n");
    println!(
        "{:<10} {:>12} {:>12} {:>14} {:>14} {:>14}",
        "tree", "Cilk steals", "ATC steals", "ATC specials", "Tascell resp", "Tascell fails"
    );
    for (name, tree) in [
        ("fig8", UnbalancedTree::fig8(total).work(16)),
        ("Tree1L", UnbalancedTree::tree1(total).work(16)),
        ("Tree1R", UnbalancedTree::tree1(total).work(16).reversed()),
        ("Tree3L", UnbalancedTree::tree3(total).work(16)),
        ("Tree3R", UnbalancedTree::tree3(total).work(16).reversed()),
    ] {
        let flat = SimTree::from_problem(&tree);
        let cilk = simulate(&flat, Policy::Cilk, &cfg, cost);
        let atc = simulate(&flat, Policy::AdaptiveTc, &cfg, cost);
        let tas = simulate(&flat, Policy::Tascell, &cfg, cost);
        println!(
            "{:<10} {:>12} {:>12} {:>14} {:>14} {:>14}",
            name,
            cilk.report.stats.steals_ok,
            atc.report.stats.steals_ok,
            atc.report.stats.special_tasks,
            tas.report.stats.steal_responses,
            tas.report.stats.steals_failed
        );
    }
    println!(
        "\nreading: steal counts track task granularity. Tascell moves the\n\
         fewest, coarsest tasks (each response hands away half a sibling\n\
         range); Cilk steals are few because the topmost continuation — a\n\
         huge subtree — is always exposed; AdaptiveTC steals most often\n\
         because work is re-exposed in need_task-sized portions near the\n\
         victim's DFS position, and the count (like its special-task count)\n\
         grows with tree skew — the starvation pressure the paper reports\n\
         on Tree3."
    );
}
