//! Ablation: sensitivity of AdaptiveTC to `max_stolen_num` (the paper
//! fixes it at 20 without exploring alternatives).
//!
//! A low threshold fires `need_task` eagerly (more special tasks, more
//! copies, snappier rebalancing); a high one starves thieves for longer
//! between transitions.
//!
//! ```text
//! cargo run --release -p adaptivetc-bench --bin ablation_maxstolen
//! ```

use adaptivetc_bench::PaperBench;
use adaptivetc_core::Config;
use adaptivetc_sim::{serial_wall_ns, simulate, Policy};

fn main() {
    println!("Ablation: AdaptiveTC speedup at 8 workers vs max_stolen_num\n");
    println!(
        "{:<22} {:>7} {:>7} {:>7} {:>7} {:>7} {:>7}",
        "benchmark", "1", "5", "20*", "80", "320", "1280"
    );
    for bench in [
        PaperBench::NqueenArray,
        PaperBench::Sudoku,
        PaperBench::Comp,
        PaperBench::Fib,
    ] {
        let cost = bench.calibrated_cost();
        let tree = bench.sim_tree();
        let serial = serial_wall_ns(&tree, &cost) as f64;
        let mut row = format!("{:<22}", bench.name());
        for max_stolen in [1u32, 5, 20, 80, 320, 1280] {
            let cfg = Config::new(8).max_stolen_num(max_stolen);
            let out = simulate(&tree, Policy::AdaptiveTc, &cfg, cost);
            row.push_str(&format!(" {:>7.2}", serial / out.wall_ns as f64));
        }
        println!("{row}");
    }
    println!("\n(* = the paper's default)");
}
