//! Table 2: one-thread execution time relative to the sequential C program
//! — the system-overhead table. This experiment is single-threaded, so it
//! runs on the **real threaded runtime** of this repository (no
//! simulation).
//!
//! ```text
//! cargo run --release -p adaptivetc-bench --bin table2
//! ```

use adaptivetc_bench::PaperBench;
use adaptivetc_core::Config;
use adaptivetc_runtime::Scheduler;

fn median_of_3<F: FnMut() -> u64>(mut run: F) -> u64 {
    let mut xs = [run(), run(), run()];
    xs.sort_unstable();
    xs[1]
}

fn main() {
    println!("Table 2: execution time with ONE thread, relative to the serial baseline");
    println!("(median of 3 runs; real threaded runtime, release build)\n");
    println!(
        "{:<22} {:>9} {:>17} {:>17} {:>17} {:>17}",
        "benchmark", "serial ms", "Tascell", "Cilk", "Cilk-SYNCHED", "AdaptiveTC"
    );
    let cfg = Config::new(1);
    for bench in PaperBench::all() {
        let _warmup = bench.run_serial(); // fault in code and data pages
        let serial_ns = median_of_3(|| bench.run_serial().1.wall_ns).max(1);
        let mut row = format!("{:<22} {:>9.1}", bench.name(), serial_ns as f64 / 1e6);
        for scheduler in [
            Scheduler::Tascell,
            Scheduler::Cilk,
            Scheduler::CilkSynched,
            Scheduler::AdaptiveTc,
        ] {
            if scheduler == Scheduler::CilkSynched && !bench.has_taskprivate() {
                row.push_str(&format!("{:>18}", "-"));
                continue;
            }
            let ns = median_of_3(|| {
                bench
                    .run_real(scheduler, &cfg)
                    .expect("single-thread run succeeds")
                    .1
                    .wall_ns
            });
            row.push_str(&format!(
                " {:>8.1} ({:>5.2})",
                ns as f64 / 1e6,
                ns as f64 / serial_ns as f64
            ));
        }
        println!("{row}");
    }
    println!(
        "\npaper's shape: AdaptiveTC ~1.0-1.5x of serial; Cilk 1.5-4x; Cilk-SYNCHED\n\
         slightly below Cilk; Tascell low overhead except vs Cilk-style costs"
    );
}
