//! The Figure 1 worked example: on the paper's 49-node call tree,
//! AdaptiveTC generates ~20 tasks while Cilk generates 49.
//!
//! The exact 49-node tree of Figure 1 is only partially recoverable from
//! the paper's prose (known edges: 0→{1,40}, 1→{2,7}, 40→{41,44}, with the
//! bulk of the mass under node 7); the reconstruction here respects those
//! edges and the 49-node total. Counts are taken from real runs of the
//! threaded runtime with 4 threads (the figure's p0–p3).
//!
//! ```text
//! cargo run --release -p adaptivetc-bench --bin fig1_tasks
//! ```

use adaptivetc_core::{Config, CutoffPolicy, Expansion, Problem};
use adaptivetc_runtime::Scheduler;

/// A 49-node reconstruction of the Figure 1 call tree.
struct Fig1Tree {
    children: Vec<Vec<u32>>,
}

impl Fig1Tree {
    fn new() -> Self {
        // 0→{1,40}, 1→{2,7}, 40→{41,44}; 2, 41, 44 root small subtrees;
        // 7 roots the large one (the figure's nodes 8–39).
        let mut children: Vec<Vec<u32>> = vec![Vec::new(); 49];
        children[0] = vec![1, 40];
        children[1] = vec![2, 7];
        children[40] = vec![41, 44];
        children[2] = vec![3, 4];
        children[3] = vec![5, 6];
        children[41] = vec![42, 43];
        children[44] = vec![45, 46];
        children[45] = vec![47, 48];
        // The big subtree under 7: a 3-wide, then binary, bushy shape over
        // nodes 8..=39.
        children[7] = vec![8, 9, 10];
        children[8] = vec![11, 12];
        children[9] = vec![13, 14];
        children[10] = vec![15, 16];
        children[11] = vec![17, 18];
        children[12] = vec![19, 20];
        children[13] = vec![21, 22];
        children[14] = vec![23, 24];
        children[15] = vec![25, 26];
        children[16] = vec![27, 28];
        children[17] = vec![29, 30];
        children[18] = vec![31, 32];
        children[19] = vec![33, 34];
        children[20] = vec![35, 36];
        children[21] = vec![37, 38];
        children[22] = vec![39];
        Fig1Tree { children }
    }
}

impl Problem for Fig1Tree {
    type State = Vec<u32>; // path of node ids
    type Choice = u32;
    type Out = u64;
    fn root(&self) -> Vec<u32> {
        vec![0]
    }
    fn expand(&self, path: &Vec<u32>, _d: u32) -> Expansion<u32, u64> {
        let node = *path.last().expect("path never empty") as usize;
        let kids = &self.children[node];
        if kids.is_empty() {
            Expansion::Leaf(1)
        } else {
            Expansion::Children(kids.clone())
        }
    }
    fn apply(&self, path: &mut Vec<u32>, c: u32) {
        path.push(c);
    }
    fn undo(&self, path: &mut Vec<u32>, _c: u32) {
        path.pop();
    }
}

fn main() {
    let tree = Fig1Tree::new();
    let node_count: usize = 49;
    println!(
        "Figure 1 worked example: tasks created on a {node_count}-node call tree, 4 threads\n"
    );
    // The figure uses 4 threads and a cut-off of 2.
    let cfg = Config::new(4).cutoff(CutoffPolicy::Fixed(2)).seed(7);
    println!(
        "{:<14} {:>8} {:>8} {:>9} {:>8}",
        "system", "tasks", "fake", "special", "copies"
    );
    for scheduler in [Scheduler::Cilk, Scheduler::AdaptiveTc] {
        // Median-ish: take the max tasks over a few seeds for Cilk (it is
        // deterministic anyway) and the max for AdaptiveTC (worst case).
        let mut tasks = Vec::new();
        let mut last = None;
        for seed in [1u64, 2, 3, 4, 5] {
            let (out, report) = scheduler
                .run(&tree, &cfg.clone().seed(seed))
                .expect("runs succeed");
            assert_eq!(out, 25, "leaf count of the reconstruction");
            tasks.push(report.stats.tasks_created);
            last = Some(report);
        }
        let report = last.expect("ran at least once");
        tasks.sort_unstable();
        println!(
            "{:<14} {:>8} {:>8} {:>9} {:>8}",
            scheduler.to_string(),
            tasks[tasks.len() / 2],
            report.stats.fake_tasks,
            report.stats.special_tasks,
            report.stats.copies
        );
    }
    println!("\npaper's counts on its Figure 1 tree: AdaptiveTC 20 tasks, Cilk 49 tasks");
}
