//! The Figure 1 worked example: on the paper's 49-node call tree,
//! AdaptiveTC generates ~20 tasks while Cilk generates 49.
//!
//! The tree itself lives in `adaptivetc_workloads::fig1` (shared with the
//! scheduler/simulator differential tests). Counts are taken from real
//! runs of the threaded runtime with 4 threads (the figure's p0–p3).
//!
//! ```text
//! cargo run --release -p adaptivetc-bench --bin fig1_tasks
//! ```

use adaptivetc_core::{Config, CutoffPolicy};
use adaptivetc_runtime::Scheduler;
use adaptivetc_workloads::fig1::Fig1Tree;

fn main() {
    let tree = Fig1Tree::new();
    let node_count = Fig1Tree::NODES;
    println!(
        "Figure 1 worked example: tasks created on a {node_count}-node call tree, 4 threads\n"
    );
    // The figure uses 4 threads and a cut-off of 2.
    let cfg = Config::new(4).cutoff(CutoffPolicy::Fixed(2)).seed(7);
    println!(
        "{:<14} {:>8} {:>8} {:>9} {:>8}",
        "system", "tasks", "fake", "special", "copies"
    );
    for scheduler in [Scheduler::Cilk, Scheduler::AdaptiveTc] {
        // Median-ish: take the max tasks over a few seeds for Cilk (it is
        // deterministic anyway) and the max for AdaptiveTC (worst case).
        let mut tasks = Vec::new();
        let mut last = None;
        for seed in [1u64, 2, 3, 4, 5] {
            let (out, report) = scheduler
                .run(&tree, &cfg.clone().seed(seed))
                .expect("runs succeed");
            assert_eq!(out, Fig1Tree::LEAVES, "leaf count of the reconstruction");
            tasks.push(report.stats.tasks_created);
            last = Some(report);
        }
        let report = last.expect("ran at least once");
        tasks.sort_unstable();
        println!(
            "{:<14} {:>8} {:>8} {:>9} {:>8}",
            scheduler.to_string(),
            tasks[tasks.len() / 2],
            report.stats.fake_tasks,
            report.stats.special_tasks,
            report.stats.copies
        );
    }
    println!("\npaper's counts on its Figure 1 tree: AdaptiveTC 20 tasks, Cilk 49 tasks");
}
