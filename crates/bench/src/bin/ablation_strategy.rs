//! Strategy ablation: creation policy {static cut-off frontier, hybrid,
//! adaptive} × extraction policy {steal-one, steal-half} over the eight
//! paper workloads plus the layered-DAG family, at 1/2/4 threads.
//!
//! The paper's Figure 9 shows the adaptive strategy tracking the best
//! *fixed* cut-off without knowing it in advance. The DAG workloads
//! ([`adaptivetc_workloads::dag`]) sharpen that claim: their phase-skewed
//! preset alternates wide/fine and narrow/coarse bands so that no single
//! static cut-off is right for the whole run, while the uniform preset is
//! the control where one static cut-off is near-optimal. Expected shape:
//!
//! * uniform DAG — adaptive within a few percent of the best static arm;
//! * phase-skewed DAG — adaptive beats *every* static arm, because the
//!   online controller retunes the effective cut-off between phases.
//!
//! Wall-clock gates are advisory by default (CI smoke machines are noisy
//! and often single-core); `ABLATION_STRATEGY_STRICT=1` enforces them.
//! `ABLATION_SMOKE=1` shrinks the workload set and repetition count for
//! the CI smoke job. Methodology: 2 warm-up runs discarded, then the
//! minimum of 7 timed runs per cell (smoke: 1 + 3); see EXPERIMENTS.md.
//!
//! Built with `--features count-sync`, the wall-clock sweep is skipped
//! (counting perturbs timing) and a fence-parity section runs instead:
//! one single-thread Fib run under the default configuration and one with
//! every adaptive strategy knob enabled, asserting the fence / SeqCst /
//! RMW profiles are identical — the online controller adds **zero**
//! synchronization to the spawn hot path.
//!
//! The sweep build writes `BENCH_pr9.json`; the count-sync build writes
//! `BENCH_pr9_sync.json`, so the two artifacts never clobber each other
//! when CI runs both.
//!
//! ```text
//! cargo run --release -p adaptivetc-bench --bin ablation_strategy
//! cargo run --release -p adaptivetc-bench --bin ablation_strategy --features count-sync
//! ```

#[cfg(not(feature = "count-sync"))]
use adaptivetc_bench::PaperBench;
#[cfg(not(feature = "count-sync"))]
use adaptivetc_core::{Config, CreationPolicy, CutoffPolicy, ExtractionPolicy, RunReport};
#[cfg(not(feature = "count-sync"))]
use adaptivetc_runtime::Scheduler;
#[cfg(not(feature = "count-sync"))]
use adaptivetc_workloads::dag::LayeredDag;

#[cfg(not(feature = "count-sync"))]
const THREADS: [usize; 3] = [1, 2, 4];

#[cfg(not(feature = "count-sync"))]
/// The static cut-off frontier (Figure 9's x-axis). The auto cut-off for
/// 4 threads is 2, so the frontier brackets it on both sides.
const STATIC_CUTOFFS: [u32; 4] = [1, 2, 4, 8];
#[cfg(not(feature = "count-sync"))]
const SMOKE_STATIC_CUTOFFS: [u32; 1] = [2];

#[cfg(not(feature = "count-sync"))]
/// Slack allowed on the uniform control: adaptive must land within 3% of
/// the best static arm (the paper's "tracks the best fixed cut-off").
const UNIFORM_SLACK: f64 = 1.03;

#[cfg(not(feature = "count-sync"))]
/// One creation arm of the sweep.
struct Arm {
    label: String,
    creation: CreationPolicy,
    cutoff: CutoffPolicy,
}

#[cfg(not(feature = "count-sync"))]
fn arms(smoke: bool) -> Vec<Arm> {
    let cutoffs: &[u32] = if smoke {
        &SMOKE_STATIC_CUTOFFS
    } else {
        &STATIC_CUTOFFS
    };
    let mut arms: Vec<Arm> = cutoffs
        .iter()
        .map(|&c| Arm {
            label: format!("static/{c}"),
            creation: CreationPolicy::Static,
            cutoff: CutoffPolicy::Fixed(c),
        })
        .collect();
    arms.push(Arm {
        label: "hybrid".into(),
        creation: CreationPolicy::Hybrid,
        cutoff: CutoffPolicy::Auto,
    });
    arms.push(Arm {
        label: "adaptive".into(),
        creation: CreationPolicy::Adaptive,
        cutoff: CutoffPolicy::Auto,
    });
    arms
}

#[cfg(not(feature = "count-sync"))]
/// A workload cell: a paper benchmark or one of the DAG presets.
enum Work {
    Paper(PaperBench),
    Dag { name: &'static str, dag: LayeredDag },
}

#[cfg(not(feature = "count-sync"))]
impl Work {
    fn name(&self) -> &str {
        match self {
            Work::Paper(b) => b.name(),
            Work::Dag { name, .. } => name,
        }
    }

    fn run(&self, cfg: &Config) -> RunReport {
        match self {
            Work::Paper(b) => {
                b.run_real(Scheduler::AdaptiveTc, cfg)
                    .expect("paper workload run succeeds")
                    .1
            }
            Work::Dag { dag, .. } => {
                Scheduler::AdaptiveTc
                    .run(dag, cfg)
                    .expect("DAG run succeeds")
                    .1
            }
        }
    }
}

#[cfg(not(feature = "count-sync"))]
fn workloads(smoke: bool) -> Vec<Work> {
    let mut ws: Vec<Work> = if smoke {
        vec![
            Work::Paper(PaperBench::Strimko),
            Work::Paper(PaperBench::Knights),
        ]
    } else {
        PaperBench::all().into_iter().map(Work::Paper).collect()
    };
    let scale = if smoke { 1 } else { 4 };
    ws.push(Work::Dag {
        name: "dag-skewed",
        dag: LayeredDag::phase_skewed(scale, 0x5EED),
    });
    ws.push(Work::Dag {
        name: "dag-uniform",
        dag: LayeredDag::uniform(scale, 0x5EED),
    });
    ws
}

/// One sweep cell, flattened for the table and the JSON dump.
struct Row {
    bench: String,
    creation: String,
    extraction: &'static str,
    threads: usize,
    wall_ns: u64,
    tasks: u64,
    steals: u64,
    cutoff_tunes: u64,
    threshold_tunes: u64,
}

impl Row {
    fn json(&self) -> String {
        format!(
            "{{\"bench\":\"{}\",\"creation\":\"{}\",\"extraction\":\"{}\",\
             \"threads\":{},\"wall_ns\":{},\"tasks\":{},\"steals\":{},\
             \"cutoff_tunes\":{},\"threshold_tunes\":{}}}",
            self.bench,
            self.creation,
            self.extraction,
            self.threads,
            self.wall_ns,
            self.tasks,
            self.steals,
            self.cutoff_tunes,
            self.threshold_tunes
        )
    }
}

/// Warm-up runs discarded, then the minimum of the timed runs — the
/// steady-state floor, robust to scheduling noise (EXPERIMENTS.md).
#[cfg(not(feature = "count-sync"))]
fn measure(work: &Work, cfg: &Config, smoke: bool) -> (u64, RunReport) {
    let (warmup, reps) = if smoke { (1, 3) } else { (2, 7) };
    for _ in 0..warmup {
        let _ = work.run(cfg);
    }
    let mut best: Option<RunReport> = None;
    for _ in 0..reps {
        let r = work.run(cfg);
        if best.as_ref().is_none_or(|b| r.wall_ns < b.wall_ns) {
            best = Some(r);
        }
    }
    let best = best.expect("reps >= 1");
    (best.wall_ns, best)
}

/// The acceptance gates, computed on the 4-thread steal-one rows (the
/// paper's extraction scheme). Returns human-readable verdict lines.
#[cfg(not(feature = "count-sync"))]
fn gates(rows: &[Row]) -> Vec<(bool, String)> {
    let pick = |bench: &str, creation: &str| {
        rows.iter()
            .find(|r| {
                r.bench == bench
                    && r.creation == creation
                    && r.extraction == "steal-one"
                    && r.threads == 4
            })
            .map(|r| r.wall_ns)
    };
    let statics = |bench: &str| -> Vec<(String, u64)> {
        rows.iter()
            .filter(|r| {
                r.bench == bench
                    && r.creation.starts_with("static/")
                    && r.extraction == "steal-one"
                    && r.threads == 4
            })
            .map(|r| (r.creation.clone(), r.wall_ns))
            .collect()
    };
    let mut out = Vec::new();
    if let Some(ad) = pick("dag-uniform", "adaptive") {
        let best = statics("dag-uniform").into_iter().min_by_key(|&(_, ns)| ns);
        if let Some((name, best_ns)) = best {
            let ratio = ad as f64 / best_ns.max(1) as f64;
            out.push((
                ratio <= UNIFORM_SLACK,
                format!(
                    "uniform DAG @4t: adaptive {:.2}ms vs best static ({name}) {:.2}ms \
                     — ratio {ratio:.3} (gate: <= {UNIFORM_SLACK})",
                    ad as f64 / 1e6,
                    best_ns as f64 / 1e6
                ),
            ));
        }
    }
    if let Some(ad) = pick("dag-skewed", "adaptive") {
        for (name, ns) in statics("dag-skewed") {
            out.push((
                ad < ns,
                format!(
                    "phase-skewed DAG @4t: adaptive {:.2}ms vs {name} {:.2}ms \
                     (gate: adaptive strictly faster)",
                    ad as f64 / 1e6,
                    ns as f64 / 1e6
                ),
            ));
        }
    }
    out
}

/// Fence-parity check (count-sync builds): the fully-adaptive strategy
/// stack must add zero fences, zero SeqCst and zero RMW operations to a
/// single-thread run relative to the default configuration. One thread
/// executes deterministically (no steals, no contention), so the profiles
/// must match *exactly* if the controller's hot path is synchronization-
/// free.
#[cfg(feature = "count-sync")]
mod fence_parity {
    use adaptivetc_core::{Config, CreationPolicy, ExtractionPolicy, ThresholdPolicy};
    use adaptivetc_deque::sync_counts::{self, Counts};
    use adaptivetc_runtime::Scheduler;
    use adaptivetc_workloads::fib::Fib;

    fn profile(cfg: &Config) -> Counts {
        let fib = Fib::new(20);
        let before = sync_counts::snapshot();
        let _ = Scheduler::AdaptiveTc.run(&fib, cfg).expect("fib runs");
        sync_counts::snapshot().since(before)
    }

    pub fn run() -> String {
        let baseline = profile(&Config::new(1));
        let adaptive = profile(
            &Config::new(1)
                .creation(CreationPolicy::Adaptive)
                .extraction(ExtractionPolicy::StealHalf)
                .threshold(ThresholdPolicy::Adaptive),
        );
        println!(
            "fence parity (Fib(20), 1 thread):\n\
             {:<10} {:>8} {:>11} {:>9} {:>13}",
            "config", "fences", "seqcst_ops", "rmw_ops", "seqcst_rmws"
        );
        for (name, c) in [("default", &baseline), ("adaptive", &adaptive)] {
            println!(
                "{:<10} {:>8} {:>11} {:>9} {:>13}",
                name, c.fences, c.seqcst_ops, c.rmw_ops, c.seqcst_rmw_ops
            );
        }
        assert_eq!(
            adaptive.fences, baseline.fences,
            "adaptive strategy added fences to the single-thread hot path"
        );
        assert_eq!(
            adaptive.seqcst_ops, baseline.seqcst_ops,
            "adaptive strategy added SeqCst operations to the single-thread hot path"
        );
        assert_eq!(
            adaptive.rmw_ops, baseline.rmw_ops,
            "adaptive strategy added RMW operations to the single-thread hot path"
        );
        println!("\nfence parity: PASS (profiles identical)");
        format!(
            "{{\"workload\":\"fib-20\",\"threads\":1,\
             \"baseline\":{{\"fences\":{},\"seqcst_ops\":{},\"rmw_ops\":{},\"seqcst_rmw_ops\":{}}},\
             \"adaptive\":{{\"fences\":{},\"seqcst_ops\":{},\"rmw_ops\":{},\"seqcst_rmw_ops\":{}}}}}",
            baseline.fences,
            baseline.seqcst_ops,
            baseline.rmw_ops,
            baseline.seqcst_rmw_ops,
            adaptive.fences,
            adaptive.seqcst_ops,
            adaptive.rmw_ops,
            adaptive.seqcst_rmw_ops
        )
    }
}

fn main() {
    let smoke = std::env::var_os("ABLATION_SMOKE").is_some();
    let strict = std::env::var_os("ABLATION_STRATEGY_STRICT").is_some();
    #[cfg(not(feature = "count-sync"))]
    let mut rows: Vec<Row> = Vec::new();
    #[cfg(feature = "count-sync")]
    let rows: Vec<Row> = Vec::new();

    #[cfg(not(feature = "count-sync"))]
    {
        let (warmup, reps) = if smoke { (1, 3) } else { (2, 7) };
        println!(
            "Strategy ablation: creation x extraction over paper workloads + DAGs\n\
             ({warmup} warm-up runs discarded, min of {reps}; release build{})\n",
            if smoke { ", ABLATION_SMOKE" } else { "" }
        );
        println!(
            "{:<22} {:<12} {:<11} {:>3} {:>10} {:>10} {:>8} {:>7} {:>7}",
            "benchmark",
            "creation",
            "extraction",
            "t",
            "wall ms",
            "tasks",
            "steals",
            "ctunes",
            "ttunes"
        );
        for work in workloads(smoke) {
            for arm in arms(smoke) {
                for extraction in ExtractionPolicy::ALL {
                    for threads in THREADS {
                        let cfg = Config::new(threads)
                            .creation(arm.creation)
                            .cutoff(arm.cutoff)
                            .extraction(extraction)
                            .seed(13);
                        let (wall_ns, report) = measure(&work, &cfg, smoke);
                        let s = &report.stats;
                        let row = Row {
                            bench: work.name().to_string(),
                            creation: arm.label.clone(),
                            extraction: extraction.name(),
                            threads,
                            wall_ns,
                            tasks: s.tasks_created,
                            steals: s.steals_ok,
                            cutoff_tunes: s.cutoff_adjustments,
                            threshold_tunes: s.threshold_adjustments,
                        };
                        println!(
                            "{:<22} {:<12} {:<11} {:>3} {:>10.2} {:>10} {:>8} {:>7} {:>7}",
                            row.bench,
                            row.creation,
                            row.extraction,
                            row.threads,
                            row.wall_ns as f64 / 1e6,
                            row.tasks,
                            row.steals,
                            row.cutoff_tunes,
                            row.threshold_tunes
                        );
                        rows.push(row);
                    }
                }
            }
        }

        println!("\nAcceptance gates (4 threads, steal-one):");
        let verdicts = gates(&rows);
        let mut all_pass = true;
        for (pass, line) in &verdicts {
            all_pass &= pass;
            println!("  [{}] {line}", if *pass { "PASS" } else { "MISS" });
        }
        if verdicts.is_empty() {
            println!("  (no 4-thread DAG rows — gates skipped)");
        }
        let enforce = strict && !smoke;
        if strict && smoke {
            println!("\nABLATION_SMOKE set: downgrading the strict gates to advisory");
        }
        if enforce {
            assert!(all_pass, "ABLATION_STRATEGY_STRICT=1 and a gate missed");
        } else if !all_pass {
            println!(
                "\nadvisory: a gate missed (set ABLATION_STRATEGY_STRICT=1 on a \
                 quiet multi-core box to enforce)"
            );
        }
    }

    #[cfg(feature = "count-sync")]
    let parity_json = {
        let _ = (smoke, strict);
        println!("count-sync build: wall-clock sweep skipped (counting perturbs timing)\n");
        fence_parity::run()
    };
    #[cfg(not(feature = "count-sync"))]
    let parity_json = "null".to_string();

    let json = format!(
        "{{\n\"meta\": {{\"warmup\":{},\"reps\":{},\"seed\":13,\"smoke\":{}}},\n\
         \"runtime\": [\n  {}\n],\n\"fence_parity\": {}\n}}\n",
        if smoke { 1 } else { 2 },
        if smoke { 3 } else { 7 },
        smoke,
        rows.iter().map(Row::json).collect::<Vec<_>>().join(",\n  "),
        parity_json
    );
    let path = if cfg!(feature = "count-sync") {
        "BENCH_pr9_sync.json"
    } else {
        "BENCH_pr9.json"
    };
    std::fs::write(path, json).unwrap_or_else(|e| panic!("write {path}: {e}"));
    println!(
        "\nwrote {} runtime rows to {path} (fence_parity: {})",
        rows.len(),
        if cfg!(feature = "count-sync") {
            "measured"
        } else {
            "null"
        }
    );
}
