//! Figure 8: the `input1` unbalanced tree — size, depth and the per-node
//! subtree percentages of the heavy path.
//!
//! Two views are printed: the real Sudoku `input1` search tree of this
//! repository (measured by traversal) and the scaled synthetic stand-in
//! used by the Figure 9/10 harnesses (the paper's own tree had
//! 1,934,719,465 nodes and depth 63 — derived from its unpublished Sudoku
//! input; see the substitution note in DESIGN.md).
//!
//! ```text
//! cargo run --release -p adaptivetc-bench --bin fig8 [nodes]
//! ```

use adaptivetc_core::treeinfo::TreeInfo;
use adaptivetc_workloads::sudoku::Sudoku;
use adaptivetc_workloads::tree::UnbalancedTree;

fn describe(label: &str, info: &TreeInfo) {
    println!("{label}");
    println!(
        "  size={}; depth={}; leaves={}",
        info.size, info.depth, info.leaves
    );
    let percents: Vec<String> = info
        .depth1_percent()
        .iter()
        .map(|p| format!("{p:.2}%"))
        .collect();
    println!("  depth-1 subtree shares: {}", percents.join("  "));
    println!("  depth-1 skew: {:.3}\n", info.depth1_skew());
}

fn main() {
    let total: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(500_000);

    let sudoku = TreeInfo::measure(&Sudoku::input1());
    describe(
        "Sudoku input1 (this repository's instance, measured):",
        &sudoku,
    );

    let synth = TreeInfo::measure(&UnbalancedTree::fig8(total));
    describe(
        &format!("Synthetic Figure-8 stand-in ({total} nodes, LCG construction):"),
        &synth,
    );

    println!(
        "paper's tree: size=1,934,719,465; depth=63; depth-1 shares ~61%/28%/11%\n\
         (scaled here — the shares and skew are preserved, not the raw size)"
    );
}
