//! Per-worker utilization for one (benchmark, policy, workers) point —
//! the microscope behind the speedup curves: who worked, who copied, who
//! waited, who starved.
//!
//! ```text
//! cargo run --release -p adaptivetc-bench --bin utilization -- [bench] [policy] [workers]
//!   bench:  nqueen-array | nqueen-compute | strimko | knights | sudoku |
//!           pentomino | fib | comp            (default: sudoku)
//!   policy: cilk | synched | tascell | adaptive | cutoff | library (default: adaptive)
//!   workers: 1..=64                            (default: 8)
//! ```

use adaptivetc_bench::PaperBench;
use adaptivetc_core::Config;
use adaptivetc_sim::{serial_wall_ns, simulate, Policy};

fn parse_bench(s: &str) -> Option<PaperBench> {
    Some(match s {
        "nqueen-array" => PaperBench::NqueenArray,
        "nqueen-compute" => PaperBench::NqueenCompute,
        "strimko" => PaperBench::Strimko,
        "knights" => PaperBench::Knights,
        "sudoku" => PaperBench::Sudoku,
        "pentomino" => PaperBench::Pentomino,
        "fib" => PaperBench::Fib,
        "comp" => PaperBench::Comp,
        _ => return None,
    })
}

fn parse_policy(s: &str) -> Option<Policy> {
    Some(match s {
        "cilk" => Policy::Cilk,
        "synched" => Policy::CilkSynched,
        "tascell" => Policy::Tascell,
        "adaptive" => Policy::AdaptiveTc,
        "cutoff" => Policy::CutoffProgrammer(3),
        "library" => Policy::CutoffLibrary,
        _ => return None,
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let bench = args
        .first()
        .and_then(|s| parse_bench(s))
        .unwrap_or(PaperBench::Sudoku);
    let policy = args
        .get(1)
        .and_then(|s| parse_policy(s))
        .unwrap_or(Policy::AdaptiveTc);
    let workers: usize = args
        .get(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(8)
        .clamp(1, 64);

    let cost = bench.calibrated_cost();
    let tree = bench.sim_tree();
    let out = simulate(&tree, policy, &Config::new(workers), cost);
    let serial = serial_wall_ns(&tree, &cost) as f64;

    println!(
        "{} under {} with {} workers — speedup {:.2}x, wall {:.2} ms (virtual)\n",
        bench.name(),
        policy.name(),
        workers,
        serial / out.wall_ns as f64,
        out.wall_ns as f64 / 1e6
    );
    println!(
        "{:>4} {:>8} {:>8} {:>8} {:>8} {:>10} {:>8} {:>8} {:>9}",
        "w", "busy %", "copy %", "deque %", "poll %", "waitkids %", "steal %", "tasks", "steals"
    );
    let wall = out.wall_ns.max(1) as f64;
    for (i, w) in out.report.per_worker.iter().enumerate() {
        let t = &w.time;
        println!(
            "{:>4} {:>7.1}% {:>7.1}% {:>7.1}% {:>7.1}% {:>9.1}% {:>7.1}% {:>8} {:>9}",
            i,
            100.0 * t.busy_ns as f64 / wall,
            100.0 * t.copy_ns as f64 / wall,
            100.0 * t.deque_ns as f64 / wall,
            100.0 * t.poll_ns as f64 / wall,
            100.0 * t.wait_children_ns as f64 / wall,
            100.0 * t.steal_wait_ns as f64 / wall,
            w.tasks_created,
            w.steals_ok
        );
    }
    let s = &out.report.stats;
    println!(
        "\ntotals: tasks={} fake={} special={} copies={} ({} B) steals={}/{} polls={}",
        s.tasks_created,
        s.fake_tasks,
        s.special_tasks,
        s.copies,
        s.copy_bytes,
        s.steals_ok,
        s.steals_ok + s.steals_failed,
        s.polls
    );
}
