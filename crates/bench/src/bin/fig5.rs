//! Figure 5: speedup at 8 threads with **Cilk as the baseline** for all
//! eight benchmarks (the paper's 1.15×–2.78× AdaptiveTC-over-Cilk claim).
//!
//! ```text
//! cargo run --release -p adaptivetc-bench --bin fig5
//! ```

use adaptivetc_bench::PaperBench;
use adaptivetc_core::Config;
use adaptivetc_sim::{simulate, Policy};

fn main() {
    println!("Figure 5: speedup at 8 threads, baseline = Cilk's 8-thread time\n");
    println!(
        "{:<22} {:>10} {:>10} {:>10} {:>12}",
        "benchmark", "Cilk", "Cilk-SYN", "Tascell", "AdaptiveTC"
    );
    let cfg = Config::new(8);
    for bench in PaperBench::all() {
        let cost = bench.calibrated_cost();
        let tree = bench.sim_tree();
        let cilk = simulate(&tree, Policy::Cilk, &cfg, cost).wall_ns as f64;
        let mut row = format!("{:<22} {:>10.2}", bench.name(), 1.0);
        if bench.has_taskprivate() {
            let syn = simulate(&tree, Policy::CilkSynched, &cfg, cost).wall_ns as f64;
            row.push_str(&format!(" {:>10.2}", cilk / syn));
        } else {
            row.push_str(&format!(" {:>10}", "-"));
        }
        let tas = simulate(&tree, Policy::Tascell, &cfg, cost).wall_ns as f64;
        let adp = simulate(&tree, Policy::AdaptiveTc, &cfg, cost).wall_ns as f64;
        row.push_str(&format!(" {:>10.2} {:>12.2}", cilk / tas, cilk / adp));
        println!("{row}");
    }
    println!("\npaper's range for AdaptiveTC over Cilk: 1.15x - 2.78x");
}
