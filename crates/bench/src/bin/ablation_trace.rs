//! Tracing-overhead ablation: what the event-tracing subsystem costs in
//! each of its states, measured warm and reported as min-of-N.
//!
//! * **notrace build** (`--no-default-features`): the instrumentation is
//!   compiled out entirely — the true baseline. The run writes its wall
//!   times to `BENCH_pr8_baseline.txt` for the traced build to compare
//!   against, plus its own `BENCH_pr8_notrace.json`.
//! * **traced build, `Config::trace` off** (the shipping default): the
//!   hot path carries one `Option` check per emission point. Expected
//!   within noise of the notrace build.
//! * **traced-on**: the shipping default — TSC stamps, block-claim ring
//!   publication, every category, with the hot categories (deque/spawn/
//!   fake) sampled at the `Config::trace_sample` default rate.
//! * **traced-exhaustive**: every event of every category
//!   (`trace_sample(1)`) — what BENCH_pr4.json called traced-on.
//! * **traced-filtered**: recording with the hot categories masked by
//!   `Config::trace_filter` — one relaxed load and a predicted branch
//!   per masked site.
//!
//! **Methodology** (recorded in the JSON): every cell runs `warmup`
//! throwaway iterations first (thread pools, allocator and branch
//! predictors warm; this is what fixed the 4-thread fig1 outlier in the
//! PR 4 numbers, which folded cold-start into a microsecond workload),
//! then `reps` measured iterations of which the **minimum** wall time is
//! reported — the least-noise estimator for "what does this code cost",
//! since every source of interference only adds time.
//!
//! The traced build also exercises the post-processing pipeline once per
//! run: the differential validator (exact for unsampled categories),
//! per-op steal-latency and need_task→delivery response-time CDFs, a
//! Chrome-trace export, the trace-vs-sim diff on fig1, and a job-server
//! mixed mix traced-on vs traced-off (jobs/sec + p99 delta).
//!
//! Timing gates are environment-controlled: `ABLATION_TRACE_STRICT=1`
//! enforces the ≤2 % disabled-tracing budget and the ≤5 % traced-on
//! budget at one thread on n-queens (quiet machines only);
//! `ABLATION_SMOKE=1` shrinks the boards for the CI smoke job, which
//! checks shape, not time.
//!
//! ```text
//! cargo run --release -p adaptivetc-bench --bin ablation_trace --no-default-features
//! cargo run --release -p adaptivetc-bench --bin ablation_trace
//! ```

use adaptivetc_core::{Config, CutoffPolicy, RunReport};
use adaptivetc_runtime::Scheduler;
use adaptivetc_workloads::fig1::Fig1Tree;
use adaptivetc_workloads::nqueens::NqueensArray;

/// Measured iterations per cell (minimum is reported).
const REPS: usize = 7;
/// Warm-up iterations per cell (discarded).
const WARMUP: usize = 2;

/// The ablation workloads, runnable traced or untraced.
#[derive(Clone, Copy)]
enum Workload {
    Fig1,
    Nqueens(u8),
}

impl Workload {
    fn name(&self) -> String {
        match self {
            Workload::Fig1 => "fig1".into(),
            Workload::Nqueens(n) => format!("nqueen-array({n})"),
        }
    }

    fn cutoff(&self) -> CutoffPolicy {
        match self {
            Workload::Fig1 => CutoffPolicy::Fixed(2),
            Workload::Nqueens(_) => CutoffPolicy::Auto,
        }
    }

    fn run(&self, cfg: &Config) -> RunReport {
        let report = match self {
            Workload::Fig1 => Scheduler::AdaptiveTc
                .run(&Fig1Tree::new(), cfg)
                .map(|r| r.1),
            Workload::Nqueens(n) => Scheduler::AdaptiveTc
                .run(&NqueensArray::new(*n), cfg)
                .map(|r| r.1),
        };
        report.expect("workload runs")
    }

    #[cfg(feature = "trace")]
    fn run_traced(&self, cfg: &Config) -> (RunReport, adaptivetc_trace::Trace) {
        let (report, trace) = match self {
            Workload::Fig1 => Scheduler::AdaptiveTc
                .run_traced(&Fig1Tree::new(), cfg)
                .map(|r| (r.1, r.2))
                .expect("workload runs"),
            Workload::Nqueens(n) => Scheduler::AdaptiveTc
                .run_traced(&NqueensArray::new(*n), cfg)
                .map(|r| (r.1, r.2))
                .expect("workload runs"),
        };
        (report, trace.expect("Config::trace is set"))
    }
}

/// One measured cell: a (workload, threads, tracing-state) wall time with
/// the counters that prove the run did the same work.
struct Row {
    bench: String,
    mode: &'static str,
    threads: usize,
    wall_ns: u64,
    tasks: u64,
    steals: u64,
    events: u64,
    dropped: u64,
    /// Percent overhead vs this build's own `Config::trace`-off run
    /// (only meaningful for the traced-* modes).
    overhead_pct: f64,
}

impl Row {
    fn json(&self) -> String {
        format!(
            "{{\"bench\":\"{}\",\"mode\":\"{}\",\"threads\":{},\"wall_ns\":{},\
             \"tasks\":{},\"steals\":{},\"events\":{},\"dropped\":{},\
             \"overhead_pct\":{:.2}}}",
            self.bench,
            self.mode,
            self.threads,
            self.wall_ns,
            self.tasks,
            self.steals,
            self.events,
            self.dropped,
            self.overhead_pct
        )
    }

    fn print(&self) {
        println!(
            "{:<18} {:<15} {:>2}t {:>12.3}ms {:>9} {:>7} {:>10} {:>8} {:>+8.2}%",
            self.bench,
            self.mode,
            self.threads,
            self.wall_ns as f64 / 1e6,
            self.tasks,
            self.steals,
            self.events,
            self.dropped,
            self.overhead_pct
        );
    }
}

/// Minimum wall time over `REPS` runs after `WARMUP` discarded warm-up
/// iterations (time measured by the engine).
fn measure(w: Workload, cfg: &Config) -> (u64, RunReport) {
    for _ in 0..WARMUP {
        let _ = w.run(cfg);
    }
    let mut best = u64::MAX;
    let mut last = None;
    for _ in 0..REPS {
        let report = w.run(cfg);
        best = best.min(report.wall_ns);
        last = Some(report);
    }
    (best, last.expect("REPS >= 1"))
}

#[cfg(feature = "trace")]
fn measure_traced(w: Workload, cfg: &Config) -> (u64, RunReport, adaptivetc_trace::Trace) {
    for _ in 0..WARMUP {
        let _ = w.run_traced(cfg);
    }
    let mut best = u64::MAX;
    let mut last = None;
    for _ in 0..REPS {
        let (report, trace) = w.run_traced(cfg);
        best = best.min(report.wall_ns);
        last = Some((report, trace));
    }
    let (report, trace) = last.expect("REPS >= 1");
    (best, report, trace)
}

/// The traced-build modes beyond `traced-off`, as (name, filter, sample).
/// `traced-on` is the shipping default (every category, hot ones sampled
/// at the `Config` default rate); `traced-exhaustive` records every event
/// of every category (what PR 4 called traced-on); `traced-filtered`
/// masks the hot categories entirely.
#[cfg(feature = "trace")]
fn traced_modes() -> [(&'static str, u64, u32); 3] {
    use adaptivetc_trace::Category;
    let hot = Category::Deque.bit() | Category::Spawn.bit() | Category::Fake.bit();
    let default_sample = Config::new(1).trace_sample;
    [
        ("traced-on", u64::MAX, default_sample),
        ("traced-exhaustive", u64::MAX, 1),
        ("traced-filtered", !hot, 1),
    ]
}

fn main() {
    let smoke = std::env::var_os("ABLATION_SMOKE").is_some();
    let strict = std::env::var_os("ABLATION_TRACE_STRICT").is_some();
    let feature = if cfg!(feature = "trace") {
        "trace"
    } else {
        "notrace"
    };
    println!(
        "Tracing-overhead ablation (AdaptiveTC, seed 7, build: {feature}, \
         warmup {WARMUP}, min of {REPS})\n"
    );
    println!(
        "{:<18} {:<15} {:>3} {:>14} {:>9} {:>7} {:>10} {:>8} {:>9}",
        "benchmark", "mode", "thr", "wall", "tasks", "steals", "events", "dropped", "overhead"
    );

    let board = if smoke { 8 } else { 10 };
    let mut rows: Vec<Row> = Vec::new();
    let mut baseline_lines: Vec<String> = Vec::new();

    for w in [Workload::Fig1, Workload::Nqueens(board)] {
        for threads in [1usize, 4] {
            let cfg = Config::new(threads).cutoff(w.cutoff()).seed(7);
            // `Config::trace` is off: in the notrace build this is the
            // true baseline; in the traced build it is the shipping
            // default whose overhead must be within noise.
            let (off_wall, report) = measure(w, &cfg);
            let mode = if cfg!(feature = "trace") {
                "traced-off"
            } else {
                "notrace"
            };
            let row = Row {
                bench: w.name(),
                mode,
                threads,
                wall_ns: off_wall,
                tasks: report.stats.tasks_created,
                steals: report.stats.steals_ok,
                events: 0,
                dropped: 0,
                overhead_pct: 0.0,
            };
            row.print();
            rows.push(row);
            if !cfg!(feature = "trace") {
                baseline_lines.push(format!("{}\t{threads}\t{off_wall}", w.name()));
            }

            #[cfg(feature = "trace")]
            for (mode, filter, sample) in traced_modes() {
                let traced_cfg = cfg
                    .clone()
                    .trace(true)
                    .trace_filter(filter)
                    .trace_sample(sample);
                let (on_wall, report, trace) = measure_traced(w, &traced_cfg);
                let overhead =
                    (on_wall as f64 - off_wall as f64) / (off_wall.max(1) as f64) * 100.0;
                let row = Row {
                    bench: w.name(),
                    mode,
                    threads,
                    wall_ns: on_wall,
                    tasks: report.stats.tasks_created,
                    steals: report.stats.steals_ok,
                    events: trace.len() as u64,
                    dropped: trace.total_dropped(),
                    overhead_pct: overhead,
                };
                row.print();
                rows.push(row);
            }
        }
    }

    #[cfg(feature = "trace")]
    let (cdf_json, server_json) = {
        let cdf_json = trace_pipeline(smoke, board);
        let server_json = jobserver_mix(smoke);
        (cdf_json, server_json)
    };
    #[cfg(not(feature = "trace"))]
    let (cdf_json, server_json) = (String::from("{}"), String::from("[]"));

    let out_name = if cfg!(feature = "trace") {
        "BENCH_pr8.json"
    } else {
        "BENCH_pr8_notrace.json"
    };
    if cfg!(feature = "trace") {
        // Smoke-sized runs last ~100 µs and swing tens of percent between
        // processes; the budgets are only meaningful at full size.
        if strict && smoke {
            println!("\nABLATION_SMOKE set: downgrading the strict budgets to advisory");
        }
        let enforce = strict && !smoke;
        compare_with_baseline(&rows, enforce);
        check_traced_on_budget(&rows, enforce);
    } else {
        let _ = strict;
        std::fs::write("BENCH_pr8_baseline.txt", baseline_lines.join("\n") + "\n")
            .expect("write BENCH_pr8_baseline.txt");
        println!("\nwrote notrace baseline to BENCH_pr8_baseline.txt");
    }

    let clock = clock_backend();
    let json = format!(
        "{{\n\"methodology\":{{\"warmup\":{WARMUP},\"reps\":{REPS},\"stat\":\"min\",\
         \"seed\":7,\"smoke\":{smoke}}},\n\"clock_backend\":\"{clock}\",\n\"rows\":[\n  {}\n],\n\
         \"cdfs\":{cdf_json},\n\"jobserver\":{server_json}\n}}\n",
        rows.iter().map(Row::json).collect::<Vec<_>>().join(",\n  ")
    );
    std::fs::write(out_name, json).expect("write BENCH_pr8 json");
    println!("wrote {} rows to {out_name}", rows.len());
}

/// Which clock stamps traced events in this build/process.
fn clock_backend() -> &'static str {
    #[cfg(feature = "trace")]
    {
        adaptivetc_trace::TraceClock::start().backend()
    }
    #[cfg(not(feature = "trace"))]
    {
        "none"
    }
}

/// Compare this (traced, `Config::trace` off) build against the notrace
/// build's `BENCH_pr8_baseline.txt`, if present. The ≤2 % budget is only
/// enforced under `ABLATION_TRACE_STRICT=1` — CI smoke machines are too
/// noisy for a 2 % wall-clock assertion to be meaningful.
fn compare_with_baseline(rows: &[Row], strict: bool) {
    let Ok(baseline) = std::fs::read_to_string("BENCH_pr8_baseline.txt") else {
        println!("\nno BENCH_pr8_baseline.txt (run the --no-default-features build first);");
        println!("skipping the disabled-tracing budget check");
        return;
    };
    println!("\nDisabled-tracing budget vs notrace build:");
    let mut worst: f64 = 0.0;
    for line in baseline.lines() {
        let mut it = line.split('\t');
        let (Some(bench), Some(threads), Some(wall)) = (it.next(), it.next(), it.next()) else {
            continue;
        };
        let (Ok(threads), Ok(base_wall)) = (threads.parse::<usize>(), wall.parse::<u64>()) else {
            continue;
        };
        let Some(row) = rows
            .iter()
            .find(|r| r.mode == "traced-off" && r.bench == bench && r.threads == threads)
        else {
            continue;
        };
        let pct = (row.wall_ns as f64 - base_wall as f64) / (base_wall.max(1) as f64) * 100.0;
        // Only the single-thread real workloads gate: at one thread the
        // schedule is deterministic, so the delta isolates the cost of
        // the compiled-in (but disabled) instrumentation. fig1 is
        // microseconds of work and multi-thread runs carry thread
        // start-up and steal-timing noise far above 2 %.
        if !bench.starts_with("fig1") && threads == 1 {
            worst = worst.max(pct);
        }
        println!(
            "  {bench:<18} {threads}t: {base_wall} -> {} ns ({pct:+.2}%)",
            row.wall_ns
        );
    }
    println!(
        "disabled-tracing worst case: {worst:+.2}% (budget 2%, {})",
        if strict { "enforced" } else { "advisory" }
    );
    if strict {
        assert!(
            worst <= 2.0,
            "tracing-disabled overhead {worst:.2}% exceeds the 2% budget"
        );
    }
}

/// The PR 8 headline gate: full recording at one thread on the n-queens
/// board must cost ≤5 % over the same build with tracing off.
fn check_traced_on_budget(rows: &[Row], strict: bool) {
    let Some(row) = rows
        .iter()
        .find(|r| r.mode == "traced-on" && r.threads == 1 && r.bench.starts_with("nqueen"))
    else {
        return;
    };
    println!(
        "traced-on @1t {}: {:+.2}% (budget 5%, {})",
        row.bench,
        row.overhead_pct,
        if strict { "enforced" } else { "advisory" }
    );
    if strict {
        assert!(
            row.overhead_pct <= 5.0,
            "traced-on overhead {:.2}% at 1 thread exceeds the 5% budget",
            row.overhead_pct
        );
    }
}

/// The post-processing pipeline, exercised end-to-end on real traces:
/// differential validation, latency CDFs, Chrome export,
/// provenance/dwell analysis and the trace-vs-sim diff. Returns the CDF
/// summary as a JSON object string.
#[cfg(feature = "trace")]
fn trace_pipeline(smoke: bool, board: u8) -> String {
    use adaptivetc_sim::{simulate_traced, CostModel, Policy, SimTree};
    use adaptivetc_trace::{
        dwell_times, response_time_cdf, steal_latency, steal_latency_cdf, to_chrome_json, validate,
        Cdf, StealTree, TraceDiff,
    };

    println!("\nTrace post-processing pipeline:");

    // 1. Differential validation: trace counts == RunStats, per worker
    //    and aggregate, on fig1 and an N-queens board sized so nothing
    //    drops (the identities require a complete stream). Run once
    //    exhaustively and once sampled — sampling must keep the
    //    validator green (bounds for hot categories, exact elsewhere).
    let vboard = if smoke { 7 } else { board };
    for (label, w) in [
        ("fig1", Workload::Fig1),
        ("nqueens", Workload::Nqueens(vboard)),
    ] {
        for threads in [1usize, 4] {
            for sample in [1u32, Config::new(1).trace_sample] {
                let cfg = Config::new(threads)
                    .cutoff(w.cutoff())
                    .trace(true)
                    .trace_capacity(1 << 20)
                    .trace_sample(sample)
                    .seed(7);
                let (report, trace) = w.run_traced(&cfg);
                assert_eq!(trace.total_dropped(), 0, "{label}: ring must not drop");
                let mismatches = validate(&trace, &report);
                assert!(
                    mismatches.is_empty(),
                    "{label}/{threads}t sample={sample}: trace disagrees with RunStats:\n{}",
                    mismatches
                        .iter()
                        .map(ToString::to_string)
                        .collect::<Vec<_>>()
                        .join("\n")
                );
            }
        }
        println!(
            "  validator {label:<8}: exact at sample=1, bounded at the default rate, 1t and 4t"
        );
    }

    // 2. Chrome export of a 4-thread N-queens run, plus the analysis
    //    passes (including the PR 8 latency CDFs) over the same trace.
    let w = Workload::Nqueens(vboard);
    let cfg = Config::new(4)
        .cutoff(w.cutoff())
        .trace(true)
        .trace_capacity(1 << 20)
        .seed(7);
    let (_, trace) = w.run_traced(&cfg);
    let json = to_chrome_json(&trace);
    std::fs::write("trace_nqueens4.json", &json).expect("write trace_nqueens4.json");
    println!(
        "  chrome export: {} events -> trace_nqueens4.json ({} KiB)",
        trace.len(),
        json.len() / 1024
    );
    let tree = StealTree::build(&trace);
    let dwell = dwell_times(&trace);
    let latency = steal_latency(&trace);
    println!(
        "  provenance: {} steal edges, {} roots, depth {}; steal latency mean {:.0} ns over {} samples",
        tree.edges.len(),
        tree.roots(),
        tree.max_depth(),
        latency.mean(),
        latency.count
    );
    for (wid, d) in dwell.iter().enumerate() {
        println!(
            "  dwell w{wid}: work {:.3} ms, special {:.3} ms, sync {:.3} ms, slow {:.3} ms",
            d.work_ns as f64 / 1e6,
            d.special_ns as f64 / 1e6,
            d.sync_wait_ns as f64 / 1e6,
            d.slow_ns as f64 / 1e6
        );
    }
    let steal_cdf = steal_latency_cdf(&trace);
    let resp_cdf = response_time_cdf(&trace);
    let cdf_json = |name: &str, c: &Cdf| {
        println!(
            "  {name}: n={} p50={} p90={} p99={} max={} ns",
            c.count(),
            c.p50(),
            c.p90(),
            c.p99(),
            c.max()
        );
        format!(
            "{{\"count\":{},\"p50_ns\":{},\"p90_ns\":{},\"p99_ns\":{},\"max_ns\":{}}}",
            c.count(),
            c.p50(),
            c.p90(),
            c.p99(),
            c.max()
        )
    };
    let steal_json = cdf_json("steal-latency CDF", &steal_cdf);
    let resp_json = cdf_json("need_task response CDF", &resp_cdf);

    // 3. Trace-vs-sim diff on fig1: at one thread the shared schema
    //    counts must agree exactly (exhaustive on the real side — the
    //    sim's virtual-time stream never samples).
    let cfg = Config::new(1)
        .cutoff(CutoffPolicy::Fixed(2))
        .trace(true)
        .trace_sample(1)
        .seed(7);
    let (_, real) = Workload::Fig1.run_traced(&cfg);
    let sim_tree = SimTree::from_problem(&Fig1Tree::new());
    let (_, sim) = simulate_traced(&sim_tree, Policy::AdaptiveTc, &cfg, CostModel::calibrated());
    let diff = TraceDiff::compare(&real, &sim.expect("Config::trace is set"));
    assert!(
        diff.is_exact(),
        "fig1 trace-vs-sim diff:\n{}",
        diff.render()
    );
    println!("  trace-vs-sim diff on fig1: exact across the shared schema");

    format!("{{\"steal_latency_ns\":{steal_json},\"response_time_ns\":{resp_json}}}")
}

/// The job-server mixed mix, traced-off vs traced-on: jobs/sec and p99
/// submission-to-terminal latency under full pool-wide recording.
/// Returns the rows as a JSON array string.
#[cfg(feature = "trace")]
fn jobserver_mix(smoke: bool) -> String {
    use adaptivetc_runtime::{JobHandle, JobOutcome, JobServer, Mode, Priority, ServerConfig};

    const WORKERS: usize = 4;
    let (floods, heavies, board) = if smoke { (32, 2, 7u8) } else { (256, 4, 9u8) };

    fn settle(h: JobHandle<u64>) -> (JobOutcome<u64>, f64) {
        let lat_us = loop {
            match h.latency() {
                Some(d) => break d.as_nanos() as f64 / 1_000.0,
                None if h.status().is_terminal() => std::hint::spin_loop(),
                None => std::thread::yield_now(),
            }
        };
        (h.wait(), lat_us)
    }

    let run_mix = |traced: bool| -> (f64, f64, u64) {
        let mut server_cfg = ServerConfig::new(WORKERS)
            .queue_capacity((floods + heavies).max(8))
            .work_sharing(true);
        if traced {
            server_cfg = server_cfg.trace(true);
        }
        let server = JobServer::new(server_cfg);
        let t0 = std::time::Instant::now();
        let mut handles = Vec::with_capacity(floods + heavies);
        for i in 0..heavies {
            handles.push(
                server
                    .submit(
                        NqueensArray::new(board),
                        Config::new(WORKERS)
                            .cutoff(CutoffPolicy::Auto)
                            .seed(i as u64),
                        Mode::Adaptive,
                        Priority::Low,
                    )
                    .expect("heavy submission"),
            );
        }
        for i in 0..floods {
            handles.push(
                server
                    .submit(
                        Fig1Tree::new(),
                        Config::new(1).cutoff(CutoffPolicy::Auto).seed(i as u64),
                        Mode::Adaptive,
                        if i % 4 == 0 {
                            Priority::High
                        } else {
                            Priority::Normal
                        },
                    )
                    .expect("flood submission"),
            );
        }
        let mut lats: Vec<f64> = Vec::with_capacity(handles.len());
        for h in handles {
            let (outcome, lat) = settle(h);
            assert!(matches!(outcome, JobOutcome::Completed { .. }));
            lats.push(lat);
        }
        let wall_ns = t0.elapsed().as_nanos() as u64;
        let report = server.shutdown();
        if traced {
            let trace = report.trace.expect("server tracing was on");
            assert!(!trace.is_empty(), "traced server produced no events");
        }
        lats.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
        let jobs_per_sec = lats.len() as f64 / (wall_ns.max(1) as f64 / 1e9);
        let p99 = lats[((lats.len() - 1) as f64 * 0.99).round() as usize];
        (jobs_per_sec, p99, wall_ns)
    };

    println!("\nJob-server mixed mix ({WORKERS} workers, {floods} floods + {heavies} heavies):");
    let (off_jps, off_p99, _) = run_mix(false);
    let (on_jps, on_p99, _) = run_mix(true);
    let jps_delta = (on_jps - off_jps) / off_jps * 100.0;
    let p99_delta = (on_p99 - off_p99) / off_p99.max(f64::MIN_POSITIVE) * 100.0;
    println!("  traced-off: {off_jps:>9.0} jobs/sec, p99 {off_p99:>8.1} us");
    println!("  traced-on:  {on_jps:>9.0} jobs/sec, p99 {on_p99:>8.1} us");
    println!("  delta: jobs/sec {jps_delta:+.2}%, p99 {p99_delta:+.2}%");

    format!(
        "[\n  {{\"mode\":\"traced-off\",\"jobs_per_sec\":{off_jps:.1},\"p99_us\":{off_p99:.1}}},\n  \
         {{\"mode\":\"traced-on\",\"jobs_per_sec\":{on_jps:.1},\"p99_us\":{on_p99:.1},\
         \"jobs_per_sec_delta_pct\":{jps_delta:.2},\"p99_delta_pct\":{p99_delta:.2}}}\n]"
    )
}
