//! Tracing-overhead ablation: what the event-tracing subsystem costs in
//! each of its three states.
//!
//! * **notrace build** (`--no-default-features`): the instrumentation is
//!   compiled out entirely — this is the PR3-equivalent baseline. The run
//!   writes its wall times to `BENCH_pr4_baseline.txt` for the traced
//!   build to compare against, plus its own `BENCH_pr4_notrace.json`.
//! * **traced build, `Config::trace` off** (the shipping default): the
//!   hot path carries one `Option` check per emission point. Expected
//!   within noise of the notrace build.
//! * **traced build, `Config::trace` on**: full event recording into the
//!   per-worker rings (flight-recorder mode: the ring drops oldest on
//!   overflow, so the overhead is bounded regardless of workload size).
//!
//! The traced build also exercises the post-processing pipeline once per
//! run: the differential validator on fig1 + N-queens (trace counts must
//! equal `RunStats` exactly), a Chrome-trace export of a 4-thread
//! N-queens run (`trace_nqueens4.json`, loadable in chrome://tracing or
//! Perfetto), and the trace-vs-sim diff on fig1.
//!
//! Timing gates are environment-controlled: `ABLATION_TRACE_STRICT=1`
//! enforces the ≤2 % disabled-tracing budget (quiet machines only);
//! `ABLATION_SMOKE=1` shrinks the boards for the CI smoke job, which
//! checks shape, not time.
//!
//! ```text
//! cargo run --release -p adaptivetc-bench --bin ablation_trace --no-default-features
//! cargo run --release -p adaptivetc-bench --bin ablation_trace
//! ```

use adaptivetc_core::{Config, CutoffPolicy, RunReport};
use adaptivetc_runtime::Scheduler;
use adaptivetc_workloads::fig1::Fig1Tree;
use adaptivetc_workloads::nqueens::NqueensArray;

/// The ablation workloads, runnable traced or untraced.
#[derive(Clone, Copy)]
enum Workload {
    Fig1,
    Nqueens(u8),
}

impl Workload {
    fn name(&self) -> String {
        match self {
            Workload::Fig1 => "fig1".into(),
            Workload::Nqueens(n) => format!("nqueen-array({n})"),
        }
    }

    fn cutoff(&self) -> CutoffPolicy {
        match self {
            Workload::Fig1 => CutoffPolicy::Fixed(2),
            Workload::Nqueens(_) => CutoffPolicy::Auto,
        }
    }

    fn run(&self, cfg: &Config) -> RunReport {
        let report = match self {
            Workload::Fig1 => Scheduler::AdaptiveTc
                .run(&Fig1Tree::new(), cfg)
                .map(|r| r.1),
            Workload::Nqueens(n) => Scheduler::AdaptiveTc
                .run(&NqueensArray::new(*n), cfg)
                .map(|r| r.1),
        };
        report.expect("workload runs")
    }

    #[cfg(feature = "trace")]
    fn run_traced(&self, cfg: &Config) -> (RunReport, adaptivetc_trace::Trace) {
        let (report, trace) = match self {
            Workload::Fig1 => Scheduler::AdaptiveTc
                .run_traced(&Fig1Tree::new(), cfg)
                .map(|r| (r.1, r.2))
                .expect("workload runs"),
            Workload::Nqueens(n) => Scheduler::AdaptiveTc
                .run_traced(&NqueensArray::new(*n), cfg)
                .map(|r| (r.1, r.2))
                .expect("workload runs"),
        };
        (report, trace.expect("Config::trace is set"))
    }
}

/// One measured cell: a (workload, threads, tracing-state) wall time with
/// the counters that prove the run did the same work.
struct Row {
    bench: String,
    mode: &'static str,
    threads: usize,
    wall_ns: u64,
    tasks: u64,
    steals: u64,
    events: u64,
    dropped: u64,
    /// Percent overhead vs this build's own `Config::trace`-off run
    /// (only meaningful for mode `traced-on`).
    overhead_pct: f64,
}

impl Row {
    fn json(&self) -> String {
        format!(
            "{{\"bench\":\"{}\",\"mode\":\"{}\",\"threads\":{},\"wall_ns\":{},\
             \"tasks\":{},\"steals\":{},\"events\":{},\"dropped\":{},\
             \"overhead_pct\":{:.2}}}",
            self.bench,
            self.mode,
            self.threads,
            self.wall_ns,
            self.tasks,
            self.steals,
            self.events,
            self.dropped,
            self.overhead_pct
        )
    }

    fn print(&self) {
        println!(
            "{:<18} {:<10} {:>2}t {:>12.3}ms {:>9} {:>7} {:>10} {:>8} {:>+8.2}%",
            self.bench,
            self.mode,
            self.threads,
            self.wall_ns as f64 / 1e6,
            self.tasks,
            self.steals,
            self.events,
            self.dropped,
            self.overhead_pct
        );
    }
}

/// Median wall time over `reps` runs (time measured by the engine).
fn measure(w: Workload, cfg: &Config, reps: usize) -> (u64, RunReport) {
    let mut walls = Vec::with_capacity(reps);
    let mut last = None;
    for _ in 0..reps {
        let report = w.run(cfg);
        walls.push(report.wall_ns);
        last = Some(report);
    }
    walls.sort_unstable();
    (walls[walls.len() / 2], last.expect("reps >= 1"))
}

#[cfg(feature = "trace")]
fn measure_traced(
    w: Workload,
    cfg: &Config,
    reps: usize,
) -> (u64, RunReport, adaptivetc_trace::Trace) {
    let mut walls = Vec::with_capacity(reps);
    let mut last = None;
    for _ in 0..reps {
        let (report, trace) = w.run_traced(cfg);
        walls.push(report.wall_ns);
        last = Some((report, trace));
    }
    walls.sort_unstable();
    let (report, trace) = last.expect("reps >= 1");
    (walls[walls.len() / 2], report, trace)
}

fn main() {
    let smoke = std::env::var_os("ABLATION_SMOKE").is_some();
    let strict = std::env::var_os("ABLATION_TRACE_STRICT").is_some();
    let reps = if smoke { 3 } else { 7 };
    let feature = if cfg!(feature = "trace") {
        "trace"
    } else {
        "notrace"
    };
    println!("Tracing-overhead ablation (AdaptiveTC, seed 7, build: {feature})\n");
    println!(
        "{:<18} {:<10} {:>3} {:>14} {:>9} {:>7} {:>10} {:>8} {:>9}",
        "benchmark", "mode", "thr", "wall", "tasks", "steals", "events", "dropped", "overhead"
    );

    let board = if smoke { 8 } else { 10 };
    let mut rows: Vec<Row> = Vec::new();
    let mut baseline_lines: Vec<String> = Vec::new();

    for w in [Workload::Fig1, Workload::Nqueens(board)] {
        for threads in [1usize, 4] {
            let cfg = Config::new(threads).cutoff(w.cutoff()).seed(7);
            // `Config::trace` is off: in the notrace build this is the
            // PR3-equivalent baseline; in the traced build it is the
            // shipping default whose overhead must be within noise.
            let (off_wall, report) = measure(w, &cfg, reps);
            let mode = if cfg!(feature = "trace") {
                "traced-off"
            } else {
                "notrace"
            };
            let row = Row {
                bench: w.name(),
                mode,
                threads,
                wall_ns: off_wall,
                tasks: report.stats.tasks_created,
                steals: report.stats.steals_ok,
                events: 0,
                dropped: 0,
                overhead_pct: 0.0,
            };
            row.print();
            rows.push(row);
            if !cfg!(feature = "trace") {
                baseline_lines.push(format!("{}\t{threads}\t{off_wall}", w.name()));
            }

            #[cfg(feature = "trace")]
            {
                // Full recording, flight-recorder ring (drop-oldest).
                let traced_cfg = cfg.clone().trace(true);
                let (on_wall, report, trace) = measure_traced(w, &traced_cfg, reps);
                let overhead =
                    (on_wall as f64 - off_wall as f64) / (off_wall.max(1) as f64) * 100.0;
                let row = Row {
                    bench: w.name(),
                    mode: "traced-on",
                    threads,
                    wall_ns: on_wall,
                    tasks: report.stats.tasks_created,
                    steals: report.stats.steals_ok,
                    events: trace.len() as u64,
                    dropped: trace.total_dropped(),
                    overhead_pct: overhead,
                };
                row.print();
                rows.push(row);
            }
        }
    }

    #[cfg(feature = "trace")]
    trace_pipeline(smoke);

    let out_name = if cfg!(feature = "trace") {
        "BENCH_pr4.json"
    } else {
        "BENCH_pr4_notrace.json"
    };
    if cfg!(feature = "trace") {
        // Smoke-sized runs last ~100 µs and swing tens of percent between
        // processes; the 2 % budget is only meaningful at full size.
        if strict && smoke {
            println!("\nABLATION_SMOKE set: downgrading the strict budget to advisory");
        }
        compare_with_baseline(&rows, strict && !smoke);
    } else {
        let _ = strict;
        std::fs::write("BENCH_pr4_baseline.txt", baseline_lines.join("\n") + "\n")
            .expect("write BENCH_pr4_baseline.txt");
        println!("\nwrote notrace baseline to BENCH_pr4_baseline.txt");
    }

    let json = format!(
        "[\n  {}\n]\n",
        rows.iter().map(Row::json).collect::<Vec<_>>().join(",\n  ")
    );
    std::fs::write(out_name, json).expect("write BENCH_pr4 json");
    println!("wrote {} rows to {out_name}", rows.len());
}

/// Compare this (traced, `Config::trace` off) build against the notrace
/// build's `BENCH_pr4_baseline.txt`, if present. The ≤2 % budget is only
/// enforced under `ABLATION_TRACE_STRICT=1` — CI smoke machines are too
/// noisy for a 2 % wall-clock assertion to be meaningful.
fn compare_with_baseline(rows: &[Row], strict: bool) {
    let Ok(baseline) = std::fs::read_to_string("BENCH_pr4_baseline.txt") else {
        println!("\nno BENCH_pr4_baseline.txt (run the --no-default-features build first);");
        println!("skipping the disabled-tracing budget check");
        return;
    };
    println!("\nDisabled-tracing budget vs notrace build:");
    let mut worst: f64 = 0.0;
    for line in baseline.lines() {
        let mut it = line.split('\t');
        let (Some(bench), Some(threads), Some(wall)) = (it.next(), it.next(), it.next()) else {
            continue;
        };
        let (Ok(threads), Ok(base_wall)) = (threads.parse::<usize>(), wall.parse::<u64>()) else {
            continue;
        };
        let Some(row) = rows
            .iter()
            .find(|r| r.mode == "traced-off" && r.bench == bench && r.threads == threads)
        else {
            continue;
        };
        let pct = (row.wall_ns as f64 - base_wall as f64) / (base_wall.max(1) as f64) * 100.0;
        // Only the single-thread real workloads gate: at one thread the
        // schedule is deterministic, so the delta isolates the cost of
        // the compiled-in (but disabled) instrumentation. fig1 is
        // microseconds of work and multi-thread runs carry thread
        // start-up and steal-timing noise far above 2 %.
        if !bench.starts_with("fig1") && threads == 1 {
            worst = worst.max(pct);
        }
        println!(
            "  {bench:<18} {threads}t: {base_wall} -> {} ns ({pct:+.2}%)",
            row.wall_ns
        );
    }
    println!(
        "disabled-tracing worst case: {worst:+.2}% (budget 2%, {})",
        if strict { "enforced" } else { "advisory" }
    );
    if strict {
        assert!(
            worst <= 2.0,
            "tracing-disabled overhead {worst:.2}% exceeds the 2% budget"
        );
    }
}

/// The post-processing pipeline, exercised end-to-end on real traces:
/// differential validation, Chrome export, provenance/dwell analysis and
/// the trace-vs-sim diff.
#[cfg(feature = "trace")]
fn trace_pipeline(smoke: bool) {
    use adaptivetc_sim::{simulate_traced, CostModel, Policy, SimTree};
    use adaptivetc_trace::{
        dwell_times, steal_latency, to_chrome_json, validate, StealTree, TraceDiff,
    };

    println!("\nTrace post-processing pipeline:");

    // 1. Differential validation: trace counts == RunStats, per worker
    //    and aggregate, on fig1 and an N-queens board sized so nothing
    //    drops (the identities require a complete stream).
    let board = if smoke { 7 } else { 10 };
    for (label, w) in [
        ("fig1", Workload::Fig1),
        ("nqueens", Workload::Nqueens(board)),
    ] {
        for threads in [1usize, 4] {
            let cfg = Config::new(threads)
                .cutoff(w.cutoff())
                .trace(true)
                .trace_capacity(1 << 20)
                .seed(7);
            let (report, trace) = w.run_traced(&cfg);
            assert_eq!(trace.total_dropped(), 0, "{label}: ring must not drop");
            let mismatches = validate(&trace, &report);
            assert!(
                mismatches.is_empty(),
                "{label}/{threads}t: trace disagrees with RunStats:\n{}",
                mismatches
                    .iter()
                    .map(ToString::to_string)
                    .collect::<Vec<_>>()
                    .join("\n")
            );
            println!(
                "  validator {label:<8} {threads}t: {} events, exact",
                trace.len()
            );
        }
    }

    // 2. Chrome export of a 4-thread N-queens run, plus the analysis
    //    passes over the same trace.
    let w = Workload::Nqueens(board);
    let cfg = Config::new(4)
        .cutoff(w.cutoff())
        .trace(true)
        .trace_capacity(1 << 20)
        .seed(7);
    let (_, trace) = w.run_traced(&cfg);
    let json = to_chrome_json(&trace);
    std::fs::write("trace_nqueens4.json", &json).expect("write trace_nqueens4.json");
    println!(
        "  chrome export: {} events -> trace_nqueens4.json ({} KiB)",
        trace.len(),
        json.len() / 1024
    );
    let tree = StealTree::build(&trace);
    let dwell = dwell_times(&trace);
    let latency = steal_latency(&trace);
    println!(
        "  provenance: {} steal edges, {} roots, depth {}; steal latency mean {:.0} ns over {} samples",
        tree.edges.len(),
        tree.roots(),
        tree.max_depth(),
        latency.mean(),
        latency.count
    );
    for (wid, d) in dwell.iter().enumerate() {
        println!(
            "  dwell w{wid}: work {:.3} ms, special {:.3} ms, sync {:.3} ms, slow {:.3} ms",
            d.work_ns as f64 / 1e6,
            d.special_ns as f64 / 1e6,
            d.sync_wait_ns as f64 / 1e6,
            d.slow_ns as f64 / 1e6
        );
    }

    // 3. Trace-vs-sim diff on fig1: at one thread the shared schema
    //    counts must agree exactly.
    let cfg = Config::new(1)
        .cutoff(CutoffPolicy::Fixed(2))
        .trace(true)
        .seed(7);
    let (_, real) = Workload::Fig1.run_traced(&cfg);
    let sim_tree = SimTree::from_problem(&Fig1Tree::new());
    let (_, sim) = simulate_traced(&sim_tree, Policy::AdaptiveTc, &cfg, CostModel::calibrated());
    let diff = TraceDiff::compare(&real, &sim.expect("Config::trace is set"));
    assert!(
        diff.is_exact(),
        "fig1 trace-vs-sim diff:\n{}",
        diff.render()
    );
    println!("  trace-vs-sim diff on fig1: exact across the shared schema");
}
