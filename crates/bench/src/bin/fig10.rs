//! Figure 10: speedups on six random unbalanced trees (Table 3's
//! Tree1–Tree3, left- and right-heavy) plus the Sudoku input1/input2 pair,
//! for Cilk-SYNCHED, Tascell and AdaptiveTC across 1–8 threads.
//!
//! ```text
//! cargo run --release -p adaptivetc-bench --bin fig10 [nodes]
//! ```

use adaptivetc_bench::{speedup_row, THREADS};
use adaptivetc_core::Config;
use adaptivetc_sim::{serial_wall_ns, simulate, CostModel, Policy, SimTree};
use adaptivetc_workloads::tree::UnbalancedTree;

fn sweep(label: &str, tree: &UnbalancedTree, cost: CostModel) {
    let flat = SimTree::from_problem(tree);
    let serial = serial_wall_ns(&flat, &cost) as f64;
    println!("[{label}] ({} nodes)", flat.len());
    for policy in [Policy::CilkSynched, Policy::Tascell, Policy::AdaptiveTc] {
        let series: Vec<f64> = THREADS
            .iter()
            .map(|&t| {
                let out = simulate(&flat, policy, &Config::new(t), cost);
                assert_eq!(out.leaves, flat.leaf_count(), "work conservation");
                serial / out.wall_ns as f64
            })
            .collect();
        println!("{}", speedup_row(policy.name(), &series));
    }
    println!();
}

fn main() {
    let total: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(300_000);
    let cost = CostModel::calibrated();
    let work = 16;

    println!("Figure 10: unbalanced-tree speedups; columns: threads = {THREADS:?}\n");

    println!("(a) Sudoku input1 / input2 stand-ins");
    sweep("input1", &UnbalancedTree::fig8(total).work(work), cost);
    sweep(
        "input2",
        &UnbalancedTree::fig8(total).work(work).reversed(),
        cost,
    );

    for (i, (l, r)) in [
        (
            UnbalancedTree::tree1(total).work(work),
            UnbalancedTree::tree1(total).work(work).reversed(),
        ),
        (
            UnbalancedTree::tree2(total).work(work),
            UnbalancedTree::tree2(total).work(work).reversed(),
        ),
        (
            UnbalancedTree::tree3(total).work(work),
            UnbalancedTree::tree3(total).work(work).reversed(),
        ),
    ]
    .into_iter()
    .enumerate()
    {
        println!(
            "({}) random unbalanced tree {}",
            (b'b' + i as u8) as char,
            i + 1
        );
        sweep(&format!("Tree{}L", i + 1), &l, cost);
        sweep(&format!("Tree{}R", i + 1), &r, cost);
    }

    println!(
        "paper's shape: Cilk(-SYNCHED) is insensitive to tree orientation;\n\
         Tascell is much worse on right-heavy trees (waits on the heavy late\n\
         siblings it gave away); AdaptiveTC sits between them, with a dip on\n\
         the most-skewed left-heavy tree (Tree3L) as in Figure 10(d)."
    );
}
