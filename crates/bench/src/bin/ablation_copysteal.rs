//! Copy-on-steal ablation: what the lazy taskprivate-workspace protocol
//! saves over eager per-spawn cloning, and what the victim-selection
//! policies do to the steal path.
//!
//! Three systems on the Figure 1 tree and the two N-queens variants:
//! AdaptiveTC with copy-on-steal (the default), AdaptiveTC pinned to the
//! eager-copy policy, and the faithful Cilk baseline (which ignores the
//! copy-on-steal request by design). Expected shape: under copy-on-steal
//! nearly every spawn elides its clone (`copies_saved` tracks the spawn
//! count; the only clones left are thief materialisations and region
//! seals), while the task/fake/special structure matches the eager run.
//!
//! Also sweeps the steal-path victim policies (uniform, last-victim
//! affinity, best-of-two occupancy) under copy-on-steal.
//!
//! Writes the measured counters to `BENCH_pr3.json` for CI trending.
//! Setting `ABLATION_SMOKE=1` shrinks the N-queens boards to 8×8 for the
//! CI smoke job.
//!
//! ```text
//! cargo run --release -p adaptivetc-bench --bin ablation_copysteal
//! ```

use adaptivetc_bench::PaperBench;
use adaptivetc_core::{Config, CutoffPolicy, RunReport, VictimPolicy, WorkspacePolicy};
use adaptivetc_runtime::Scheduler;
use adaptivetc_workloads::fig1::Fig1Tree;
use adaptivetc_workloads::nqueens::{NqueensArray, NqueensCompute};

/// One measured cell, flattened for the table and the JSON dump.
struct Row {
    bench: &'static str,
    scheduler: &'static str,
    workspace: &'static str,
    victim: &'static str,
    threads: usize,
    tasks: u64,
    fakes: u64,
    specials: u64,
    copies: u64,
    copies_saved: u64,
    pushes: u64,
    steals: u64,
    wall_ns: u64,
}

impl Row {
    fn from_report(
        bench: &'static str,
        scheduler: &'static str,
        cfg: &Config,
        threads: usize,
        report: &RunReport,
    ) -> Self {
        let s = &report.stats;
        Row {
            bench,
            scheduler,
            workspace: cfg.workspace.name(),
            victim: cfg.victim.name(),
            threads,
            tasks: s.tasks_created,
            fakes: s.fake_tasks,
            specials: s.special_tasks,
            copies: s.copies,
            copies_saved: s.workspace_copies_saved,
            pushes: s.deque_pushes,
            steals: s.steals_ok,
            wall_ns: report.wall_ns,
        }
    }

    fn json(&self) -> String {
        format!(
            "{{\"bench\":\"{}\",\"scheduler\":\"{}\",\"workspace\":\"{}\",\
             \"victim\":\"{}\",\"threads\":{},\"tasks\":{},\"fakes\":{},\
             \"specials\":{},\"copies\":{},\"copies_saved\":{},\"pushes\":{},\
             \"steals\":{},\"wall_ns\":{}}}",
            self.bench,
            self.scheduler,
            self.workspace,
            self.victim,
            self.threads,
            self.tasks,
            self.fakes,
            self.specials,
            self.copies,
            self.copies_saved,
            self.pushes,
            self.steals,
            self.wall_ns
        )
    }

    fn print(&self) {
        println!(
            "{:<20} {:<10} {:<26} {:>2}t {:>9} {:>9} {:>7} {:>9} {:>11} {:>9} {:>7} {:>9.2}",
            self.bench,
            self.scheduler,
            format!("{}/{}", self.workspace, self.victim),
            self.threads,
            self.tasks,
            self.fakes,
            self.specials,
            self.copies,
            self.copies_saved,
            self.pushes,
            self.steals,
            self.wall_ns as f64 / 1e6
        );
    }
}

/// (display name, runner) for the three ablation workloads.
type Runner = Box<dyn Fn(Scheduler, &Config) -> (u64, RunReport)>;

fn workloads() -> Vec<(&'static str, CutoffPolicy, Runner)> {
    let smoke = std::env::var_os("ABLATION_SMOKE").is_some();
    let mut v: Vec<(&'static str, CutoffPolicy, Runner)> = vec![(
        "fig1",
        // The figure's cut-off of 2 on its 49-node tree.
        CutoffPolicy::Fixed(2),
        Box::new(|s: Scheduler, cfg: &Config| s.run(&Fig1Tree::new(), cfg).expect("fig1 runs"))
            as Runner,
    )];
    if smoke {
        v.push((
            "nqueen-array(8)",
            CutoffPolicy::Auto,
            Box::new(|s: Scheduler, cfg: &Config| s.run(&NqueensArray::new(8), cfg).expect("runs")),
        ));
        v.push((
            "nqueen-compute(8)",
            CutoffPolicy::Auto,
            Box::new(|s: Scheduler, cfg: &Config| {
                s.run(&NqueensCompute::new(8), cfg).expect("runs")
            }),
        ));
    } else {
        v.push((
            "nqueen-array(11)",
            CutoffPolicy::Auto,
            Box::new(|s: Scheduler, cfg: &Config| {
                PaperBench::NqueenArray.run_real(s, cfg).expect("runs")
            }),
        ));
        v.push((
            "nqueen-compute(11)",
            CutoffPolicy::Auto,
            Box::new(|s: Scheduler, cfg: &Config| {
                PaperBench::NqueenCompute.run_real(s, cfg).expect("runs")
            }),
        ));
    }
    v
}

fn main() {
    println!("Copy-on-steal ablation (real threaded runtime, seed 7)\n");
    println!(
        "{:<20} {:<10} {:<26} {:>3} {:>9} {:>9} {:>7} {:>9} {:>11} {:>9} {:>7} {:>9}",
        "benchmark",
        "scheduler",
        "ws/victim",
        "thr",
        "tasks",
        "fakes",
        "special",
        "copies",
        "saved",
        "pushes",
        "steals",
        "wall ms"
    );

    let mut rows: Vec<Row> = Vec::new();
    let mut criterion_ok = true;

    for (name, cutoff, run) in workloads() {
        for threads in [1usize, 4] {
            for (scheduler, workspace) in [
                (Scheduler::AdaptiveTc, WorkspacePolicy::CopyOnSteal),
                (Scheduler::AdaptiveTc, WorkspacePolicy::EagerCopy),
                // The faithful baseline keeps eager semantics even when
                // copy-on-steal is requested.
                (Scheduler::Cilk, WorkspacePolicy::CopyOnSteal),
            ] {
                let cfg = Config::new(threads)
                    .cutoff(cutoff)
                    .workspace(workspace)
                    .seed(7);
                let (_, report) = run(scheduler, &cfg);
                let row = Row::from_report(name, scheduler.name(), &cfg, threads, &report);
                if scheduler == Scheduler::AdaptiveTc
                    && workspace == WorkspacePolicy::CopyOnSteal
                    && threads >= 4
                    && row.pushes > 0
                {
                    // The PR's acceptance shape: nearly every pushed task
                    // elided its eager clone.
                    let ok = row.copies_saved as f64 > 0.9 * row.pushes as f64;
                    criterion_ok &= ok;
                    if !ok {
                        println!(
                            "!! {name}: copies_saved {} <= 0.9 x pushes {}",
                            row.copies_saved, row.pushes
                        );
                    }
                }
                if scheduler == Scheduler::Cilk {
                    assert_eq!(
                        report.stats.workspace_copies_saved, 0,
                        "the Cilk baseline must not elide clones"
                    );
                    assert_eq!(
                        report.stats.allocations, report.stats.copies,
                        "the Cilk baseline allocates per spawn"
                    );
                }
                row.print();
                rows.push(row);
            }
        }
    }

    println!("\nVictim-policy sweep (AdaptiveTC, copy-on-steal, 4 threads):\n");
    for (name, cutoff, run) in workloads() {
        for victim in VictimPolicy::ALL {
            let cfg = Config::new(4)
                .cutoff(cutoff)
                .workspace(WorkspacePolicy::CopyOnSteal)
                .victim(victim)
                .seed(7);
            let (_, report) = run(Scheduler::AdaptiveTc, &cfg);
            let row = Row::from_report(name, "adaptivetc", &cfg, 4, &report);
            row.print();
            rows.push(row);
        }
    }

    let json = format!(
        "[\n  {}\n]\n",
        rows.iter().map(Row::json).collect::<Vec<_>>().join(",\n  ")
    );
    std::fs::write("BENCH_pr3.json", json).expect("write BENCH_pr3.json");
    println!("\nwrote {} rows to BENCH_pr3.json", rows.len());
    println!(
        "copy-on-steal acceptance (saved > 0.9 x pushes at 4 threads): {}",
        if criterion_ok { "PASS" } else { "FAIL" }
    );
    assert!(criterion_ok, "copy-on-steal elision criterion not met");
}
