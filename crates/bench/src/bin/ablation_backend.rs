//! Deque-backend ablation: Table-2-style one-thread overhead plus task and
//! steal counters for the THE protocol vs the Chase-Lev lock-free deque,
//! under both the work-first Cilk policy and AdaptiveTC, across all eight
//! paper workloads.
//!
//! The paper runs everything on the THE deque; this harness isolates what
//! the substrate itself costs. Expected shape: on one thread the two
//! backends are close (both owner fast paths are a handful of atomics), and
//! AdaptiveTC's overhead stays near serial on either backend because it
//! barely touches the deque at all — the scheduling policy, not the deque,
//! dominates Table 2.
//!
//! ```text
//! cargo run --release -p adaptivetc-bench --bin ablation_backend
//! ```

use adaptivetc_bench::PaperBench;
use adaptivetc_core::{Config, DequeBackend};
use adaptivetc_runtime::Scheduler;

fn median_of_3<F: FnMut() -> u64>(mut run: F) -> u64 {
    let mut xs = [run(), run(), run()];
    xs.sort_unstable();
    xs[1]
}

const BACKENDS: [DequeBackend; 2] = [DequeBackend::The, DequeBackend::ChaseLev];
const SCHEDULERS: [Scheduler; 2] = [Scheduler::Cilk, Scheduler::AdaptiveTc];

fn main() {
    println!("Backend ablation: ONE-thread execution time relative to the serial baseline");
    println!("(median of 3 runs; real threaded runtime, release build)\n");

    let mut header = format!("{:<22} {:>9}", "benchmark", "serial ms");
    for s in SCHEDULERS {
        for b in BACKENDS {
            header.push_str(&format!(" {:>16}", format!("{}/{}", s.name(), b.name())));
        }
    }
    println!("{header}");

    let cfg1 = Config::new(1);
    for bench in PaperBench::all() {
        let _warmup = bench.run_serial(); // fault in code and data pages
        let serial_ns = median_of_3(|| bench.run_serial().1.wall_ns).max(1);
        let mut row = format!("{:<22} {:>9.1}", bench.name(), serial_ns as f64 / 1e6);
        for scheduler in SCHEDULERS {
            for backend in BACKENDS {
                let cfg = cfg1.clone().backend(backend);
                let ns = median_of_3(|| {
                    bench
                        .run_real(scheduler, &cfg)
                        .expect("single-thread run succeeds")
                        .1
                        .wall_ns
                });
                row.push_str(&format!(
                    " {:>8.1} ({:>4.2})",
                    ns as f64 / 1e6,
                    ns as f64 / serial_ns as f64
                ));
            }
        }
        println!("{row}");
    }

    println!("\nCounters at 4 threads (single run per cell; tasks / steals / reuse):\n");
    println!(
        "{:<22} {:<22} {:>12} {:>10} {:>12} {:>12}",
        "benchmark", "scheduler/backend", "tasks", "steals", "frame_reuse", "state_reuse"
    );
    let cfg4 = Config::new(4);
    for bench in PaperBench::all() {
        for scheduler in SCHEDULERS {
            for backend in BACKENDS {
                let cfg = cfg4.clone().backend(backend);
                let (_, report) = bench
                    .run_real(scheduler, &cfg)
                    .expect("4-thread run succeeds");
                let s = report.stats;
                println!(
                    "{:<22} {:<22} {:>12} {:>10} {:>12} {:>12}",
                    bench.name(),
                    format!("{}/{}", scheduler.name(), backend.name()),
                    s.tasks_created,
                    s.steals_ok,
                    s.frame_reuse,
                    s.state_reuse
                );
            }
        }
    }
    println!(
        "\npaper's shape: AdaptiveTC creates orders of magnitude fewer tasks than Cilk\n\
         on either backend; backend choice moves steal costs, not task counts"
    );
}
