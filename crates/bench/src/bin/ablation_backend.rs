//! Deque-backend ablation: Table-2-style one-thread overhead plus task,
//! steal and duplicate-extraction counters for all four substrates — the
//! THE protocol, the Chase-Lev lock-free deque, the locked pool and the
//! fence-free multiplicity deque — under both the work-first Cilk policy
//! and AdaptiveTC, across all eight paper workloads.
//!
//! The paper runs everything on the THE deque; this harness isolates what
//! the substrate itself costs. Expected shape: on one thread the exact
//! backends are close (their owner fast paths are a handful of atomics
//! plus one Dekker fence per pop), AdaptiveTC's overhead stays near serial
//! on any backend because it barely touches the deque at all, and the
//! fence-free backend is the only one whose owner path carries *no* fence
//! and no SeqCst access — the cost it re-pays as benign duplicate offers
//! (`dup_extractions`) that the runtime's claim layer rejects.
//!
//! Built with `--features count-sync`, the deque crate's sync facade is
//! swapped for counting shims and a third section reports measured
//! per-push/per-pop fence, SeqCst, RMW and SeqCst-RMW counts for every
//! backend (single-threaded owner loop, so the numbers are exact protocol
//! costs, not contention artifacts). Counting perturbs timing, so that
//! build skips the wall-clock section. The measured profile is asserted:
//! the fence-free owner path must perform zero fences and strictly fewer
//! SeqCst operations than THE or Chase-Lev. (At one thread THE's owner
//! path has no RMW at all — its SeqCst cost is the Dekker *fence* — so
//! "fewer SeqCst RMWs" is enforced as ≤ on the RMW column and < on the
//! total-SeqCst column; see DESIGN.md §12.)
//!
//! Every run writes `BENCH_pr6.json` (runtime counters always; per-op
//! sync counts when built with `count-sync`) for CI trending.
//!
//! ```text
//! cargo run --release -p adaptivetc-bench --bin ablation_backend
//! cargo run --release -p adaptivetc-bench --bin ablation_backend --features count-sync
//! ```

use adaptivetc_bench::PaperBench;
use adaptivetc_core::{Config, DequeBackend, RunReport};
use adaptivetc_runtime::Scheduler;

#[cfg(not(feature = "count-sync"))]
fn median_of_3<F: FnMut() -> u64>(mut run: F) -> u64 {
    let mut xs = [run(), run(), run()];
    xs.sort_unstable();
    xs[1]
}

const SCHEDULERS: [Scheduler; 2] = [Scheduler::Cilk, Scheduler::AdaptiveTc];

/// One 4-thread runtime cell, flattened for the table and the JSON dump.
struct Row {
    bench: &'static str,
    scheduler: &'static str,
    backend: &'static str,
    threads: usize,
    tasks: u64,
    steals: u64,
    dups: u64,
    frame_reuse: u64,
    state_reuse: u64,
    wall_ns: u64,
}

impl Row {
    fn from_report(
        bench: &'static str,
        scheduler: Scheduler,
        backend: DequeBackend,
        threads: usize,
        report: &RunReport,
    ) -> Self {
        let s = &report.stats;
        Row {
            bench,
            scheduler: scheduler.name(),
            backend: backend.name(),
            threads,
            tasks: s.tasks_created,
            steals: s.steals_ok,
            dups: s.dup_extractions,
            frame_reuse: s.frame_reuse,
            state_reuse: s.state_reuse,
            wall_ns: report.wall_ns,
        }
    }

    fn json(&self) -> String {
        format!(
            "{{\"bench\":\"{}\",\"scheduler\":\"{}\",\"backend\":\"{}\",\
             \"threads\":{},\"tasks\":{},\"steals\":{},\"dup_extractions\":{},\
             \"frame_reuse\":{},\"state_reuse\":{},\"wall_ns\":{}}}",
            self.bench,
            self.scheduler,
            self.backend,
            self.threads,
            self.tasks,
            self.steals,
            self.dups,
            self.frame_reuse,
            self.state_reuse,
            self.wall_ns
        )
    }
}

/// Per-operation synchronization costs, measured on the real deques.
#[cfg(feature = "count-sync")]
mod sync_cost {
    use adaptivetc_deque::sync_counts::{self, Counts};
    use adaptivetc_deque::{ChaseLevDeque, FenceFreeDeque, PoolDeque, TheDeque, WsDeque};

    /// Ops per phase. Pushes stay well under the pre-sized capacity so no
    /// growth or overflow path pollutes the per-op numbers.
    pub const N: u64 = 1024;

    pub struct OpCosts {
        pub backend: &'static str,
        pub push: Counts,
        pub pop: Counts,
    }

    impl OpCosts {
        pub fn per_op(c: &Counts) -> [f64; 4] {
            let n = N as f64;
            [
                c.fences as f64 / n,
                c.seqcst_ops as f64 / n,
                c.rmw_ops as f64 / n,
                c.seqcst_rmw_ops as f64 / n,
            ]
        }

        pub fn json(&self) -> String {
            let [pf, ps, pr, psr] = Self::per_op(&self.push);
            let [of, os, or, osr] = Self::per_op(&self.pop);
            format!(
                "{{\"backend\":\"{}\",\"push\":{{\"fences\":{pf},\"seqcst_ops\":{ps},\
                 \"rmw_ops\":{pr},\"seqcst_rmw_ops\":{psr}}},\
                 \"pop\":{{\"fences\":{of},\"seqcst_ops\":{os},\
                 \"rmw_ops\":{or},\"seqcst_rmw_ops\":{osr}}}}}",
                self.backend
            )
        }
    }

    /// Owner-only push/pop loop: the single-thread fast path whose cost
    /// Table 2 measures. The counters are process-global, so this must
    /// run with no concurrent deque traffic.
    fn measure<D: WsDeque<u64>>() -> OpCosts {
        let d = D::with_capacity(2 * N as usize);
        let before = sync_counts::snapshot();
        for i in 0..N {
            d.push(i).expect("capacity pre-sized");
        }
        let after_push = sync_counts::snapshot();
        for _ in 0..N {
            d.pop();
        }
        let after_pop = sync_counts::snapshot();
        OpCosts {
            backend: D::NAME,
            push: after_push.since(before),
            pop: after_pop.since(after_push),
        }
    }

    pub fn measure_all() -> Vec<OpCosts> {
        vec![
            measure::<TheDeque<u64>>(),
            measure::<ChaseLevDeque<u64>>(),
            measure::<PoolDeque<u64>>(),
            measure::<FenceFreeDeque<u64>>(),
        ]
    }
}

fn main() {
    // ------------------------------------------------------------------
    // Wall-clock section (uncounted builds only: the counting shims are a
    // measurable perturbation, so a count-sync build skips timing).
    // ------------------------------------------------------------------
    #[cfg(not(feature = "count-sync"))]
    {
        println!("Backend ablation: ONE-thread execution time relative to the serial baseline");
        println!("(median of 3 runs; real threaded runtime, release build)\n");

        let mut header = format!("{:<22} {:>9}", "benchmark", "serial ms");
        for s in SCHEDULERS {
            for b in DequeBackend::ALL {
                header.push_str(&format!(" {:>16}", format!("{}/{}", s.name(), b.name())));
            }
        }
        println!("{header}");

        let cfg1 = Config::new(1);
        for bench in PaperBench::all() {
            let _warmup = bench.run_serial(); // fault in code and data pages
            let serial_ns = median_of_3(|| bench.run_serial().1.wall_ns).max(1);
            let mut row = format!("{:<22} {:>9.1}", bench.name(), serial_ns as f64 / 1e6);
            for scheduler in SCHEDULERS {
                for backend in DequeBackend::ALL {
                    let cfg = cfg1.clone().backend(backend);
                    let ns = median_of_3(|| {
                        bench
                            .run_real(scheduler, &cfg)
                            .expect("single-thread run succeeds")
                            .1
                            .wall_ns
                    });
                    row.push_str(&format!(
                        " {:>8.1} ({:>4.2})",
                        ns as f64 / 1e6,
                        ns as f64 / serial_ns as f64
                    ));
                }
            }
            println!("{row}");
        }
    }
    #[cfg(feature = "count-sync")]
    println!("count-sync build: wall-clock section skipped (counting perturbs timing)\n");

    // ------------------------------------------------------------------
    // Runtime counters at 4 threads. `dup_extractions` is structurally
    // zero on the exact backends and the fence-free backend's whole
    // multiplicity cost: offers the claim layer rejected.
    // ------------------------------------------------------------------
    println!("\nCounters at 4 threads (single run per cell):\n");
    println!(
        "{:<22} {:<22} {:>12} {:>8} {:>6} {:>12} {:>12}",
        "benchmark", "scheduler/backend", "tasks", "steals", "dups", "frame_reuse", "state_reuse"
    );
    let mut rows: Vec<Row> = Vec::new();
    let cfg4 = Config::new(4);
    for bench in PaperBench::all() {
        for scheduler in SCHEDULERS {
            for backend in DequeBackend::ALL {
                let cfg = cfg4.clone().backend(backend);
                let (_, report) = bench
                    .run_real(scheduler, &cfg)
                    .expect("4-thread run succeeds");
                let row = Row::from_report(bench.name(), scheduler, backend, 4, &report);
                if backend != DequeBackend::FenceFree {
                    assert_eq!(
                        row.dups,
                        0,
                        "exact backend {} reported duplicate extractions",
                        backend.name()
                    );
                }
                println!(
                    "{:<22} {:<22} {:>12} {:>8} {:>6} {:>12} {:>12}",
                    row.bench,
                    format!("{}/{}", row.scheduler, row.backend),
                    row.tasks,
                    row.steals,
                    row.dups,
                    row.frame_reuse,
                    row.state_reuse
                );
                rows.push(row);
            }
        }
    }
    println!(
        "\npaper's shape: AdaptiveTC creates orders of magnitude fewer tasks than Cilk\n\
         on any backend; backend choice moves steal costs, not task counts"
    );

    // ------------------------------------------------------------------
    // Per-op synchronization costs (count-sync builds).
    // ------------------------------------------------------------------
    #[cfg(feature = "count-sync")]
    let op_costs = {
        use sync_cost::OpCosts;
        println!(
            "\nPer-operation synchronization costs (owner path, single thread, {} ops):\n",
            sync_cost::N
        );
        println!(
            "{:<12} {:<5} {:>8} {:>11} {:>9} {:>13}",
            "backend", "op", "fences", "seqcst_ops", "rmw_ops", "seqcst_rmws"
        );
        let costs = sync_cost::measure_all();
        for c in &costs {
            for (op, counts) in [("push", &c.push), ("pop", &c.pop)] {
                let [f, s, r, sr] = OpCosts::per_op(counts);
                println!(
                    "{:<12} {:<5} {:>8.3} {:>11.3} {:>9.3} {:>13.3}",
                    c.backend, op, f, s, r, sr
                );
            }
        }

        // The PR's acceptance shape. THE's owner pop carries the Dekker
        // fence (1 fence, 1 SeqCst op); Chase-Lev's carries the same
        // fence plus a SeqCst CAS on the last element. The fence-free
        // owner path must carry nothing: zero fences, zero SeqCst.
        let by_name = |n: &str| costs.iter().find(|c| c.backend == n).expect("measured");
        let (ff, the, cl) = (by_name("fence-free"), by_name("the"), by_name("chase-lev"));
        let total = |c: &sync_cost::OpCosts| {
            (
                c.push.fences + c.pop.fences,
                c.push.seqcst_ops + c.pop.seqcst_ops,
                c.push.seqcst_rmw_ops + c.pop.seqcst_rmw_ops,
            )
        };
        let (ff_f, ff_s, ff_sr) = total(ff);
        let (the_f, the_s, the_sr) = total(the);
        let (cl_f, cl_s, cl_sr) = total(cl);
        assert_eq!(ff_f, 0, "fence-free owner path must perform zero fences");
        assert_eq!(
            ff_s, 0,
            "fence-free owner path must perform zero SeqCst ops"
        );
        assert!(
            ff_s < the_s && ff_s < cl_s,
            "fence-free must beat THE ({the_s}) and Chase-Lev ({cl_s}) on SeqCst ops, got {ff_s}"
        );
        assert!(
            ff_sr <= the_sr && ff_sr <= cl_sr,
            "fence-free SeqCst RMWs ({ff_sr}) exceed THE ({the_sr}) or Chase-Lev ({cl_sr})"
        );
        assert!(
            the_f > 0 && cl_f > 0,
            "exact backends lost their Dekker fence — the ablation is measuring nothing"
        );
        println!(
            "\nfence-free acceptance (0 fences, 0 SeqCst on owner push+pop; \
             THE {the_f} fences, Chase-Lev {cl_f}): PASS"
        );
        costs
    };

    // ------------------------------------------------------------------
    // JSON dump for CI trending. `sync_ops` is populated only by the
    // count-sync build; the smoke job runs that build and gates on the
    // artifact existing.
    // ------------------------------------------------------------------
    #[cfg(feature = "count-sync")]
    let sync_json: Vec<String> = op_costs.iter().map(sync_cost::OpCosts::json).collect();
    #[cfg(not(feature = "count-sync"))]
    let sync_json: Vec<String> = Vec::new();

    let json = format!(
        "{{\n\"runtime\": [\n  {}\n],\n\"sync_ops\": [\n  {}\n]\n}}\n",
        rows.iter().map(Row::json).collect::<Vec<_>>().join(",\n  "),
        sync_json.join(",\n  ")
    );
    std::fs::write("BENCH_pr6.json", json).expect("write BENCH_pr6.json");
    println!(
        "\nwrote {} runtime rows and {} sync-op rows to BENCH_pr6.json",
        rows.len(),
        sync_json.len()
    );
}
