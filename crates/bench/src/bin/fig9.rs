//! Figure 9: Sudoku(input1) speedup for the two fixed cut-off strategies
//! against Cilk, Cilk-SYNCHED, Tascell and AdaptiveTC — the starvation
//! experiment. Fixed cut-offs starve above ~4 threads on this unbalanced
//! tree; AdaptiveTC keeps scaling.
//!
//! ```text
//! cargo run --release -p adaptivetc-bench --bin fig9 [nodes]
//! ```

use adaptivetc_bench::{speedup_row, THREADS};
use adaptivetc_core::Config;
use adaptivetc_sim::{serial_wall_ns, simulate, Policy, SimTree};
use adaptivetc_workloads::tree::UnbalancedTree;

fn main() {
    let total: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(500_000);

    // The Figure-8 tree shape (Sudoku input1's dynamically generated tree),
    // with per-node work set as in the paper's unbalanced-tree experiments.
    let tree = UnbalancedTree::fig8(total).work(16);
    let flat = SimTree::from_problem(&tree);
    let cost = adaptivetc_sim::CostModel::calibrated();
    let serial = serial_wall_ns(&flat, &cost) as f64;

    println!("Figure 9: Sudoku(input1) speedup with fixed cut-offs vs adaptive");
    println!(
        "tree: {} nodes, depth-1 shares ~61/28/11; columns: threads = {THREADS:?}\n",
        flat.len()
    );
    for policy in [
        Policy::Cilk,
        Policy::CilkSynched,
        Policy::Tascell,
        Policy::AdaptiveTc,
        Policy::CutoffProgrammer(3),
        Policy::CutoffLibrary,
    ] {
        let series: Vec<f64> = THREADS
            .iter()
            .map(|&t| {
                let out = simulate(&flat, policy, &Config::new(t), cost);
                assert_eq!(out.leaves, flat.leaf_count(), "work conservation");
                serial / out.wall_ns as f64
            })
            .collect();
        println!("{}", speedup_row(policy.name(), &series));
    }
    println!(
        "\npaper's shape: both cut-off strategies flatten (starve) beyond ~4\n\
         threads; Cutoff-library is also burdened by per-node workspace\n\
         copies; AdaptiveTC keeps climbing."
    );
}
