//! Figure 6: breakdown of ONE-thread overheads (working / taskprivate
//! copying / d-e-que-or-nested-function management) for Nqueen-array,
//! Nqueen-compute and Fib — measured on the real threaded runtime with
//! timing instrumentation enabled.
//!
//! ```text
//! cargo run --release -p adaptivetc-bench --bin fig6
//! ```

use adaptivetc_bench::PaperBench;
use adaptivetc_core::Config;
use adaptivetc_runtime::Scheduler;

fn main() {
    println!("Figure 6: one-thread overhead breakdown (real runtime, timing on)\n");
    let cfg = Config::new(1).timing(true);
    for bench in [
        PaperBench::NqueenArray,
        PaperBench::NqueenCompute,
        PaperBench::Fib,
    ] {
        println!("({})", bench.name());
        println!(
            "{:<22} {:>10} {:>12} {:>14} {:>10}",
            "system", "total ms", "working %", "taskprivate %", "deque %"
        );
        let (serial_out, serial) = bench.run_serial();
        for scheduler in [
            Scheduler::Tascell,
            Scheduler::Cilk,
            Scheduler::CilkSynched,
            Scheduler::AdaptiveTc,
        ] {
            if scheduler == Scheduler::CilkSynched && !bench.has_taskprivate() {
                continue;
            }
            let (out, report) = bench
                .run_real(scheduler, &cfg)
                .expect("single-thread run succeeds");
            assert_eq!(out, serial_out, "{scheduler} wrong result");
            let total = report.wall_ns.max(1) as f64;
            let copy = report.stats.time.copy_ns as f64;
            // "Working" is approximated as the serial baseline's time; the
            // remainder after copying is task/deque (or nested-function)
            // management — the same attribution the paper uses for its
            // one-thread breakdown.
            let working = (serial.wall_ns as f64).min(total);
            let deque = (total - working - copy).max(0.0);
            println!(
                "{:<22} {:>10.1} {:>11.1}% {:>13.1}% {:>9.1}%",
                scheduler.to_string(),
                total / 1e6,
                100.0 * working / total,
                100.0 * copy / total,
                100.0 * deque / total
            );
        }
        println!();
    }
    println!(
        "paper's shape: AdaptiveTC is nearly all working time; Cilk loses a\n\
         large share to taskprivate copying (n-queens) and task management\n\
         (fib); Tascell's nested-function share is small except nothing —\n\
         fib is where AdaptiveTC pays more than Tascell."
    );
}
