//! Table 3: statistics of the randomly generated unbalanced trees —
//! size, leaves, depth and the depth-1 subtree percentages, for
//! Tree1L/R .. Tree3L/R.
//!
//! ```text
//! cargo run --release -p adaptivetc-bench --bin table3 [nodes]
//! ```

use adaptivetc_core::treeinfo::TreeInfo;
use adaptivetc_workloads::tree::UnbalancedTree;

fn main() {
    let total: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1_000_000);

    println!("Table 3: randomly generated unbalanced trees ({total} nodes, scaled from 1.96G)\n");
    println!(
        "{:<8} {:>10} {:>10} {:>6}  depth-1 subtree shares (%)",
        "input", "size", "leaves", "depth"
    );
    for (name, tree) in [
        ("Tree1L", UnbalancedTree::tree1(total)),
        ("Tree1R", UnbalancedTree::tree1(total).reversed()),
        ("Tree2L", UnbalancedTree::tree2(total)),
        ("Tree2R", UnbalancedTree::tree2(total).reversed()),
        ("Tree3L", UnbalancedTree::tree3(total)),
        ("Tree3R", UnbalancedTree::tree3(total).reversed()),
    ] {
        let info = TreeInfo::measure(&tree);
        let shares: Vec<String> = info
            .depth1_percent()
            .iter()
            .map(|p| format!("{p:.3}"))
            .collect();
        println!(
            "{:<8} {:>10} {:>10} {:>6}  {}",
            name,
            info.size,
            info.leaves,
            info.depth,
            shares.join(", ")
        );
    }
    println!(
        "\npaper's depth-1 shares:\n\
         Tree1L: 42.512, 25.362, 13.019, 4.936, 0.416, 11.771, 1.984\n\
         Tree2L: 74.492, 20.791, 1.106, 2.732, 0.637, 0.049, 0.193\n\
         Tree3L: 89.675, 6.891, 1.836, 0.819, 0.645, 0.026, 0.108\n\
         (R variants are exact mirrors; sizes scaled from 1,961,025,791)"
    );
}
