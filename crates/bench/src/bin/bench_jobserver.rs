//! Job-server throughput and latency: the PR 7 persistent-pool benchmark.
//!
//! Three mixes, each reported as jobs/sec with p50/p99
//! submission-to-terminal latency:
//!
//! * **flood** — many tiny Figure-1 jobs (single-slot): the pool-reuse
//!   case. Compared against the spin-up-per-job baseline (a fresh
//!   `Scheduler::run`, with its own scoped worker threads, per job at
//!   the same OS-level parallelism); the persistent pool must be ≥2×.
//! * **heavy** — a few n-queens jobs at multiple slots with work-sharing.
//! * **mixed** — floods and heavies interleaved across priority lanes,
//!   with a slice of mid-stream cancellations.
//!
//! Writes `BENCH_pr7.json`. `ABLATION_SMOKE=1` shrinks the mixes for the
//! CI smoke lane.
//!
//! ```text
//! cargo run --release -p adaptivetc-bench --bin bench_jobserver
//! ```

use adaptivetc_core::{Config, CutoffPolicy};
use adaptivetc_runtime::{
    JobHandle, JobOutcome, JobServer, Mode, Priority, Scheduler, ServerConfig,
};
use adaptivetc_workloads::fig1::Fig1Tree;
use adaptivetc_workloads::nqueens::NqueensArray;
use std::time::Instant;

const WORKERS: usize = 4;

struct MixRow {
    mix: &'static str,
    jobs: usize,
    completed: u64,
    cancelled: u64,
    wall_ns: u64,
    jobs_per_sec: f64,
    p50_us: f64,
    p99_us: f64,
    baseline_jobs_per_sec: f64,
    speedup: f64,
}

impl MixRow {
    fn print(&self) {
        println!(
            "{:<7} {:>5} {:>5} {:>5} {:>12.0} {:>9.1} {:>9.1} {:>12.0} {:>8}",
            self.mix,
            self.jobs,
            self.completed,
            self.cancelled,
            self.jobs_per_sec,
            self.p50_us,
            self.p99_us,
            self.baseline_jobs_per_sec,
            if self.baseline_jobs_per_sec > 0.0 {
                format!("{:.2}x", self.speedup)
            } else {
                "-".into()
            },
        );
    }

    fn json(&self) -> String {
        format!(
            "{{\"mix\":\"{}\",\"jobs\":{},\"completed\":{},\"cancelled\":{},\
             \"wall_ns\":{},\"jobs_per_sec\":{:.1},\"p50_us\":{:.1},\"p99_us\":{:.1},\
             \"baseline_jobs_per_sec\":{:.1},\"speedup\":{:.3},\"workers\":{}}}",
            self.mix,
            self.jobs,
            self.completed,
            self.cancelled,
            self.wall_ns,
            self.jobs_per_sec,
            self.p50_us,
            self.p99_us,
            self.baseline_jobs_per_sec,
            self.speedup,
            WORKERS,
        )
    }
}

/// Spin until the handle's terminal latency is published, then collect
/// the outcome. (`latency()` is stored before the outcome is published,
/// so the spin is a handful of iterations at most.)
fn settle(h: JobHandle<u64>) -> (JobOutcome<u64>, f64) {
    let lat_us = loop {
        match h.latency() {
            Some(d) => break d.as_nanos() as f64 / 1_000.0,
            None if h.status().is_terminal() => std::hint::spin_loop(),
            None => std::thread::yield_now(),
        }
    };
    (h.wait(), lat_us)
}

fn percentile(sorted_us: &[f64], p: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_us.len() - 1) as f64 * p).round() as usize;
    sorted_us[idx]
}

fn finish_row(
    mix: &'static str,
    jobs: usize,
    completed: u64,
    cancelled: u64,
    wall_ns: u64,
    mut lats: Vec<f64>,
    baseline: Option<(u64, usize)>,
) -> MixRow {
    lats.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let jobs_per_sec = jobs as f64 / (wall_ns.max(1) as f64 / 1e9);
    let baseline_jobs_per_sec = match baseline {
        Some((wall, jobs)) if wall > 0 => jobs as f64 / (wall as f64 / 1e9),
        _ => 0.0,
    };
    MixRow {
        mix,
        jobs,
        completed,
        cancelled,
        wall_ns,
        jobs_per_sec,
        p50_us: percentile(&lats, 0.50),
        p99_us: percentile(&lats, 0.99),
        baseline_jobs_per_sec,
        speedup: if baseline_jobs_per_sec > 0.0 {
            jobs_per_sec / baseline_jobs_per_sec
        } else {
            0.0
        },
    }
}

fn flood_cfg(seed: u64) -> Config {
    Config::new(1).cutoff(CutoffPolicy::Auto).seed(seed)
}

fn heavy_cfg(seed: u64) -> Config {
    Config::new(WORKERS).cutoff(CutoffPolicy::Auto).seed(seed)
}

/// The spin-up-per-job baseline: `WORKERS` OS threads each run a slice of
/// the flood, paying a full `Scheduler::run` (scoped worker spawn + join)
/// per job — exactly what a caller without a persistent pool would do.
fn flood_baseline(jobs: usize) -> u64 {
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for lane in 0..WORKERS {
            s.spawn(move || {
                for i in (lane..jobs).step_by(WORKERS) {
                    let (out, _) = Scheduler::AdaptiveTc
                        .run(&Fig1Tree::new(), &flood_cfg(i as u64))
                        .expect("baseline run");
                    assert_eq!(out, Fig1Tree::LEAVES);
                }
            });
        }
    });
    t0.elapsed().as_nanos() as u64
}

fn flood_mix(jobs: usize) -> MixRow {
    let server = JobServer::new(ServerConfig::new(WORKERS).queue_capacity(jobs.max(8)));
    let t0 = Instant::now();
    let handles: Vec<_> = (0..jobs)
        .map(|i| {
            server
                .submit(
                    Fig1Tree::new(),
                    flood_cfg(i as u64),
                    Mode::Adaptive,
                    Priority::Normal,
                )
                .expect("flood submission")
        })
        .collect();
    let mut lats = Vec::with_capacity(jobs);
    let mut completed = 0u64;
    for h in handles {
        let (outcome, lat) = settle(h);
        match outcome {
            JobOutcome::Completed { out, .. } => {
                assert_eq!(out, Fig1Tree::LEAVES);
                completed += 1;
            }
            JobOutcome::Cancelled { .. } => unreachable!("flood never cancels"),
        }
        lats.push(lat);
    }
    let wall_ns = t0.elapsed().as_nanos() as u64;
    server.shutdown();
    let baseline = flood_baseline(jobs);
    finish_row(
        "flood",
        jobs,
        completed,
        0,
        wall_ns,
        lats,
        Some((baseline, jobs)),
    )
}

fn heavy_mix(jobs: usize, board: u8, expected: u64) -> MixRow {
    let server = JobServer::new(ServerConfig::new(WORKERS).work_sharing(true));
    let t0 = Instant::now();
    let handles: Vec<_> = (0..jobs)
        .map(|i| {
            server
                .submit(
                    NqueensArray::new(board),
                    heavy_cfg(i as u64),
                    Mode::Adaptive,
                    Priority::Normal,
                )
                .expect("heavy submission")
        })
        .collect();
    let mut lats = Vec::with_capacity(jobs);
    let mut completed = 0u64;
    for h in handles {
        let (outcome, lat) = settle(h);
        match outcome {
            JobOutcome::Completed { out, .. } => {
                assert_eq!(out, expected);
                completed += 1;
            }
            JobOutcome::Cancelled { .. } => unreachable!("heavy never cancels"),
        }
        lats.push(lat);
    }
    let wall_ns = t0.elapsed().as_nanos() as u64;
    server.shutdown();
    // Sequential spin-up baseline: each heavy job already uses every core,
    // so one `Scheduler::run` per job back-to-back is the fair comparison.
    let t0 = Instant::now();
    for i in 0..jobs {
        let (out, _) = Scheduler::AdaptiveTc
            .run(&NqueensArray::new(board), &heavy_cfg(i as u64))
            .expect("baseline run");
        assert_eq!(out, expected);
    }
    let baseline = t0.elapsed().as_nanos() as u64;
    finish_row(
        "heavy",
        jobs,
        completed,
        0,
        wall_ns,
        lats,
        Some((baseline, jobs)),
    )
}

fn mixed_mix(floods: usize, heavies: usize, board: u8, expected: u64) -> MixRow {
    let server = JobServer::new(
        ServerConfig::new(WORKERS)
            .queue_capacity((floods + heavies).max(8))
            .work_sharing(true),
    );
    let jobs = floods + heavies;
    let t0 = Instant::now();
    let mut flood_handles = Vec::with_capacity(floods);
    let mut heavy_handles = Vec::with_capacity(heavies);
    // Heavies go in first on the low lane; floods then overtake them on
    // normal/high, with every eighth flood cancelled mid-stream.
    for i in 0..heavies {
        heavy_handles.push(
            server
                .submit(
                    NqueensArray::new(board),
                    heavy_cfg(i as u64),
                    Mode::Adaptive,
                    Priority::Low,
                )
                .expect("mixed heavy submission"),
        );
    }
    for i in 0..floods {
        let priority = if i % 4 == 0 {
            Priority::High
        } else {
            Priority::Normal
        };
        let h = server
            .submit(
                Fig1Tree::new(),
                flood_cfg(i as u64),
                Mode::Adaptive,
                priority,
            )
            .expect("mixed flood submission");
        if i % 8 == 3 {
            h.cancel();
        }
        flood_handles.push(h);
    }
    let mut lats = Vec::with_capacity(jobs);
    let mut completed = 0u64;
    let mut cancelled = 0u64;
    for h in flood_handles {
        let (outcome, lat) = settle(h);
        match outcome {
            JobOutcome::Completed { out, .. } => {
                assert_eq!(out, Fig1Tree::LEAVES);
                completed += 1;
                lats.push(lat);
            }
            JobOutcome::Cancelled { .. } => cancelled += 1,
        }
    }
    for h in heavy_handles {
        let (outcome, lat) = settle(h);
        match outcome {
            JobOutcome::Completed { out, .. } => {
                assert_eq!(out, expected);
                completed += 1;
                lats.push(lat);
            }
            JobOutcome::Cancelled { .. } => cancelled += 1,
        }
    }
    let wall_ns = t0.elapsed().as_nanos() as u64;
    server.shutdown();
    finish_row("mixed", jobs, completed, cancelled, wall_ns, lats, None)
}

fn main() {
    let smoke = std::env::var_os("ABLATION_SMOKE").is_some();
    let (flood_jobs, heavy_jobs, board) = if smoke { (64, 3, 7u8) } else { (512, 8, 9u8) };
    let expected = Scheduler::AdaptiveTc
        .run(&NqueensArray::new(board), &heavy_cfg(0))
        .expect("reference run")
        .0;

    println!(
        "Job-server benchmark ({WORKERS} pool workers{})\n",
        if smoke { ", ABLATION_SMOKE" } else { "" }
    );
    println!(
        "{:<7} {:>5} {:>5} {:>5} {:>12} {:>9} {:>9} {:>12} {:>8}",
        "mix", "jobs", "done", "canc", "jobs/sec", "p50 us", "p99 us", "base j/s", "speedup"
    );

    let rows = [
        flood_mix(flood_jobs),
        heavy_mix(heavy_jobs, board, expected),
        mixed_mix(flood_jobs / 2, heavy_jobs.div_ceil(2), board, expected),
    ];
    for r in &rows {
        r.print();
    }

    let flood = &rows[0];
    println!(
        "\nflood pool-reuse speedup over spin-up-per-job: {:.2}x (budget: >= 2x)",
        flood.speedup
    );
    assert!(
        flood.speedup >= 2.0,
        "persistent pool only {:.2}x over spin-up-per-job on the flood mix",
        flood.speedup
    );

    let json = format!(
        "[\n  {}\n]\n",
        rows.iter()
            .map(MixRow::json)
            .collect::<Vec<_>>()
            .join(",\n  ")
    );
    std::fs::write("BENCH_pr7.json", json).expect("write BENCH_pr7.json");
    println!("wrote {} mixes to BENCH_pr7.json", rows.len());
}
