//! Ablation: AdaptiveTC's initial cut-off depth (the paper sets
//! `⌈log₂ N⌉`). Deeper cut-offs create more initial tasks (closer to Cilk,
//! more copies); depth 1 relies almost entirely on `need_task` adaptation.
//!
//! ```text
//! cargo run --release -p adaptivetc-bench --bin ablation_cutoff
//! ```

use adaptivetc_bench::PaperBench;
use adaptivetc_core::{Config, CutoffPolicy};
use adaptivetc_sim::{serial_wall_ns, simulate, Policy};

fn main() {
    println!("Ablation: AdaptiveTC speedup at 8 workers vs initial cut-off depth\n");
    println!(
        "{:<22} {:>7} {:>7} {:>8} {:>7} {:>7} {:>7}",
        "benchmark", "1", "2", "3=auto", "4", "6", "8"
    );
    for bench in [
        PaperBench::NqueenArray,
        PaperBench::Strimko,
        PaperBench::Sudoku,
        PaperBench::Pentomino,
    ] {
        let cost = bench.calibrated_cost();
        let tree = bench.sim_tree();
        let serial = serial_wall_ns(&tree, &cost) as f64;
        let mut row = format!("{:<22}", bench.name());
        for cutoff in [1u32, 2, 3, 4, 6, 8] {
            let cfg = Config::new(8).cutoff(CutoffPolicy::Fixed(cutoff));
            let out = simulate(&tree, Policy::AdaptiveTc, &cfg, cost);
            row.push_str(&format!(" {:>7.2}", serial / out.wall_ns as f64));
        }
        println!("{row}");
    }
    println!("\n(auto = ceil(log2 8) = 3, the paper's choice for 8 threads)");
}
