//! Figure 7: Tascell's overhead breakdown (working / polling /
//! wait_children) at 2, 4 and 8 threads for Nqueen-array, Nqueen-compute
//! and Fib — from the simulator's exact virtual time accounting.
//!
//! ```text
//! cargo run --release -p adaptivetc-bench --bin fig7
//! ```

use adaptivetc_bench::PaperBench;
use adaptivetc_core::Config;
use adaptivetc_sim::{simulate, Policy};

fn main() {
    println!("Figure 7: Tascell overhead breakdown with multiple threads (simulated)\n");
    for bench in [
        PaperBench::NqueenArray,
        PaperBench::NqueenCompute,
        PaperBench::Fib,
    ] {
        let cost = bench.calibrated_cost();
        let tree = bench.sim_tree();
        println!("({})", bench.name());
        println!(
            "{:>8} {:>11} {:>11} {:>15} {:>11}",
            "threads", "working %", "polling %", "wait_children %", "other %"
        );
        for threads in [2usize, 4, 8] {
            let out = simulate(&tree, Policy::Tascell, &Config::new(threads), cost);
            // Total worker-time = threads × wall; categories from the exact
            // virtual breakdown.
            let total = (out.wall_ns as f64) * threads as f64;
            let t = &out.report.stats.time;
            let working = t.busy_ns as f64;
            let polling = t.poll_ns as f64;
            let waiting = t.wait_children_ns as f64;
            let other = (total - working - polling - waiting).max(0.0);
            println!(
                "{:>8} {:>10.1}% {:>10.2}% {:>14.1}% {:>10.1}%",
                threads,
                100.0 * working / total,
                100.0 * polling / total,
                100.0 * waiting / total,
                100.0 * other / total
            );
        }
        println!();
    }
    println!(
        "paper's numbers at 8 threads: wait_children = 16.73% (Nqueen-array),\n\
         20.84% (Nqueen-compute), 11.31% (Fib); the share grows with threads."
    );
}
