//! Ablation: d-e-que overflow proneness (the paper's §2 claim that
//! AdaptiveTC, pushing far fewer tasks, "is less prone to d-e-que
//! overflow").
//!
//! Runs the real threaded runtime with shrinking fixed deque capacities
//! and reports peak occupancy and overflow events per scheduler (overflow
//! is tolerated by executing the spawn inline, so the run still completes
//! and we can count how often each policy would have burst a Cilk-style
//! fixed array).
//!
//! ```text
//! cargo run --release -p adaptivetc-bench --bin ablation_deque
//! ```

use adaptivetc_core::Config;
use adaptivetc_runtime::Scheduler;
use adaptivetc_workloads::nqueens::NqueensArray;

fn main() {
    let problem = NqueensArray::new(10);
    println!("Ablation: deque peak occupancy and overflows, 10-queens, 4 threads\n");
    println!(
        "{:<14} {:>9} {:>16} {:>16} {:>16}",
        "system", "peak", "ovfl @cap=8", "ovfl @cap=16", "ovfl @cap=64"
    );
    for scheduler in [
        Scheduler::Cilk,
        Scheduler::CilkSynched,
        Scheduler::AdaptiveTc,
    ] {
        let (_, generous) = scheduler
            .run(&problem, &Config::new(4).deque_capacity(1 << 16))
            .expect("runs");
        let mut row = format!(
            "{:<14} {:>9}",
            scheduler.to_string(),
            generous.stats.deque_peak
        );
        for cap in [8usize, 16, 64] {
            let (out, report) = scheduler
                .run(&problem, &Config::new(4).deque_capacity(cap))
                .expect("runs");
            assert_eq!(out, 724, "overflow fallback must stay correct");
            row.push_str(&format!(" {:>16}", report.stats.deque_overflows));
        }
        println!("{row}");
    }
    println!(
        "\nshape: Cilk's occupancy grows with spawn depth and overflows tiny\n\
         arrays; AdaptiveTC keeps a handful of entries and never overflows."
    );
}
