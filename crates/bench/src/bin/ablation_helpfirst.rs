//! Ablation: work-first vs help-first scheduling (the axis SLAW — cited in
//! the paper's §2 — adapts between). Help-first pushes spawned *children*
//! and keeps running the parent; its deque occupancy grows with sibling
//! breadth, where work-first (Cilk) grows with spawn depth — the other half
//! of the overflow story behind the paper's d-e-que discussion.
//!
//! ```text
//! cargo run --release -p adaptivetc-bench --bin ablation_helpfirst
//! ```

use adaptivetc_bench::PaperBench;
use adaptivetc_core::Config;
use adaptivetc_sim::{serial_wall_ns, simulate, Policy};

fn main() {
    println!("Ablation: work-first (Cilk) vs help-first at 8 workers (simulated)\n");
    println!(
        "{:<22} {:>9} {:>9} {:>12} {:>12}",
        "benchmark", "WF spdup", "HF spdup", "WF dq-peak", "HF dq-peak"
    );
    let cfg = Config::new(8);
    for bench in PaperBench::all() {
        let cost = bench.calibrated_cost();
        let tree = bench.sim_tree();
        let serial = serial_wall_ns(&tree, &cost) as f64;
        let wf = simulate(&tree, Policy::Cilk, &cfg, cost);
        let hf = simulate(&tree, Policy::HelpFirst, &cfg, cost);
        assert_eq!(wf.leaves, tree.leaf_count());
        assert_eq!(hf.leaves, tree.leaf_count());
        println!(
            "{:<22} {:>9.2} {:>9.2} {:>12} {:>12}",
            bench.name(),
            serial / wf.wall_ns as f64,
            serial / hf.wall_ns as f64,
            wf.report.stats.deque_peak,
            hf.report.stats.deque_peak
        );
    }
    println!(
        "\nreading: both pay Cilk's per-spawn task + copy costs; help-first\n\
         deque peaks track the bushiest sibling list, work-first peaks track\n\
         spawn depth. AdaptiveTC sidesteps the axis entirely by not creating\n\
         the tasks in the first place."
    );
}
