//! Criterion benchmarks of the threaded schedulers on a small n-queens
//! instance (single-threaded — the Table 2 overhead comparison in
//! Criterion form) plus the serial baseline.

use adaptivetc_core::{serial, Config};
use adaptivetc_runtime::Scheduler;
use adaptivetc_workloads::nqueens::NqueensArray;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_schedulers_one_thread(c: &mut Criterion) {
    let problem = NqueensArray::new(9);
    let cfg = Config::new(1);
    let mut group = c.benchmark_group("nqueens9_one_thread");
    group.sample_size(20);
    group.bench_function("serial", |b| b.iter(|| black_box(serial::run(&problem).0)));
    for scheduler in [
        Scheduler::Cilk,
        Scheduler::CilkSynched,
        Scheduler::Tascell,
        Scheduler::AdaptiveTc,
    ] {
        group.bench_function(scheduler.name(), |b| {
            b.iter(|| black_box(scheduler.run(&problem, &cfg).expect("runs").0))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_schedulers_one_thread);
criterion_main!(benches);
