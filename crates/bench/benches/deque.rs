//! Criterion micro-benchmarks for the d-e-que substrate: the THE protocol's
//! owner fast path, the special-task operations, and the growable
//! `PoolDeque` for comparison. These quantify the "management of d-e-ques"
//! cost component of the paper's overhead breakdowns.

use adaptivetc_deque::{ChaseLevDeque, ClSteal, PoolDeque, StealOutcome, TheDeque};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_the_push_pop(c: &mut Criterion) {
    let dq: TheDeque<u64> = TheDeque::new(1024);
    c.bench_function("the_deque/push_pop", |b| {
        b.iter(|| {
            dq.push(black_box(1)).unwrap();
            black_box(dq.pop())
        })
    });
}

fn bench_the_special_cycle(c: &mut Criterion) {
    let dq: TheDeque<u64> = TheDeque::new(1024);
    c.bench_function("the_deque/special_cycle", |b| {
        b.iter(|| {
            dq.push_special(black_box(9)).unwrap();
            dq.push(black_box(1)).unwrap();
            black_box(dq.pop());
            black_box(dq.pop_special())
        })
    });
}

fn bench_the_steal(c: &mut Criterion) {
    let dq: TheDeque<u64> = TheDeque::new(1024);
    c.bench_function("the_deque/push_steal", |b| {
        b.iter(|| {
            dq.push(black_box(1)).unwrap();
            match dq.steal() {
                StealOutcome::Stolen(v) => black_box(v),
                StealOutcome::Empty => unreachable!("just pushed"),
            }
        })
    });
}

fn bench_pool_push_pop(c: &mut Criterion) {
    let dq: PoolDeque<u64> = PoolDeque::new();
    c.bench_function("pool_deque/push_pop", |b| {
        b.iter(|| {
            dq.push(black_box(1));
            black_box(dq.pop())
        })
    });
}

fn bench_chase_lev_push_pop(c: &mut Criterion) {
    let dq: ChaseLevDeque<u64> = ChaseLevDeque::new();
    c.bench_function("chase_lev/push_pop", |b| {
        b.iter(|| {
            dq.push(black_box(1));
            black_box(dq.pop())
        })
    });
}

fn bench_chase_lev_steal(c: &mut Criterion) {
    let dq: ChaseLevDeque<u64> = ChaseLevDeque::new();
    c.bench_function("chase_lev/push_steal", |b| {
        b.iter(|| {
            dq.push(black_box(1));
            match dq.steal() {
                ClSteal::Stolen(v) => black_box(v),
                _ => unreachable!("single-threaded: just pushed"),
            }
        })
    });
}

criterion_group!(
    benches,
    bench_the_push_pop,
    bench_the_special_cycle,
    bench_the_steal,
    bench_pool_push_pop,
    bench_chase_lev_push_pop,
    bench_chase_lev_steal
);
criterion_main!(benches);
